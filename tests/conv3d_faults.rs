//! Integration test: the conv3d injection path — Table I's *Depth* row.
//!
//! PyTorchALFI supports conv2d, conv3d and linear layers; conv3d fault
//! records carry an extra depth coordinate. This test drives the full
//! pipeline (scenario → matrix → injection → trace persistence) over a
//! 3-D CNN and asserts the depth coordinate is generated, applied and
//! round-tripped.

use alfi::core::{load_fault_matrix, save_fault_matrix, FaultValue, Ptfiwrap};
use alfi::nn::models::{c3d, C3dConfig};
use alfi::nn::LayerKind;
use alfi::scenario::{FaultMode, InjectionTarget, LayerType, Scenario};
use alfi::tensor::Tensor;

fn cfg() -> C3dConfig {
    C3dConfig { frames: 4, input_hw: 8, width_mult: 0.125, seed: 3, ..C3dConfig::default() }
}

fn scenario(target: InjectionTarget) -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = 30;
    s.injection_target = target;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.layer_types = vec![LayerType::Conv3d]; // only the 3-D convolutions
    s.seed = 17;
    s
}

#[test]
fn conv3d_weight_faults_carry_depth_and_apply() {
    let model = c3d(&cfg());
    let mut wrapper =
        Ptfiwrap::new(&model, scenario(InjectionTarget::Weights), &cfg().input_dims(1)).unwrap();
    // only conv3d targets survive the filter
    assert!(wrapper.targets().iter().all(|t| t.kind == LayerKind::Conv3d));
    assert_eq!(wrapper.targets().len(), 4);
    // every record has a depth coordinate within the kernel depth
    for r in &wrapper.fault_matrix().records {
        let d = r.depth.expect("conv3d weight faults must carry depth");
        assert!(d < 3, "kernel depth is 3, got {d}");
        assert!(matches!(r.value, FaultValue::BitFlip(23..=30)));
    }
    // arming applies a real corruption
    let fm = wrapper.next_faulty_model().unwrap();
    let log = fm.applied_faults();
    assert_eq!(log.len(), 1);
    assert_ne!(log[0].original.to_bits(), log[0].corrupted.to_bits());
    // and the model still runs
    let y = fm.forward(&Tensor::ones(&cfg().input_dims(1))).unwrap();
    assert_eq!(y.dims()[0], 1);
}

#[test]
fn conv3d_neuron_faults_use_output_depth() {
    let model = c3d(&cfg());
    let mut wrapper =
        Ptfiwrap::new(&model, scenario(InjectionTarget::Neurons), &cfg().input_dims(1)).unwrap();
    // neuron coordinates live in the rank-5 output [n, c, d, h, w]
    let mut saw_nonzero_depth = false;
    for (i, r) in wrapper.fault_matrix().records.iter().enumerate() {
        let t = &wrapper.targets()[r.layer];
        let out = t.output_dims.as_ref().expect("shape-inferred");
        assert_eq!(out.len(), 5, "record {i}");
        let d = r.depth.expect("conv3d neuron faults must carry depth");
        assert!(d < out[2]);
        saw_nonzero_depth |= d > 0;
    }
    assert!(saw_nonzero_depth, "over 30 samples some depth must be nonzero");

    // the hook applies at the exact coordinate
    let fm = wrapper.next_faulty_model().unwrap();
    fm.forward(&Tensor::ones(&cfg().input_dims(1))).unwrap();
    assert_eq!(fm.applied_faults().len(), 1);
    assert_eq!(fm.skipped_faults(), 0);
}

#[test]
fn conv3d_fault_matrix_persists_depth() {
    let model = c3d(&cfg());
    let wrapper =
        Ptfiwrap::new(&model, scenario(InjectionTarget::Weights), &cfg().input_dims(1)).unwrap();
    let dir = std::env::temp_dir().join("alfi_it_conv3d");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("faults3d.bin");
    save_fault_matrix(wrapper.fault_matrix(), &path).unwrap();
    let back = load_fault_matrix(&path).unwrap();
    assert_eq!(&back, wrapper.fault_matrix());
    assert!(back.records.iter().all(|r| r.depth.is_some()));
}
