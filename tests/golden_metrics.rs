//! Golden-file lockdown of the deterministic metrics subset.
//!
//! A campaign run with a fresh [`Registry`] attached publishes two
//! kinds of series: deterministic counters (scopes, items, injections
//! per layer, outcome classes, non-finite tallies — functions of the
//! scenario alone) and runtime series (scope-latency histogram,
//! wall-clock driven). `Snapshot::render_deterministic` renders only
//! the former, and this test pins that text under
//! `tests/golden/metrics/` — byte-identical for any thread count,
//! because counter increments commute.
//!
//! To bless new goldens after an intentional metric change:
//!
//! ```text
//! ALFI_REGEN_GOLDEN=1 cargo test --test golden_metrics
//! ```

use alfi::core::campaign::{ImgClassCampaign, RunConfig};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::metrics::Registry;
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden").join("metrics")
}

fn regen() -> bool {
    std::env::var_os("ALFI_REGEN_GOLDEN").is_some()
}

fn assert_golden(name: &str, actual: &str, context: &str) {
    let path = golden_dir().join(name);
    if regen() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("[golden] regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run ALFI_REGEN_GOLDEN=1 cargo test --test golden_metrics",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for metrics/{name} ({context}) — \
         intentional metric changes need ALFI_REGEN_GOLDEN=1"
    );
}

fn scenario() -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = 4;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 0x7124CE;
    s
}

fn campaign() -> ImgClassCampaign {
    let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 7, ..ModelConfig::default() };
    let ds = ClassificationDataset::new(4, mcfg.num_classes, 3, 16, 13);
    let loader = ClassificationLoader::new(ds, 1);
    ImgClassCampaign::new(alexnet(&mcfg), scenario(), loader)
}

/// Runs the golden campaign with a private registry attached and
/// returns the deterministic Prometheus-text subset.
fn deterministic_metrics(threads: usize) -> String {
    let registry = Registry::new();
    campaign()
        .run_with(&RunConfig::new().threads(threads).metrics(registry.clone()))
        .unwrap();
    registry.snapshot().render_deterministic()
}

#[test]
fn deterministic_metrics_match_golden() {
    assert_golden("metrics.prom", &deterministic_metrics(1), "sequential metered run");
}

#[test]
fn deterministic_metrics_are_byte_identical_across_thread_counts() {
    let seq = deterministic_metrics(1);
    for threads in [2usize, 4, 7] {
        assert_eq!(
            seq,
            deterministic_metrics(threads),
            "deterministic metric subset must be byte-identical at {threads} threads"
        );
    }
}

#[test]
fn runtime_series_stay_out_of_the_deterministic_render() {
    let registry = Registry::new();
    campaign().run_with(&RunConfig::new().metrics(registry.clone())).unwrap();
    let snap = registry.snapshot();
    let full = snap.render();
    let det = snap.render_deterministic();
    assert!(
        full.contains("alfi_engine_scope_seconds_bucket"),
        "full render includes the wall-clock scope histogram"
    );
    assert!(
        !det.contains("alfi_engine_scope_seconds"),
        "wall-clock series must never reach the golden-eligible subset"
    );
}

#[test]
fn saved_metrics_file_matches_live_registry() {
    let registry = Registry::new();
    let dir = std::env::temp_dir().join("alfi_it_golden_metrics_save");
    let _ = std::fs::remove_dir_all(&dir);
    campaign()
        .run_with(&RunConfig::new().metrics(registry.clone()).save_dir(&dir))
        .unwrap();
    let on_disk = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
    assert_eq!(on_disk, registry.snapshot().render());
    let _ = std::fs::remove_dir_all(&dir);
}
