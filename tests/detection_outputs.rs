//! Integration test: the Fig. 3 object-detection output contract.
//!
//! A detection campaign must emit three output sets — (a) COCO ground
//! truth + scenario meta, (b) per-pass intermediate detection JSONs,
//! (c) metric summary — all parseable, mutually consistent, and
//! sufficient to recompute the KPIs offline.

use alfi::core::campaign::{ObjDetCampaign, RunConfig};
use alfi::datasets::{CocoGroundTruth, DetectionDataset, DetectionLoader};
use alfi::eval::{ivmod_kpis, read_predictions, write_detection_outputs, DetectionSummary};
use alfi::nn::detection::{Detector, DetectorConfig, FrcnnTwoStage, RetinaAnchor, YoloGrid};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};

fn scenario(n: usize) -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = n;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 5;
    s
}

#[test]
fn fig3_three_output_sets_are_complete_and_consistent() {
    let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
    let mut det = YoloGrid::new(&dcfg);
    let ds = DetectionDataset::new(6, dcfg.num_classes, 3, 32, 1);
    let gt = ds.coco_ground_truth();
    let loader = DetectionLoader::new(ds, 1);
    let result = ObjDetCampaign::new(&mut det, scenario(6), loader).run_with(&RunConfig::default()).unwrap();

    let dir = std::env::temp_dir().join("alfi_it_fig3");
    let _ = std::fs::remove_dir_all(&dir);
    let summary = write_detection_outputs(&result, &gt, dcfg.num_classes, 0.5, &dir).unwrap();

    // Set (a): ground truth + meta.
    let gt_text = std::fs::read_to_string(dir.join("ground_truth.json")).unwrap();
    let gt_back = CocoGroundTruth::from_json(&gt_text).unwrap();
    assert_eq!(gt_back.images.len(), 6);
    assert!(!gt_back.annotations.is_empty());
    assert!(dir.join("scenario.yml").exists());
    assert!(dir.join("faults.bin").exists());
    assert!(dir.join("trace.bin").exists());

    // Set (b): intermediate per-pass results, aligned by image id.
    let orig = read_predictions(dir.join("detections_orig.json")).unwrap();
    let corr = read_predictions(dir.join("detections_corr.json")).unwrap();
    assert_eq!(orig.len(), 6);
    assert_eq!(corr.len(), 6);
    for (o, c) in orig.iter().zip(corr.iter()) {
        assert_eq!(o.image_id, c.image_id);
    }

    // Set (c): metrics parse and match an offline recomputation.
    let text = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
    let parsed: DetectionSummary =
        alfi_serde::FromJson::from_json(&alfi_serde::Json::parse(&text).unwrap()).unwrap();
    assert_eq!(parsed, summary);
    let recomputed = ivmod_kpis(&result.rows, 0.5);
    assert_eq!(parsed.ivmod, recomputed);
}

#[test]
fn all_three_detector_families_run_campaigns() {
    for which in ["yolo", "retina", "frcnn"] {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let ds = DetectionDataset::new(3, dcfg.num_classes, 3, 32, 2);
        let loader = DetectionLoader::new(ds, 1);
        let s = scenario(3);
        let rows = match which {
            "yolo" => {
                let mut d = YoloGrid::new(&dcfg);
                ObjDetCampaign::new(&mut d, s, loader).run_with(&RunConfig::default()).unwrap().rows
            }
            "retina" => {
                let mut d = RetinaAnchor::new(&dcfg);
                ObjDetCampaign::new(&mut d, s, loader).run_with(&RunConfig::default()).unwrap().rows
            }
            _ => {
                let mut d = FrcnnTwoStage::new(&dcfg);
                ObjDetCampaign::new(&mut d, s, loader).run_with(&RunConfig::default()).unwrap().rows
            }
        };
        assert_eq!(rows.len(), 3, "{which}");
        for row in &rows {
            assert_eq!(row.faults.len(), 1, "{which}: fault applied and logged");
        }
    }
}

#[test]
fn frcnn_faults_span_both_networks() {
    // The two-stage detector exposes backbone + head; a long campaign
    // with uniform layer selection should hit layers of both.
    let dcfg = DetectorConfig {
        input_hw: 32,
        width_mult: 0.125,
        score_thresh: 0.2,
        ..DetectorConfig::default()
    };
    let mut det = FrcnnTwoStage::new(&dcfg);
    let backbone_layers = det.networks()[0].injectable_layers(None, None).unwrap().len();
    let total_layers: usize =
        det.networks().iter().map(|n| n.injectable_layers(None, None).unwrap().len()).sum();
    assert!(total_layers > backbone_layers, "head must contribute layers");

    let ds = DetectionDataset::new(40, dcfg.num_classes, 3, 32, 2);
    let loader = DetectionLoader::new(ds, 1);
    let mut s = scenario(40);
    s.weighted_layer_selection = false;
    let result = ObjDetCampaign::new(&mut det, s, loader).run_with(&RunConfig::default()).unwrap();
    let mut hit_backbone = false;
    let mut hit_head = false;
    for row in &result.rows {
        for f in &row.faults {
            if f.record.layer < backbone_layers {
                hit_backbone = true;
            } else {
                hit_head = true;
            }
        }
    }
    assert!(hit_backbone && hit_head, "faults must reach both stages");
}

#[test]
fn exponent_faults_cause_some_detection_sdes() {
    // Shape check for Fig. 2b: a reasonable fraction of single
    // exponent-bit weight faults visibly changes the detection set.
    let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.25, ..DetectorConfig::default() };
    let mut det = YoloGrid::new(&dcfg);
    let ds = DetectionDataset::new(30, dcfg.num_classes, 3, 32, 4);
    let loader = DetectionLoader::new(ds, 1);
    let result = ObjDetCampaign::new(&mut det, scenario(30), loader).run_with(&RunConfig::default()).unwrap();
    let k = ivmod_kpis(&result.rows, 0.5);
    let corrupted = k.ivmod_sde.value + k.ivmod_due.value;
    assert!(corrupted > 0.0, "30 exponent faults should corrupt at least one image");
    assert!(k.ivmod_sde.value < 1.0, "not every fault should corrupt (masking exists)");
}
