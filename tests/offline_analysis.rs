//! Integration test: the offline post-processing loop — persist a
//! campaign's outputs, reload them from disk (CSV + binary trace), and
//! recompute the paper's layer-wise / bit-wise breakdowns from the
//! reloaded artifacts alone.

use alfi::core::campaign::{CsvVariant, ImgClassCampaign, RunConfig};
use alfi::core::RunTrace;
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::eval::{
    flip_direction_stats, outcomes_by_bit_field, outcomes_by_layer, read_classification_csv,
    SdeCriterion,
};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultCount, FaultMode, InjectionTarget, Scenario};

#[test]
fn persisted_outputs_support_full_offline_analysis() {
    let mcfg = ModelConfig { input_hw: 16, width_mult: 0.125, seed: 3, ..ModelConfig::default() };
    let mut s = Scenario::default();
    s.dataset_size = 20;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::any_bit_flip();
    s.faults_per_image = FaultCount::Fixed(2);
    s.seed = 77;
    let ds = ClassificationDataset::new(20, mcfg.num_classes, 3, 16, 4);
    let loader = ClassificationLoader::new(ds, 1);
    let result = ImgClassCampaign::new(alexnet(&mcfg), s, loader).run_with(&RunConfig::default()).unwrap();

    let dir = std::env::temp_dir().join("alfi_it_offline");
    let _ = std::fs::remove_dir_all(&dir);
    result.save_outputs(&dir).unwrap();

    // (1) CSV reload: row identities and fault counts survive.
    let rows = read_classification_csv(dir.join("results_corr.csv")).unwrap();
    assert_eq!(rows.len(), 20);
    for (csv_row, mem_row) in rows.iter().zip(result.rows.iter()) {
        assert_eq!(csv_row.image_id, mem_row.image_id);
        assert_eq!(csv_row.fault_layers.len(), 2);
        assert_eq!(csv_row.top5[0].0, mem_row.corr_top5[0].0);
    }

    // (2) Trace reload: every applied fault is recoverable bit-exactly.
    let trace = RunTrace::load(dir.join("trace.bin")).unwrap();
    assert_eq!(trace.entries.len(), 40); // 20 images * 2 faults
    let in_memory: Vec<_> = result.rows.iter().flat_map(|r| r.faults.iter()).collect();
    for (t, m) in trace.entries.iter().zip(in_memory) {
        assert_eq!(t.applied.record, m.record);
        assert_eq!(t.applied.corrupted.to_bits(), m.corrupted.to_bits());
    }

    // (3) Breakdowns computed from the in-memory rows agree with the
    // totals recoverable from the CSV (same fault layer multiset).
    let by_layer = outcomes_by_layer(&result.rows, SdeCriterion::Top1Mismatch);
    let total_from_breakdown: usize = by_layer.values().map(|c| c.total()).sum();
    assert_eq!(total_from_breakdown, 40);
    let mut csv_layer_counts = std::collections::BTreeMap::new();
    for row in &rows {
        for &l in &row.fault_layers {
            *csv_layer_counts.entry(l).or_insert(0usize) += 1;
        }
    }
    for (layer, counts) in &by_layer {
        assert_eq!(csv_layer_counts.get(layer), Some(&counts.total()), "layer {layer}");
    }

    // (4) Bit-field and direction breakdowns cover every bit-flip fault.
    let by_field = outcomes_by_bit_field(&result.rows, SdeCriterion::Top1Mismatch);
    let field_total: usize = by_field.values().map(|c| c.total()).sum();
    assert_eq!(field_total, 40, "all faults were bit flips");
    let dirs = flip_direction_stats(&result.rows, SdeCriterion::Top1Mismatch);
    assert_eq!(dirs.zero_to_one.total() + dirs.one_to_zero.total(), 40);

    // (5) The original (fault-free) CSV reports no faults at all — the
    // separate-file contract for fault-free outputs.
    let orig_csv = result.to_csv(CsvVariant::Original);
    let orig_rows =
        alfi::eval::parse_classification_csv(&orig_csv).unwrap();
    // the original run shares rows with faults listed (locations apply to
    // the corrupted pass) but its top-5 must equal the in-memory orig.
    for (csv_row, mem_row) in orig_rows.iter().zip(result.rows.iter()) {
        assert_eq!(csv_row.top5[0].0, mem_row.orig_top5[0].0);
    }
}
