//! End-to-end check of the live `/metrics` endpoint: a campaign run
//! with `metrics_addr` set serves valid Prometheus text over plain
//! `std::net` HTTP, during and after the run, with no external
//! dependencies anywhere in the chain.

use alfi::core::campaign::{ImgClassCampaign, RunConfig};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::metrics::Registry;
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
use std::io::{Read, Write};
use std::net::TcpStream;

fn campaign() -> ImgClassCampaign {
    let mut s = Scenario::default();
    s.dataset_size = 4;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 0x7124CE;
    let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 7, ..ModelConfig::default() };
    let ds = ClassificationDataset::new(4, mcfg.num_classes, 3, 16, 13);
    let loader = ClassificationLoader::new(ds, 1);
    ImgClassCampaign::new(alexnet(&mcfg), s, loader)
}

fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn campaign_run_serves_prometheus_text_on_metrics_addr() {
    // An explicit registry plus `metrics_addr` — the engine binds the
    // endpoint itself; `serve_once` keeps it up for the process
    // lifetime, so scraping after `run_with` returns sees the final
    // counters (exactly what the CI smoke test does via
    // ALFI_METRICS_LINGER_MS).
    let registry = Registry::new();
    campaign()
        .run_with(&RunConfig::new().metrics(registry.clone()).metrics_addr("127.0.0.1:0"))
        .unwrap();
    // Port 0 let the OS pick; recover the bound address by re-binding
    // the same logical address through serve_once's keyed registry.
    let addr = alfi::metrics::serve_once("127.0.0.1:0", &registry).unwrap();

    let response = scrape(addr);
    let (head, body) = response.split_once("\r\n\r\n").expect("HTTP header/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "status line: {head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "Prometheus exposition content type: {head}"
    );
    assert!(body.contains("# TYPE alfi_engine_scopes_total counter"), "body:\n{body}");
    assert!(body.contains("alfi_engine_scopes_total 4"), "4 per-image scopes ran:\n{body}");
    assert!(
        body.contains("alfi_campaign_outcomes_total{outcome="),
        "labeled outcome series present:\n{body}"
    );

    // Unknown paths and methods degrade gracefully.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
}

#[test]
fn watchdog_surfaces_health_in_trace_summary() {
    use alfi::metrics::HealthPolicy;
    use alfi::trace::Recorder;
    use std::time::Duration;

    // Rate ceilings of zero with a classification minimum of one trip
    // on the first classified SDC/DUE row; this campaign
    // deterministically yields one SDC (see the golden metrics pin).
    // The watchdog's final stop() sample guarantees the breach is
    // observed even when the run finishes between samples.
    let policy = HealthPolicy {
        interval: Duration::from_millis(5),
        stall_after: None,
        max_due_rate: Some(0.0),
        max_sdc_rate: Some(0.0),
        min_classified: 1,
        ..HealthPolicy::default()
    };
    let registry = Registry::new();
    let rec = Recorder::new();
    campaign()
        .run_with(
            &RunConfig::new().metrics(registry.clone()).health(policy).recorder(rec.clone()),
        )
        .unwrap();

    let snap = registry.snapshot();
    assert_eq!(
        snap.counter_labeled("alfi_campaign_outcomes_total", "sdc"),
        Some(1),
        "the pinned campaign produces exactly one SDC row"
    );
    let summary = rec.summary();
    assert!(
        summary.health.iter().any(|h| h.contains("SDC rate")),
        "health events reach TraceSummary: {:?}",
        summary.health
    );
    assert!(
        snap.counter_sum("alfi_health_events_total") > 0,
        "health events are themselves counted"
    );
    assert!(summary.render().contains("health "), "render surfaces health lines");
}
