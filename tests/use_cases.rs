//! Integration tests for the paper's §V experiment use cases:
//! layer iteration (2a), fault-count escalation (2b), neuron/weight
//! switching (2c) and bit-position sweeps (2d), plus the PyTorchFI-style
//! baseline comparison.

use alfi::core::baseline::AdHocInjector;
use alfi::core::{FaultValue, Ptfiwrap};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultCount, FaultMode, InjectionTarget, Scenario};
use alfi::tensor::Tensor;

fn mcfg() -> ModelConfig {
    ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 13, ..ModelConfig::default() }
}

fn base_scenario() -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = 4;
    s.injection_target = InjectionTarget::Weights;
    s.seed = 404;
    s
}

#[test]
fn use_case_2a_layer_iteration_pins_faults_to_each_layer() {
    let model = alexnet(&mcfg());
    let mut wrapper = Ptfiwrap::new(&model, base_scenario(), &mcfg().input_dims(1)).unwrap();
    let num_layers = model.injectable_layers(None, None).unwrap().len();
    for layer in 0..num_layers {
        let mut s = wrapper.scenario().clone();
        s.layer_range = Some((layer, layer));
        wrapper.set_scenario(s).unwrap();
        // all generated faults hit exactly the pinned layer (target index
        // 0 in the filtered list)
        assert_eq!(wrapper.targets().len(), 1);
        for record in &wrapper.fault_matrix().records {
            assert_eq!(record.layer, 0);
        }
        // and the pinned target really is layer `layer` of the full list
        let expected = model.injectable_layers(None, None).unwrap()[layer].name.clone();
        assert_eq!(wrapper.targets()[0].name, expected);
    }
}

#[test]
fn use_case_2b_fault_count_escalation_increases_sde() {
    // More simultaneous exponent faults per image => corruption rate must
    // not decrease, and must be substantial at 50 faults.
    let model = alexnet(&mcfg());
    let input = Tensor::ones(&mcfg().input_dims(1));
    let orig_top1 = model.forward(&input).unwrap().batch_item(0).unwrap().argmax();
    let mut rates = Vec::new();
    for k in [1usize, 10, 50] {
        let mut s = base_scenario();
        s.dataset_size = 20;
        s.fault_mode = FaultMode::exponent_bit_flip();
        s.faults_per_image = FaultCount::Fixed(k);
        let mut wrapper = Ptfiwrap::new(&model, s, &mcfg().input_dims(1)).unwrap();
        let mut sde = 0usize;
        let mut total = 0usize;
        while let Ok(fm) = wrapper.next_faulty_model() {
            let out = fm.forward(&input).unwrap();
            let t1 = out.batch_item(0).unwrap().argmax();
            let non_finite = out.has_non_finite();
            if t1 != orig_top1 || non_finite {
                sde += 1;
            }
            total += 1;
        }
        rates.push(sde as f64 / total as f64);
    }
    assert!(rates[2] >= rates[0], "50-fault rate {} < 1-fault rate {}", rates[2], rates[0]);
    assert!(rates[2] > 0.2, "50 simultaneous exponent faults should often corrupt: {rates:?}");
}

#[test]
fn use_case_2c_switching_between_neuron_and_weight_faults() {
    let model = alexnet(&mcfg());
    let mut wrapper = Ptfiwrap::new(&model, base_scenario(), &mcfg().input_dims(1)).unwrap();
    assert_eq!(wrapper.fault_matrix().target, InjectionTarget::Weights);
    let mut s = wrapper.scenario().clone();
    s.injection_target = InjectionTarget::Neurons;
    wrapper.set_scenario(s).unwrap();
    assert_eq!(wrapper.fault_matrix().target, InjectionTarget::Neurons);
    // a neuron-fault model corrupts only during forward
    let fm = wrapper.next_faulty_model().unwrap();
    assert!(fm.applied_faults().is_empty());
    fm.forward(&Tensor::ones(&mcfg().input_dims(1))).unwrap();
    assert_eq!(fm.applied_faults().len(), 1);
}

#[test]
fn use_case_2d_bit_positions_follow_scenario() {
    let model = alexnet(&mcfg());
    for bit in [0u8, 15, 23, 30, 31] {
        let mut s = base_scenario();
        s.fault_mode = FaultMode::BitFlip { bit_range: (bit, bit) };
        let wrapper = Ptfiwrap::new(&model, s, &mcfg().input_dims(1)).unwrap();
        for r in &wrapper.fault_matrix().records {
            assert_eq!(r.value, FaultValue::BitFlip(bit));
        }
    }
}

#[test]
fn exponent_bits_corrupt_more_than_low_mantissa_bits() {
    // The motivating physics: bit 30 faults must produce at least as many
    // SDEs as bit 0 faults, and strictly more over a decent sample.
    let cfg = ModelConfig { input_hw: 16, width_mult: 0.125, seed: 6, ..ModelConfig::default() };
    let model = alexnet(&cfg);
    let input = Tensor::ones(&cfg.input_dims(1));
    let orig_top1 = model.forward(&input).unwrap().batch_item(0).unwrap().argmax();
    let rate_for_bit = |bit: u8| {
        let mut s = base_scenario();
        s.dataset_size = 40;
        s.fault_mode = FaultMode::BitFlip { bit_range: (bit, bit) };
        let mut wrapper = Ptfiwrap::new(&model, s, &cfg.input_dims(1)).unwrap();
        let mut sde = 0usize;
        while let Ok(fm) = wrapper.next_faulty_model() {
            let out = fm.forward(&input).unwrap();
            if out.batch_item(0).unwrap().argmax() != orig_top1 || out.has_non_finite() {
                sde += 1;
            }
        }
        sde
    };
    let high = rate_for_bit(30);
    let low = rate_for_bit(0);
    assert!(high > low, "bit 30 SDEs ({high}) must exceed bit 0 SDEs ({low})");
    assert_eq!(low, 0, "single LSB mantissa flips should be fully masked");
}

#[test]
fn baseline_adhoc_matches_alfi_fault_space_but_not_replayability() {
    let model = alexnet(&mcfg());
    let x = Tensor::ones(&mcfg().input_dims(1));

    // ALFI: two wrappers with the same scenario replay identical faults.
    let s = base_scenario();
    let w1 = Ptfiwrap::new(&model, s.clone(), &mcfg().input_dims(1)).unwrap();
    let w2 = Ptfiwrap::new(&model, s.clone(), &mcfg().input_dims(1)).unwrap();
    assert_eq!(w1.fault_matrix(), w2.fault_matrix());

    // The baseline runs fine but exposes no fault record at all — the
    // absence of a persistable artifact *is* the measured difference.
    let mut adhoc = AdHocInjector::new(&model, s, &mcfg().input_dims(1)).unwrap();
    let out = adhoc.run_once(&model, &x, 1).unwrap();
    assert_eq!(out.dims()[0], 1);
}

#[test]
fn random_positions_cover_many_layers() {
    // §V item 1: random positions throughout the network. With weighted
    // selection over a long run, most layers should be visited.
    let model = alexnet(&mcfg());
    let mut s = base_scenario();
    s.dataset_size = 400;
    let wrapper = Ptfiwrap::new(&model, s, &mcfg().input_dims(1)).unwrap();
    let num_layers = wrapper.targets().len();
    let mut seen = vec![false; num_layers];
    for r in &wrapper.fault_matrix().records {
        seen[r.layer] = true;
    }
    let visited = seen.iter().filter(|&&s| s).count();
    assert!(visited >= num_layers - 2, "visited {visited}/{num_layers} layers");
}
