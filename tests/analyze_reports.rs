//! Determinism and golden lockdown of the `alfi-analyze` reports.
//!
//! The analyzer's contract is that a report is a pure function of a
//! run's deterministic artifacts: byte-identical whether the campaign
//! ran on 1, 2, 4 or 7 pool threads, and identical whether the rows
//! were persisted as CSV or as the columnar binary store. This test
//! runs real classification and ViT campaigns across that whole matrix
//! and compares the rendered `report.json` bytes, pins the report over
//! the checked-in `tests/golden/classification` run as a golden, checks
//! the Chrome-trace export against the trace-event schema, and
//! exercises the end-of-run `--report` engine hook.
//!
//! To bless a new golden report after an intentional format change:
//!
//! ```text
//! ALFI_REGEN_GOLDEN=1 cargo test --test analyze_reports
//! ```

use alfi::analyze::diff::diff_reports;
use alfi::analyze::report::{analyze_dir, write_report_files};
use alfi::analyze::trace_export;
use alfi::analyze::{REPORT_JSON, REPORT_MD};
use alfi::core::campaign::{ImgClassCampaign, RunConfig, VitCampaign};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{ArtifactFormat, FaultMode, InjectionTarget, Scenario, StopPolicy};
use alfi::serde::Json;
use alfi::trace::Recorder;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn scenario(dataset_size: usize, seed: u64) -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = dataset_size;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = seed;
    s
}

fn model_config() -> ModelConfig {
    ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 7, ..ModelConfig::default() }
}

fn loader(s: &Scenario) -> ClassificationLoader {
    let mcfg = model_config();
    let ds = ClassificationDataset::new(s.dataset_size, mcfg.num_classes, 3, 16, 13);
    ClassificationLoader::new(ds, s.batch_size)
}

/// Runs a campaign into a fresh temp dir and returns the rendered
/// report bytes (JSON + Markdown). `vit` switches the model family.
fn run_and_report(
    format: ArtifactFormat,
    threads: usize,
    vit: bool,
    tag: &str,
) -> (String, String) {
    let dir = std::env::temp_dir().join(format!("alfi_it_analyze_{tag}_{threads}"));
    let _ = std::fs::remove_dir_all(&dir);
    let s = scenario(4, 0x601D);
    let cfg = RunConfig::new()
        .threads(threads)
        .recorder(Recorder::new())
        .save_dir(&dir)
        .format(format);
    if vit {
        VitCampaign::tiny(&model_config(), s.clone(), loader(&s)).run_with(&cfg).unwrap();
    } else {
        ImgClassCampaign::new(alexnet(&model_config()), s.clone(), loader(&s))
            .run_with(&cfg)
            .unwrap();
    }
    let report = analyze_dir(&dir).unwrap();
    let out = (report.to_json_string(), report.to_markdown());
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// Reports must be byte-identical across 1/2/4/7 pool threads AND
/// across the CSV and binary row formats, for both model families.
#[test]
fn reports_are_byte_identical_across_threads_and_formats() {
    for vit in [false, true] {
        let family = if vit { "vit" } else { "cls" };
        let baseline = run_and_report(ArtifactFormat::Csv, 1, vit, &format!("{family}_csv"));
        assert!(baseline.0.contains("\"rows\": 4"), "{}", baseline.0);
        for threads in [1usize, 2, 4, 7] {
            let bin =
                run_and_report(ArtifactFormat::Binary, threads, vit, &format!("{family}_bin"));
            assert_eq!(
                baseline.0, bin.0,
                "{family}: report.json from the {threads}-thread binary run diverges from the 1-thread csv run"
            );
            assert_eq!(
                baseline.1, bin.1,
                "{family}: report.md from the {threads}-thread binary run diverges"
            );
        }
    }
}

/// The report over the checked-in `tests/golden/classification` run is
/// fully input-pinned, so its JSON bytes are a golden artifact.
#[test]
fn golden_classification_report_is_pinned() {
    let report = analyze_dir(golden_dir().join("classification")).unwrap();
    let actual = report.to_json_string();
    let path = golden_dir().join("analyze").join("report.json");
    if std::env::var_os("ALFI_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("[golden] regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden report {} ({e}); run ALFI_REGEN_GOLDEN=1 cargo test --test analyze_reports",
            path.display()
        )
    });
    assert_eq!(actual, expected, "report.json over the pinned classification run changed");
}

/// The Chrome-trace export of the pinned trace golden must satisfy the
/// trace-event schema — a top-level `traceEvents` array whose records
/// all carry `name`/`ph`/`pid`/`tid`, with complete (`X`) events
/// carrying integer `ts`/`dur` — and every timestamp must be a replay
/// ordinal (multiple of the tick), never wall clock.
#[test]
fn trace_export_is_valid_ordinal_chrome_trace() {
    let (json, self_time) = trace_export::export_dir(golden_dir().join("trace")).unwrap();
    let parsed = Json::parse(&json).expect("export must be valid JSON");
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms"),
        "{json}"
    );
    let events = parsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert!(!events.is_empty());
    let mut injections = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("every event has ph");
        assert!(matches!(ph, "M" | "X" | "i"), "unexpected phase {ph}");
        assert!(ev.get("pid").and_then(Json::as_int).is_some(), "every event has pid");
        assert!(ev.get("tid").and_then(Json::as_int).is_some(), "every event has tid");
        assert!(ev.get("name").and_then(Json::as_str).is_some(), "every event has name");
        if ph == "X" {
            injections += 1;
            let ts = ev.get("ts").and_then(Json::as_int).expect("complete events have ts");
            assert_eq!(ts % trace_export::TICK_US, 0, "ts {ts} is not a replay ordinal");
            assert_eq!(ev.get("dur").and_then(Json::as_int), Some(trace_export::TICK_US));
        }
    }
    assert!(injections > 0, "the pinned trace has injections");
    assert!(!json.contains("threads"), "the header threads field must not leak");
    assert!(self_time.contains("lane"), "{self_time}");
    // Deterministic: exporting again yields the same bytes.
    let (again, _) = trace_export::export_dir(golden_dir().join("trace")).unwrap();
    assert_eq!(json, again);
}

/// Diffing a run against itself is all-insignificant; diffing two runs
/// with different seeds still renders, and the JSON view parses.
#[test]
fn diff_runs_end_to_end() {
    let dir_a = std::env::temp_dir().join("alfi_it_analyze_diff_a");
    let dir_b = std::env::temp_dir().join("alfi_it_analyze_diff_b");
    for (dir, seed) in [(&dir_a, 0x601Du64), (&dir_b, 0xBEEF)] {
        let _ = std::fs::remove_dir_all(dir);
        let s = scenario(4, seed);
        let cfg = RunConfig::new().save_dir(dir).format(ArtifactFormat::Binary);
        ImgClassCampaign::new(alexnet(&model_config()), s.clone(), loader(&s))
            .run_with(&cfg)
            .unwrap();
    }
    let a = analyze_dir(&dir_a).unwrap();
    let b = analyze_dir(&dir_b).unwrap();

    let self_diff = diff_reports(&a, &a);
    assert_eq!(self_diff.overall.sdc_delta, 0.0);
    assert!(!self_diff.overall.sdc_significant && !self_diff.overall.due_significant);

    let cross = diff_reports(&a, &b);
    let json = Json::parse(&cross.to_json_string()).unwrap();
    assert!(json.get("overall").is_some() && json.get("layers").is_some());
    assert!(cross.to_markdown().contains("overall"));
    // 4-image runs can never separate 95% intervals.
    assert!(!cross.overall.sdc_significant, "tiny runs must not flag significance");

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// `RunConfig::report(true)` (the `--report` flag / scenario `report:`
/// key) must emit `report.json` and `report.md` at finalize through the
/// installed engine hook, and the hook's output must equal a standalone
/// `analyze report` over the same directory.
#[test]
fn engine_hook_writes_reports_at_finalize() {
    alfi::analyze::install_engine_hook();
    let dir = std::env::temp_dir().join("alfi_it_analyze_hook");
    let _ = std::fs::remove_dir_all(&dir);
    let mut s = scenario(4, 0x601D);
    // Exercise the stop-precision section of the hook-generated report.
    s.stop_policy = Some(StopPolicy { half_width: 0.45, ..StopPolicy::default() });
    let cfg = RunConfig::new()
        .recorder(Recorder::new())
        .save_dir(&dir)
        .format(ArtifactFormat::Binary)
        .report(true);
    ImgClassCampaign::new(alexnet(&model_config()), s.clone(), loader(&s))
        .run_with(&cfg)
        .unwrap();

    let json_path = dir.join(REPORT_JSON);
    let md_path = dir.join(REPORT_MD);
    assert!(json_path.is_file(), "hook must write report.json");
    assert!(md_path.is_file(), "hook must write report.md");
    let hook_json = std::fs::read_to_string(&json_path).unwrap();
    let parsed = Json::parse(&hook_json).unwrap();
    assert!(parsed.get("stop").is_some(), "stop-policy runs report achieved precision");

    // Re-analyzing the finished directory reproduces the hook's bytes.
    let standalone = analyze_dir(&dir).unwrap();
    assert_eq!(standalone.to_json_string(), hook_json);
    let out = std::env::temp_dir().join("alfi_it_analyze_hook_out");
    let _ = std::fs::remove_dir_all(&out);
    std::fs::create_dir_all(&out).unwrap();
    write_report_files(&standalone, &out).unwrap();
    assert_eq!(
        std::fs::read_to_string(out.join(REPORT_MD)).unwrap(),
        std::fs::read_to_string(&md_path).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&out);
}

/// A run configured with `report: false` must not write reports even
/// when the scenario asks for them.
#[test]
fn report_opt_out_overrides_the_scenario() {
    let dir = std::env::temp_dir().join("alfi_it_analyze_optout");
    let _ = std::fs::remove_dir_all(&dir);
    let mut s = scenario(4, 0x601D);
    s.report = Some(true);
    let cfg = RunConfig::new().save_dir(&dir).report(false);
    ImgClassCampaign::new(alexnet(&model_config()), s.clone(), loader(&s))
        .run_with(&cfg)
        .unwrap();
    assert!(!dir.join(REPORT_JSON).exists(), "explicit report(false) must win");
    let _ = std::fs::remove_dir_all(&dir);
}
