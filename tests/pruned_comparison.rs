//! Integration test: the "original vs pruned model robustness" use case
//! (§V) — identical fault files applied to both variants.

use alfi::core::campaign::{ImgClassCampaign, RunConfig};
use alfi::core::Ptfiwrap;
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::eval::{classification_kpis, SdeCriterion};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::nn::prune::{magnitude_prune, sparsity};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};

fn mcfg() -> ModelConfig {
    ModelConfig { input_hw: 16, width_mult: 0.125, seed: 8, ..ModelConfig::default() }
}

fn scenario() -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = 20;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 55;
    s
}

#[test]
fn same_fault_matrix_drives_both_variants() {
    let model = alexnet(&mcfg());
    let pruned = magnitude_prune(&model, 0.5).unwrap();
    assert!((sparsity(&pruned) - 0.5).abs() < 0.02);

    // Generate once against the original, replay against the pruned
    // model: locations are identical, only the original values differ
    // (the pruned weight may be 0.0).
    let mut w_orig = Ptfiwrap::new(&model, scenario(), &mcfg().input_dims(1)).unwrap();
    let matrix = w_orig.fault_matrix().clone();
    let mut w_pruned =
        Ptfiwrap::with_fault_matrix(&pruned, scenario(), &mcfg().input_dims(1), matrix).unwrap();

    for _ in 0..5 {
        let fo = w_orig.next_faulty_model().unwrap();
        let fp = w_pruned.next_faulty_model().unwrap();
        let lo = fo.applied_faults();
        let lp = fp.applied_faults();
        assert_eq!(lo[0].record, lp[0].record, "identical fault locations");
    }
}

#[test]
fn pruned_campaign_runs_and_reports_kpis() {
    // The comparison workflow end to end: run the same scenario over
    // both variants and compare SDE rates. (With untrained weights the
    // *direction* of the difference is not asserted — only that both
    // campaigns complete and produce comparable, well-formed KPIs; the
    // framework's job is the comparison machinery.)
    let run = |net| {
        let ds = ClassificationDataset::new(20, mcfg().num_classes, 3, 16, 2);
        let loader = ClassificationLoader::new(ds, 1);
        let result = ImgClassCampaign::new(net, scenario(), loader).run_with(&RunConfig::default()).unwrap();
        classification_kpis(&result.rows, SdeCriterion::Top1Mismatch)
    };
    let model = alexnet(&mcfg());
    let pruned = magnitude_prune(&model, 0.7).unwrap();
    let k_orig = run(model);
    let k_pruned = run(pruned);
    assert_eq!(k_orig.sde.total, 20);
    assert_eq!(k_pruned.sde.total, 20);
    // sanity: rates are valid probabilities with CIs
    for k in [&k_orig, &k_pruned] {
        assert!(k.sde.value <= 1.0 && k.sde.ci_low <= k.sde.ci_high);
    }
}

#[test]
fn faults_on_pruned_zero_weights_resurrect_values() {
    // A single exponent-bit flip on a zeroed (pruned) weight resurrects
    // it to 2^(2^(b-23) - 127): at most 2.0 for bit 30, down to 2^-126
    // for bit 23 — bounded, but nonzero. Pruning therefore does NOT make
    // a weight immune to faults; it only caps the blast radius of a
    // single flip. Mantissa flips on 0.0 only reach denormals.
    use alfi::tensor::bits;
    let zero = 0.0f32;
    assert_eq!(bits::flip_bit(zero, 30), 2.0);
    assert_eq!(bits::flip_bit(zero, 23), f32::from_bits(1 << 23)); // 2^-126
    assert!(bits::flip_bit(zero, 10).abs() < 1.0e-38, "mantissa flip is denormal");
    // Two simultaneous exponent flips compound multiplicatively:
    let double = bits::flip_bits(zero, &[30, 29]);
    assert!(double > 1.0e9, "bits 30+29 give exponent 0b11000000 -> 2^65");
}
