//! Cross-format lockdown of the columnar result store.
//!
//! Runs the same classification campaign with `--format csv` and
//! `--format binary` at several thread counts and checks that the
//! binary store converts back to the exact CSV bytes, that the store
//! file itself is bit-identical across thread counts (and pinned as a
//! golden under `tests/golden/store/`), that point lookups touch at
//! most one block plus the trailing index, and that the columnar
//! encoding stays within the size budget relative to CSV.
//!
//! To bless a new golden store after an intentional format change:
//!
//! ```text
//! ALFI_REGEN_GOLDEN=1 cargo test --test store_formats
//! ```

use alfi::core::campaign::{ImgClassCampaign, RunConfig};
use alfi::core::{store_to_texts, text_to_store, Artifacts, ReplayReader};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{ArtifactFormat, FaultMode, InjectionTarget, Scenario};
use alfi::store::{ColumnSpec, ColumnType, Encoding, RowKey, Schema, StoreWriter, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn golden_store_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("store")
        .join("rows.alfic")
}

fn scenario(dataset_size: usize) -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = dataset_size;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 0x601D;
    s
}

fn campaign(dataset_size: usize) -> ImgClassCampaign {
    let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 7, ..ModelConfig::default() };
    let ds = ClassificationDataset::new(dataset_size, mcfg.num_classes, 3, 16, 13);
    let loader = ClassificationLoader::new(ds, 2);
    ImgClassCampaign::new(alexnet(&mcfg), scenario(dataset_size), loader)
}

/// Runs the campaign with the given format and thread count into a
/// fresh temp dir and returns the row artifacts as `name -> bytes`.
fn run(format: ArtifactFormat, threads: usize, size: usize, tag: &str) -> BTreeMap<String, Vec<u8>> {
    let dir = std::env::temp_dir().join(format!("alfi_it_store_{tag}_{threads}"));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = RunConfig::new().threads(threads).save_dir(&dir).format(format);
    campaign(size).run_with(&cfg).unwrap();
    let a = Artifacts::new(&dir);
    let mut out = BTreeMap::new();
    for path in [a.rows_orig(), a.rows_corr(), a.rows_resil(), a.rows_store()] {
        if path.is_file() {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.insert(name, std::fs::read(&path).unwrap());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// The binary store must convert back to the exact CSV bytes the csv
/// format writes, for the sequential driver and every pooled fan-out,
/// and the store file itself must be bit-identical across all of them
/// (pinned as a golden artifact).
#[test]
fn binary_store_round_trips_to_csv_bytes_at_all_thread_counts() {
    let csv = run(ArtifactFormat::Csv, 1, 4, "csv");
    assert!(csv.contains_key("results_orig.csv") && csv.contains_key("results_corr.csv"));

    let golden = golden_store_path();
    for threads in [1usize, 2, 4, 7] {
        let bin = run(ArtifactFormat::Binary, threads, 4, "bin");
        assert_eq!(bin.len(), 1, "binary format should write only rows.alfic, got {bin:?}");
        let store_bytes = &bin["rows.alfic"];

        // Pin (or check) the golden store with the 1-thread bytes;
        // every other thread count must reproduce them exactly.
        if threads == 1 && std::env::var_os("ALFI_REGEN_GOLDEN").is_some() {
            std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
            std::fs::write(&golden, store_bytes).unwrap();
            eprintln!("[golden] regenerated {}", golden.display());
        }
        let expected = std::fs::read(&golden).unwrap_or_else(|e| {
            panic!(
                "missing golden store {} ({e}); run ALFI_REGEN_GOLDEN=1 cargo test --test store_formats",
                golden.display()
            )
        });
        assert_eq!(
            store_bytes, &expected,
            "rows.alfic from the {threads}-thread run diverges from the golden store"
        );

        // Convert back and compare against the csv-format artifacts.
        let tmp = std::env::temp_dir().join(format!("alfi_it_store_conv_{threads}.alfic"));
        std::fs::write(&tmp, store_bytes).unwrap();
        let texts = store_to_texts(&tmp).unwrap();
        let _ = std::fs::remove_file(&tmp);
        assert_eq!(texts.len(), 2, "classification store without resil converts to two CSVs");
        for (name, text) in &texts {
            assert_eq!(
                text.as_bytes(),
                csv[name].as_slice(),
                "{name} converted from the {threads}-thread store differs from the csv run"
            );
        }
    }
}

/// A point lookup must binary-search the trailing index and decode at
/// most one block — not scan the file.
#[test]
fn lookup_reads_at_most_one_block_plus_index() {
    let path = std::env::temp_dir().join("alfi_it_store_lookup.alfic");
    let _ = std::fs::remove_file(&path);
    let schema = Schema::new(vec![
        ColumnSpec::new("image_id", ColumnType::U64, Encoding::Delta),
        ColumnSpec::new("note", ColumnType::Str, Encoding::Prefix),
    ]);
    let mut w = StoreWriter::create(&path, schema, 8).unwrap();
    for i in 0..64u64 {
        let values = vec![Value::U64(i), Value::Str(format!("row {i}"))];
        w.append(RowKey::new(0, (i / 2) as u32, i), &values).unwrap();
    }
    let stats = w.finish().unwrap();
    assert_eq!(stats.rows, 64);

    let mut r = ReplayReader::open(&path).unwrap();
    assert_eq!(r.reader().block_count(), 8);
    let rows = r.lookup_fault(42).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].0, RowKey::new(0, 21, 42));
    assert_eq!(r.reader().blocks_read(), 1, "a point lookup must decode exactly one block");
    let file_len = std::fs::metadata(&path).unwrap().len();
    assert!(
        r.reader().bytes_read() < file_len / 2,
        "lookup read {} of {} bytes — that is a scan, not an indexed read",
        r.reader().bytes_read(),
        file_len
    );
    let _ = std::fs::remove_file(&path);
}

/// `lookup_fault` must agree with a full scan filtered on the key.
#[test]
fn lookup_matches_scan_filter() {
    let dir = std::env::temp_dir().join("alfi_it_store_scanfilter");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = RunConfig::new().save_dir(&dir).format(ArtifactFormat::Binary);
    campaign(4).run_with(&cfg).unwrap();
    let store = Artifacts::new(&dir).rows_store();

    let all = ReplayReader::open(&store).unwrap().scan().unwrap();
    assert!(!all.is_empty());
    for fault_id in all.iter().map(|(k, _)| k.fault_id).collect::<std::collections::BTreeSet<_>>() {
        let looked = ReplayReader::open(&store).unwrap().lookup_fault(fault_id).unwrap();
        let filtered: Vec<_> =
            all.iter().filter(|(k, _)| k.fault_id == fault_id).cloned().collect();
        assert_eq!(looked, filtered, "lookup/scan disagree for fault {fault_id}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The columnar encoding must stay within the paper-motivated size
/// budget: the store holds both CSV variants in at most 40% of their
/// combined bytes once there are enough rows to amortize the header
/// and index.
#[test]
fn binary_store_is_within_size_budget() {
    let csv = run(ArtifactFormat::Csv, 1, 128, "size_csv");
    let bin = run(ArtifactFormat::Binary, 1, 128, "size_bin");
    let csv_bytes = csv["results_orig.csv"].len() + csv["results_corr.csv"].len();
    let store_bytes = bin["rows.alfic"].len();
    assert!(
        store_bytes * 100 <= csv_bytes * 40,
        "rows.alfic is {store_bytes} bytes, over 40% of the {csv_bytes}-byte CSV pair"
    );
}

/// The generic text kind must reproduce a pinned CSV golden
/// byte-for-byte through a store round trip.
#[test]
fn csv_golden_round_trips_through_generic_store() {
    let golden = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("classification")
        .join("results_orig.csv");
    let text = std::fs::read_to_string(&golden).unwrap();
    let out = std::env::temp_dir().join("alfi_it_store_generic.alfic");
    let _ = std::fs::remove_file(&out);
    text_to_store(&text, "results_orig.csv", &out).unwrap();
    let texts = store_to_texts(&out).unwrap();
    let _ = std::fs::remove_file(&out);
    assert_eq!(texts.len(), 1);
    assert_eq!(texts[0].0, "results_orig.csv");
    assert_eq!(texts[0].1, text, "generic csv kind must invert byte-for-byte");
}
