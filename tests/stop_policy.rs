//! End-to-end lockdown of statistical early-stop campaigns.
//!
//! Four angles, all through the public `run_with` API:
//!
//! 1. the full `events.jsonl` of a stopped campaign — including its
//!    `stop` decision records — is golden-pinned under
//!    `tests/golden/trace/` (bless with `ALFI_REGEN_GOLDEN=1`);
//! 2. that log is byte-identical at 1/2/4/7 threads (modulo the
//!    header's recorded thread count), proving stop decisions never
//!    depend on the pool schedule;
//! 3. the validation-efficiency claim: a campaign-scope policy reaches
//!    its configured precision executing at most 25 % of the fault
//!    matrix, and the trace summary reports achieved ≤ requested;
//! 4. per-layer strata retire individually, skipped scopes are
//!    tallied, and the whole-campaign totals stay consistent.

use alfi::core::campaign::{ImgClassCampaign, RunConfig};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{
    CiMethod, FaultMode, InjectionTarget, Scenario, StopPolicy, StopScope,
};
use alfi::trace::{Recorder, StopVerdict};
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden").join("trace")
}

fn regen() -> bool {
    std::env::var_os("ALFI_REGEN_GOLDEN").is_some()
}

fn assert_golden(name: &str, actual: &str, context: &str) {
    let path = golden_dir().join(name);
    if regen() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("[golden] regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run ALFI_REGEN_GOLDEN=1 cargo test --test stop_policy",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for trace/{name} ({context}) — \
         intentional schema changes need ALFI_REGEN_GOLDEN=1"
    );
}

fn scenario(dataset_size: usize) -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = dataset_size;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 0x57A7;
    s
}

fn campaign(dataset_size: usize) -> ImgClassCampaign {
    let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 7, ..ModelConfig::default() };
    let ds = ClassificationDataset::new(dataset_size, mcfg.num_classes, 3, 16, 13);
    let loader = ClassificationLoader::new(ds, 1);
    ImgClassCampaign::new(alexnet(&mcfg), scenario(dataset_size), loader)
}

/// A policy loose enough to stop a small all-but-certain campaign at
/// an early boundary: Wilson half-width 0.25 is reachable at 16
/// samples for any rate.
fn golden_policy() -> StopPolicy {
    StopPolicy {
        half_width: 0.25,
        confidence: 0.95,
        min_samples: 16,
        check_every: 8,
        scope: StopScope::Campaign,
        method: CiMethod::Wilson,
    }
}

fn stopped_event_log(threads: usize) -> String {
    let rec = Recorder::new();
    let cfg = RunConfig::new().threads(threads).recorder(rec.clone()).stop_policy(golden_policy());
    campaign(64).run_with(&cfg).unwrap();
    rec.events_jsonl()
}

/// Blanks the header's recorded `threads` field — the only part of the
/// log that legitimately differs between thread counts.
fn normalize_threads(log: &str) -> String {
    let mut lines: Vec<String> = log.lines().map(str::to_string).collect();
    if let Some(header) = lines.first_mut() {
        assert!(header.contains("\"event\":\"header\""), "first record must be the header");
        let start = header.find("\"threads\":").expect("header records the thread count");
        let rest = &header[start + "\"threads\":".len()..];
        let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
        header.replace_range(start.."\"threads\":".len() + start + end, "\"threads\":N");
    }
    lines.join("\n") + "\n"
}

#[test]
fn stopped_event_log_matches_golden() {
    let log = stopped_event_log(1);
    assert!(log.contains("\"event\":\"stop\""), "stopped run must record its decision");
    assert_golden("stop_events.jsonl", &log, "sequential early-stopped run");
}

#[test]
fn stop_decisions_are_byte_identical_across_thread_counts() {
    let seq = normalize_threads(&stopped_event_log(1));
    for threads in [2usize, 4, 7] {
        let par = normalize_threads(&stopped_event_log(threads));
        assert_eq!(
            seq, par,
            "stopped event log must be byte-identical at {threads} threads (modulo the \
             header's recorded thread count)"
        );
    }
}

#[test]
fn campaign_reaches_precision_within_quarter_of_the_matrix() {
    // Wilson half-width 0.15 at 95 % needs at most ~48 samples even at
    // the worst-case rate of 0.5, so a 256-slot matrix must stop by the
    // 48-scope boundary — well under the 25 % efficiency target the
    // paper's validation argument rests on.
    let policy = StopPolicy {
        half_width: 0.15,
        confidence: 0.95,
        min_samples: 16,
        check_every: 16,
        scope: StopScope::Campaign,
        method: CiMethod::Wilson,
    };
    let rec = Recorder::new();
    let cfg = RunConfig::new().recorder(rec.clone()).stop_policy(policy);
    let result = campaign(256).run_with(&cfg).unwrap();

    let summary = rec.summary();
    let outcome = summary.stop.expect("stop outcome surfaces in the trace summary");
    assert!(outcome.stopped_early, "the policy must truncate this run");
    assert_eq!(outcome.planned_scopes, 256);
    assert_eq!(outcome.executed_scopes as usize, result.rows.len());
    assert!(
        outcome.executed_scopes * 4 <= outcome.planned_scopes,
        "executed {} of {} scopes — early stop must cover <= 25% of the matrix",
        outcome.executed_scopes,
        outcome.planned_scopes
    );
    assert!(
        outcome.achieved_sdc_half_width <= outcome.requested_half_width
            && outcome.achieved_due_half_width <= outcome.requested_half_width,
        "achieved precision (sdc ±{}, due ±{}) must meet the ±{} request",
        outcome.achieved_sdc_half_width,
        outcome.achieved_due_half_width,
        outcome.requested_half_width
    );
    let rendered = summary.render();
    assert!(rendered.contains("stopped early"), "summary render: {rendered}");
}

#[test]
fn per_layer_strata_retire_individually() {
    let policy = StopPolicy {
        half_width: 0.35,
        confidence: 0.9,
        min_samples: 4,
        check_every: 8,
        scope: StopScope::PerLayer,
        method: CiMethod::ClopperPearson,
    };
    let rec = Recorder::new();
    let cfg = RunConfig::new().recorder(rec.clone()).stop_policy(policy);
    let result = campaign(160).run_with(&cfg).unwrap();

    let events = rec.stop_events();
    let retired: Vec<usize> = events
        .iter()
        .filter(|e| e.verdict == StopVerdict::RetireStratum)
        .map(|e| e.stratum.expect("retire events carry their stratum"))
        .collect();
    assert!(!retired.is_empty(), "at least one stratum must retire under a loose target");
    let unique: std::collections::BTreeSet<usize> = retired.iter().copied().collect();
    assert_eq!(unique.len(), retired.len(), "no stratum retires twice");
    for event in &events {
        assert_eq!(event.scope_index % 8, 0, "decisions fire only at check_every boundaries");
        assert!(event.samples >= 4 || event.verdict == StopVerdict::StopCampaign);
    }

    let outcome = rec.summary().stop.expect("per-layer runs report an outcome too");
    assert_eq!(outcome.executed_scopes as usize, result.rows.len());
    assert!(
        outcome.executed_scopes + outcome.skipped_scopes <= outcome.planned_scopes,
        "armed scopes cannot exceed the matrix budget"
    );
    if outcome.stopped_early {
        assert_eq!(
            events.last().map(|e| e.verdict),
            Some(StopVerdict::StopCampaign),
            "a stopped per-layer run ends with a whole-campaign decision"
        );
    }
}

#[test]
fn per_layer_decisions_match_across_thread_counts() {
    let policy = StopPolicy {
        half_width: 0.35,
        confidence: 0.9,
        min_samples: 4,
        check_every: 8,
        scope: StopScope::PerLayer,
        method: CiMethod::Wilson,
    };
    let run = |threads: usize| {
        let rec = Recorder::new();
        let cfg =
            RunConfig::new().threads(threads).recorder(rec.clone()).stop_policy(policy);
        campaign(96).run_with(&cfg).unwrap();
        normalize_threads(&rec.events_jsonl())
    };
    let seq = run(1);
    for threads in [2usize, 7] {
        assert_eq!(seq, run(threads), "per-layer decisions must not depend on threads");
    }
}
