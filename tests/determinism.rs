//! End-to-end determinism: the hermetic stack (alfi-rng sampling,
//! in-tree persistence, campaign drivers) must make every run a pure
//! function of the scenario seed. Two campaigns built independently
//! from the same scenario have to produce byte-identical fault files
//! and byte-identical result CSVs — the property the paper's fault
//! re-use workflow ("the identical set of faults can be utilized
//! across various experiments", §IV-B) depends on.

use alfi::core::campaign::{CsvVariant, ImgClassCampaign, ObjDetCampaign, RunConfig};
use alfi::core::encode_fault_matrix;
use alfi::datasets::{ClassificationDataset, ClassificationLoader, DetectionDataset, DetectionLoader};
use alfi::eval::write_detection_outputs;
use alfi::nn::detection::{DetectorConfig, YoloGrid};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultMode, InjectionPolicy, InjectionTarget, Scenario};

fn model_cfg() -> ModelConfig {
    ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 7, ..ModelConfig::default() }
}

fn scenario(target: InjectionTarget) -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = 6;
    s.injection_target = target;
    s.injection_policy = InjectionPolicy::PerImage;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 0xDE7E_2019;
    s
}

fn run_once(target: InjectionTarget) -> (Vec<u8>, String, String) {
    let mcfg = model_cfg();
    let ds = ClassificationDataset::new(6, mcfg.num_classes, 3, 16, 11);
    let loader = ClassificationLoader::new(ds, 2);
    let result =
        ImgClassCampaign::new(alexnet(&mcfg), scenario(target), loader).run_with(&RunConfig::default()).unwrap();
    (
        encode_fault_matrix(&result.fault_matrix),
        result.to_csv(CsvVariant::Original),
        result.to_csv(CsvVariant::Corrupted),
    )
}

/// Weight-fault campaigns are byte-reproducible from the seed alone.
#[test]
fn weight_campaign_is_byte_reproducible() {
    let (bytes_a, orig_a, corr_a) = run_once(InjectionTarget::Weights);
    let (bytes_b, orig_b, corr_b) = run_once(InjectionTarget::Weights);
    assert_eq!(bytes_a, bytes_b, "fault-matrix bytes must be identical");
    assert_eq!(orig_a, orig_b, "fault-free CSV must be identical");
    assert_eq!(corr_a, corr_b, "corrupted CSV must be identical");
}

/// Neuron-fault campaigns are byte-reproducible too (separate sampling
/// path: output coordinates instead of weight coordinates).
#[test]
fn neuron_campaign_is_byte_reproducible() {
    let (bytes_a, orig_a, corr_a) = run_once(InjectionTarget::Neurons);
    let (bytes_b, orig_b, corr_b) = run_once(InjectionTarget::Neurons);
    assert_eq!(bytes_a, bytes_b);
    assert_eq!(orig_a, orig_b);
    assert_eq!(corr_a, corr_b);
}

/// The std::thread::scope parallel driver produces the same CSV bytes
/// as the sequential driver, for any worker count.
#[test]
fn parallel_campaign_matches_sequential_bytes() {
    let mcfg = model_cfg();
    let ds = ClassificationDataset::new(6, mcfg.num_classes, 3, 16, 11);

    let seq = ImgClassCampaign::new(
        alexnet(&mcfg),
        scenario(InjectionTarget::Weights),
        ClassificationLoader::new(ds.clone(), 2),
    )
    .run_with(&RunConfig::default())
    .unwrap();
    for threads in [1, 3] {
        let par = ImgClassCampaign::new(
            alexnet(&mcfg),
            scenario(InjectionTarget::Weights),
            ClassificationLoader::new(ds.clone(), 2),
        )
        .run_with(&RunConfig::new().threads(threads))
        .unwrap();
        assert_eq!(
            encode_fault_matrix(&seq.fault_matrix),
            encode_fault_matrix(&par.fault_matrix)
        );
        assert_eq!(
            seq.to_csv(CsvVariant::Corrupted),
            par.to_csv(CsvVariant::Corrupted),
            "{threads}-thread run must match sequential"
        );
    }
}

/// A multi-resolution (per-layer rate map) scenario is just as
/// thread-count-independent as the flat one: the resolved layer plans
/// feed the same slot-cursor sampling, so a CNN campaign with rate,
/// mode and channel overrides produces identical fault-matrix bytes
/// and CSVs at 1/2/4/7 threads.
#[test]
fn rate_map_campaign_matches_sequential_bytes_at_all_thread_counts() {
    use alfi::scenario::LayerOverride;
    let mcfg = model_cfg();
    let ds = ClassificationDataset::new(6, mcfg.num_classes, 3, 16, 11);
    let scenario = || {
        let mut s = scenario(InjectionTarget::Weights);
        s.layer_overrides = std::collections::BTreeMap::from([
            ("0".to_string(), LayerOverride { rate: Some(0.4), ..Default::default() }),
            (
                "2-3".to_string(),
                LayerOverride {
                    mode: Some(FaultMode::QuantStep { bits: 8, amax: 4.0, bit_range: (0, 7) }),
                    ..Default::default()
                },
            ),
            ("5".to_string(), LayerOverride { channel_range: Some((0, 0)), ..Default::default() }),
        ]);
        s
    };

    let seq = ImgClassCampaign::new(
        alexnet(&mcfg),
        scenario(),
        ClassificationLoader::new(ds.clone(), 2),
    )
    .run_with(&RunConfig::default())
    .unwrap();
    for threads in [1usize, 2, 4, 7] {
        let par = ImgClassCampaign::new(
            alexnet(&mcfg),
            scenario(),
            ClassificationLoader::new(ds.clone(), 2),
        )
        .run_with(&RunConfig::new().threads(threads))
        .unwrap();
        assert_eq!(
            encode_fault_matrix(&seq.fault_matrix),
            encode_fault_matrix(&par.fault_matrix),
            "{threads}-thread rate-map fault matrix must match sequential"
        );
        assert_eq!(
            seq.to_csv(CsvVariant::Original),
            par.to_csv(CsvVariant::Original),
            "{threads}-thread rate-map fault-free CSV must match sequential"
        );
        assert_eq!(
            seq.to_csv(CsvVariant::Corrupted),
            par.to_csv(CsvVariant::Corrupted),
            "{threads}-thread rate-map corrupted CSV must match sequential"
        );
    }
}

/// The pool-backed parallel detection campaign writes artifacts that
/// are byte-identical to the sequential driver's at 1, 2 and 7
/// threads — fault file, trace, detection JSONs and IVMOD metrics.
#[test]
fn parallel_detection_artifacts_match_sequential_bytes() {
    const FILES: [&str; 7] = [
        "faults.bin",
        "trace.bin",
        "ground_truth.json",
        "detections_orig.json",
        "detections_corr.json",
        "metrics.json",
        "scenario.yml",
    ];
    let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
    let mut s = scenario(InjectionTarget::Weights);
    s.dataset_size = 5;

    let write = |threads: Option<usize>, tag: &str| {
        let mut det = YoloGrid::new(&dcfg);
        let ds = DetectionDataset::new(5, dcfg.num_classes, 3, 32, 9);
        let gt = ds.coco_ground_truth();
        let loader = DetectionLoader::new(ds, 1);
        let mut campaign = ObjDetCampaign::new(&mut det, s.clone(), loader);
        let result = match threads {
            None => campaign.run_with(&RunConfig::default()).unwrap(),
            Some(t) => campaign.run_with(&RunConfig::new().threads(t)).unwrap(),
        };
        let dir = std::env::temp_dir().join(format!("alfi_it_det_parallel_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        write_detection_outputs(&result, &gt, dcfg.num_classes, 0.5, &dir).unwrap();
        dir
    };

    let seq_dir = write(None, "seq");
    for threads in [1usize, 2, 7] {
        let par_dir = write(Some(threads), &threads.to_string());
        for file in FILES {
            let a = std::fs::read(seq_dir.join(file)).unwrap();
            let b = std::fs::read(par_dir.join(file)).unwrap();
            assert_eq!(a, b, "{file} differs between sequential and {threads}-thread runs");
        }
        let _ = std::fs::remove_dir_all(&par_dir);
    }
    let _ = std::fs::remove_dir_all(&seq_dir);
}

/// On-disk artifacts written twice from the same seed are identical at
/// the byte level — faults.bin, trace.bin and both CSVs.
#[test]
fn written_artifacts_are_byte_identical_across_runs() {
    let run = |tag: &str| {
        let mcfg = model_cfg();
        let ds = ClassificationDataset::new(6, mcfg.num_classes, 3, 16, 11);
        let loader = ClassificationLoader::new(ds, 2);
        let result =
            ImgClassCampaign::new(alexnet(&mcfg), scenario(InjectionTarget::Weights), loader)
                .run_with(&RunConfig::default())
                .unwrap();
        let dir = std::env::temp_dir().join(format!("alfi_it_determinism_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        result.save_outputs(&dir).unwrap();
        dir
    };
    let a = run("a");
    let b = run("b");
    for file in ["faults.bin", "trace.bin", "results_orig.csv", "results_corr.csv", "scenario.yml"]
    {
        let fa = std::fs::read(a.join(file)).unwrap();
        let fb = std::fs::read(b.join(file)).unwrap();
        assert_eq!(fa, fb, "{file} differs between identical-seed runs");
    }
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}
