//! Integration test: full persistence → replay round trip.
//!
//! The paper's central efficiency claim is reusability: "the identical
//! set of faults can be utilized across various experiments" (§IV-B) and
//! experiments can be replicated exactly from the persisted scenario YAML
//! and binary fault file. This test runs a campaign, persists everything,
//! reconstructs the world from files alone, and asserts bit-identical
//! results.

use alfi::core::campaign::{CsvVariant, ImgClassCampaign, RunConfig};
use alfi::core::{load_fault_matrix, Ptfiwrap, RunTrace};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
use alfi::tensor::Tensor;

fn model_cfg() -> ModelConfig {
    ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 21, ..ModelConfig::default() }
}

fn scenario() -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = 5;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 2024;
    s
}

#[test]
fn campaign_replayed_from_files_is_bit_identical() {
    let dir = std::env::temp_dir().join("alfi_it_replay");
    let _ = std::fs::remove_dir_all(&dir);

    // First run: campaign + persist.
    let mcfg = model_cfg();
    let ds = ClassificationDataset::new(5, mcfg.num_classes, 3, 16, 3);
    let loader = ClassificationLoader::new(ds.clone(), 1);
    let result1 = ImgClassCampaign::new(alexnet(&mcfg), scenario(), loader).run_with(&RunConfig::default()).unwrap();
    result1.save_outputs(&dir).unwrap();

    // Second run: reconstruct scenario + fault matrix purely from disk.
    let s2 = Scenario::load(dir.join("scenario.yml")).unwrap();
    assert_eq!(s2, scenario());
    let matrix = load_fault_matrix(dir.join("faults.bin")).unwrap();
    assert_eq!(matrix, result1.fault_matrix);

    // Replaying with the loaded matrix must corrupt the exact same
    // weights to the exact same bit patterns.
    let model = alexnet(&mcfg);
    let mut wrapper =
        Ptfiwrap::with_fault_matrix(&model, s2.clone(), &mcfg.input_dims(1), matrix).unwrap();
    let trace1 = RunTrace::load(dir.join("trace.bin")).unwrap();
    let mut replayed = Vec::new();
    while let Ok(fm) = wrapper.next_faulty_model() {
        // materialize weight corruptions (weights are applied at arm time)
        replayed.extend(fm.applied_faults());
    }
    assert_eq!(replayed.len(), trace1.entries.len());
    for (r, t) in replayed.iter().zip(trace1.entries.iter()) {
        assert_eq!(r.record, t.applied.record);
        assert_eq!(r.original.to_bits(), t.applied.original.to_bits());
        assert_eq!(r.corrupted.to_bits(), t.applied.corrupted.to_bits());
        assert_eq!(r.direction, t.applied.direction);
    }

    // A second full campaign produces identical CSVs.
    let loader = ClassificationLoader::new(ds, 1);
    let result2 = ImgClassCampaign::new(alexnet(&mcfg), s2, loader).run_with(&RunConfig::default()).unwrap();
    assert_eq!(
        result1.to_csv(CsvVariant::Corrupted),
        result2.to_csv(CsvVariant::Corrupted)
    );
    assert_eq!(result1.trace, result2.trace);
}

#[test]
fn same_fault_file_transfers_to_a_hardened_model() {
    // The point of fault reuse: compare model variants under identical
    // faults. The corrupted coordinates and original values must match
    // between the original and hardened models (identical weights).
    let mcfg = model_cfg();
    let model = alexnet(&mcfg);
    let calib = [Tensor::ones(&mcfg.input_dims(1))];
    let bounds = alfi::mitigation::profile_bounds(&model, calib.iter()).unwrap();
    let hardened =
        alfi::mitigation::harden(&model, &bounds, alfi::mitigation::Protection::Ranger, 0.1)
            .unwrap();

    let mut w1 = Ptfiwrap::new(&model, scenario(), &mcfg.input_dims(1)).unwrap();
    let matrix = w1.fault_matrix().clone();
    let mut w2 =
        Ptfiwrap::with_fault_matrix(&hardened, scenario(), &mcfg.input_dims(1), matrix).unwrap();

    for _ in 0..3 {
        let f1 = w1.next_faulty_model().unwrap();
        let f2 = w2.next_faulty_model().unwrap();
        let a1 = f1.applied_faults();
        let a2 = f2.applied_faults();
        assert_eq!(a1.len(), a2.len());
        for (x, y) in a1.iter().zip(a2.iter()) {
            assert_eq!(x.record, y.record);
            assert_eq!(x.original.to_bits(), y.original.to_bits());
            assert_eq!(x.corrupted.to_bits(), y.corrupted.to_bits());
        }
    }
}

#[test]
fn corrupted_fault_file_is_rejected_not_replayed() {
    let dir = std::env::temp_dir().join("alfi_it_corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mcfg = model_cfg();
    let model = alexnet(&mcfg);
    let wrapper = Ptfiwrap::new(&model, scenario(), &mcfg.input_dims(1)).unwrap();
    let path = dir.join("faults.bin");
    alfi::core::save_fault_matrix(wrapper.fault_matrix(), &path).unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01; // single-bit file corruption
    std::fs::write(&path, &bytes).unwrap();
    let err = load_fault_matrix(&path).unwrap_err();
    assert!(err.to_string().contains("corrupt"), "{err}");
}
