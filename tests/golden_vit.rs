//! Golden-file lockdown of the ViT campaign artifacts.
//!
//! Pins the transformer campaign's row artifacts — CSV *and* the
//! columnar binary store — under `tests/golden/vit/`, and checks that
//! the sequential driver and the pool-backed parallel drivers at 1, 2,
//! 4 and 7 threads reproduce them byte-for-byte. The scenario is
//! multi-resolution (a rate glob over the first block's attention
//! linears plus a quantized-int override on the head), so this also
//! locks the per-layer plan resolution and the `layer.*` store meta.
//!
//! To bless new goldens after an intentional format change:
//!
//! ```text
//! ALFI_REGEN_GOLDEN=1 cargo test --test golden_vit
//! ```

use alfi::core::campaign::{RunConfig, VitCampaign};
use alfi::core::{store_to_texts, Artifacts};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::nn::models::ModelConfig;
use alfi::scenario::{ArtifactFormat, FaultMode, InjectionTarget, LayerOverride, Scenario};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden").join("vit")
}

fn regen() -> bool {
    std::env::var_os("ALFI_REGEN_GOLDEN").is_some()
}

/// Compares `actual` against the pinned golden file. Under
/// `ALFI_REGEN_GOLDEN` the 1-thread run blesses the golden (`bless`);
/// every other thread count and the store conversions must then
/// reproduce those exact bytes within the same test run.
fn assert_golden(name: &str, actual: &[u8], context: &str, bless: bool) {
    let path = golden_dir().join(name);
    if regen() && bless {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("[golden] regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run ALFI_REGEN_GOLDEN=1 cargo test --test golden_vit",
            path.display()
        )
    });
    if expected != actual {
        if name.ends_with(".alfic") {
            panic!(
                "golden mismatch for vit/{name} ({context}): {} golden vs {} actual bytes",
                expected.len(),
                actual.len()
            );
        }
        let exp = String::from_utf8_lossy(&expected);
        let act = String::from_utf8_lossy(actual);
        panic!(
            "golden mismatch for vit/{name} ({context})\n--- golden ---\n{exp}\n--- actual ---\n{act}"
        );
    }
}

/// Mirrors `scenarios/vit.yml` at golden-test scale: half the fault
/// budget on the first block's attention projections, quantized-int
/// faults on the head, exponent flips elsewhere.
fn vit_scenario() -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = 4;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 0x717;
    s.layer_overrides = BTreeMap::from([
        (
            "blocks.0.attn*".to_string(),
            LayerOverride { rate: Some(0.125), ..Default::default() },
        ),
        (
            "head".to_string(),
            LayerOverride {
                mode: Some(FaultMode::QuantStep { bits: 8, amax: 4.0, bit_range: (0, 7) }),
                ..Default::default()
            },
        ),
    ]);
    s
}

fn campaign() -> VitCampaign {
    let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 7, ..ModelConfig::default() };
    let ds = ClassificationDataset::new(4, mcfg.num_classes, 3, 16, 13);
    let loader = ClassificationLoader::new(ds, 2);
    VitCampaign::tiny(&mcfg, vit_scenario(), loader)
}

/// Runs the ViT campaign into a fresh temp dir and returns the row
/// artifacts as `name -> bytes`.
fn run(format: ArtifactFormat, threads: usize, tag: &str) -> BTreeMap<String, Vec<u8>> {
    let dir = std::env::temp_dir().join(format!("alfi_it_golden_vit_{tag}_{threads}"));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = RunConfig::new().threads(threads).save_dir(&dir).format(format);
    campaign().run_with(&cfg).unwrap();
    let a = Artifacts::new(&dir);
    let mut out = BTreeMap::new();
    for path in [a.rows_orig(), a.rows_corr(), a.rows_store()] {
        if path.is_file() {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.insert(name, std::fs::read(&path).unwrap());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[test]
fn vit_csv_artifacts_match_goldens_at_all_thread_counts() {
    for threads in [1usize, 2, 4, 7] {
        let csv = run(ArtifactFormat::Csv, threads, "csv");
        let context = format!("{threads}-thread run");
        assert_golden("results_orig.csv", &csv["results_orig.csv"], &context, threads == 1);
        assert_golden("results_corr.csv", &csv["results_corr.csv"], &context, threads == 1);
    }
}

#[test]
fn vit_binary_store_matches_golden_and_inverts_to_csv_goldens() {
    for threads in [1usize, 2, 4, 7] {
        let bin = run(ArtifactFormat::Binary, threads, "bin");
        assert_eq!(bin.len(), 1, "binary format should write only rows.alfic, got {bin:?}");
        let context = format!("{threads}-thread run");
        assert_golden("rows.alfic", &bin["rows.alfic"], &context, threads == 1);

        // The store must convert back to the same bytes the CSV
        // goldens pin, so both formats stay one artifact family.
        let tmp = std::env::temp_dir().join(format!("alfi_it_golden_vit_conv_{threads}.alfic"));
        std::fs::write(&tmp, &bin["rows.alfic"]).unwrap();
        let texts = store_to_texts(&tmp).unwrap();
        let _ = std::fs::remove_file(&tmp);
        assert_eq!(texts.len(), 2, "vit store without resil converts to two CSVs");
        for (name, text) in &texts {
            assert_golden(name, text.as_bytes(), &format!("store conversion, {context}"), threads == 1);
        }
    }
}
