//! Strict kernel-path bit-identity on a full campaign.
//!
//! The blocked packed GEMM is contractually the *same function* as the
//! sequential reference kernels — so an entire injection campaign
//! (fault sampling, three-model coupling, outcome classification, CSV
//! encoding) must produce byte-identical artifacts whichever path
//! [`RunConfig::kernel`] selects, at every driver thread count. A
//! single bit of drift anywhere in a forward pass would cascade into
//! different top-1 labels, different SDE tallies and a visible CSV
//! diff here.
//!
//! Everything runs inside one `#[test]`: the kernel override installed
//! by the engine is process-global, so concurrent test functions
//! pinning different paths would race.

use alfi::core::campaign::{CsvVariant, ImgClassCampaign, RunConfig, VitCampaign};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::mitigation::{harden, profile_bounds, Protection};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
use alfi::tensor::gemm::KernelPath;
use alfi::tensor::Tensor;

fn scenario() -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = 6;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 0x5EED;
    s
}

/// A small but complete campaign: conv + linear layers, a hardened
/// (range-clamped) companion model, weight faults on every image.
fn campaign() -> ImgClassCampaign {
    let mcfg = ModelConfig { input_hw: 16, width_mult: 0.125, seed: 11, ..ModelConfig::default() };
    let model = alexnet(&mcfg);
    let ds = ClassificationDataset::new(6, mcfg.num_classes, 3, 16, 21);
    let calib: Vec<Tensor> = (0..3).map(|i| Tensor::stack(&[ds.get(i).image]).unwrap()).collect();
    let bounds = profile_bounds(&model, calib.iter()).unwrap();
    let hardened = harden(&model, &bounds, Protection::Ranger, 0.1).unwrap();
    let loader = ClassificationLoader::new(ds, 2);
    ImgClassCampaign::new(model, scenario(), loader).with_resil_model(hardened)
}

fn run_csvs(path: KernelPath, threads: usize) -> (String, String) {
    let result = campaign()
        .run_with(&RunConfig::new().threads(threads).kernel(path))
        .unwrap();
    (result.to_csv(CsvVariant::Original), result.to_csv(CsvVariant::Corrupted))
}

/// The transformer campaign exercises kernel surfaces the CNN one
/// cannot: attention's Q·Kᵀ GEMM (transposed-`B` layout) and the
/// softmax(scores)·V GEMM over reused per-head buffers. A
/// reference-vs-blocked divergence in either showed up here as
/// different top-k rows.
fn vit_campaign() -> VitCampaign {
    let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 11, ..ModelConfig::default() };
    let ds = ClassificationDataset::new(6, mcfg.num_classes, 3, 16, 21);
    let loader = ClassificationLoader::new(ds, 2);
    VitCampaign::tiny(&mcfg, scenario(), loader)
}

fn run_vit_csvs(path: KernelPath, threads: usize) -> (String, String) {
    let result = vit_campaign()
        .run_with(&RunConfig::new().threads(threads).kernel(path))
        .unwrap();
    (result.to_csv(CsvVariant::Original), result.to_csv(CsvVariant::Corrupted))
}

#[test]
fn campaign_artifacts_are_bit_identical_across_kernel_paths() {
    // Single-thread reference run is the golden for everything else.
    let (orig, corr) = run_csvs(KernelPath::Reference, 1);
    assert!(orig.lines().count() > 1, "campaign produced no rows");

    for threads in [1usize, 2, 4, 7] {
        for path in [KernelPath::Reference, KernelPath::Blocked] {
            let (o, c) = run_csvs(path, threads);
            assert_eq!(
                orig, o,
                "fault-free CSV drifted: {path} kernel, {threads} threads"
            );
            assert_eq!(
                corr, c,
                "corrupted CSV drifted: {path} kernel, {threads} threads"
            );
        }
    }

    // Same contract for the transformer campaign.
    let (vorig, vcorr) = run_vit_csvs(KernelPath::Reference, 1);
    assert!(vorig.lines().count() > 1, "vit campaign produced no rows");
    for threads in [1usize, 4] {
        for path in [KernelPath::Reference, KernelPath::Blocked] {
            let (o, c) = run_vit_csvs(path, threads);
            assert_eq!(vorig, o, "vit fault-free CSV drifted: {path} kernel, {threads} threads");
            assert_eq!(vcorr, c, "vit corrupted CSV drifted: {path} kernel, {threads} threads");
        }
    }

    // The engine's override guard must restore the ambient selection.
    assert!(
        alfi::tensor::gemm::kernel_override().is_none(),
        "RunConfig::kernel leaked a process-global override past the run"
    );
}
