//! Failure injection into the framework itself: malformed inputs and
//! mismatched artifacts must produce typed errors, never panics or
//! silent misbehaviour.

use alfi::core::campaign::{ImgClassCampaign, RunConfig};
use alfi::core::{arm_faults, resolve_targets, CoreError, FaultMatrix, Ptfiwrap, RunTrace};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::nn::models::{alexnet, vgg16, ModelConfig};
use alfi::nn::{Layer, Network};
use alfi::scenario::{InjectionTarget, LayerType, Scenario};

fn mcfg() -> ModelConfig {
    ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() }
}

#[test]
fn fault_matrix_from_larger_model_is_rejected_on_smaller_model() {
    // Generate against vgg16 (16 injectable layers), arm on alexnet (8):
    // records referencing layers >= 8 must produce a typed error.
    let big = vgg16(&mcfg());
    let small = alexnet(&mcfg());
    let mut s = Scenario::default();
    s.dataset_size = 40;
    s.injection_target = InjectionTarget::Weights;
    s.weighted_layer_selection = false; // spread across all 16 layers
    let big_targets = resolve_targets(&[&big], &s, &[Some(mcfg().input_dims(1))]).unwrap();
    let matrix = FaultMatrix::generate(&s, &big_targets).unwrap();
    assert!(matrix.records.iter().any(|r| r.layer >= 8), "sweep should hit late layers");

    let small_targets = resolve_targets(&[&small], &s, &[Some(mcfg().input_dims(1))]).unwrap();
    let mut model = small.clone();
    let result = {
        let mut nets = [&mut model];
        arm_faults(&mut nets, &small_targets, &matrix.records, InjectionTarget::Weights)
    };
    match result {
        Err(CoreError::FaultOutOfBounds { .. }) => {}
        other => panic!("expected FaultOutOfBounds, got {other:?}"),
    }
}

#[test]
fn model_without_injectable_layers_is_rejected() {
    let mut net = Network::new("reluonly");
    let a = net.push("relu", Layer::Relu, &[]).unwrap();
    net.set_output(a).unwrap();
    let err = Ptfiwrap::new(&net, Scenario::default(), &[1, 4]).unwrap_err();
    assert_eq!(err, CoreError::NoInjectableLayers);
}

#[test]
fn out_of_range_layer_filter_is_rejected() {
    let model = alexnet(&mcfg());
    let mut s = Scenario::default();
    s.layer_range = Some((100, 200)); // model has 8 injectable layers
    let err = Ptfiwrap::new(&model, s, &mcfg().input_dims(1)).unwrap_err();
    assert_eq!(err, CoreError::NoInjectableLayers);
}

#[test]
fn type_filter_excluding_everything_is_rejected() {
    let model = alexnet(&mcfg());
    let mut s = Scenario::default();
    s.layer_types = vec![LayerType::Conv3d];
    assert_eq!(
        Ptfiwrap::new(&model, s, &mcfg().input_dims(1)).unwrap_err(),
        CoreError::NoInjectableLayers
    );
}

#[test]
fn campaign_handles_dataset_smaller_than_scenario() {
    // Scenario asks for 10 images but the dataset only has 4: the
    // campaign processes what exists and reports 4 rows.
    let mut s = Scenario::default();
    s.dataset_size = 10;
    s.injection_target = InjectionTarget::Weights;
    let ds = ClassificationDataset::new(4, mcfg().num_classes, 3, 32, 1);
    let loader = ClassificationLoader::new(ds, 1);
    let result = ImgClassCampaign::new(alexnet(&mcfg()), s, loader).run_with(&RunConfig::default()).unwrap();
    assert_eq!(result.rows.len(), 4);
    assert_eq!(result.fault_matrix.num_slots(), 10, "matrix keeps full size for replay");
}

#[test]
fn zero_runs_scenario_yields_empty_campaign() {
    let mut s = Scenario::default();
    s.dataset_size = 4;
    s.num_runs = 0;
    let ds = ClassificationDataset::new(4, mcfg().num_classes, 3, 32, 1);
    let loader = ClassificationLoader::new(ds, 1);
    let result = ImgClassCampaign::new(alexnet(&mcfg()), s, loader).run_with(&RunConfig::default()).unwrap();
    assert!(result.rows.is_empty());
    assert!(result.trace.entries.is_empty());
}

#[test]
fn cross_format_file_confusion_is_detected() {
    // Feeding a trace file to the fault-matrix loader (and vice versa)
    // fails on the magic check, not on some deep parse error.
    let trace_bytes = RunTrace::default().encode();
    let err = alfi::core::decode_fault_matrix(&trace_bytes).unwrap_err();
    assert!(matches!(err, CoreError::CorruptFile { kind: "fault", .. }));

    let model = alexnet(&mcfg());
    let w = Ptfiwrap::new(&model, Scenario::default(), &mcfg().input_dims(1)).unwrap();
    let fault_bytes = alfi::core::encode_fault_matrix(w.fault_matrix());
    let err = RunTrace::decode(&fault_bytes).unwrap_err();
    assert!(matches!(err, CoreError::CorruptFile { kind: "trace", .. }));
}

#[test]
fn malformed_scenario_files_fail_with_field_context() {
    for (text, needle) in [
        ("injection_target: gpu\n", "injection_target"),
        ("fault_mode:\n  mode: bitflip\n  rnd_bit_range: [31, 0]\n", "fault_mode"),
        ("layer_range: [9, 1]\n", "layer_range"),
    ] {
        let err = Scenario::from_yaml_str(text).unwrap_err();
        assert!(err.to_string().contains(needle), "{text:?} -> {err}");
    }
}

#[test]
fn hardened_model_with_mismatched_layers_is_rejected_by_campaign() {
    // A "hardened" model that is actually a different architecture must
    // be rejected up front instead of silently mis-mapping faults.
    let mut s = Scenario::default();
    s.dataset_size = 2;
    let ds = ClassificationDataset::new(2, mcfg().num_classes, 3, 32, 1);
    let loader = ClassificationLoader::new(ds, 1);
    let wrong_resil = vgg16(&mcfg()); // 16 layers vs alexnet's 8
    let err = ImgClassCampaign::new(alexnet(&mcfg()), s, loader)
        .with_resil_model(wrong_resil)
        .run_with(&RunConfig::default())
        .unwrap_err();
    assert!(matches!(err, CoreError::FaultOutOfBounds { .. }));
}
