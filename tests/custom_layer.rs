//! Integration test: the §V-G extensibility path — a user-defined
//! custom layer participates in fault injection exactly like a native
//! conv/linear layer.

use alfi::core::Ptfiwrap;
use alfi::nn::{CustomLayer, Layer, LayerKind, Network, NnError};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
use alfi::tensor::Tensor;

/// A depthwise-style scaling layer: one learnable scale per channel of a
/// `[n, f]` feature vector — a "custom trainable layer not native to
/// PyTorch" in the paper's terms. It registers as `Linear` for fault
/// injection; its rank-2 `[f, 1]` weight satisfies the coordinate
/// sampling contract.
#[derive(Debug, Clone)]
struct ChannelScale {
    weight: Tensor, // [f, 1]
}

impl ChannelScale {
    fn new(scales: Vec<f32>) -> Self {
        let f = scales.len();
        ChannelScale { weight: Tensor::from_vec(scales, &[f, 1]).expect("length matches") }
    }
}

impl CustomLayer for ChannelScale {
    fn type_name(&self) -> &str {
        "channel_scale"
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 2 || input.dims()[1] != self.weight.dims()[0] {
            return Err(NnError::BadInput {
                layer: "channel_scale".into(),
                reason: format!("expected [n, {}] input", self.weight.dims()[0]),
            });
        }
        let f = self.weight.dims()[0];
        let mut out = input.clone();
        let w = self.weight.data();
        for (i, v) in out.data_mut().iter_mut().enumerate() {
            *v *= w[i % f];
        }
        Ok(out)
    }

    fn clone_box(&self) -> Box<dyn CustomLayer> {
        Box::new(self.clone())
    }

    fn injection_kind(&self) -> Option<LayerKind> {
        Some(LayerKind::Linear)
    }

    fn weight(&self) -> Option<&Tensor> {
        Some(&self.weight)
    }

    fn weight_mut(&mut self) -> Option<&mut Tensor> {
        Some(&mut self.weight)
    }
}

fn custom_net() -> Network {
    let mut net = Network::new("custom");
    let a = net
        .push("scale", Layer::Custom(Box::new(ChannelScale::new(vec![1.0, 2.0, 3.0, 4.0]))), &[])
        .unwrap();
    net.set_output(a).unwrap();
    net
}

#[test]
fn custom_layer_computes_and_clones() {
    let net = custom_net();
    let x = Tensor::ones(&[2, 4]);
    let y = net.forward(&x).unwrap();
    assert_eq!(y.batch_item(0).unwrap().data(), &[1.0, 2.0, 3.0, 4.0]);
    // clones share nothing: mutating the clone leaves the original intact
    let mut cloned = net.clone();
    cloned.layer_mut(0).unwrap().weight_mut().unwrap().set(&[0, 0], 99.0);
    assert_eq!(net.forward(&x).unwrap().batch_item(0).unwrap().data(), &[1.0, 2.0, 3.0, 4.0]);
    assert_eq!(cloned.forward(&x).unwrap().batch_item(0).unwrap().data()[0], 99.0);
}

#[test]
fn custom_layer_is_injectable_as_declared_kind() {
    let net = custom_net();
    let inj = net.injectable_layers(None, Some(&[1, 4])).unwrap();
    assert_eq!(inj.len(), 1);
    assert_eq!(inj[0].kind, LayerKind::Linear);
    assert_eq!(inj[0].weight_shape.dims(), &[4, 1]);
    assert_eq!(inj[0].output_shape.as_ref().unwrap().dims(), &[1, 4]);
}

#[test]
fn weight_faults_hit_the_custom_layer() {
    let net = custom_net();
    let mut s = Scenario::default();
    s.dataset_size = 4;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::BitFlip { bit_range: (31, 31) }; // sign flip
    let mut wrapper = Ptfiwrap::new(&net, s, &[1, 4]).unwrap();
    let x = Tensor::ones(&[1, 4]);
    let clean = net.forward(&x).unwrap();
    let mut saw_negation = false;
    while let Ok(fm) = wrapper.next_faulty_model() {
        let log = fm.applied_faults();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].corrupted, -log[0].original, "sign flip negates the scale");
        let out = fm.forward(&x).unwrap();
        let idx = log[0].record.channel;
        assert_eq!(out.data()[idx], -clean.data()[idx]);
        saw_negation = true;
    }
    assert!(saw_negation);
}

#[test]
fn neuron_faults_hit_the_custom_layer_output() {
    let net = custom_net();
    let mut s = Scenario::default();
    s.dataset_size = 3;
    s.injection_target = InjectionTarget::Neurons;
    s.fault_mode = FaultMode::RandomValue { min: 42.0, max: 42.0 };
    let mut wrapper = Ptfiwrap::new(&net, s, &[1, 4]).unwrap();
    let x = Tensor::ones(&[1, 4]);
    let fm = wrapper.next_faulty_model().unwrap();
    let out = fm.forward(&x).unwrap();
    let log = fm.applied_faults();
    assert_eq!(log.len(), 1);
    assert_eq!(out.data()[log[0].record.width], 42.0);
}

#[test]
fn opt_out_custom_layer_is_not_injectable() {
    #[derive(Debug, Clone)]
    struct Passthrough;
    impl CustomLayer for Passthrough {
        fn type_name(&self) -> &str {
            "passthrough"
        }
        fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
            Ok(input.clone())
        }
        fn clone_box(&self) -> Box<dyn CustomLayer> {
            Box::new(self.clone())
        }
    }
    let mut net = Network::new("n");
    let a = net.push("pass", Layer::Custom(Box::new(Passthrough)), &[]).unwrap();
    net.set_output(a).unwrap();
    assert!(net.injectable_layers(None, None).unwrap().is_empty());
    assert_eq!(net.layer(a).unwrap().kind(), LayerKind::Other);
}
