//! Golden-file lockdown of the `alfi-trace` JSONL event log.
//!
//! Pins the exact `events.jsonl` emitted by a traced classification
//! campaign under `tests/golden/trace/`: one header record (format
//! version + replay identity), one `injection` record per applied
//! fault in deterministic row order, and one `summary` record holding
//! only deterministic counters (no timings — those live exclusively in
//! the in-memory `TraceSummary`). Any change to the event taxonomy,
//! field names, number formatting or record order shows up as a
//! readable diff here.
//!
//! To bless new goldens after an intentional schema change:
//!
//! ```text
//! ALFI_REGEN_GOLDEN=1 cargo test --test golden_trace
//! ```

use alfi::core::campaign::{ImgClassCampaign, RunConfig};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
use alfi::trace::Recorder;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden").join("trace")
}

fn regen() -> bool {
    std::env::var_os("ALFI_REGEN_GOLDEN").is_some()
}

fn assert_golden(name: &str, actual: &str, context: &str) {
    let path = golden_dir().join(name);
    if regen() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("[golden] regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run ALFI_REGEN_GOLDEN=1 cargo test --test golden_trace",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for trace/{name} ({context}) — \
         intentional schema changes need ALFI_REGEN_GOLDEN=1"
    );
}

fn scenario() -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = 4;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 0x7124CE;
    s
}

fn campaign() -> ImgClassCampaign {
    let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 7, ..ModelConfig::default() };
    let ds = ClassificationDataset::new(4, mcfg.num_classes, 3, 16, 13);
    let loader = ClassificationLoader::new(ds, 1);
    ImgClassCampaign::new(alexnet(&mcfg), scenario(), loader)
}

fn traced_event_log(threads: usize) -> String {
    let rec = Recorder::new();
    campaign().run_with(&RunConfig::new().threads(threads).recorder(rec.clone())).unwrap();
    rec.events_jsonl()
}

/// Blanks the header's recorded `threads` field — the only part of the
/// log that legitimately differs between thread counts.
fn normalize_threads(log: &str) -> String {
    let mut lines: Vec<String> = log.lines().map(str::to_string).collect();
    if let Some(header) = lines.first_mut() {
        assert!(header.contains("\"event\":\"header\""), "first record must be the header");
        let start = header.find("\"threads\":").expect("header records the thread count");
        let rest = &header[start + "\"threads\":".len()..];
        let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
        header.replace_range(start.."\"threads\":".len() + start + end, "\"threads\":N");
    }
    lines.join("\n") + "\n"
}

#[test]
fn event_log_matches_golden() {
    let log = traced_event_log(1);
    assert_golden("events.jsonl", &log, "sequential traced run");
}

#[test]
fn event_log_is_byte_identical_across_thread_counts() {
    let seq = normalize_threads(&traced_event_log(1));
    for threads in [2usize, 4] {
        let par = normalize_threads(&traced_event_log(threads));
        assert_eq!(
            seq, par,
            "event log must be byte-identical at {threads} threads (modulo the header's \
             recorded thread count)"
        );
    }
}

#[test]
fn saved_events_file_round_trips_the_log() {
    let rec = Recorder::new();
    let dir = std::env::temp_dir().join("alfi_it_golden_trace_save");
    let _ = std::fs::remove_dir_all(&dir);
    campaign()
        .run_with(&RunConfig::new().recorder(rec.clone()).save_dir(&dir))
        .unwrap();
    let on_disk = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    assert_eq!(on_disk, rec.events_jsonl());
    let _ = std::fs::remove_dir_all(&dir);
}
