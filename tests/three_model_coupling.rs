//! Integration test: tight coupling of fault-free, faulty and hardened
//! models — the paper's headline feature ("enables synchronized
//! inference and results in logging of separate DNN instances").
//!
//! Also checks the *direction* of the protection effect: under many
//! high-exponent weight faults, the Ranger-hardened model must show a
//! markedly lower SDE rate than the unprotected one (the Fig. 2a
//! relationship).

use alfi::core::campaign::{ImgClassCampaign, RunConfig};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::eval::{classification_kpis, resil_sde_rate, SdeCriterion};
use alfi::mitigation::{harden, profile_bounds, Protection};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultCount, FaultMode, InjectionTarget, Scenario};
use alfi::tensor::Tensor;

fn run_protected_campaign(protection: Protection, faults_per_image: usize) -> (f64, f64, usize) {
    let mcfg = ModelConfig { input_hw: 16, width_mult: 0.125, seed: 4, ..ModelConfig::default() };
    let model = alexnet(&mcfg);
    let n_images = 30;
    let ds = ClassificationDataset::new(n_images, mcfg.num_classes, 3, 16, 9);

    // Profile bounds on fault-free data.
    let calib: Vec<Tensor> =
        (0..6).map(|i| Tensor::stack(&[ds.get(i).image]).unwrap()).collect();
    let bounds = profile_bounds(&model, calib.iter()).unwrap();
    let hardened = harden(&model, &bounds, protection, 0.1).unwrap();

    let mut s = Scenario::default();
    s.dataset_size = n_images;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.faults_per_image = FaultCount::Fixed(faults_per_image);
    s.seed = 31;

    let loader = ClassificationLoader::new(ds, 1);
    let result = ImgClassCampaign::new(model, s, loader)
        .with_resil_model(hardened)
        .run_with(&RunConfig::default())
        .unwrap();

    let kpis = classification_kpis(&result.rows, SdeCriterion::Top1Mismatch);
    let resil = resil_sde_rate(&result.rows, SdeCriterion::Top1Mismatch);
    // corrupted-outcome count (SDE + DUE) for the unprotected model
    let unprotected = kpis.sde.value + kpis.due.value;
    (unprotected, resil.value, result.rows.len())
}

#[test]
fn ranger_protection_reduces_corruption_under_heavy_faults() {
    // 30 simultaneous exponent-bit faults per image: the unprotected
    // model corrupts on most images; Ranger should absorb most of it.
    let (unprotected, protected, n) = run_protected_campaign(Protection::Ranger, 30);
    assert_eq!(n, 30);
    assert!(
        unprotected > 0.3,
        "heavy exponent faults should corrupt the unprotected model often, got {unprotected}"
    );
    assert!(
        protected < unprotected,
        "ranger ({protected}) must beat unprotected ({unprotected})"
    );
    assert!(
        protected <= unprotected * 0.6,
        "ranger should remove a large share of corruptions: {protected} vs {unprotected}"
    );
}

#[test]
fn clipper_also_protects() {
    let (unprotected, protected, _) = run_protected_campaign(Protection::Clipper, 30);
    assert!(protected < unprotected, "clipper ({protected}) vs unprotected ({unprotected})");
}

#[test]
fn all_three_outputs_are_logged_per_image() {
    let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 4, ..ModelConfig::default() };
    let model = alexnet(&mcfg);
    let ds = ClassificationDataset::new(4, mcfg.num_classes, 3, 16, 9);
    let calib = [Tensor::stack(&[ds.get(0).image]).unwrap()];
    let bounds = profile_bounds(&model, calib.iter()).unwrap();
    let hardened = harden(&model, &bounds, Protection::Ranger, 0.1).unwrap();

    let mut s = Scenario::default();
    s.dataset_size = 4;
    s.injection_target = InjectionTarget::Weights;
    let loader = ClassificationLoader::new(ds, 1);
    let result =
        ImgClassCampaign::new(model, s, loader).with_resil_model(hardened).run_with(&RunConfig::default()).unwrap();

    for row in &result.rows {
        assert_eq!(row.orig_top5.len(), 5);
        assert_eq!(row.corr_top5.len(), 5);
        assert_eq!(row.resil_top5.as_ref().map(Vec::len), Some(5));
        assert_eq!(row.faults.len(), 1);
    }
    // the resil CSV exists only because resil outputs exist
    let dir = std::env::temp_dir().join("alfi_it_threemodel");
    let _ = std::fs::remove_dir_all(&dir);
    result.save_outputs(&dir).unwrap();
    assert!(dir.join("results_resil.csv").exists());
}

#[test]
fn protection_is_transparent_without_faults() {
    // With zero faults per image the hardened model must agree with the
    // original on every prediction (margin keeps healthy values inside).
    let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 4, ..ModelConfig::default() };
    let model = alexnet(&mcfg);
    let ds = ClassificationDataset::new(10, mcfg.num_classes, 3, 16, 9);
    let calib: Vec<Tensor> =
        (0..10).map(|i| Tensor::stack(&[ds.get(i).image]).unwrap()).collect();
    let bounds = profile_bounds(&model, calib.iter()).unwrap();
    let hardened = harden(&model, &bounds, Protection::Ranger, 0.1).unwrap();
    for x in &calib {
        let a = model.forward(x).unwrap();
        let b = hardened.forward(x).unwrap();
        assert_eq!(
            a.batch_item(0).unwrap().argmax(),
            b.batch_item(0).unwrap().argmax()
        );
    }
}
