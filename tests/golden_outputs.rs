//! Golden-file lockdown of campaign artifacts.
//!
//! Pins the exact text artifacts (CSV + JSON) of one classification
//! and one detection campaign under `tests/golden/`, and checks that
//! both the sequential drivers and the pool-backed parallel drivers
//! reproduce them byte-for-byte. Any change to fault sampling, kernel
//! summation order, CSV/JSON encoders or the campaign drivers shows
//! up as a readable text diff here.
//!
//! To bless new goldens after an intentional format change:
//!
//! ```text
//! ALFI_REGEN_GOLDEN=1 cargo test --test golden_outputs
//! ```

use alfi::core::campaign::{CsvVariant, ImgClassCampaign, ObjDetCampaign, RunConfig};
use alfi::datasets::{ClassificationDataset, ClassificationLoader, DetectionDataset, DetectionLoader};
use alfi::eval::write_detection_outputs;
use alfi::nn::detection::{DetectorConfig, YoloGrid};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
use std::path::{Path, PathBuf};

fn golden_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden").join(kind)
}

fn regen() -> bool {
    std::env::var_os("ALFI_REGEN_GOLDEN").is_some()
}

/// Compares `actual` against the pinned golden file, or rewrites the
/// golden when `ALFI_REGEN_GOLDEN` is set.
fn assert_golden(kind: &str, name: &str, actual: &[u8], context: &str) {
    let path = golden_dir(kind).join(name);
    if regen() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("[golden] regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run ALFI_REGEN_GOLDEN=1 cargo test --test golden_outputs",
            path.display()
        )
    });
    if expected != actual {
        let exp = String::from_utf8_lossy(&expected);
        let act = String::from_utf8_lossy(actual);
        panic!(
            "golden mismatch for {kind}/{name} ({context})\n--- golden ---\n{exp}\n--- actual ---\n{act}"
        );
    }
}

fn classification_scenario() -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = 4;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 0x601D;
    s
}

fn classification_campaign() -> ImgClassCampaign {
    let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 7, ..ModelConfig::default() };
    let ds = ClassificationDataset::new(4, mcfg.num_classes, 3, 16, 13);
    let loader = ClassificationLoader::new(ds, 2);
    ImgClassCampaign::new(alexnet(&mcfg), classification_scenario(), loader)
}

#[test]
fn classification_artifacts_match_goldens() {
    let seq = classification_campaign().run_with(&RunConfig::default()).unwrap();
    assert_golden(
        "classification",
        "results_orig.csv",
        seq.to_csv(CsvVariant::Original).as_bytes(),
        "sequential run",
    );
    assert_golden(
        "classification",
        "results_corr.csv",
        seq.to_csv(CsvVariant::Corrupted).as_bytes(),
        "sequential run",
    );
    assert_golden(
        "classification",
        "scenario.yml",
        seq.scenario.to_yaml_string().as_bytes(),
        "sequential run",
    );

    // The pool-backed parallel driver must hit the same goldens.
    for threads in [2usize, 5] {
        let par = classification_campaign().run_with(&RunConfig::new().threads(threads)).unwrap();
        assert_golden(
            "classification",
            "results_corr.csv",
            par.to_csv(CsvVariant::Corrupted).as_bytes(),
            &format!("{threads}-thread run"),
        );
    }
}

fn detection_scenario() -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = 3;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 0xD07;
    s
}

#[test]
fn detection_artifacts_match_goldens() {
    const FILES: [&str; 4] =
        ["ground_truth.json", "detections_orig.json", "detections_corr.json", "metrics.json"];
    // Low score threshold so the pinned JSONs contain actual boxes.
    let dcfg = DetectorConfig {
        input_hw: 32,
        width_mult: 0.125,
        score_thresh: 0.2,
        ..DetectorConfig::default()
    };

    let write = |threads: Option<usize>, tag: &str| {
        let mut det = YoloGrid::new(&dcfg);
        let ds = DetectionDataset::new(3, dcfg.num_classes, 3, 32, 17);
        let gt = ds.coco_ground_truth();
        let loader = DetectionLoader::new(ds, 1);
        let mut campaign = ObjDetCampaign::new(&mut det, detection_scenario(), loader);
        let result = match threads {
            None => campaign.run_with(&RunConfig::default()).unwrap(),
            Some(t) => campaign.run_with(&RunConfig::new().threads(t)).unwrap(),
        };
        let dir = std::env::temp_dir().join(format!("alfi_it_golden_det_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        write_detection_outputs(&result, &gt, dcfg.num_classes, 0.5, &dir).unwrap();
        dir
    };

    let dir = write(None, "seq");
    for file in FILES {
        assert_golden("detection", file, &std::fs::read(dir.join(file)).unwrap(), "sequential run");
    }
    let _ = std::fs::remove_dir_all(&dir);

    let dir = write(Some(3), "par");
    for file in FILES {
        assert_golden("detection", file, &std::fs::read(dir.join(file)).unwrap(), "3-thread run");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
