//! Integration test: the repository's `scenarios/default.yml` is valid,
//! documents the paper's headline fault model, and drives the Listing-1
//! convention loader.

use alfi::core::Ptfiwrap;
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultMode, InjectionPolicy, InjectionTarget, Scenario};

#[test]
fn shipped_default_yml_parses_with_expected_values() {
    let repo_root = env!("CARGO_MANIFEST_DIR");
    let s = Scenario::load(format!("{repo_root}/scenarios/default.yml")).unwrap();
    assert_eq!(s.dataset_size, 100);
    assert_eq!(s.injection_target, InjectionTarget::Weights);
    assert_eq!(s.injection_policy, InjectionPolicy::PerImage);
    assert_eq!(s.fault_mode, FaultMode::exponent_bit_flip());
    assert!(s.weighted_layer_selection);
    // round-trips through the serializer
    let back = Scenario::from_yaml_str(&s.to_yaml_string()).unwrap();
    assert_eq!(s, back);
}

#[test]
fn from_default_scenario_resolves_the_conventional_path() {
    // Run with cwd at the repo root so `scenarios/default.yml` resolves
    // (mirrors how a user integrates ALFI into their project folder).
    let repo_root = env!("CARGO_MANIFEST_DIR");
    let original = std::env::current_dir().unwrap();
    std::env::set_current_dir(repo_root).unwrap();
    let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
    let model = alexnet(&cfg);
    let result = Ptfiwrap::from_default_scenario(&model, &cfg.input_dims(1));
    std::env::set_current_dir(original).unwrap();

    let wrapper = result.unwrap();
    assert_eq!(wrapper.fault_matrix().len(), 100);
    assert_eq!(wrapper.scenario().fault_mode, FaultMode::exponent_bit_flip());
}
