//! Integration test: the repository's shipped scenario files
//! (`scenarios/*.yml`) are valid, document the paper's headline fault
//! model, resolve against the models they name, and drive the
//! Listing-1 convention loader.

use alfi::core::{resolve_targets, FaultModel, Ptfiwrap};
use alfi::nn::models::{alexnet, vit_tiny, ModelConfig};
use alfi::scenario::{FaultMode, InjectionPolicy, InjectionTarget, Scenario};

#[test]
fn shipped_default_yml_parses_with_expected_values() {
    let repo_root = env!("CARGO_MANIFEST_DIR");
    let s = Scenario::load(format!("{repo_root}/scenarios/default.yml")).unwrap();
    assert_eq!(s.dataset_size, 100);
    assert_eq!(s.injection_target, InjectionTarget::Weights);
    assert_eq!(s.injection_policy, InjectionPolicy::PerImage);
    assert_eq!(s.fault_mode, FaultMode::exponent_bit_flip());
    assert!(s.weighted_layer_selection);
    // round-trips through the serializer
    let back = Scenario::from_yaml_str(&s.to_yaml_string()).unwrap();
    assert_eq!(s, back);
}

#[test]
fn shipped_layers_yml_parses_and_resolves_multi_resolution_plan() {
    let repo_root = env!("CARGO_MANIFEST_DIR");
    let s = Scenario::load(format!("{repo_root}/scenarios/layers.yml")).unwrap();
    assert_eq!(s.layer_overrides.len(), 3);
    assert_eq!(s.layer_overrides["0"].rate, Some(0.4));
    assert!(matches!(
        s.layer_overrides["2-3"].mode,
        Some(FaultMode::QuantStep { bits: 8, .. })
    ));
    assert_eq!(s.layer_overrides["5"].channel_range, Some((0, 0)));
    // round-trips through the serializer
    let back = Scenario::from_yaml_str(&s.to_yaml_string()).unwrap();
    assert_eq!(s, back);

    // Every pattern matches the model the header recommends, and the
    // resolved plan is multi-resolution with rates summing to one.
    let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
    let model = alexnet(&cfg);
    let targets = resolve_targets(&[&model], &s, &[Some(cfg.input_dims(1))]).unwrap();
    let fm = FaultModel::resolve(&s, &targets).unwrap();
    assert!(fm.is_multi_resolution());
    let total: f64 = fm.plans().iter().map(|p| p.weight).sum();
    assert!((total - 1.0).abs() < 1e-9, "rates sum to {total}");
}

#[test]
fn shipped_vit_yml_parses_and_resolves_against_vit_tiny() {
    let repo_root = env!("CARGO_MANIFEST_DIR");
    let s = Scenario::load(format!("{repo_root}/scenarios/vit.yml")).unwrap();
    assert_eq!(s.layer_overrides.len(), 2);
    assert_eq!(s.layer_overrides["blocks.0.attn*"].rate, Some(0.125));
    assert!(matches!(
        s.layer_overrides["head"].mode,
        Some(FaultMode::QuantStep { bits: 8, .. })
    ));
    let back = Scenario::from_yaml_str(&s.to_yaml_string()).unwrap();
    assert_eq!(s, back);

    let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
    let model = vit_tiny(&cfg);
    let targets = resolve_targets(&[&model], &s, &[Some(cfg.input_dims(1))]).unwrap();
    assert_eq!(targets.len(), 14, "vit_tiny injectable layers");
    let fm = FaultModel::resolve(&s, &targets).unwrap();
    assert!(fm.is_multi_resolution());
    // The glob hits exactly the first block's four attention linears,
    // which together carry the pinned 50% of the fault budget.
    let attn_rate: f64 = fm
        .plans()
        .iter()
        .zip(&targets)
        .filter(|(_, t)| t.name.starts_with("blocks.0.attn"))
        .map(|(p, _)| p.weight)
        .sum();
    assert!((attn_rate - 0.5).abs() < 1e-9, "attn rate sum is {attn_rate}");
}

#[test]
fn from_default_scenario_resolves_the_conventional_path() {
    // Run with cwd at the repo root so `scenarios/default.yml` resolves
    // (mirrors how a user integrates ALFI into their project folder).
    let repo_root = env!("CARGO_MANIFEST_DIR");
    let original = std::env::current_dir().unwrap();
    std::env::set_current_dir(repo_root).unwrap();
    let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
    let model = alexnet(&cfg);
    let result = Ptfiwrap::from_default_scenario(&model, &cfg.input_dims(1));
    std::env::set_current_dir(original).unwrap();

    let wrapper = result.unwrap();
    assert_eq!(wrapper.fault_matrix().len(), 100);
    assert_eq!(wrapper.scenario().fault_mode, FaultMode::exponent_bit_flip());
}
