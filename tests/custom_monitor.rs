//! Integration test: custom monitoring (§V-G — "new signals at
//! intermediate layers can also be efficiently monitored by including
//! their respective monitoring functions").
//!
//! Implements a user-defined activation-sparsity monitor as an ordinary
//! forward hook, attaches it alongside an active fault campaign, and
//! checks that it observes the corruption.

use alfi::core::{attach_monitor, Ptfiwrap};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::nn::{ForwardHook, LayerCtx};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
use alfi::tensor::Tensor;
use std::sync::Mutex;
use std::sync::Arc;

/// Counts, per layer name, how many forward passes produced an
/// activation whose maximum magnitude exceeds a threshold — a cheap
/// user-defined anomaly signal.
#[derive(Debug, Default)]
struct MagnitudeAlarm {
    threshold: f32,
    alarms: Mutex<Vec<String>>,
}

impl ForwardHook for MagnitudeAlarm {
    fn on_output(&self, ctx: &LayerCtx, output: &mut Tensor) {
        let peak = output.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if peak > self.threshold || !peak.is_finite() {
            self.alarms.lock().unwrap().push(ctx.name.clone());
        }
    }
}

#[test]
fn custom_monitor_observes_injected_corruption() {
    let cfg = ModelConfig { input_hw: 16, width_mult: 0.125, seed: 5, ..ModelConfig::default() };
    let model = alexnet(&cfg);
    let input = Tensor::ones(&cfg.input_dims(1));

    // Calibrate the alarm threshold from the clean activation peaks.
    let clean_peak = model
        .forward_all(&input)
        .unwrap()
        .iter()
        .map(|t| t.data().iter().fold(0.0f32, |m, v| m.max(v.abs())))
        .fold(0.0f32, f32::max);
    let threshold = clean_peak * 100.0;

    // Campaign with guaranteed-catastrophic faults: replace a weight by a
    // huge value (bit 30+29-style magnitude) so the alarm must trip.
    let mut s = Scenario::default();
    s.dataset_size = 3;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::RandomValue { min: 1.0e20, max: 1.0e20 };
    s.layer_range = Some((0, 0)); // stem conv: feeds everything downstream
    let mut wrapper = Ptfiwrap::new(&model, s, &cfg.input_dims(1)).unwrap();

    let faulty = wrapper.next_faulty_model().unwrap();
    let mut observed = faulty.network().clone();
    // re-arm the same fault on the observable clone
    let record = faulty.faults[0];
    let targets = wrapper.targets().to_vec();
    let armed = {
        let mut nets = [&mut observed];
        alfi::core::arm_faults(&mut nets, &targets, &[record], InjectionTarget::Weights).unwrap()
    };
    let alarm = Arc::new(MagnitudeAlarm { threshold, alarms: Mutex::new(Vec::new()) });
    attach_monitor(&mut observed, Arc::<MagnitudeAlarm>::clone(&alarm) as _).unwrap();
    observed.forward(&input).unwrap();
    let _ = armed;

    let alarms = alarm.alarms.lock().unwrap().clone();
    assert!(
        !alarms.is_empty(),
        "a 1e20 weight in the stem must trip the magnitude alarm somewhere"
    );
    // the corrupted conv itself (or something downstream of it) fires
    assert!(
        alarms.iter().any(|n| n.starts_with("features.")),
        "alarm should localize into the feature stack: {alarms:?}"
    );

    // Clean model never trips the calibrated alarm.
    let mut clean = model.clone();
    let quiet = Arc::new(MagnitudeAlarm { threshold, alarms: Mutex::new(Vec::new()) });
    attach_monitor(&mut clean, Arc::<MagnitudeAlarm>::clone(&quiet) as _).unwrap();
    clean.forward(&input).unwrap();
    assert!(quiet.alarms.lock().unwrap().is_empty());
}
