//! Integration test: the full train-then-inject workflow — SGD training
//! on the synthetic dataset followed by a fault campaign on the trained
//! model, asserting both that training genuinely works and that fault
//! masking behaves as expected on an accurate model.

use alfi::core::campaign::{ImgClassCampaign, RunConfig};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::eval::{classification_kpis, SdeCriterion};
use alfi::nn::train::{accuracy, train_step, SgdTrainer};
use alfi::nn::{Conv2d, Layer, Linear, Network};
use alfi::scenario::{FaultCount, FaultMode, InjectionTarget, Scenario};
use alfi::tensor::conv::ConvConfig;
use alfi::tensor::Tensor;
use alfi_rng::Rng;

fn build_cnn(classes: usize, seed: u64) -> Network {
    let mut rng = Rng::from_seed(seed);
    let mut he = |dims: &[usize]| {
        let fan_in: usize = dims[1..].iter().product();
        Tensor::rand_normal(&mut rng, dims, 0.0, (2.0 / fan_in as f32).sqrt())
    };
    let mut net = Network::new("cnn");
    let c1 = net
        .push(
            "conv1",
            Layer::Conv2d(Conv2d {
                weight: he(&[8, 3, 3, 3]),
                bias: Some(Tensor::zeros(&[8])),
                cfg: ConvConfig { stride: 1, padding: 1, dilation: 1 },
            }),
            &[],
        )
        .unwrap();
    let r1 = net.push("relu1", Layer::Relu, &[c1]).unwrap();
    let p1 = net
        .push("pool1", Layer::MaxPool2d { k: 2, cfg: ConvConfig { stride: 2, padding: 0, dilation: 1 } }, &[r1])
        .unwrap();
    let fl = net.push("flatten", Layer::Flatten, &[p1]).unwrap();
    let f1 = net
        .push(
            "fc1",
            Layer::Linear(Linear {
                weight: he(&[classes, 8 * 8 * 8]),
                bias: Some(Tensor::zeros(&[classes])),
            }),
            &[fl],
        )
        .unwrap();
    net.set_output(f1).unwrap();
    net
}

fn train(net: &mut Network, ds: &ClassificationDataset, epochs: u64) {
    let loader = ClassificationLoader::new(ds.clone(), 16).with_shuffle(true);
    let mut trainer = SgdTrainer::new(0.05, 0.9);
    for epoch in 0..epochs {
        for batch in loader.iter_epoch(epoch) {
            train_step(net, &mut trainer, &batch.images, &batch.labels).unwrap();
        }
    }
}

#[test]
fn training_reaches_high_accuracy_and_masks_single_faults() {
    let classes = 4usize;
    let train_ds = ClassificationDataset::new(120, classes, 3, 16, 1);
    let test_ds = ClassificationDataset::new(30, classes, 3, 16, 2);
    let mut net = build_cnn(classes, 7);

    // Accuracy before training is near chance; after, it must be high.
    let probe_images =
        Tensor::stack(&(0..30).map(|i| test_ds.get(i).image).collect::<Vec<_>>()).unwrap();
    let probe_labels: Vec<usize> = (0..30).map(|i| test_ds.get(i).label).collect();
    let before = accuracy(&net, &probe_images, &probe_labels).unwrap();
    train(&mut net, &train_ds, 6);
    let after = accuracy(&net, &probe_images, &probe_labels).unwrap();
    assert!(after > 0.9, "trained accuracy {after} (before: {before})");
    assert!(after > before, "training must improve accuracy");

    // FI on the trained model: single faults are mostly masked; heavy
    // bursts corrupt much more.
    let run = |k: usize| {
        let mut s = Scenario::default();
        s.dataset_size = 30;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        s.faults_per_image = FaultCount::Fixed(k);
        s.seed = 99;
        let loader = ClassificationLoader::new(test_ds.clone(), 1);
        let result = ImgClassCampaign::new(net.clone(), s, loader).run_with(&RunConfig::default()).unwrap();
        let kpis = classification_kpis(&result.rows, SdeCriterion::Top1Mismatch);
        (kpis.sde.hits + kpis.due.hits, kpis.orig_top1_accuracy.value)
    };
    let (corrupt_1, orig_acc) = run(1);
    let (corrupt_50, _) = run(50);
    assert!(orig_acc > 0.9, "fault-free pass stays accurate inside the campaign");
    assert!(
        corrupt_50 > corrupt_1,
        "50 faults ({corrupt_50}) must corrupt more than 1 fault ({corrupt_1})"
    );
    assert!(corrupt_1 <= 6, "trained margins should mask most single faults, got {corrupt_1}/30");
}
