//! Integration tests: fault-slot advancement through the shared
//! campaign engine, observed from the outside.
//!
//! The engine's [`SlotCursor`](alfi::core::campaign::SlotCursor) unit
//! tests pin the advancement rules in isolation; these tests pin them
//! end to end — multi-epoch `per_batch`/`per_epoch` slot assignment and
//! graceful truncated-replay-matrix termination for both campaign
//! types, through the public `run_with` API only.

use alfi::core::campaign::{ImgClassCampaign, ObjDetCampaign, RunConfig};
use alfi::datasets::detection::DetectionDataset;
use alfi::datasets::{ClassificationDataset, ClassificationLoader, DetectionLoader};
use alfi::nn::detection::{DetectorConfig, YoloGrid};
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{
    CiMethod, FaultMode, InjectionPolicy, InjectionTarget, Scenario, StopPolicy, StopScope,
};

fn model_cfg() -> ModelConfig {
    ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 7, ..ModelConfig::default() }
}

fn scenario(policy: InjectionPolicy, dataset_size: usize, batch_size: usize) -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = dataset_size;
    s.batch_size = batch_size;
    s.injection_policy = policy;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 0xA11F1;
    s
}

fn run_classification(s: Scenario) -> alfi::core::campaign::ClassificationCampaignResult {
    let mcfg = model_cfg();
    let ds = ClassificationDataset::new(s.dataset_size, mcfg.num_classes, 3, 16, 9);
    let loader = ClassificationLoader::new(ds, s.batch_size);
    ImgClassCampaign::new(alexnet(&mcfg), s, loader).run_with(&RunConfig::default()).unwrap()
}

#[test]
fn per_batch_consumes_one_slot_per_batch_across_epochs() {
    let mut s = scenario(InjectionPolicy::PerBatch, 6, 3);
    s.num_runs = 2;
    let result = run_classification(s);
    // 2 epochs × 2 batches × 3 images, every image processed.
    assert_eq!(result.rows.len(), 12);
    let m = &result.fault_matrix;
    for (i, row) in result.rows.iter().enumerate() {
        // Slot index == global batch index: epoch-crossing advancement.
        let slot = i / 3;
        let armed: Vec<_> = row.faults.iter().map(|a| a.record).collect();
        assert_eq!(armed, m.faults_for_slot(slot), "row {i} armed the wrong slot");
    }
}

#[test]
fn per_epoch_consumes_one_slot_per_epoch() {
    let mut s = scenario(InjectionPolicy::PerEpoch, 4, 2);
    s.num_runs = 3;
    let result = run_classification(s);
    assert_eq!(result.rows.len(), 12);
    let m = &result.fault_matrix;
    for (i, row) in result.rows.iter().enumerate() {
        let epoch = i / 4;
        let armed: Vec<_> = row.faults.iter().map(|a| a.record).collect();
        assert_eq!(armed, m.faults_for_slot(epoch), "row {i} armed the wrong slot");
    }
}

#[test]
fn truncated_replay_matrix_ends_classification_run_early() {
    // Generate a full matrix, replay a 4-slot prefix: the per_image run
    // must end gracefully after exactly 4 images, mid-batch.
    let s = scenario(InjectionPolicy::PerImage, 6, 3);
    let full = run_classification(s.clone());
    let mut matrix = full.fault_matrix.clone();
    matrix.records.truncate(4 * matrix.faults_per_image.max(1));

    let mcfg = model_cfg();
    let ds = ClassificationDataset::new(6, mcfg.num_classes, 3, 16, 9);
    let loader = ClassificationLoader::new(ds, 3);
    let result = ImgClassCampaign::new(alexnet(&mcfg), s, loader)
        .with_fault_matrix(matrix)
        .run_with(&RunConfig::default())
        .unwrap();
    assert_eq!(result.rows.len(), 4);
    for (a, b) in full.rows.iter().zip(result.rows.iter()) {
        assert_eq!(a.corr_top5, b.corr_top5, "replayed prefix must match the full run");
    }
}

#[test]
fn truncated_replay_matrix_stops_per_batch_reuse_scopes() {
    // One slot, two batches: batch 0 arms it, batch 1 finds the matrix
    // exhausted and the run ends (a pre-sized matrix bounds the run
    // even for scopes that would only reuse the armed slot).
    let s = scenario(InjectionPolicy::PerBatch, 6, 3);
    let full = run_classification(s.clone());
    let mut matrix = full.fault_matrix.clone();
    matrix.records.truncate(matrix.faults_per_image.max(1));

    let mcfg = model_cfg();
    let ds = ClassificationDataset::new(6, mcfg.num_classes, 3, 16, 9);
    let loader = ClassificationLoader::new(ds, 3);
    let result = ImgClassCampaign::new(alexnet(&mcfg), s, loader)
        .with_fault_matrix(matrix)
        .run_with(&RunConfig::default())
        .unwrap();
    assert_eq!(result.rows.len(), 3, "only the batch that armed the slot runs");
}

#[test]
fn stop_policy_truncates_to_a_strict_prefix_of_the_unbounded_run() {
    // A campaign-scope stop policy never skips scopes, so the truncated
    // run's rows must be a strict prefix of the unbounded run's —
    // identical faults armed, identical outputs — for both drivers.
    let s = scenario(InjectionPolicy::PerImage, 48, 1);
    let full = run_classification(s.clone());
    assert_eq!(full.rows.len(), 48);

    let policy = StopPolicy {
        half_width: 0.2,
        confidence: 0.95,
        min_samples: 16,
        check_every: 8,
        scope: StopScope::Campaign,
        method: CiMethod::Wilson,
    };
    for threads in [1usize, 4] {
        let mcfg = model_cfg();
        let ds = ClassificationDataset::new(48, mcfg.num_classes, 3, 16, 9);
        let loader = ClassificationLoader::new(ds, 1);
        let truncated = ImgClassCampaign::new(alexnet(&mcfg), s.clone(), loader)
            .run_with(&RunConfig::new().threads(threads).stop_policy(policy))
            .unwrap();
        assert!(
            truncated.rows.len() < full.rows.len(),
            "policy must truncate the run ({} threads)",
            threads
        );
        assert!(truncated.rows.len() >= policy.min_samples, "floor respected");
        for (i, (a, b)) in full.rows.iter().zip(truncated.rows.iter()).enumerate() {
            let full_faults: Vec<_> = a.faults.iter().map(|f| f.record).collect();
            let trunc_faults: Vec<_> = b.faults.iter().map(|f| f.record).collect();
            assert_eq!(full_faults, trunc_faults, "row {i} must arm the same faults");
            assert_eq!(a.corr_top5, b.corr_top5, "row {i} must match the unbounded run");
        }
    }
}

#[test]
fn truncated_replay_matrix_ends_detection_run_early() {
    let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
    let mut s = scenario(InjectionPolicy::PerImage, 4, 1);
    s.fault_mode = FaultMode::exponent_bit_flip();
    let run = |s: Scenario, matrix: Option<alfi::core::FaultMatrix>| {
        let mut det = YoloGrid::new(&dcfg);
        let ds = DetectionDataset::new(4, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        let mut campaign = ObjDetCampaign::new(&mut det, s, loader);
        if let Some(m) = matrix {
            campaign = campaign.with_fault_matrix(m);
        }
        campaign.run_with(&RunConfig::default()).unwrap()
    };
    let full = run(s.clone(), None);
    assert_eq!(full.rows.len(), 4);
    let mut matrix = full.fault_matrix.clone();
    matrix.records.truncate(2 * matrix.faults_per_image.max(1));
    let truncated = run(s, Some(matrix));
    assert_eq!(truncated.rows.len(), 2);
    for (a, b) in full.rows.iter().zip(truncated.rows.iter()) {
        assert_eq!(a.corr, b.corr, "replayed prefix must match the full run");
    }
}
