#!/usr/bin/env bash
# Hermeticity guard: the workspace must stay 100% in-tree. Fails if the
# dependency graph (Cargo.lock / cargo metadata) contains any package
# that is not one of our `alfi*` path crates — i.e. if a registry
# dependency ever creeps in. Run from the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

# Primary check: the resolved dependency graph. Catches transitive
# additions regardless of how they entered.
cargo metadata --format-version 1 --offline |
  python3 -c '
import json, sys
meta = json.load(sys.stdin)
bad = sorted({p["name"] for p in meta["packages"] if not p["name"].startswith("alfi")})
srcs = sorted({p["name"] for p in meta["packages"] if p["source"] is not None})
if bad:
    sys.exit(f"non-workspace packages crept in: {bad}")
if srcs:
    sys.exit(f"packages resolved from a registry/git source: {srcs}")
count = len(meta["packages"])
print(f"hermetic: {count} packages, all in-tree path crates")
'

# Belt-and-braces: the committed lockfile itself. `cargo metadata` reads
# the manifests; this catches a stale/hand-edited Cargo.lock too.
if [ -f Cargo.lock ]; then
  python3 - <<'EOF'
names = []
with open("Cargo.lock") as f:
    for line in f:
        line = line.strip()
        if line.startswith("name = "):
            names.append(line.split('"')[1])
bad = sorted(n for n in names if not n.startswith("alfi"))
if bad:
    raise SystemExit(f"Cargo.lock lists non-workspace packages: {bad}")
print(f"Cargo.lock: {len(names)} packages, all alfi-*")
EOF
fi
