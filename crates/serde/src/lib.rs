//! In-tree JSON serialization for the ALFI workspace.
//!
//! The paper's output pipeline (Fig. 3) persists ground truth,
//! detections, and KPI summaries as JSON documents. This module owns
//! that format end to end: a [`Json`] value type, a writer that matches
//! the pretty-printing conventions the repo's golden files were written
//! with (2-space indent, struct fields in declaration order, integral
//! floats rendered as `1.0`), a recursive-descent parser, and
//! [`ToJson`]/[`FromJson`] traits that structs implement by hand or via
//! [`json_struct!`].
//!
//! # Example
//!
//! ```
//! use alfi_serde::{json_struct, FromJson, Json, ToJson};
//!
//! #[derive(Debug, PartialEq)]
//! struct Point { x: f32, y: f32 }
//! json_struct!(Point { x, y });
//!
//! let p = Point { x: 1.0, y: 2.5 };
//! let text = p.to_json().pretty();
//! let back = Point::from_json(&Json::parse(&text).unwrap()).unwrap();
//! assert_eq!(p, back);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or constructed JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map) so
/// that struct serialization keeps field declaration order, matching the
/// files previous versions of the repo wrote.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part or exponent in the source.
    Int(i128),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error produced by JSON parsing or [`FromJson`] decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` (accepts both `Int` and `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `i128` (integers only).
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation (the `serde_json`
    /// `to_string_pretty` layout the repo's files were written with).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    /// Serializes without whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!("trailing characters at offset {}", p.pos)));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

/// Writes a float the way `serde_json` does: shortest round-trip form,
/// with `.0` appended to integral values; non-finite values become `null`.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(JsonError::new("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(JsonError::new(format!(
                "unexpected character '{}' at offset {}",
                b as char, self.pos
            ))),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("expected ',' or ']' at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::new(format!("expected ',' or '}}' at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(JsonError::new("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonError::new("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| JsonError::new("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| JsonError::new("invalid code point"))?
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(JsonError::new(format!("invalid escape at offset {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::new("control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| JsonError::new("invalid utf-8"))?;
                    s.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape"));
        }
        let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(chunk, 16).map_err(|_| JsonError::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| JsonError::new(format!("invalid number '{text}'")))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| JsonError::new(format!("invalid number '{text}'")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Converts a value into a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Reconstructs a value from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Decodes from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the shape or types don't match.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = v.as_int().ok_or_else(|| JsonError::new(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| JsonError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            // Non-finite floats serialize as null; decode them back as NaN.
            Json::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| JsonError::new("expected number for f64")),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_owned).ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Copy + Default, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v.as_arr().ok_or_else(|| JsonError::new("expected array"))?;
        if items.len() != N {
            return Err(JsonError::new(format!("expected array of length {N}, got {}", items.len())));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_json(item)?;
        }
        Ok(out)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

// Maps with integer-like keys serialize as objects with stringified keys
// (the serde_json convention for non-string keys).
impl<K: ToString + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.to_string(), v.to_json())).collect())
    }
}

impl<K: std::str::FromStr + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let pairs = v.as_obj().ok_or_else(|| JsonError::new("expected object"))?;
        let mut map = BTreeMap::new();
        for (k, val) in pairs {
            let key = k.parse::<K>().map_err(|_| JsonError::new(format!("bad map key '{k}'")))?;
            map.insert(key, V::from_json(val)?);
        }
        Ok(map)
    }
}

/// Decodes one struct field from an object, by key.
///
/// # Errors
///
/// Returns [`JsonError`] if the key is absent or the value mistyped.
pub fn from_field<T: FromJson>(obj: &Json, key: &str) -> Result<T, JsonError> {
    match obj.get(key) {
        Some(v) => T::from_json(v),
        None => Err(JsonError::new(format!("missing field '{key}'"))),
    }
}

/// Implements [`ToJson`] and [`FromJson`] for a plain struct, listing
/// each field once; serialization preserves the listed order.
#[macro_export]
macro_rules! json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok(Self {
                    $($field: $crate::from_field(v, stringify!($field))?,)+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "-0.25", "1e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.compact()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn int_float_distinction_is_preserved() {
        assert_eq!(Json::parse("3").unwrap(), Json::Int(3));
        assert_eq!(Json::parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(Json::Int(3).compact(), "3");
        assert_eq!(Json::Float(3.0).compact(), "3.0");
        assert_eq!(Json::Float(0.5).compact(), "0.5");
    }

    #[test]
    fn non_finite_floats_write_null() {
        assert_eq!(Json::Float(f64::NAN).compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).compact(), "null");
    }

    #[test]
    fn pretty_layout_matches_two_space_convention() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Int(1)),
            ("b".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("c".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(v.pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ],\n  \"c\": {}\n}");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let text = "{\"z\": 1, \"a\": 2}";
        let v = Json::parse(text).unwrap();
        let keys: Vec<&str> = v.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{0001}unicode\u{00e9}";
        let v = Json::Str(s.to_string());
        let back = Json::parse(&v.compact()).unwrap();
        assert_eq!(back.as_str().unwrap(), s);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for text in ["{not json", "[1,", "{\"a\":}", "tru", "\"open", "1 2", "", "{\"a\" 1}", "[1 2]"] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&deep).is_err());
    }

    #[derive(Debug, PartialEq, Default)]
    struct Demo {
        id: u64,
        name: String,
        score: f32,
        tags: Vec<String>,
        bbox: [f32; 4],
    }
    json_struct!(Demo { id, name, score, tags, bbox });

    #[test]
    fn json_struct_macro_round_trips() {
        let d = Demo {
            id: 7,
            name: "box".into(),
            score: 0.25,
            tags: vec!["a".into(), "b".into()],
            bbox: [1.0, 2.0, 3.0, 4.0],
        };
        let text = d.to_json().pretty();
        let back = Demo::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(d, back);
        // Fields appear in declaration order.
        assert!(text.find("\"id\"").unwrap() < text.find("\"name\"").unwrap());
        assert!(text.find("\"name\"").unwrap() < text.find("\"score\"").unwrap());
    }

    #[test]
    fn json_struct_missing_field_is_error() {
        let v = Json::parse("{\"id\": 1}").unwrap();
        assert!(Demo::from_json(&v).is_err());
    }

    #[test]
    fn map_round_trips_with_stringified_keys() {
        let mut m = BTreeMap::new();
        m.insert(3usize, 0.5f64);
        m.insert(7usize, 1.0f64);
        let text = m.to_json().compact();
        assert_eq!(text, "{\"3\":0.5,\"7\":1.0}");
        let back: BTreeMap<usize, f64> = FromJson::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn f32_round_trips_through_f64_widening() {
        for x in [0.1f32, 1.0, -3.75, f32::MAX, f32::MIN_POSITIVE] {
            let v = x.to_json();
            let back = f32::from_json(&Json::parse(&v.compact()).unwrap()).unwrap();
            assert_eq!(x, back);
        }
    }
}
