//! Bench target: fault-matrix generation throughput (part of DESIGN.md
//! experiment E1). Large-scale campaigns hinge on cheap pre-generation —
//! "a 16-bit model with over 10 million parameters will result in 160
//! million vulnerable bits being tested" (§I) — so generation must scale
//! linearly and stay in the millions-of-faults-per-second range.

use alfi_bench::{build_classifier, ExperimentScale};
use alfi_core::{resolve_targets, FaultMatrix};
use alfi_scenario::{FaultMode, InjectionTarget, Scenario};
use alfi_bench::timing::{BenchmarkId, Harness, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn bench_generation(c: &mut Harness) {
    let (model, mcfg) = build_classifier("resnet50", ExperimentScale::quick(), 3);
    let mut scenario = Scenario::default();
    scenario.injection_target = InjectionTarget::Weights;
    scenario.fault_mode = FaultMode::exponent_bit_flip();
    let targets =
        resolve_targets(&[&model], &scenario, &[Some(mcfg.input_dims(1))]).expect("targets");

    let mut group = c.benchmark_group("fault_generation");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [1_000usize, 10_000, 100_000] {
        scenario.dataset_size = n;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("weights_resnet50", n), &n, |b, _| {
            b.iter(|| black_box(FaultMatrix::generate(&scenario, &targets).expect("generate")))
        });
    }
    // Neuron faults need output shapes — same scale.
    scenario.injection_target = InjectionTarget::Neurons;
    scenario.dataset_size = 10_000;
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("neurons_resnet50_10k", |b| {
        b.iter(|| black_box(FaultMatrix::generate(&scenario, &targets).expect("generate")))
    });
    group.finish();
}

alfi_bench::bench_main!(bench_generation);
