//! Bench target for the validation-efficiency comparison (DESIGN.md
//! experiment E1): ALFI's pre-generated replayable fault matrix versus
//! the PyTorchFI-style sample-on-the-fly baseline, on identical models
//! and fault budgets.

use alfi_bench::{build_classifier, ExperimentScale};
use alfi_core::baseline::AdHocInjector;
use alfi_core::{decode_fault_matrix, encode_fault_matrix, FaultMatrix, Ptfiwrap, resolve_targets};
use alfi_scenario::{FaultMode, InjectionTarget, Scenario};
use alfi_tensor::Tensor;
use alfi_bench::timing::{Harness};
use std::hint::black_box;
use std::time::Duration;

fn scenario(n: usize) -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = n;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s
}

fn bench_efficiency(c: &mut Harness) {
    let scale = ExperimentScale::quick();
    let (model, mcfg) = build_classifier("alexnet", scale, 3);
    let input = Tensor::ones(&mcfg.input_dims(1));

    let mut group = c.benchmark_group("efficiency_alfi_vs_baseline");
    group.sample_size(20).measurement_time(Duration::from_secs(3));

    // Reference: clean inference.
    group.bench_function("clean_inference", |b| {
        b.iter(|| black_box(model.forward(&input).expect("forward")))
    });

    // ALFI: arm next pre-generated fault slot + inference.
    group.bench_function("alfi_faulty_inference", |b| {
        let mut wrapper = Ptfiwrap::new(&model, scenario(100_000), &mcfg.input_dims(1))
            .expect("wrapper");
        b.iter(|| {
            let fm = wrapper.next_faulty_model().expect("matrix large enough");
            black_box(fm.forward(&input).expect("forward"))
        })
    });

    // Baseline: sample faults ad hoc + inference.
    group.bench_function("baseline_faulty_inference", |b| {
        let mut adhoc =
            AdHocInjector::new(&model, scenario(1), &mcfg.input_dims(1)).expect("injector");
        b.iter(|| black_box(adhoc.run_once(&model, &input, 1).expect("run")))
    });

    // ALFI replay: decode + verify the binary artifact (the baseline has
    // no equivalent; replay means a full re-run).
    let targets = resolve_targets(&[&model], &scenario(1), &[Some(mcfg.input_dims(1))]).unwrap();
    let matrix = FaultMatrix::generate(&scenario(1000), &targets).unwrap();
    let bytes = encode_fault_matrix(&matrix);
    group.bench_function("alfi_replay_decode_1k_faults", |b| {
        b.iter(|| black_box(decode_fault_matrix(&bytes).expect("decode")))
    });

    group.finish();
}

alfi_bench::bench_main!(bench_efficiency);
