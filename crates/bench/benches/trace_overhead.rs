//! Bench target: the `alfi-trace` overhead contract. Times the same
//! per-image classification campaign with a disabled recorder (the
//! `RunConfig::default()` path — must cost nothing) and with a fully
//! enabled one (span timings, counters, event assembly), then checks
//! the enabled cost against the documented ceiling of
//! [`OVERHEAD_CEILING_PCT`] percent and prints a PASS/FAIL verdict.
//!
//! The verdict comes from an *interleaved paired* measurement: each
//! round times a batch of disabled iterations and a batch of enabled
//! iterations back-to-back and contributes one enabled/disabled ratio.
//! Sequential whole-group timing (one mode after the other) is useless
//! for a 5 % contract here — container CPU-frequency drift between the
//! two groups routinely exceeds 20 %. The per-round ratio cancels any
//! drift slower than a round; the median over rounds drops outliers.

use alfi_bench::timing::Harness;
use alfi_bench::{build_classifier, ExperimentScale};
use alfi_core::campaign::{ImgClassCampaign, RunConfig};
use alfi_datasets::{ClassificationDataset, ClassificationLoader};
use alfi_scenario::{FaultMode, InjectionTarget, Scenario};
use alfi_trace::Recorder;
use std::hint::black_box;
use std::time::{Duration, Instant};

const DISABLED: &str = "campaign_recorder_disabled";
const ENABLED: &str = "campaign_recorder_enabled";

/// The documented overhead contract: an enabled recorder may slow a
/// campaign down by at most this much (DESIGN.md, tracing section).
const OVERHEAD_CEILING_PCT: f64 = 5.0;

/// Paired rounds contributing one enabled/disabled ratio each.
const ROUNDS: usize = 9;

/// Campaign runs per mode per round.
const ITERS_PER_ROUND: usize = 3;

fn make_campaign() -> ImgClassCampaign {
    let scale = ExperimentScale::quick();
    let (model, mcfg) = build_classifier("alexnet", scale, 3);
    let ds = ClassificationDataset::new(scale.images, mcfg.num_classes, 3, scale.input_hw, 5);
    let loader = ClassificationLoader::new(ds, 1);
    let mut s = Scenario::default();
    s.dataset_size = scale.images;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    ImgClassCampaign::new(model, s, loader)
}

fn run_disabled(campaign: &mut ImgClassCampaign, cfg: &RunConfig) -> Duration {
    let t = Instant::now();
    for _ in 0..ITERS_PER_ROUND {
        black_box(campaign.run_with(cfg).expect("run"));
    }
    t.elapsed()
}

fn run_enabled(campaign: &mut ImgClassCampaign) -> Duration {
    let t = Instant::now();
    for _ in 0..ITERS_PER_ROUND {
        // Fresh recorder per iteration: steady-state re-use would
        // amortize allocation and understate first-run cost.
        let cfg = RunConfig::new().recorder(Recorder::new());
        black_box(campaign.run_with(&cfg).expect("run"));
        black_box(cfg.recorder.summary());
    }
    t.elapsed()
}

/// Runs the interleaved paired measurement and returns
/// `(median disabled ns/iter, median enabled ns/iter, median per-round
/// overhead in percent)`.
fn paired_overhead() -> (f64, f64, f64) {
    let mut campaign = make_campaign();
    let disabled_cfg = RunConfig::default();

    // Warmup: one round of each mode, untimed (cold caches, lazy init).
    black_box(run_disabled(&mut campaign, &disabled_cfg));
    black_box(run_enabled(&mut campaign));

    let mut disabled_ns = Vec::with_capacity(ROUNDS);
    let mut enabled_ns = Vec::with_capacity(ROUNDS);
    let mut ratios = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        // Alternate which mode goes first so within-round drift does
        // not systematically favour one side.
        let (d, e) = if round % 2 == 0 {
            let d = run_disabled(&mut campaign, &disabled_cfg);
            let e = run_enabled(&mut campaign);
            (d, e)
        } else {
            let e = run_enabled(&mut campaign);
            let d = run_disabled(&mut campaign, &disabled_cfg);
            (d, e)
        };
        let d_ns = d.as_nanos() as f64 / ITERS_PER_ROUND as f64;
        let e_ns = e.as_nanos() as f64 / ITERS_PER_ROUND as f64;
        disabled_ns.push(d_ns);
        enabled_ns.push(e_ns);
        ratios.push(e_ns / d_ns);
    }
    (median(&mut disabled_ns), median(&mut enabled_ns), (median(&mut ratios) - 1.0) * 100.0)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn bench_absolute(c: &mut Harness) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(12).measurement_time(Duration::from_secs(3));

    group.bench_function(DISABLED, |b| {
        let mut campaign = make_campaign();
        let cfg = RunConfig::default();
        b.iter(|| black_box(campaign.run_with(&cfg).expect("run")))
    });

    group.bench_function(ENABLED, |b| {
        let mut campaign = make_campaign();
        b.iter(|| {
            let cfg = RunConfig::new().recorder(Recorder::new());
            let result = campaign.run_with(&cfg).expect("run");
            black_box(cfg.recorder.summary());
            black_box(result)
        })
    });

    group.finish();
}

fn main() {
    // Absolute per-mode timings for the JSON report / trend tracking.
    // Not used for the verdict (see the module docs on drift).
    let mut harness = Harness::new();
    bench_absolute(&mut harness);
    harness.report();

    let (disabled, enabled, overhead_pct) = paired_overhead();
    let verdict = if overhead_pct <= OVERHEAD_CEILING_PCT { "PASS" } else { "FAIL" };
    println!(
        "trace overhead (paired): disabled {disabled:.0} ns, enabled {enabled:.0} ns \
         => {overhead_pct:+.2}% (ceiling {OVERHEAD_CEILING_PCT}%) [{verdict}]"
    );
}
