//! Ablation benches for the substrate design choices DESIGN.md calls
//! out: the im2col+GEMM convolution fast path versus the direct
//! reference kernel, model clone cost (the safety mechanism behind
//! `fimodel_iter`), and forward-pass scaling across the model zoo.

use alfi_bench::{build_classifier, ExperimentScale, CLASSIFIERS};
use alfi_tensor::conv::{conv2d_direct, conv2d_im2col, ConvConfig};
use alfi_tensor::Tensor;
use alfi_bench::timing::{BenchmarkId, Harness};
use alfi_rng::Rng;
use std::hint::black_box;
use std::time::Duration;

fn bench_conv_kernels(c: &mut Harness) {
    let mut rng = Rng::from_seed(3);
    let mut group = c.benchmark_group("conv_kernel_ablation");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    for &(c_in, c_out, hw, k) in &[(8usize, 16usize, 16usize, 3usize), (16, 32, 32, 3)] {
        let input = Tensor::rand_normal(&mut rng, &[1, c_in, hw, hw], 0.0, 1.0);
        let weight = Tensor::rand_normal(&mut rng, &[c_out, c_in, k, k], 0.0, 0.2);
        let cfg = ConvConfig { stride: 1, padding: 1, dilation: 1 };
        let label = format!("{c_in}x{hw}x{hw}_to_{c_out}");
        group.bench_with_input(BenchmarkId::new("direct", &label), &(), |b, ()| {
            b.iter(|| black_box(conv2d_direct(&input, &weight, None, cfg).expect("conv")))
        });
        group.bench_with_input(BenchmarkId::new("im2col", &label), &(), |b, ()| {
            b.iter(|| black_box(conv2d_im2col(&input, &weight, None, cfg).expect("conv")))
        });
    }
    group.finish();
}

fn bench_model_forward_and_clone(c: &mut Harness) {
    let scale = ExperimentScale::quick();
    let mut group = c.benchmark_group("model_substrate");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for model_name in CLASSIFIERS {
        let (model, cfg) = build_classifier(model_name, scale, 7);
        let input = Tensor::ones(&cfg.input_dims(1));
        group.bench_function(format!("forward_{model_name}"), |b| {
            b.iter(|| black_box(model.forward(&input).expect("forward")))
        });
        // Clone cost: what every faulty-model instantiation pays to keep
        // the original pristine.
        group.bench_function(format!("clone_{model_name}"), |b| {
            b.iter(|| black_box(model.clone()))
        });
    }
    group.finish();
}

alfi_bench::bench_main!(bench_conv_kernels, bench_model_forward_and_clone);
