//! Bench target: training-substrate throughput — forward vs
//! forward+backward+SGD step cost on the trainable CNN used by the
//! trained-substrate reproduction (`repro_trained_sde`). The classic
//! rule of thumb is backward ≈ 2× forward; this bench pins the actual
//! ratio of this substrate.

use alfi_nn::train::{backward, softmax_cross_entropy, train_step, SgdTrainer};
use alfi_nn::{Conv2d, Layer, Linear, Network};
use alfi_tensor::conv::ConvConfig;
use alfi_tensor::Tensor;
use alfi_bench::timing::{Harness};
use alfi_rng::Rng;
use std::hint::black_box;
use std::time::Duration;

fn build_cnn(classes: usize, seed: u64) -> Network {
    let mut rng = Rng::from_seed(seed);
    let mut he = |dims: &[usize]| {
        let fan_in: usize = dims[1..].iter().product();
        Tensor::rand_normal(&mut rng, dims, 0.0, (2.0 / fan_in as f32).sqrt())
    };
    let mut net = Network::new("bench_cnn");
    let c1 = net
        .push(
            "conv1",
            Layer::Conv2d(Conv2d {
                weight: he(&[8, 3, 3, 3]),
                bias: Some(Tensor::zeros(&[8])),
                cfg: ConvConfig { stride: 1, padding: 1, dilation: 1 },
            }),
            &[],
        )
        .expect("graph");
    let r1 = net.push("relu1", Layer::Relu, &[c1]).expect("graph");
    let p1 = net
        .push("pool1", Layer::MaxPool2d { k: 2, cfg: ConvConfig { stride: 2, padding: 0, dilation: 1 } }, &[r1])
        .expect("graph");
    let fl = net.push("flatten", Layer::Flatten, &[p1]).expect("graph");
    let f1 = net
        .push(
            "fc1",
            Layer::Linear(Linear {
                weight: he(&[classes, 8 * 8 * 8]),
                bias: Some(Tensor::zeros(&[classes])),
            }),
            &[fl],
        )
        .expect("graph");
    net.set_output(f1).expect("graph");
    net
}

fn bench_training(c: &mut Harness) {
    let classes = 4usize;
    let net = build_cnn(classes, 3);
    let mut rng = Rng::from_seed(5);
    let images = Tensor::rand_uniform(&mut rng, &[8, 3, 16, 16], 0.0, 1.0);
    let labels: Vec<usize> = (0..8).map(|i| i % classes).collect();

    let mut group = c.benchmark_group("training_throughput");
    group.sample_size(30).measurement_time(Duration::from_secs(3));

    group.bench_function("forward_batch8", |b| {
        b.iter(|| black_box(net.forward(&images).expect("forward")))
    });
    group.bench_function("forward_loss_backward_batch8", |b| {
        b.iter(|| {
            let logits = net.forward(&images).expect("forward");
            let (_, grad) = softmax_cross_entropy(&logits, &labels).expect("loss");
            black_box(backward(&net, &images, &grad).expect("backward"))
        })
    });
    group.bench_function("full_sgd_step_batch8", |b| {
        let mut train_net = net.clone();
        let mut trainer = SgdTrainer::new(0.01, 0.9);
        b.iter(|| {
            black_box(
                train_step(&mut train_net, &mut trainer, &images, &labels).expect("train step"),
            )
        })
    });
    group.finish();
}

alfi_bench::bench_main!(bench_training);
