//! Bench target for Fig. 2b (DESIGN.md experiment F2b): detection IVMOD
//! campaigns per detector architecture, timed by the in-tree harness, with the
//! reproduced IVMOD numbers printed once per configuration.

use alfi_bench::{run_fig2b_point, ExperimentScale, DETECTORS};
use alfi_bench::timing::{Harness};
use std::time::Duration;

fn bench_fig2b(c: &mut Harness) {
    let scale = ExperimentScale::quick();
    let mut group = c.benchmark_group("fig2b_detection_ivmod");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for detector in DETECTORS {
        let p = run_fig2b_point(detector, "synth-coco", 1, scale, 42);
        eprintln!(
            "[fig2b] {detector}/synth-coco: IVMOD_SDE {:.1}%, IVMOD_DUE {:.1}% @ 1 fault/img (n={})",
            p.ivmod.ivmod_sde.percent(),
            p.ivmod.ivmod_due.percent(),
            p.ivmod.ivmod_sde.total
        );
        group.bench_function(format!("{detector}_synthcoco_1fault"), |b| {
            b.iter(|| run_fig2b_point(detector, "synth-coco", 1, scale, 42))
        });
    }
    group.finish();
}

alfi_bench::bench_main!(bench_fig2b);
