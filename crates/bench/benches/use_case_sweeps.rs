//! Bench targets for the §V use-case sweeps (DESIGN.md experiments U1,
//! U2a–U2d): each sweep is runnable under `cargo bench` at quick scale,
//! with its reproduced headline numbers printed once. The full printed
//! tables live in `repro_sweeps`.

use alfi_bench::{build_classifier, ExperimentScale};
use alfi_core::Ptfiwrap;
use alfi_nn::Network;
use alfi_scenario::{FaultCount, FaultMode, InjectionTarget, Scenario};
use alfi_tensor::Tensor;
use alfi_bench::timing::{Harness};
use std::hint::black_box;
use std::time::Duration;

fn base_scenario(images: usize) -> Scenario {
    let mut s = Scenario::default();
    s.dataset_size = images;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    s.seed = 99;
    s
}

fn sde_probability(model: &Network, wrapper: &mut Ptfiwrap, input: &Tensor) -> f64 {
    let orig = model.forward(input).expect("forward").batch_item(0).expect("item").argmax();
    let mut sde = 0usize;
    let mut total = 0usize;
    while let Ok(fm) = wrapper.next_faulty_model() {
        let out = fm.forward(input).expect("forward");
        if out.batch_item(0).expect("item").argmax() != orig || out.has_non_finite() {
            sde += 1;
        }
        total += 1;
    }
    sde as f64 / total.max(1) as f64
}

fn bench_sweeps(c: &mut Harness) {
    let scale = ExperimentScale::quick();
    let (model, mcfg) = build_classifier("alexnet", scale, 5);
    let input = Tensor::ones(&mcfg.input_dims(1));
    let mut group = c.benchmark_group("use_case_sweeps");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    // U1: random positions campaign.
    {
        let mut w = Ptfiwrap::new(&model, base_scenario(scale.images), &mcfg.input_dims(1))
            .expect("wrapper");
        let p = sde_probability(&model, &mut w, &input);
        eprintln!("[U1] random-position SDE probability: {:.1}%", p * 100.0);
    }
    group.bench_function("u1_random_positions", |b| {
        b.iter(|| {
            let mut w = Ptfiwrap::new(&model, base_scenario(scale.images), &mcfg.input_dims(1))
                .expect("wrapper");
            black_box(sde_probability(&model, &mut w, &input))
        })
    });

    // U2a: one pinned-layer pass (layer 0 vs last layer printed).
    {
        let layers = model.injectable_layers(None, None).expect("layers").len();
        for layer in [0, layers - 1] {
            let mut s = base_scenario(scale.images);
            s.layer_range = Some((layer, layer));
            s.weighted_layer_selection = false;
            let mut w = Ptfiwrap::new(&model, s, &mcfg.input_dims(1)).expect("wrapper");
            let p = sde_probability(&model, &mut w, &input);
            eprintln!("[U2a] layer {layer} SDE: {:.1}%", p * 100.0);
        }
    }
    group.bench_function("u2a_layer_sweep_single_layer", |b| {
        b.iter(|| {
            let mut s = base_scenario(scale.images);
            s.layer_range = Some((0, 0));
            s.weighted_layer_selection = false;
            let mut w = Ptfiwrap::new(&model, s, &mcfg.input_dims(1)).expect("wrapper");
            black_box(sde_probability(&model, &mut w, &input))
        })
    });

    // U2b: escalation endpoint (50 faults).
    {
        let mut s = base_scenario(scale.images);
        s.faults_per_image = FaultCount::Fixed(50);
        let mut w = Ptfiwrap::new(&model, s, &mcfg.input_dims(1)).expect("wrapper");
        let p = sde_probability(&model, &mut w, &input);
        eprintln!("[U2b] 50 faults/img SDE: {:.1}%", p * 100.0);
    }
    group.bench_function("u2b_fault_count_50", |b| {
        b.iter(|| {
            let mut s = base_scenario(scale.images);
            s.faults_per_image = FaultCount::Fixed(50);
            let mut w = Ptfiwrap::new(&model, s, &mcfg.input_dims(1)).expect("wrapper");
            black_box(sde_probability(&model, &mut w, &input))
        })
    });

    // U2c: neuron-target campaign.
    {
        let mut s = base_scenario(scale.images);
        s.injection_target = InjectionTarget::Neurons;
        let mut w = Ptfiwrap::new(&model, s, &mcfg.input_dims(1)).expect("wrapper");
        let p = sde_probability(&model, &mut w, &input);
        eprintln!("[U2c] neuron-fault SDE: {:.1}%", p * 100.0);
    }
    group.bench_function("u2c_neuron_faults", |b| {
        b.iter(|| {
            let mut s = base_scenario(scale.images);
            s.injection_target = InjectionTarget::Neurons;
            let mut w = Ptfiwrap::new(&model, s, &mcfg.input_dims(1)).expect("wrapper");
            black_box(sde_probability(&model, &mut w, &input))
        })
    });

    // U2d: single-bit campaign at the most/least dangerous positions.
    {
        for bit in [30u8, 0u8] {
            let mut s = base_scenario(scale.images);
            s.fault_mode = FaultMode::BitFlip { bit_range: (bit, bit) };
            let mut w = Ptfiwrap::new(&model, s, &mcfg.input_dims(1)).expect("wrapper");
            let p = sde_probability(&model, &mut w, &input);
            eprintln!("[U2d] bit {bit} SDE: {:.1}%", p * 100.0);
        }
    }
    group.bench_function("u2d_bit30_campaign", |b| {
        b.iter(|| {
            let mut s = base_scenario(scale.images);
            s.fault_mode = FaultMode::BitFlip { bit_range: (30, 30) };
            let mut w = Ptfiwrap::new(&model, s, &mcfg.input_dims(1)).expect("wrapper");
            black_box(sde_probability(&model, &mut w, &input))
        })
    });

    group.finish();
}

alfi_bench::bench_main!(bench_sweeps);
