//! Bench target: hook-dispatch and injection overhead at the layer
//! level (part of DESIGN.md experiment E1). Separates the cost of
//! (a) the hook mechanism itself, (b) a counting no-op hook on every
//! node, and (c) an armed neuron-fault hook, all against the clean
//! forward pass.

use alfi_bench::{build_classifier, ExperimentScale};
use alfi_core::baseline::CountingHook;
use alfi_core::monitor::{attach_monitor, NanInfMonitor};
use alfi_core::Ptfiwrap;
use alfi_scenario::{FaultMode, InjectionTarget, Scenario};
use alfi_tensor::Tensor;
use alfi_bench::timing::{Harness};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_overhead(c: &mut Harness) {
    let scale = ExperimentScale::quick();
    let (model, mcfg) = build_classifier("alexnet", scale, 3);
    let input = Tensor::ones(&mcfg.input_dims(1));

    let mut group = c.benchmark_group("injection_overhead");
    group.sample_size(30).measurement_time(Duration::from_secs(3));

    group.bench_function("forward_clean", |b| {
        b.iter(|| black_box(model.forward(&input).expect("forward")))
    });

    // No-op counting hook on every node: pure dispatch cost.
    group.bench_function("forward_counting_hooks_all_nodes", |b| {
        let mut hooked = model.clone();
        let hook = Arc::new(CountingHook::new());
        for id in 0..hooked.num_nodes() {
            hooked.register_hook(id, Arc::<CountingHook>::clone(&hook) as _).expect("register");
        }
        b.iter(|| black_box(hooked.forward(&input).expect("forward")))
    });

    // NaN/Inf monitor on every node: the DUE-observability cost.
    group.bench_function("forward_naninf_monitor_all_nodes", |b| {
        let mut hooked = model.clone();
        let monitor = Arc::new(NanInfMonitor::new());
        attach_monitor(&mut hooked, Arc::<NanInfMonitor>::clone(&monitor) as _).expect("attach");
        b.iter(|| black_box(hooked.forward(&input).expect("forward")))
    });

    // One armed neuron fault: the actual injection path.
    group.bench_function("forward_one_neuron_fault", |b| {
        let mut s = Scenario::default();
        s.dataset_size = 1;
        s.injection_target = InjectionTarget::Neurons;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let mut wrapper = Ptfiwrap::new(&model, s, &mcfg.input_dims(1)).expect("wrapper");
        let fm = wrapper.next_faulty_model().expect("slot");
        b.iter(|| black_box(fm.forward(&input).expect("forward")))
    });

    group.finish();
}

alfi_bench::bench_main!(bench_overhead);
