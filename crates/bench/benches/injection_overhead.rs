//! Bench target: hook-dispatch and injection overhead at the layer
//! level (part of DESIGN.md experiment E1). Separates the cost of
//! (a) the hook mechanism itself, (b) a counting no-op hook on every
//! node, and (c) an armed neuron-fault hook, all against the clean
//! forward pass.

use alfi_bench::{build_classifier, ExperimentScale};
use alfi_core::baseline::CountingHook;
use alfi_core::monitor::{attach_monitor, NanInfMonitor};
use alfi_core::Ptfiwrap;
use alfi_scenario::{FaultMode, InjectionTarget, Scenario};
use alfi_tensor::Tensor;
use alfi_bench::timing::{BenchmarkId, Harness};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_overhead(c: &mut Harness) {
    let scale = ExperimentScale::quick();
    let (model, mcfg) = build_classifier("alexnet", scale, 3);
    let input = Tensor::ones(&mcfg.input_dims(1));

    let mut group = c.benchmark_group("injection_overhead");
    group.sample_size(30).measurement_time(Duration::from_secs(3));

    group.bench_function("forward_clean", |b| {
        b.iter(|| black_box(model.forward(&input).expect("forward")))
    });

    // No-op counting hook on every node: pure dispatch cost.
    group.bench_function("forward_counting_hooks_all_nodes", |b| {
        let mut hooked = model.clone();
        let hook = Arc::new(CountingHook::new());
        for id in 0..hooked.num_nodes() {
            hooked.register_hook(id, Arc::<CountingHook>::clone(&hook) as _).expect("register");
        }
        b.iter(|| black_box(hooked.forward(&input).expect("forward")))
    });

    // NaN/Inf monitor on every node: the DUE-observability cost.
    group.bench_function("forward_naninf_monitor_all_nodes", |b| {
        let mut hooked = model.clone();
        let monitor = Arc::new(NanInfMonitor::new());
        attach_monitor(&mut hooked, Arc::<NanInfMonitor>::clone(&monitor) as _).expect("attach");
        b.iter(|| black_box(hooked.forward(&input).expect("forward")))
    });

    // One armed neuron fault: the actual injection path.
    group.bench_function("forward_one_neuron_fault", |b| {
        let mut s = Scenario::default();
        s.dataset_size = 1;
        s.injection_target = InjectionTarget::Neurons;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let mut wrapper = Ptfiwrap::new(&model, s, &mcfg.input_dims(1)).expect("wrapper");
        let fm = wrapper.next_faulty_model().expect("slot");
        b.iter(|| black_box(fm.forward(&input).expect("forward")))
    });

    group.finish();
}

/// Range-supervision cost: the spliced hardened model (extra
/// `RangeRestrict` nodes, each a second full pass over the layer's
/// activations) against the fused hardened model (the same clamp
/// folded into the conv/linear GEMM epilogue, applied while the output
/// tile is still cache-hot). Both produce bit-identical outputs on a
/// hook-free model; the delta here is the price of the second pass.
fn bench_hardened_fusion(c: &mut Harness) {
    use alfi_mitigation::{harden, harden_fused, profile_bounds, Protection};

    let scale = ExperimentScale::quick();
    let (model, mcfg) = build_classifier("alexnet", scale, 3);
    let input = Tensor::ones(&mcfg.input_dims(1));
    let bounds = profile_bounds(&model, std::iter::once(&input)).expect("bounds");

    let mut group = c.benchmark_group("hardened_fusion");
    group.sample_size(30).measurement_time(Duration::from_secs(3));

    group.bench_function("forward_unhardened", |b| {
        b.iter(|| black_box(model.forward(&input).expect("forward")))
    });
    group.bench_function("forward_hardened_spliced", |b| {
        let hardened = harden(&model, &bounds, Protection::Ranger, 0.1).expect("harden");
        b.iter(|| black_box(hardened.forward(&input).expect("forward")))
    });
    group.bench_function("forward_hardened_fused", |b| {
        let hardened =
            harden_fused(&model, &bounds, Protection::Ranger, 0.1).expect("harden_fused");
        b.iter(|| black_box(hardened.forward(&input).expect("forward")))
    });

    group.finish();
}

/// Thread-count sweep: the clean forward pass over a batched input at
/// pool caps 1/2/4/N, driving the row-chunked matmul and per-item conv
/// kernels end to end. The results must be bit-identical at every cap
/// (the determinism tests pin that); this group measures what the caps
/// cost or buy.
fn bench_thread_sweep(c: &mut Harness) {
    let scale = ExperimentScale::quick();
    let (model, mcfg) = build_classifier("alexnet", scale, 3);
    let batch = Tensor::ones(&mcfg.input_dims(8));

    let n_max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, n_max];
    counts.sort_unstable();
    counts.dedup();

    let mut group = c.benchmark_group("forward_thread_sweep");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for &threads in &counts {
        group.bench_with_input(BenchmarkId::new("forward_batch8", threads), &threads, |b, &t| {
            b.iter(|| {
                alfi_pool::with_parallelism(t, || black_box(model.forward(&batch).expect("forward")))
            })
        });
    }
    group.finish();
}

alfi_bench::bench_main!(bench_overhead, bench_hardened_fusion, bench_thread_sweep);
