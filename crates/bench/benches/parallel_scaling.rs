//! Bench target: campaign-level scaling on the shared thread pool
//! (DESIGN.md experiment E1 extension). Times a full per-image
//! classification campaign sequentially (pool capped at one thread)
//! and via `run_with` at 1/2/4/N threads, then writes a speedup
//! report alongside the usual timing JSON. The determinism tests pin
//! that every configuration produces bit-identical artifacts, so the
//! only thing that may vary here is wall-clock time.

use alfi_bench::timing::{BenchResult, BenchmarkId, Harness};
use alfi_bench::{build_classifier, ExperimentScale};
use alfi_core::campaign::{ImgClassCampaign, RunConfig};
use alfi_datasets::{ClassificationDataset, ClassificationLoader};
use alfi_scenario::{ArtifactFormat, FaultMode, InjectionTarget, Scenario};
use alfi_serde::Json;
use alfi_tensor::gemm::{self, KernelPath};
use alfi_tensor::Tensor;
use std::hint::black_box;
use std::time::Duration;

const SEQUENTIAL: &str = "campaign_sequential";
const PARALLEL: &str = "campaign_parallel";
const KERNEL: &str = "forward_single_thread_kernel";
const REPORT: &str = "analyze_report";

fn thread_counts() -> Vec<usize> {
    let n_max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, n_max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn make_campaign() -> ImgClassCampaign {
    let scale = ExperimentScale::quick();
    let (model, mcfg) = build_classifier("alexnet", scale, 3);
    let ds = ClassificationDataset::new(scale.images, mcfg.num_classes, 3, scale.input_hw, 5);
    let loader = ClassificationLoader::new(ds, 1);
    let mut s = Scenario::default();
    s.dataset_size = scale.images;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    ImgClassCampaign::new(model, s, loader)
}

fn bench_scaling(c: &mut Harness) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    // Baseline: the plain sequential driver with the pool pinned to one
    // thread, so the tensor kernels cannot parallelize either.
    group.bench_function(SEQUENTIAL, |b| {
        let mut campaign = make_campaign();
        b.iter(|| {
            alfi_pool::with_parallelism(1, || {
                black_box(campaign.run_with(&RunConfig::default()).expect("run"))
            })
        })
    });

    for threads in thread_counts() {
        group.bench_with_input(BenchmarkId::new(PARALLEL, threads), &threads, |b, &t| {
            let mut campaign = make_campaign();
            let cfg = RunConfig::new().threads(t);
            b.iter(|| black_box(campaign.run_with(&cfg).expect("run_with")))
        });
    }
    group.finish();
}

/// Kernel-path comparison on a conv-dominated workload: a pure batched
/// forward pass (no injection, no campaign machinery) with the pool
/// pinned to one thread, so the only variable is the GEMM kernel. The
/// conformance suite pins that both paths produce bit-identical
/// outputs; this group measures what the cache-blocked packed path
/// buys over the sequential reference.
fn bench_kernel_paths(c: &mut Harness) {
    // A conv-dominated workload: VGG's stride-1 3×3 stacks keep the
    // spatial extent (GEMM `n`) large through the whole network, so the
    // forward pass is almost entirely im2col GEMM. The blocked kernel's
    // win also scales with output-channel count (its packing cost
    // amortizes as `1/c_out`), and the paper-scale networks are far
    // wider than the quick campaign scale used above.
    // Batch 4 keeps the conv GEMMs dominant: the classifier head's
    // cost is one streaming pass over its weights per *forward* (all
    // batch rows share it), so it amortizes with batch size while the
    // conv work scales linearly.
    let scale = ExperimentScale { width_permille: 1000, ..ExperimentScale::quick() };
    let (model, mcfg) = build_classifier("vgg16", scale, 3);
    let batch = Tensor::ones(&mcfg.input_dims(4));

    let mut group = c.benchmark_group("kernel_paths");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for path in [KernelPath::Reference, KernelPath::Blocked] {
        group.bench_with_input(BenchmarkId::new(KERNEL, path), &path, |b, &p| {
            let prev = gemm::kernel_override();
            gemm::set_kernel_override(Some(p));
            b.iter(|| {
                alfi_pool::with_parallelism(1, || black_box(model.forward(&batch).expect("forward")))
            });
            gemm::set_kernel_override(prev);
        });
    }
    group.finish();
}

/// Runs one traced campaign at the highest benchmarked thread count
/// and folds the recorder's [`alfi_trace::TraceSummary`] into a JSON
/// per-phase breakdown (where the campaign wall-clock actually goes:
/// forward vs inject vs eval).
fn phase_breakdown() -> Json {
    let threads = thread_counts().pop().unwrap_or(1);
    let rec = alfi_trace::Recorder::new();
    let mut campaign = make_campaign();
    campaign
        .run_with(&RunConfig::new().threads(threads).recorder(rec.clone()))
        .expect("traced run");
    let summary = rec.summary();
    let phases = summary
        .phases
        .iter()
        .map(|(name, st)| {
            Json::Obj(vec![
                ("phase".to_string(), Json::Str((*name).to_string())),
                ("count".to_string(), Json::Int(st.count as i128)),
                ("total_ns".to_string(), Json::Int(st.total_ns as i128)),
                ("p50_ns".to_string(), Json::Int(st.p50_ns as i128)),
                ("p95_ns".to_string(), Json::Int(st.p95_ns as i128)),
                ("max_ns".to_string(), Json::Int(st.max_ns as i128)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("threads".to_string(), Json::Int(threads as i128)),
        ("items".to_string(), Json::Int(summary.items as i128)),
        ("phases".to_string(), Json::Arr(phases)),
    ])
}

/// Runs one metered campaign at the highest benchmarked thread count
/// and summarizes its registry snapshot: engine scope throughput plus
/// the pool's worker-busy fraction (busy seconds across all workers
/// over `elapsed × pool threads` — how much of the theoretical
/// parallel capacity the campaign actually used).
fn metrics_snapshot() -> Json {
    let threads = thread_counts().pop().unwrap_or(1);
    let registry = alfi_metrics::Registry::new();
    let mut campaign = make_campaign();
    // Pool worker timers publish into the process-global registry, and
    // only counters that fired inside this window should count.
    let busy_before = alfi_metrics::global()
        .snapshot()
        .float_sum(alfi_metrics::names::POOL_BUSY_SECONDS);
    let t = std::time::Instant::now();
    campaign
        .run_with(&RunConfig::new().threads(threads).metrics(registry.clone()))
        .expect("metered run");
    let elapsed = t.elapsed().as_secs_f64();
    let global = alfi_metrics::global().snapshot();
    let busy_seconds = global.float_sum(alfi_metrics::names::POOL_BUSY_SECONDS) - busy_before;
    let pool_threads = alfi_pool::global().threads().max(1);
    let snap = registry.snapshot();
    let scopes = snap.counter(alfi_metrics::names::ENGINE_SCOPES);
    Json::Obj(vec![
        ("threads".to_string(), Json::Int(threads as i128)),
        ("scopes".to_string(), Json::Int(scopes as i128)),
        ("elapsed_s".to_string(), Json::Float(elapsed)),
        (
            "scopes_per_second".to_string(),
            if elapsed > 0.0 { Json::Float(scopes as f64 / elapsed) } else { Json::Null },
        ),
        ("pool_busy_seconds".to_string(), Json::Float(busy_seconds)),
        (
            "worker_busy_fraction".to_string(),
            if elapsed > 0.0 {
                Json::Float(busy_seconds / (elapsed * pool_threads as f64))
            } else {
                Json::Null
            },
        ),
    ])
}

/// Runs one early-stopped campaign at the highest benchmarked thread
/// count and reports executed-vs-total fault-scope counts — the
/// validation-efficiency headline: what fraction of the planned matrix
/// a confidence-targeted run actually needed.
fn early_stop_efficiency() -> Json {
    use alfi_scenario::{CiMethod, StopPolicy, StopScope};
    let threads = thread_counts().pop().unwrap_or(1);
    let policy = StopPolicy {
        half_width: 0.1,
        confidence: 0.95,
        min_samples: 16,
        check_every: 16,
        scope: StopScope::Campaign,
        method: CiMethod::Wilson,
    };
    // A matrix large enough that the precision target, not exhaustion,
    // ends the run (the quick benchmark scale is smaller than the
    // policy's sample floor).
    let images = 192;
    let scale = ExperimentScale::quick();
    let (model, mcfg) = build_classifier("alexnet", scale, 3);
    let ds = ClassificationDataset::new(images, mcfg.num_classes, 3, scale.input_hw, 5);
    let loader = ClassificationLoader::new(ds, 1);
    let mut s = Scenario::default();
    s.dataset_size = images;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    let rec = alfi_trace::Recorder::new();
    let mut campaign = ImgClassCampaign::new(model, s, loader);
    campaign
        .run_with(&RunConfig::new().threads(threads).recorder(rec.clone()).stop_policy(policy))
        .expect("early-stopped run");
    let Some(outcome) = rec.summary().stop else {
        return Json::Null;
    };
    let executed_fraction = if outcome.planned_scopes > 0 {
        Json::Float(outcome.executed_scopes as f64 / outcome.planned_scopes as f64)
    } else {
        Json::Null
    };
    Json::Obj(vec![
        ("threads".to_string(), Json::Int(threads as i128)),
        ("requested_half_width".to_string(), Json::Float(outcome.requested_half_width)),
        ("confidence".to_string(), Json::Float(outcome.confidence)),
        ("executed_scopes".to_string(), Json::Int(outcome.executed_scopes as i128)),
        ("skipped_scopes".to_string(), Json::Int(outcome.skipped_scopes as i128)),
        ("planned_scopes".to_string(), Json::Int(outcome.planned_scopes as i128)),
        ("executed_fraction".to_string(), executed_fraction),
        ("achieved_sdc_half_width".to_string(), Json::Float(outcome.achieved_sdc_half_width)),
        ("achieved_due_half_width".to_string(), Json::Float(outcome.achieved_due_half_width)),
        ("stopped_early".to_string(), Json::Bool(outcome.stopped_early)),
    ])
}

/// Runs the same campaign once with CSV row artifacts and once with
/// the columnar binary store, and reports the on-disk size of each —
/// the storage-efficiency headline for the `--format binary` path
/// (DESIGN.md targets a store at most 40% of the CSV pair).
fn artifact_size() -> Json {
    let run = |format: ArtifactFormat, tag: &str| {
        let dir = std::env::temp_dir().join(format!("alfi_bench_artifact_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        make_campaign()
            .run_with(&RunConfig::new().save_dir(&dir).format(format))
            .expect("artifact run");
        let a = alfi_core::Artifacts::new(&dir);
        let size = |p: std::path::PathBuf| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
        let bytes = size(a.rows_orig()) + size(a.rows_corr()) + size(a.rows_resil())
            + size(a.rows_store());
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    };
    let csv_bytes = run(ArtifactFormat::Csv, "csv");
    let store_bytes = run(ArtifactFormat::Binary, "bin");
    let ratio = if csv_bytes > 0 {
        Json::Float(store_bytes as f64 / csv_bytes as f64)
    } else {
        Json::Null
    };
    Json::Obj(vec![
        ("csv_bytes".to_string(), Json::Int(csv_bytes as i128)),
        ("binary_bytes".to_string(), Json::Int(store_bytes as i128)),
        ("binary_over_csv".to_string(), ratio),
    ])
}

/// Builds one finished quick-scale campaign run directory (with a
/// trace log, so the report's event-log section is populated) for the
/// analyzer to consume.
fn make_report_run(format: ArtifactFormat, tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("alfi_bench_report_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    make_campaign()
        .run_with(
            &RunConfig::new()
                .save_dir(&dir)
                .format(format)
                .recorder(alfi_trace::Recorder::new()),
        )
        .expect("report source run");
    dir
}

/// Report generation over a finished run, for both row-artifact
/// formats. `analyze_dir` streams the rows (they are never fully
/// materialized), so this measures pure decode + rate/CI aggregation
/// throughput over the campaign's persisted artifacts.
fn bench_report_generation(c: &mut Harness) {
    let mut group = c.benchmark_group("report_generation");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (format, tag) in [(ArtifactFormat::Csv, "csv"), (ArtifactFormat::Binary, "binary")] {
        let dir = make_report_run(format, tag);
        group.bench_with_input(BenchmarkId::new(REPORT, tag), &dir, |b, d| {
            b.iter(|| black_box(alfi_analyze::report::analyze_dir(d).expect("analyze")))
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Summarizes report-generation throughput: rows scanned per second
/// per row-artifact format, from the bench medians and the
/// (format-independent) row count of the quick campaign.
fn report_generation_summary(results: &[BenchResult]) -> Json {
    let dir = make_report_run(ArtifactFormat::Binary, "rowcount");
    let rows = alfi_analyze::report::analyze_dir(&dir).expect("analyze").rows;
    let _ = std::fs::remove_dir_all(&dir);
    let mut formats = Vec::new();
    for tag in ["csv", "binary"] {
        let median =
            results.iter().find(|r| r.name == format!("{REPORT}/{tag}")).map(|r| r.median_ns);
        let rows_per_second = match median {
            Some(ns) if ns > 0.0 => Json::Float(rows as f64 * 1e9 / ns),
            _ => Json::Null,
        };
        formats.push(Json::Obj(vec![
            ("format".to_string(), Json::Str(tag.to_string())),
            ("median_ns".to_string(), median.map(Json::Float).unwrap_or(Json::Null)),
            ("rows_per_second".to_string(), rows_per_second),
        ]));
    }
    Json::Obj(vec![
        ("rows".to_string(), Json::Int(rows as i128)),
        ("formats".to_string(), Json::Arr(formats)),
    ])
}

/// Summarizes the kernel-path comparison: reference vs blocked median
/// wall-clock on the single-thread conv-dominated forward pass, and
/// the resulting speedup multiple.
fn kernel_speedup(results: &[BenchResult]) -> Json {
    let median = |path: KernelPath| {
        results
            .iter()
            .find(|r| r.name == format!("{KERNEL}/{path}"))
            .map(|r| r.median_ns)
    };
    let reference = median(KernelPath::Reference);
    let blocked = median(KernelPath::Blocked);
    let speedup = match (reference, blocked) {
        (Some(r), Some(b)) if b > 0.0 => Json::Float(r / b),
        _ => Json::Null,
    };
    Json::Obj(vec![
        ("reference_median_ns".to_string(), reference.map(Json::Float).unwrap_or(Json::Null)),
        ("blocked_median_ns".to_string(), blocked.map(Json::Float).unwrap_or(Json::Null)),
        ("blocked_speedup_vs_reference".to_string(), speedup),
        ("simd_available".to_string(), Json::Bool(gemm::simd_available())),
    ])
}

/// Derives per-thread-count speedups from the harness results and
/// writes them to `$ALFI_BENCH_SPEEDUP_JSON` or
/// `target/alfi-bench/parallel_scaling_speedup.json`.
fn write_speedup_report(results: &[BenchResult]) {
    let baseline = results.iter().find(|r| r.name == SEQUENTIAL).map(|r| r.median_ns);
    let mut points = Vec::new();
    for r in results {
        let Some(threads) = r.name.strip_prefix(PARALLEL).and_then(|s| s.strip_prefix('/'))
        else {
            continue;
        };
        let threads: i128 = threads.parse().unwrap_or(0);
        let speedup = match baseline {
            Some(seq) if r.median_ns > 0.0 => Json::Float(seq / r.median_ns),
            _ => Json::Null,
        };
        points.push(Json::Obj(vec![
            ("threads".to_string(), Json::Int(threads)),
            ("median_ns".to_string(), Json::Float(r.median_ns)),
            ("speedup_vs_sequential".to_string(), speedup),
        ]));
    }
    let hw_threads =
        std::thread::available_parallelism().map(|n| n.get() as i128).unwrap_or(1);
    let pool_env = match std::env::var(alfi_pool::POOL_THREADS_ENV) {
        Ok(v) => Json::Str(v),
        Err(_) => Json::Null,
    };
    let report = Json::Obj(vec![
        ("bench".to_string(), Json::Str("parallel_scaling".to_string())),
        (
            "baseline_sequential_median_ns".to_string(),
            baseline.map(Json::Float).unwrap_or(Json::Null),
        ),
        ("hardware_threads".to_string(), Json::Int(hw_threads)),
        (alfi_pool::POOL_THREADS_ENV.to_string(), pool_env),
        ("points".to_string(), Json::Arr(points)),
        ("kernel_speedup".to_string(), kernel_speedup(results)),
        ("traced_phase_breakdown".to_string(), phase_breakdown()),
        ("metrics_snapshot".to_string(), metrics_snapshot()),
        ("early_stop_efficiency".to_string(), early_stop_efficiency()),
        ("artifact_size".to_string(), artifact_size()),
        ("report_generation".to_string(), report_generation_summary(results)),
    ]);

    let path = std::env::var_os("ALFI_BENCH_SPEEDUP_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::PathBuf::from("target")
                .join("alfi-bench")
                .join("parallel_scaling_speedup.json")
        });
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, report.pretty()) {
        Ok(()) => eprintln!("[bench] speedup report written to {}", path.display()),
        Err(e) => eprintln!("[bench] could not write speedup report to {}: {e}", path.display()),
    }
}

fn main() {
    let mut harness = Harness::new();
    bench_scaling(&mut harness);
    bench_kernel_paths(&mut harness);
    bench_report_generation(&mut harness);
    harness.report();
    write_speedup_report(harness.results());
}
