//! Bench target for Fig. 2a (see DESIGN.md experiment F2a): runs the
//! classification-SDE campaign for each model of the paper's figure and
//! reports both wall-clock cost (the bench harness) and the reproduced SDE
//! numbers (printed once per model to stderr).
//!
//! The full printed table lives in `repro_fig2a`; this target keeps the
//! experiment runnable under `cargo bench` as required by the
//! reproduction index.

use alfi_bench::{run_fig2a_point, ExperimentScale, CLASSIFIERS};
use alfi_mitigation::Protection;
use alfi_bench::timing::{Harness};
use std::time::Duration;

fn bench_fig2a(c: &mut Harness) {
    let scale = ExperimentScale::quick();
    let mut group = c.benchmark_group("fig2a_classification_sde");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for model in CLASSIFIERS {
        // Print the reproduced data point once, outside the timing loop.
        let unprot = run_fig2a_point(model, None, 1, scale, 42);
        let ranger = run_fig2a_point(model, Some(Protection::Ranger), 1, scale, 42);
        eprintln!(
            "[fig2a] {model}: SDE {:.1}% unprotected vs {:.1}% ranger @ 1 fault/img (n={})",
            unprot.sde.percent(),
            ranger.sde.percent(),
            unprot.sde.total
        );
        group.bench_function(format!("{model}_unprotected_1fault"), |b| {
            b.iter(|| run_fig2a_point(model, None, 1, scale, 42))
        });
    }
    group.finish();
}

alfi_bench::bench_main!(bench_fig2a);
