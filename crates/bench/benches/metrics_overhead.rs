//! Bench target: the `alfi-metrics` overhead contract. Times the same
//! per-image classification campaign with metrics fully off (the
//! `RunConfig::default()` path, global instrumentation gate cleared)
//! and with a live registry attached (engine counters, pool busy
//! timers, tensor FLOP/byte counters all firing), then checks the
//! metered cost against the documented ceiling of
//! [`OVERHEAD_CEILING_PCT`] percent and prints a PASS/FAIL verdict.
//!
//! Uses the *interleaved paired* methodology of `trace_overhead` (the
//! median over alternating rounds cancels CPU-frequency drift that
//! sequential whole-group timing cannot), with two extra defences a 2%
//! ceiling needs on shared runners:
//!
//! - Placement jitter + global-minimum verdict. Where the campaign's
//!   transient tensor buffers land in the heap swings its runtime by
//!   up to ±15% on some machines (cache-set aliasing), and the metered
//!   arm's in-run registry allocations systematically steer its
//!   buffers to *different* addresses than the unmetered arm's — a
//!   placement bias an order of magnitude above the ceiling, in either
//!   direction. Each round therefore retains a pad allocation of a
//!   different size, shifting the layout both arms see, and the
//!   verdict compares the fastest iteration of each mode across all
//!   rounds: the fastest observation is the placement- and
//!   preemption-free estimate of true cost (timing noise is additive
//!   and positive), and with both modes sampling many layouts the two
//!   minima are reached under comparably lucky placement.
//! - Single-iteration interleaving over one shared registry: both
//!   arms render the same registry every iteration (the unmetered arm
//!   simply does not attach it to the run), so the arms' allocation
//!   patterns stay as close as possible. The contract measures the
//!   cost of *metering a run*, not of constructing a registry object.
//! - A control arm. A third arm runs the *identical* unmetered code
//!   at a different position in the interleave cycle; any spread
//!   between the two unmetered arms is pure environment (placement,
//!   frequency, co-tenants) and sets the resolution floor of this
//!   machine. The verdict allows the ceiling *plus* that measured
//!   floor, so a quiet machine enforces 2% strictly while a noisy
//!   shared runner does not fail on artifacts it cannot resolve —
//!   the printed line reports the control spread alongside the
//!   overhead either way.

use alfi_bench::timing::Harness;
use alfi_bench::{build_classifier, ExperimentScale};
use alfi_core::campaign::{ImgClassCampaign, RunConfig};
use alfi_datasets::{ClassificationDataset, ClassificationLoader};
use alfi_metrics::Registry;
use alfi_scenario::{FaultMode, InjectionTarget, Scenario};
use std::hint::black_box;
use std::time::{Duration, Instant};

const DISABLED: &str = "campaign_metrics_disabled";
const ENABLED: &str = "campaign_metrics_enabled";

/// The documented overhead contract: live metrics may slow a campaign
/// down by at most this much (DESIGN.md, metrics section).
const OVERHEAD_CEILING_PCT: f64 = 2.0;

/// Placement-jittered paired rounds; the verdict takes each mode's
/// fastest iteration across all of them.
const ROUNDS: usize = 11;

/// Campaign runs per mode per round; each round keeps the fastest.
const ITERS_PER_ROUND: usize = 3;

fn make_campaign() -> ImgClassCampaign {
    let scale = ExperimentScale::quick();
    let (model, mcfg) = build_classifier("alexnet", scale, 3);
    let ds = ClassificationDataset::new(scale.images, mcfg.num_classes, 3, scale.input_hw, 5);
    let loader = ClassificationLoader::new(ds, 1);
    let mut s = Scenario::default();
    s.dataset_size = scale.images;
    s.injection_target = InjectionTarget::Weights;
    s.fault_mode = FaultMode::exponent_bit_flip();
    ImgClassCampaign::new(model, s, loader)
}

/// One unmetered iteration. Renders the shared registry *detached*
/// from the run so both arms do identical snapshot/render work and
/// churn the allocator identically (see module docs).
fn iter_disabled(campaign: &mut ImgClassCampaign, cfg: &RunConfig, registry: &Registry) -> Duration {
    // A metered run flips the process-global instrumentation gate on
    // (and leaves it on — endpoint semantics); clear it so the
    // unmetered side really pays nothing in the pool/tensor hot paths.
    alfi_metrics::set_global_enabled(false);
    let t = Instant::now();
    black_box(campaign.run_with(cfg).expect("run"));
    black_box(registry.snapshot().render());
    t.elapsed()
}

/// One fully metered iteration: live engine/pool/tensor counters into
/// the shared registry, snapshot + render at the end. The registry is
/// shared across iterations — a real campaign registers its families
/// once per process, registration costs microseconds either way, and
/// per-iteration re-registration would make the two arms' heap
/// layouts diverge (the very artifact this bench defends against).
fn iter_enabled(campaign: &mut ImgClassCampaign, cfg: &RunConfig, registry: &Registry) -> Duration {
    let t = Instant::now();
    black_box(campaign.run_with(cfg).expect("run"));
    black_box(registry.snapshot().render());
    t.elapsed()
}

/// Per-round heap-placement jitter step (a page plus one cache line,
/// so successive rounds shift both page and set alignment).
const PAD_STEP: usize = 4096 + 64;

/// One round: [`ITERS_PER_ROUND`] interleaved unmetered / metered /
/// control triples (the lead arm rotates with the round index),
/// keeping each arm's fastest. The retained pad shifts this round's
/// heap layout (see module docs).
fn round(
    campaign: &mut ImgClassCampaign,
    disabled_cfg: &RunConfig,
    enabled_cfg: &RunConfig,
    registry: &Registry,
    rotation: usize,
    pad_units: usize,
) -> [Duration; 3] {
    let pad = vec![0u8; pad_units * PAD_STEP];
    let mut best = [Duration::MAX; 3];
    for _ in 0..ITERS_PER_ROUND {
        for k in 0..3 {
            let arm = (rotation + k) % 3;
            let t = match arm {
                1 => iter_enabled(campaign, enabled_cfg, registry),
                _ => iter_disabled(campaign, disabled_cfg, registry),
            };
            best[arm] = best[arm].min(t);
        }
    }
    black_box(&pad);
    best
}

/// Measurement result of the interleaved three-arm comparison, all
/// figures from each arm's fastest iteration across the
/// placement-jittered rounds (see module docs on noise).
struct Overhead {
    /// Fastest unmetered iteration (better of the two unmetered arms).
    disabled_ns: f64,
    /// Fastest metered iteration.
    enabled_ns: f64,
    /// Metered cost relative to the fastest unmetered arm, percent.
    overhead_pct: f64,
    /// Spread between the two identical unmetered arms, percent — the
    /// environment's measured resolution floor.
    control_spread_pct: f64,
}

fn paired_overhead() -> Overhead {
    let mut campaign = make_campaign();
    let disabled_cfg = RunConfig::default();
    let registry = Registry::new();
    let enabled_cfg = RunConfig::new().metrics(registry.clone());

    // Warmup: one round, untimed (cold caches, lazy init, family
    // registration, allocator steady state under the interleaved
    // pattern).
    black_box(round(&mut campaign, &disabled_cfg, &enabled_cfg, &registry, 0, 0));

    let mut mins = [f64::MAX; 3];
    for r in 0..ROUNDS {
        // Rotate which arm leads each triple so within-triple drift
        // does not systematically favour one arm; each round pins a
        // different pad size so every arm samples many heap layouts.
        let durs = round(&mut campaign, &disabled_cfg, &enabled_cfg, &registry, r % 3, r);
        let ns = durs.map(|d| d.as_nanos() as f64);
        if std::env::var_os("ALFI_BENCH_DEBUG").is_some() {
            eprintln!(
                "round {r:>2}: unmetered {:>9.0} ns, metered {:>9.0} ns ({:+.2}%), \
                 control {:>9.0} ns",
                ns[0],
                ns[1],
                (ns[1] / ns[0] - 1.0) * 100.0,
                ns[2]
            );
        }
        for (m, v) in mins.iter_mut().zip(ns) {
            *m = m.min(v);
        }
    }
    let disabled_ns = mins[0].min(mins[2]);
    Overhead {
        disabled_ns,
        enabled_ns: mins[1],
        overhead_pct: (mins[1] / disabled_ns - 1.0) * 100.0,
        control_spread_pct: ((mins[0] - mins[2]).abs() / disabled_ns) * 100.0,
    }
}

fn bench_absolute(c: &mut Harness) {
    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(12).measurement_time(Duration::from_secs(3));

    group.bench_function(DISABLED, |b| {
        let mut campaign = make_campaign();
        let cfg = RunConfig::default();
        alfi_metrics::set_global_enabled(false);
        b.iter(|| black_box(campaign.run_with(&cfg).expect("run")))
    });

    group.bench_function(ENABLED, |b| {
        let mut campaign = make_campaign();
        let registry = Registry::new();
        let cfg = RunConfig::new().metrics(registry.clone());
        b.iter(|| {
            let result = campaign.run_with(&cfg).expect("run");
            black_box(registry.snapshot().render());
            black_box(result)
        })
    });

    group.finish();
}

fn main() {
    // Absolute per-mode timings for the JSON report / trend tracking.
    // Not used for the verdict (see the module docs on drift).
    let mut harness = Harness::new();
    bench_absolute(&mut harness);
    harness.report();

    let o = paired_overhead();
    // The ceiling is enforced up to what this machine can resolve: the
    // control spread is the measured difference between two *identical*
    // unmetered arms, so overhead within ceiling + spread is
    // indistinguishable from environment noise (see module docs).
    let allowed = OVERHEAD_CEILING_PCT + o.control_spread_pct;
    let verdict = if o.overhead_pct <= allowed { "PASS" } else { "FAIL" };
    println!(
        "metrics overhead (paired): unmetered {:.0} ns, metered {:.0} ns \
         => {:+.2}% (ceiling {OVERHEAD_CEILING_PCT}%, control spread {:.2}%) [{verdict}]",
        o.disabled_ns, o.enabled_ns, o.overhead_pct, o.control_spread_pct
    );
    // Leave the process-global gate as a fresh process would find it.
    alfi_metrics::set_global_enabled(false);
}
