//! Reproduces Fig. 2a: SDE rates for image-classification models under
//! exponent-bit weight fault injection, with and without activation-range
//! protection.
//!
//! Paper anchor: "VGG-16 without protection has an 11.8 % vulnerability
//! when injected with a single fault per image inference"; Ranger/Clipper
//! protection collapses the SDE rate.
//!
//! Run with: `cargo run --release -p alfi-bench --bin repro_fig2a`

use alfi_bench::{pct, run_fig2a_point, ExperimentScale, CLASSIFIERS};
use alfi_mitigation::Protection;

fn main() {
    let scale = ExperimentScale::full();
    let fault_counts = [1usize, 10, 100];
    println!("=== Fig. 2a reproduction: classification SDE under exponent-bit weight faults ===");
    println!(
        "({} images/point, input {}px, width x{:.3}; synthetic models — compare shapes, not absolutes)\n",
        scale.images,
        scale.input_hw,
        scale.width_mult()
    );
    println!(
        "{:<10} {:>7} | {:>9} {:>9} {:>13} | {:>11} {:>12}",
        "model", "faults", "SDE", "DUE", "corrupt total", "ranger corr", "clipper corr"
    );
    println!("{}", "-".repeat(84));
    for model in CLASSIFIERS {
        for &k in &fault_counts {
            let unprot = run_fig2a_point(model, None, k, scale, 42);
            let ranger = run_fig2a_point(model, Some(Protection::Ranger), k, scale, 42);
            let clipper = run_fig2a_point(model, Some(Protection::Clipper), k, scale, 42);
            println!(
                "{:<10} {:>7} | {:>9} {:>9} {:>13} | {:>11} {:>12}",
                model,
                k,
                pct(&unprot.sde),
                pct(&unprot.due),
                pct(&unprot.corrupted),
                pct(&ranger.corrupted),
                pct(&clipper.corrupted),
            );
        }
        println!();
    }
    println!("expected shape (paper Fig. 2a): total corruption in the ~5-15% range at");
    println!("1 fault/image (paper: VGG-16 = 11.8%), growing with fault count; the");
    println!("range-supervised (ranger/clipper) columns sit well below the unprotected");
    println!("corruption total at every point.");
}
