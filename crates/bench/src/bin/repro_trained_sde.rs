//! Trained-substrate variant of the Fig. 2a experiment: trains a CNN to
//! high accuracy on the synthetic dataset with the built-in SGD trainer,
//! then sweeps exponent-bit weight-fault counts on the *trained* model,
//! with and without Ranger protection — the closest this reproduction
//! gets to the paper's trained-torchvision setting.
//!
//! Run with: `cargo run --release -p alfi-bench --bin repro_trained_sde`

use alfi_core::campaign::{ImgClassCampaign, RunConfig};
use alfi_datasets::{ClassificationDataset, ClassificationLoader};
use alfi_eval::{classification_kpis, resil_sde_rate, SdeCriterion};
use alfi_mitigation::{harden, profile_bounds, Protection};
use alfi_nn::train::{accuracy, train_step, SgdTrainer};
use alfi_nn::{Conv2d, Layer, Linear, Network};
use alfi_scenario::{FaultCount, FaultMode, InjectionTarget, Scenario};
use alfi_tensor::conv::ConvConfig;
use alfi_tensor::Tensor;
use alfi_rng::Rng;

fn build_cnn(classes: usize, seed: u64) -> Network {
    let mut rng = Rng::from_seed(seed);
    let mut he = |dims: &[usize]| {
        let fan_in: usize = dims[1..].iter().product();
        Tensor::rand_normal(&mut rng, dims, 0.0, (2.0 / fan_in as f32).sqrt())
    };
    let mut net = Network::new("trained_cnn");
    let c1 = net
        .push(
            "conv1",
            Layer::Conv2d(Conv2d {
                weight: he(&[8, 3, 3, 3]),
                bias: Some(Tensor::zeros(&[8])),
                cfg: ConvConfig { stride: 1, padding: 1, dilation: 1 },
            }),
            &[],
        )
        .expect("graph");
    let r1 = net.push("relu1", Layer::Relu, &[c1]).expect("graph");
    let p1 = net
        .push("pool1", Layer::MaxPool2d { k: 2, cfg: ConvConfig { stride: 2, padding: 0, dilation: 1 } }, &[r1])
        .expect("graph");
    let c2 = net
        .push(
            "conv2",
            Layer::Conv2d(Conv2d {
                weight: he(&[16, 8, 3, 3]),
                bias: Some(Tensor::zeros(&[16])),
                cfg: ConvConfig { stride: 1, padding: 1, dilation: 1 },
            }),
            &[p1],
        )
        .expect("graph");
    let r2 = net.push("relu2", Layer::Relu, &[c2]).expect("graph");
    let p2 = net
        .push("pool2", Layer::MaxPool2d { k: 2, cfg: ConvConfig { stride: 2, padding: 0, dilation: 1 } }, &[r2])
        .expect("graph");
    let fl = net.push("flatten", Layer::Flatten, &[p2]).expect("graph");
    let f1 = net
        .push(
            "fc1",
            Layer::Linear(Linear { weight: he(&[32, 16 * 4 * 4]), bias: Some(Tensor::zeros(&[32])) }),
            &[fl],
        )
        .expect("graph");
    let r3 = net.push("relu3", Layer::Relu, &[f1]).expect("graph");
    let f2 = net
        .push(
            "fc2",
            Layer::Linear(Linear { weight: he(&[classes, 32]), bias: Some(Tensor::zeros(&[classes])) }),
            &[r3],
        )
        .expect("graph");
    net.set_output(f2).expect("graph");
    net
}

fn main() {
    let classes = 4usize;
    let train_ds = ClassificationDataset::new(160, classes, 3, 16, 1);
    let test_ds = ClassificationDataset::new(60, classes, 3, 16, 2);
    let mut net = build_cnn(classes, 7);

    println!("=== trained-substrate SDE reproduction ===");
    let loader = ClassificationLoader::new(train_ds, 16).with_shuffle(true);
    let mut trainer = SgdTrainer::new(0.05, 0.9);
    for epoch in 0..8u64 {
        for batch in loader.iter_epoch(epoch) {
            train_step(&mut net, &mut trainer, &batch.images, &batch.labels).expect("train");
        }
    }
    let test_images =
        Tensor::stack(&(0..test_ds.len()).map(|i| test_ds.get(i).image).collect::<Vec<_>>())
            .expect("stack");
    let test_labels: Vec<usize> = (0..test_ds.len()).map(|i| test_ds.get(i).label).collect();
    let acc = accuracy(&net, &test_images, &test_labels).expect("accuracy");
    println!("trained test accuracy: {:.1}% ({} held-out images)\n", acc * 100.0, test_ds.len());

    // Ranger hardening profiled on fault-free held-out data.
    let calib: Vec<Tensor> =
        (0..8).map(|i| Tensor::stack(&[test_ds.get(i).image]).expect("stack")).collect();
    let bounds = profile_bounds(&net, calib.iter()).expect("profile");
    let hardened = harden(&net, &bounds, Protection::Ranger, 0.1).expect("harden");

    println!(
        "{:<8} {:>10} {:>10} {:>9} {:>9} | {:>12}",
        "faults", "orig acc", "corr acc", "SDE", "DUE", "ranger SDE"
    );
    for k in [1usize, 5, 10, 20, 50, 100] {
        let mut s = Scenario::default();
        s.dataset_size = test_ds.len();
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        s.faults_per_image = FaultCount::Fixed(k);
        s.seed = 99;
        let loader = ClassificationLoader::new(test_ds.clone(), 1);
        let result = ImgClassCampaign::new(net.clone(), s, loader)
            .with_resil_model(hardened.clone())
            .run_with(&RunConfig::default())
            .expect("campaign");
        let kpis = classification_kpis(&result.rows, SdeCriterion::Top1Mismatch);
        let ranger = resil_sde_rate(&result.rows, SdeCriterion::Top1Mismatch);
        println!(
            "{:<8} {:>9.1}% {:>9.1}% {:>8.1}% {:>8.1}% | {:>11.1}%",
            k,
            kpis.orig_top1_accuracy.percent(),
            kpis.corr_top1_accuracy.percent(),
            kpis.sde.percent(),
            kpis.due.percent(),
            ranger.percent(),
        );
    }
    println!("\nexpected shape: near-total masking at 1 fault (high decision margins),");
    println!("corruption breaking through as bursts grow; Ranger suppresses the out-of-");
    println!("range activations that drive the break-through.");
}
