//! Reproduces the §V use-case sweeps (U1, U2a–U2d in DESIGN.md) as one
//! consolidated report:
//!
//! * U1  — random positions throughout the network (SDE probability + CI)
//! * U2a — layer-wise sensitivity
//! * U2b — faults-per-image escalation
//! * U2c — neuron vs weight faults
//! * U2d — bit-position sensitivity
//!
//! Run with: `cargo run --release -p alfi-bench --bin repro_sweeps`

use alfi_bench::{build_classifier, ExperimentScale};
use alfi_core::Ptfiwrap;
use alfi_datasets::ClassificationDataset;
use alfi_eval::Rate;
use alfi_nn::Network;
use alfi_scenario::{FaultCount, FaultMode, InjectionTarget, Scenario};
use alfi_tensor::Tensor;

/// Runs `n` single-image fault injections and counts top-1 SDEs
/// (non-finite outputs count as corrupted).
fn sde_count(model: &Network, wrapper: &mut Ptfiwrap, images: &[Tensor]) -> (usize, usize) {
    let mut sde = 0usize;
    let mut total = 0usize;
    for input in images {
        let Ok(fm) = wrapper.next_faulty_model() else { break };
        let orig = model.forward(input).expect("clean forward");
        let corr = fm.forward(input).expect("faulty forward");
        let o = orig.batch_item(0).expect("batch").argmax();
        let c = corr.batch_item(0).expect("batch").argmax();
        if o != c || corr.has_non_finite() {
            sde += 1;
        }
        total += 1;
    }
    (sde, total)
}

fn main() {
    let scale = ExperimentScale::full();
    let (model, mcfg) = build_classifier("alexnet", scale, 5);
    let ds = ClassificationDataset::new(scale.images, mcfg.num_classes, 3, scale.input_hw, 8);
    let images: Vec<Tensor> =
        (0..scale.images).map(|i| Tensor::stack(&[ds.get(i).image]).expect("stack")).collect();

    let base = |target: InjectionTarget| {
        let mut s = Scenario::default();
        s.dataset_size = scale.images;
        s.injection_target = target;
        s.fault_mode = FaultMode::exponent_bit_flip();
        s.seed = 99;
        s
    };

    // U1: random positions throughout the network.
    println!("=== U1: random exponent-bit weight faults throughout alexnet ===");
    let mut wrapper = Ptfiwrap::new(&model, base(InjectionTarget::Weights), &mcfg.input_dims(1))
        .expect("wrapper");
    let (sde, total) = sde_count(&model, &mut wrapper, &images);
    println!("SDE probability: {}\n", Rate::from_counts(sde, total));

    // U2a: layer sweep.
    println!("=== U2a: layer-wise sensitivity ===");
    println!("{:<6} {:<22} {:>9}", "layer", "name", "SDE");
    let num_layers = model.injectable_layers(None, None).expect("layers").len();
    for layer in 0..num_layers {
        let mut s = base(InjectionTarget::Weights);
        s.layer_range = Some((layer, layer));
        s.weighted_layer_selection = false;
        let mut wrapper = Ptfiwrap::new(&model, s, &mcfg.input_dims(1)).expect("wrapper");
        let name = wrapper.targets()[0].name.clone();
        let (sde, total) = sde_count(&model, &mut wrapper, &images);
        println!("{:<6} {:<22} {:>4}/{:<4}", layer, name, sde, total);
    }

    // U2b: faults-per-image escalation.
    println!("\n=== U2b: faults-per-image escalation ===");
    println!("{:<8} {:>9}", "faults", "SDE");
    for k in [1usize, 2, 5, 10, 20, 50, 100] {
        let mut s = base(InjectionTarget::Weights);
        s.faults_per_image = FaultCount::Fixed(k);
        let mut wrapper = Ptfiwrap::new(&model, s, &mcfg.input_dims(1)).expect("wrapper");
        let (sde, total) = sde_count(&model, &mut wrapper, &images);
        println!("{:<8} {:>4}/{:<4}", k, sde, total);
    }

    // U2c: neuron vs weight faults.
    println!("\n=== U2c: neuron vs weight faults (single exponent-bit flip) ===");
    for target in [InjectionTarget::Weights, InjectionTarget::Neurons] {
        let mut wrapper = Ptfiwrap::new(&model, base(target), &mcfg.input_dims(1)).expect("wrapper");
        let (sde, total) = sde_count(&model, &mut wrapper, &images);
        println!("{:<9} SDE {}", target.to_string(), Rate::from_counts(sde, total));
    }

    // U2d: bit-position sweep (grouped by field to stay compact).
    println!("\n=== U2d: bit-position sensitivity (weight faults) ===");
    println!("{:<12} {:>9}", "bits", "SDE");
    for (label, lo, hi) in [
        ("mantissa 0-10", 0u8, 10u8),
        ("mantissa 11-22", 11, 22),
        ("exponent 23-26", 23, 26),
        ("exponent 27-30", 27, 30),
        ("sign 31", 31, 31),
    ] {
        let mut s = base(InjectionTarget::Weights);
        s.fault_mode = FaultMode::BitFlip { bit_range: (lo, hi) };
        let mut wrapper = Ptfiwrap::new(&model, s, &mcfg.input_dims(1)).expect("wrapper");
        let (sde, total) = sde_count(&model, &mut wrapper, &images);
        println!("{:<14} {:>4}/{:<4}", label, sde, total);
    }
    println!("\nexpected shape: high exponent bits dominate; low mantissa bits are masked.");
}
