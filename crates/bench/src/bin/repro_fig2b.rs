//! Reproduces Fig. 2b: IVMOD_SDE / IVMOD_DUE rates for object-detection
//! models under exponent-bit weight fault injection, across datasets.
//!
//! Paper anchor: "when injected with a single fault per image inference,
//! RetinaNet trained on CoCo has a vulnerability of 4.2 % in producing
//! incorrect detections. Moreover, it has a low probability (< 10^-2) of
//! generating NaN/Inf values — IVMOD_DUE."
//!
//! Run with: `cargo run --release -p alfi-bench --bin repro_fig2b`

use alfi_bench::{pct, run_fig2b_point, ExperimentScale, DETECTORS, DET_DATASETS};

fn main() {
    let scale = ExperimentScale::full();
    let fault_counts = [1usize, 10];
    println!("=== Fig. 2b reproduction: detection IVMOD under exponent-bit weight faults ===");
    println!(
        "({} images/point, input {}px; synthetic detectors/datasets — compare shapes)\n",
        scale.images,
        scale.input_hw.max(32)
    );
    println!(
        "{:<16} {:<12} {:>7} | {:>11} {:>11} {:>9} {:>9}",
        "model", "dataset", "faults", "IVMOD_SDE", "IVMOD_DUE", "mean FP", "mean FN"
    );
    println!("{}", "-".repeat(84));
    for detector in DETECTORS {
        for dataset in DET_DATASETS {
            for &k in &fault_counts {
                let p = run_fig2b_point(detector, dataset, k, scale, 42);
                println!(
                    "{:<16} {:<12} {:>7} | {:>11} {:>11} {:>9.2} {:>9.2}",
                    detector,
                    dataset,
                    k,
                    pct(&p.ivmod.ivmod_sde),
                    pct(&p.ivmod.ivmod_due),
                    p.ivmod.mean_fp,
                    p.ivmod.mean_fn,
                );
            }
        }
        println!();
    }
    println!("expected shape (paper): single-digit IVMOD_SDE at 1 fault/image, growing with");
    println!("fault count; IVMOD_DUE well below IVMOD_SDE (typically < 1%).");
}
