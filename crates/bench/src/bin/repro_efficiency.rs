//! Reproduces the paper's *validation-efficiency* claims (E1 in
//! DESIGN.md): ALFI's pre-generated, persistable fault matrix versus the
//! PyTorchFI-style ad-hoc baseline.
//!
//! Measures, on the same model and fault budget:
//! 1. fault preparation cost — ALFI pays once up front, the baseline
//!    re-samples per inference;
//! 2. per-inference injection overhead relative to a clean forward pass;
//! 3. replay cost — ALFI reloads its binary fault file; the baseline has
//!    nothing to reload and must regenerate + rerun.
//!
//! Run with: `cargo run --release -p alfi-bench --bin repro_efficiency`

use alfi_bench::{build_classifier, ExperimentScale};
use alfi_core::baseline::AdHocInjector;
use alfi_core::{decode_fault_matrix, encode_fault_matrix, FaultMatrix, Ptfiwrap};
use alfi_core::resolve_targets;
use alfi_scenario::{FaultCount, FaultMode, InjectionTarget, Scenario};
use alfi_tensor::Tensor;
use std::time::Instant;

fn main() {
    let scale = ExperimentScale::full();
    let (model, mcfg) = build_classifier("vgg16", scale, 3);
    let input = Tensor::ones(&mcfg.input_dims(1));
    let n_inferences = 40usize;

    let mut scenario = Scenario::default();
    scenario.dataset_size = n_inferences;
    scenario.injection_target = InjectionTarget::Weights;
    scenario.fault_mode = FaultMode::exponent_bit_flip();
    scenario.faults_per_image = FaultCount::Fixed(1);

    println!("=== E1: validation efficiency, ALFI vs PyTorchFI-style baseline ===");
    println!("model vgg16 (width x{:.3}), {n_inferences} fault-injected inferences\n", scale.width_mult());

    // Clean inference reference.
    let t0 = Instant::now();
    for _ in 0..n_inferences {
        model.forward(&input).expect("clean forward");
    }
    let clean = t0.elapsed();
    println!("clean inference:            {:>10.1?} total, {:>9.2?}/img", clean, clean / n_inferences as u32);

    // (1) Fault preparation.
    let targets = resolve_targets(&[&model], &scenario, &[Some(mcfg.input_dims(1))]).unwrap();
    let t0 = Instant::now();
    let matrix = FaultMatrix::generate(&scenario, &targets).unwrap();
    let gen_time = t0.elapsed();
    // Large-scale generation throughput:
    let mut big = scenario.clone();
    big.dataset_size = 100_000;
    let t0 = Instant::now();
    let big_matrix = FaultMatrix::generate(&big, &targets).unwrap();
    let big_time = t0.elapsed();
    println!(
        "ALFI fault pre-generation:  {:>10.1?} for {} faults ({:.0} faults/ms at 100k scale)",
        gen_time,
        matrix.len(),
        big_matrix.len() as f64 / big_time.as_millis().max(1) as f64
    );

    // (2) Injection overhead: ALFI armed replay.
    let mut wrapper =
        Ptfiwrap::with_fault_matrix(&model, scenario.clone(), &mcfg.input_dims(1), matrix.clone())
            .unwrap();
    let t0 = Instant::now();
    let mut produced = 0usize;
    while let Ok(fm) = wrapper.next_faulty_model() {
        fm.forward(&input).expect("faulty forward");
        produced += 1;
    }
    let alfi_time = t0.elapsed();
    println!(
        "ALFI faulty inference:      {:>10.1?} total, {:>9.2?}/img ({:.1}% over clean)",
        alfi_time,
        alfi_time / produced as u32,
        (alfi_time.as_secs_f64() / clean.as_secs_f64() - 1.0) * 100.0
    );

    // Baseline: sample-on-the-fly per inference.
    let mut adhoc = AdHocInjector::new(&model, scenario.clone(), &mcfg.input_dims(1)).unwrap();
    let t0 = Instant::now();
    for _ in 0..n_inferences {
        adhoc.run_once(&model, &input, 1).expect("adhoc run");
    }
    let adhoc_time = t0.elapsed();
    println!(
        "baseline faulty inference:  {:>10.1?} total, {:>9.2?}/img ({:.1}% over clean)",
        adhoc_time,
        adhoc_time / n_inferences as u32,
        (adhoc_time.as_secs_f64() / clean.as_secs_f64() - 1.0) * 100.0
    );

    // (3) Replay: ALFI re-loads its binary artifact; equality is free.
    let bytes = encode_fault_matrix(&matrix);
    let t0 = Instant::now();
    let reloaded = decode_fault_matrix(&bytes).unwrap();
    let decode_time = t0.elapsed();
    assert_eq!(reloaded, matrix);
    println!(
        "\nALFI replay artifact:       {} bytes, decoded+verified in {:?};",
        bytes.len(),
        decode_time
    );
    println!("baseline artifact:          none — identical re-runs impossible without");
    println!("                            re-executing the entire campaign in order.");
}
