//! # alfi-bench
//!
//! Experiment harness regenerating every table and figure of the
//! PyTorchALFI paper's evaluation (see DESIGN.md's experiment index).
//!
//! * `src/bin/repro_*` — binaries printing the full reproduced
//!   tables/series (`cargo run --release -p alfi-bench --bin repro_fig2a`);
//! * `benches/*` — micro/meso benchmarks on the in-tree [`timing`]
//!   harness, including the validation-efficiency comparison against
//!   the PyTorchFI-style baseline.
//!
//! The library part hosts the shared experiment drivers so binaries,
//! benches and tests run exactly the same code.

pub mod timing;

use alfi_core::campaign::{ImgClassCampaign, ObjDetCampaign, RunConfig};
use alfi_datasets::{ClassificationDataset, ClassificationLoader, DetectionDataset, DetectionLoader};
use alfi_eval::{classification_kpis, ivmod_kpis, resil_sde_rate, IvmodKpis, Rate, SdeCriterion};
use alfi_mitigation::{harden, profile_bounds, Protection};
use alfi_nn::detection::{Detector, DetectorConfig, FrcnnTwoStage, RetinaAnchor, YoloGrid};
use alfi_nn::models::{alexnet, resnet50, vgg16, ModelConfig};
use alfi_nn::Network;
use alfi_scenario::{FaultCount, FaultMode, InjectionTarget, Scenario};
use alfi_tensor::Tensor;

/// The three classification architectures of Fig. 2a.
pub const CLASSIFIERS: [&str; 3] = ["alexnet", "vgg16", "resnet50"];
/// The three detector architectures of Fig. 2b.
pub const DETECTORS: [&str; 3] = ["yolo_grid", "retina_anchor", "frcnn_two_stage"];
/// The two synthetic detection datasets standing in for CoCo/Kitti.
pub const DET_DATASETS: [&str; 2] = ["synth-coco", "synth-kitti"];

/// Scale knobs for experiments: `quick` keeps bench loops fast; the
/// repro binaries use `full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Images per campaign.
    pub images: usize,
    /// Input side length.
    pub input_hw: usize,
    /// Model width multiplier (×1/1000).
    pub width_permille: usize,
}

impl ExperimentScale {
    /// Small scale for CI/bench loops.
    pub fn quick() -> Self {
        ExperimentScale { images: 12, input_hw: 32, width_permille: 63 }
    }

    /// Larger scale for the printed reproduction runs.
    pub fn full() -> Self {
        ExperimentScale { images: 60, input_hw: 32, width_permille: 125 }
    }

    /// The width multiplier as f32.
    pub fn width_mult(&self) -> f32 {
        self.width_permille as f32 / 1000.0
    }
}

/// Builds one of the Fig. 2a classifiers by name.
///
/// # Panics
///
/// Panics on an unknown model name.
pub fn build_classifier(name: &str, scale: ExperimentScale, seed: u64) -> (Network, ModelConfig) {
    let cfg = ModelConfig {
        input_hw: scale.input_hw,
        width_mult: scale.width_mult(),
        seed,
        ..ModelConfig::default()
    };
    let net = match name {
        "alexnet" => alexnet(&cfg),
        "vgg16" => vgg16(&cfg),
        "resnet50" => resnet50(&cfg),
        other => panic!("unknown classifier `{other}`"),
    };
    (net, cfg)
}

/// Builds one of the Fig. 2b detectors by name.
///
/// # Panics
///
/// Panics on an unknown detector name.
pub fn build_detector(name: &str, scale: ExperimentScale, seed: u64) -> Box<dyn Detector> {
    let cfg = DetectorConfig {
        input_hw: scale.input_hw.max(32),
        width_mult: scale.width_mult().max(0.125),
        seed,
        ..DetectorConfig::default()
    };
    match name {
        "yolo_grid" => Box::new(YoloGrid::new(&cfg)),
        "retina_anchor" => Box::new(RetinaAnchor::new(&cfg)),
        "frcnn_two_stage" => Box::new(FrcnnTwoStage::new(&cfg)),
        other => panic!("unknown detector `{other}`"),
    }
}

/// Fig. 2a experiment point: SDE rate for one model / protection /
/// fault-count configuration under exponent-bit weight faults.
#[derive(Debug, Clone)]
pub struct Fig2aPoint {
    /// Model name.
    pub model: String,
    /// Protection applied (`None` = unprotected).
    pub protection: Option<Protection>,
    /// Simultaneous weight faults per image.
    pub faults_per_image: usize,
    /// SDE rate (plus Wilson CI).
    pub sde: Rate,
    /// DUE rate of the unprotected faulty pass.
    pub due: Rate,
    /// Total corruption rate: SDE + DUE for unprotected runs; equal to
    /// `sde` for protected runs (range supervision removes NaN/Inf by
    /// construction, converting residual damage into silent mispredictions).
    pub corrupted: Rate,
}

/// Runs one Fig. 2a experiment point.
///
/// # Panics
///
/// Panics on campaign errors (benchmark configurations are known-good).
pub fn run_fig2a_point(
    model_name: &str,
    protection: Option<Protection>,
    faults_per_image: usize,
    scale: ExperimentScale,
    seed: u64,
) -> Fig2aPoint {
    let (model, mcfg) = build_classifier(model_name, scale, seed);
    let ds = ClassificationDataset::new(scale.images, mcfg.num_classes, 3, scale.input_hw, seed);

    let mut scenario = Scenario::default();
    scenario.dataset_size = scale.images;
    scenario.injection_target = InjectionTarget::Weights;
    scenario.fault_mode = FaultMode::exponent_bit_flip();
    scenario.faults_per_image = FaultCount::Fixed(faults_per_image);
    scenario.seed = seed.wrapping_add(1);

    let loader = ClassificationLoader::new(ds.clone(), 1);
    let mut campaign = ImgClassCampaign::new(model.clone(), scenario, loader);
    if let Some(p) = protection {
        let calib: Vec<Tensor> = (0..4.min(scale.images))
            .map(|i| Tensor::stack(&[ds.get(i).image]).expect("stack"))
            .collect();
        let bounds = profile_bounds(&model, calib.iter()).expect("profiling succeeds");
        let hardened = harden(&model, &bounds, p, 0.1).expect("hardening succeeds");
        campaign = campaign.with_resil_model(hardened);
    }
    let result = campaign.run_with(&RunConfig::default()).expect("campaign succeeds");
    let kpis = classification_kpis(&result.rows, SdeCriterion::Top1Mismatch);
    let (sde, corrupted) = match protection {
        None => (
            kpis.sde,
            Rate::from_counts(kpis.sde.hits + kpis.due.hits, kpis.sde.total),
        ),
        Some(_) => {
            let r = resil_sde_rate(&result.rows, SdeCriterion::Top1Mismatch);
            (r, r)
        }
    };
    Fig2aPoint {
        model: model_name.to_string(),
        protection,
        faults_per_image,
        sde,
        due: kpis.due,
        corrupted,
    }
}

/// Fig. 2b experiment point: IVMOD rates for one detector / dataset /
/// fault-count configuration.
#[derive(Debug, Clone)]
pub struct Fig2bPoint {
    /// Detector name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Simultaneous weight faults per image.
    pub faults_per_image: usize,
    /// IVMOD rates.
    pub ivmod: IvmodKpis,
}

/// Runs one Fig. 2b experiment point.
///
/// # Panics
///
/// Panics on campaign errors or unknown dataset names.
pub fn run_fig2b_point(
    detector_name: &str,
    dataset_name: &str,
    faults_per_image: usize,
    scale: ExperimentScale,
    seed: u64,
) -> Fig2bPoint {
    let mut detector = build_detector(detector_name, scale, seed);
    // The two synthetic datasets differ in class count and scene
    // statistics, standing in for CoCo (many small objects) vs Kitti
    // (fewer, larger objects).
    let (classes, ds_seed) = match dataset_name {
        "synth-coco" => (8usize, 100u64),
        "synth-kitti" => (3usize, 200u64),
        other => panic!("unknown dataset `{other}`"),
    };
    let hw = scale.input_hw.max(32);
    let ds = DetectionDataset::new(scale.images, classes, 3, hw, ds_seed);

    let mut scenario = Scenario::default();
    scenario.dataset_size = scale.images;
    scenario.injection_target = InjectionTarget::Weights;
    scenario.fault_mode = FaultMode::exponent_bit_flip();
    scenario.faults_per_image = FaultCount::Fixed(faults_per_image);
    scenario.seed = seed.wrapping_add(7);

    let loader = DetectionLoader::new(ds, 1);
    let result = ObjDetCampaign::new(detector.as_mut(), scenario, loader)
        .run_with(&RunConfig::default())
        .expect("campaign succeeds");
    Fig2bPoint {
        model: detector_name.to_string(),
        dataset: dataset_name.to_string(),
        faults_per_image,
        ivmod: ivmod_kpis(&result.rows, 0.5),
    }
}

/// Formats a rate as `12.3%` for table cells.
pub fn pct(rate: &Rate) -> String {
    format!("{:.1}%", rate.percent())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_point_runs_at_quick_scale() {
        let p = run_fig2a_point("alexnet", None, 1, ExperimentScale::quick(), 1);
        assert_eq!(p.sde.total, ExperimentScale::quick().images);
        assert!(p.sde.value <= 1.0);
    }

    #[test]
    fn fig2a_protected_point_reports_resil_rate() {
        let p = run_fig2a_point("alexnet", Some(Protection::Ranger), 10, ExperimentScale::quick(), 1);
        assert_eq!(p.protection, Some(Protection::Ranger));
        assert!(p.sde.total > 0);
    }

    #[test]
    fn fig2b_point_runs_at_quick_scale() {
        let p = run_fig2b_point("yolo_grid", "synth-coco", 1, ExperimentScale::quick(), 1);
        assert_eq!(p.ivmod.ivmod_sde.total, ExperimentScale::quick().images);
    }

    #[test]
    fn builders_cover_all_names() {
        for m in CLASSIFIERS {
            let (net, _) = build_classifier(m, ExperimentScale::quick(), 0);
            assert!(net.num_nodes() > 5);
        }
        for d in DETECTORS {
            let det = build_detector(d, ExperimentScale::quick(), 0);
            assert!(!det.networks().is_empty());
        }
    }
}
