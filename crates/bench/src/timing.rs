//! Minimal in-tree benchmark harness.
//!
//! Replaces the external Criterion dependency with a hermetic
//! warmup + median-of-N timer whose API mirrors the (small) Criterion
//! surface the `benches/` targets use, so a bench body reads the same:
//! groups, per-group sample size / measurement time, optional
//! element-throughput annotation, and `b.iter(..)` routines.
//!
//! Every run prints one summary line per benchmark and, when the run
//! finishes, writes a JSON report (via `alfi-serde`) to
//! `$ALFI_BENCH_JSON` or `target/alfi-bench/<binary>.json`.

use alfi_serde::Json;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (elements per iteration).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
}

/// A benchmark id composed of a function name and a parameter label,
/// rendered as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub name: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample in nanoseconds.
    pub min_ns: f64,
    /// Arithmetic mean in nanoseconds.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations folded into each sample.
    pub iters_per_sample: u64,
    /// Optional elements-per-iteration annotation.
    pub throughput_elems: Option<u64>,
}

impl BenchResult {
    fn to_json(&self) -> Json {
        let mut obj = vec![
            ("group".to_string(), Json::Str(self.group.clone())),
            ("name".to_string(), Json::Str(self.name.clone())),
            ("median_ns".to_string(), Json::Float(self.median_ns)),
            ("min_ns".to_string(), Json::Float(self.min_ns)),
            ("mean_ns".to_string(), Json::Float(self.mean_ns)),
            ("samples".to_string(), Json::Int(self.samples as i128)),
            ("iters_per_sample".to_string(), Json::Int(self.iters_per_sample as i128)),
        ];
        if let Some(e) = self.throughput_elems {
            obj.push(("elements_per_iter".to_string(), Json::Int(e as i128)));
            if self.median_ns > 0.0 {
                let eps = e as f64 / (self.median_ns / 1.0e9);
                obj.push(("elements_per_sec".to_string(), Json::Float(eps)));
            }
        }
        Json::Obj(obj)
    }
}

/// The timing routine handed to each benchmark body.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<BencherRun>,
}

struct BencherRun {
    per_iter_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`: a short warmup estimates the per-iteration cost, then
    /// up to `sample_size` samples are collected (each folding enough
    /// iterations to be reliably measurable) and the per-iteration
    /// times recorded. Total wall time is capped near the group's
    /// measurement time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: at least one call, up to ~1/5 of the budget.
        let warmup_budget = (self.measurement_time / 5).max(Duration::from_millis(20));
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= warmup_budget || warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Fold iterations so each sample runs for a meaningful slice of
        // the budget (and at least ~50µs for timer resolution).
        let per_sample = (self.measurement_time.as_secs_f64() / self.sample_size as f64)
            .max(50.0e-6);
        let iters = ((per_sample / est_iter.max(1.0e-9)) as u64).clamp(1, 10_000_000);

        let mut per_iter_ns = Vec::with_capacity(self.sample_size);
        let total_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
            // Hard cap: never run past twice the configured budget.
            if total_start.elapsed() > self.measurement_time * 2 && per_iter_ns.len() >= 3 {
                break;
            }
        }
        self.samples.push(BencherRun { per_iter_ns, iters_per_sample: iters });
    }
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchGroup<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<u64>,
}

impl BenchGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Sets the per-benchmark wall-clock budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with an element throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let Throughput::Elements(n) = t;
        self.throughput = Some(n);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        self.record(id.to_string(), b);
        self
    }

    /// Runs one parameterized benchmark (`id` renders as `name/param`).
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id.id.clone(), |b| f(b, input))
    }

    fn record(&mut self, name: String, b: Bencher) {
        let mut all: Vec<f64> = Vec::new();
        let mut iters = 1u64;
        for run in &b.samples {
            all.extend_from_slice(&run.per_iter_ns);
            iters = run.iters_per_sample;
        }
        if all.is_empty() {
            eprintln!("[bench] {}/{name}: no samples (b.iter never called)", self.name);
            return;
        }
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = all[all.len() / 2];
        let min = all[0];
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        let result = BenchResult {
            group: self.name.clone(),
            name,
            median_ns: median,
            min_ns: min,
            mean_ns: mean,
            samples: all.len(),
            iters_per_sample: iters,
            throughput_elems: self.throughput,
        };
        let mut line = format!(
            "[bench] {}/{}: median {} (min {}, {} samples x {} iters)",
            result.group,
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.min_ns),
            result.samples,
            result.iters_per_sample,
        );
        if let Some(e) = result.throughput_elems {
            if result.median_ns > 0.0 {
                let eps = e as f64 / (result.median_ns / 1.0e9);
                line.push_str(&format!(", {eps:.3e} elem/s"));
            }
        }
        eprintln!("{line}");
        self.harness.results.push(result);
    }

    /// Ends the group (kept for Criterion-style call sites; all
    /// bookkeeping happens eagerly).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1.0e9 {
        format!("{:.3} s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.3} ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.3} µs", ns / 1.0e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The top-level bench harness: collects results from every group and
/// writes the JSON report at the end of the run.
pub struct Harness {
    results: Vec<BenchResult>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// Creates an empty harness.
    pub fn new() -> Self {
        Harness { results: Vec::new() }
    }

    /// Opens a named benchmark group (10 samples, 3 s budget by
    /// default).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup<'_> {
        BenchGroup {
            harness: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serializes every result to a JSON report string.
    pub fn to_json(&self) -> String {
        Json::Arr(self.results.iter().map(BenchResult::to_json).collect()).pretty()
    }

    /// Writes the JSON report to `$ALFI_BENCH_JSON`, or to
    /// `target/alfi-bench/<binary>.json` when unset, and prints the
    /// destination. Failures are reported but non-fatal: benches should
    /// not fail because a report directory is read-only.
    pub fn report(&self) {
        if self.results.is_empty() {
            return;
        }
        let path = std::env::var_os("ALFI_BENCH_JSON").map(std::path::PathBuf::from).unwrap_or_else(
            || {
                let stem = std::env::args()
                    .next()
                    .and_then(|a| {
                        std::path::Path::new(&a)
                            .file_stem()
                            .map(|s| s.to_string_lossy().into_owned())
                    })
                    .unwrap_or_else(|| "bench".to_string());
                std::path::PathBuf::from("target").join("alfi-bench").join(format!("{stem}.json"))
            },
        );
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => eprintln!("[bench] report written to {}", path.display()),
            Err(e) => eprintln!("[bench] could not write report to {}: {e}", path.display()),
        }
    }
}

/// Expands to the `main` of a bench binary: runs each listed
/// `fn(&mut Harness)` and writes the JSON report.
#[macro_export]
macro_rules! bench_main {
    ($($f:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::timing::Harness::new();
            $($f(&mut harness);)+
            harness.report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_medians() {
        let mut h = Harness::new();
        {
            let mut g = h.benchmark_group("unit");
            g.sample_size(4).measurement_time(Duration::from_millis(40));
            g.throughput(Throughput::Elements(100));
            g.bench_function("spin", |b| {
                b.iter(|| {
                    std::hint::black_box((0..100u64).sum::<u64>());
                })
            });
            g.finish();
        }
        assert_eq!(h.results().len(), 1);
        let r = &h.results()[0];
        assert_eq!(r.group, "unit");
        assert_eq!(r.name, "spin");
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.samples >= 3);
        assert_eq!(r.throughput_elems, Some(100));
        let json = h.to_json();
        assert!(json.contains("\"median_ns\""));
        assert!(json.contains("\"elements_per_sec\""));
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        let id = BenchmarkId::new("direct", 64);
        assert_eq!(id.id, "direct/64");
    }
}
