//! Differential kernel-conformance suite: the cache-blocked packed
//! GEMM must be **bit-for-bit identical** to the sequential reference
//! kernels on every shape class that stresses its blocking logic —
//! remainder rows/columns relative to the `MR × NR` register tile,
//! `k = 1`, degenerate `1×N` / `N×1` products, and odd im2col
//! geometries with stride, padding and dilation — sequentially and at
//! every pool cap 1–8.
//!
//! The contract under test is the one DESIGN.md §5g states: blocking,
//! packing and vectorization may only reorder *independent* output
//! elements, never the per-element accumulation chain, so the blocked
//! path is not "close to" the reference — it is the same function.

use alfi_rng::Rng;
use alfi_tensor::conv::{conv2d_direct, conv2d_im2col, ConvConfig};
use alfi_tensor::gemm::{
    self, BLayout, Bias, GemmSpec, KernelPath, NoEpilogue, MR, NR,
};
use alfi_tensor::Tensor;
use std::sync::Mutex;

/// Serializes tests that flip the process-global kernel override so
/// they cannot race each other under the multi-threaded test runner.
/// (Tests that pass an explicit [`KernelPath`] to `gemm_with` do not
/// need it.)
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the kernel override pinned to `path`, restoring the
/// previous override afterwards.
fn with_kernel<R>(path: KernelPath, f: impl FnOnce() -> R) -> R {
    let prev = gemm::kernel_override();
    gemm::set_kernel_override(Some(path));
    let out = f();
    gemm::set_kernel_override(prev);
    out
}

/// Deterministic operand data with a deliberate fraction of exact
/// zeros so the `skip_zero_a` rule is exercised, not just compiled.
fn operand(rng: &mut Rng, len: usize) -> Vec<f32> {
    (0..len)
        .map(|_| {
            if rng.gen_range(0.0f32..1.0) < 0.15 {
                0.0
            } else {
                rng.gen_range(-2.0f32..2.0)
            }
        })
        .collect()
}

fn run_gemm(a: &[f32], b: &[f32], spec: &GemmSpec<'_>, path: KernelPath) -> Vec<f32> {
    let mut out = vec![0.0f32; spec.m * spec.n];
    gemm::gemm(a, b, &mut out, spec, path);
    out
}

fn assert_bits_equal(reference: &[f32], blocked: &[f32], what: &str) {
    assert_eq!(reference.len(), blocked.len(), "{what}: length mismatch");
    for (i, (r, b)) in reference.iter().zip(blocked.iter()).enumerate() {
        assert_eq!(
            r.to_bits(),
            b.to_bits(),
            "{what}: bit drift at flat index {i} (reference {r}, blocked {b})"
        );
    }
}

/// The exhaustive shape matrix: every remainder class against the
/// `MR × NR` register tile (`m % MR` ∈ 0..MR, `n % NR` spanning 0, 1,
/// NR−1 and a full extra panel), `k = 1`, and both `B` layouts with
/// and without the zero-skip rule and each bias mode.
#[test]
fn blocked_gemm_matches_reference_on_shape_matrix() {
    let ms = [1, 2, 3, MR, MR + 1, 2 * MR - 1, 2 * MR, 9, 17];
    let ns = [1, 2, NR - 1, NR, NR + 1, 2 * NR, 2 * NR + 3];
    let ks = [1, 2, 7, 64];
    let mut rng = Rng::from_seed(0xC04F0121);
    for &m in &ms {
        for &n in &ns {
            for &k in &ks {
                let a = operand(&mut rng, m * k);
                let b = operand(&mut rng, k * n); // k·n == n·k: serves both layouts
                let bias: Vec<f32> = (0..m.max(n)).map(|i| (i as f32) * 0.25 - 1.0).collect();
                for layout in [BLayout::RowMajor, BLayout::Transposed] {
                    for skip in [false, true] {
                        for bias_mode in 0..3usize {
                            let bias_spec = match bias_mode {
                                0 => Bias::None,
                                1 => Bias::InitPerCol(&bias[..n]),
                                _ => Bias::PostPerRow(&bias[..m]),
                            };
                            let spec = GemmSpec { m, k, n, layout, skip_zero_a: skip, bias: bias_spec };
                            let reference = run_gemm(&a, &b, &spec, KernelPath::Reference);
                            let blocked = run_gemm(&a, &b, &spec, KernelPath::Blocked);
                            assert_bits_equal(
                                &reference,
                                &blocked,
                                &format!("m={m} n={n} k={k} layout={layout:?} skip={skip} bias={bias_mode}"),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Degenerate shapes: `1×N`, `N×1`, `k = 1` crossed, plus empty
/// outputs (`m = 0` / `n = 0`) which must be a clean no-op on both
/// paths.
#[test]
fn blocked_gemm_matches_reference_on_degenerate_shapes() {
    let mut rng = Rng::from_seed(0xDE6E);
    for (m, k, n) in [
        (1, 1, 1),
        (1, 1, 100),
        (100, 1, 1),
        (1, 64, 1),
        (1, 7, 2 * NR + 5),
        (3 * MR + 2, 5, 1),
    ] {
        let a = operand(&mut rng, m * k);
        let b = operand(&mut rng, k * n);
        let spec = GemmSpec {
            m,
            k,
            n,
            layout: BLayout::RowMajor,
            skip_zero_a: true,
            bias: Bias::None,
        };
        let reference = run_gemm(&a, &b, &spec, KernelPath::Reference);
        let blocked = run_gemm(&a, &b, &spec, KernelPath::Blocked);
        assert_bits_equal(&reference, &blocked, &format!("degenerate m={m} k={k} n={n}"));
    }
    for (m, n) in [(0, 8), (8, 0), (0, 0)] {
        let spec = GemmSpec {
            m,
            k: 4,
            n,
            layout: BLayout::RowMajor,
            skip_zero_a: true,
            bias: Bias::None,
        };
        let a = vec![1.0f32; m * 4];
        let b = vec![1.0f32; 4 * n];
        let reference = run_gemm(&a, &b, &spec, KernelPath::Reference);
        let blocked = run_gemm(&a, &b, &spec, KernelPath::Blocked);
        assert_eq!(reference, blocked);
        assert!(reference.is_empty());
    }
}

/// Both kernel paths stay bit-identical to the single-thread reference
/// at every pool cap 1–8, on a shape large enough to cross the
/// parallelization threshold (so the chunked fan-out actually runs).
#[test]
fn gemm_is_bit_identical_at_every_pool_cap() {
    let (m, k, n) = (37, 48, 53); // m·k·n ≈ 94k > threshold; odd in every dimension
    let mut rng = Rng::from_seed(0x9001);
    let a = operand(&mut rng, m * k);
    let b = operand(&mut rng, k * n);
    let spec =
        GemmSpec { m, k, n, layout: BLayout::RowMajor, skip_zero_a: true, bias: Bias::None };
    let golden =
        alfi_pool::with_parallelism(1, || run_gemm(&a, &b, &spec, KernelPath::Reference));
    for threads in 1..=8 {
        for path in [KernelPath::Reference, KernelPath::Blocked] {
            let got = alfi_pool::with_parallelism(threads, || run_gemm(&a, &b, &spec, path));
            assert_bits_equal(&golden, &got, &format!("{path} at {threads} threads"));
        }
    }
}

/// `Tensor::matmul` dispatches through the kernel switch; both paths
/// must reproduce the public [`alfi_tensor::matmul_rows`] oracle
/// exactly.
#[test]
fn matmul_paths_match_the_rows_oracle() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let mut rng = Rng::from_seed(0x0A11);
    for (m, k, n) in [(1, 1, 1), (5, 17, 33), (16, 64, 48)] {
        let a = Tensor::from_vec(operand(&mut rng, m * k), &[m, k]).unwrap();
        let b = Tensor::from_vec(operand(&mut rng, k * n), &[k, n]).unwrap();
        let mut oracle_data = vec![0.0f32; m * n];
        alfi_tensor::matmul_rows(a.data(), b.data(), &mut oracle_data, 0, k, n);
        let oracle = Tensor::from_vec(oracle_data, &[m, n]).unwrap();
        for path in [KernelPath::Reference, KernelPath::Blocked] {
            let got = with_kernel(path, || a.matmul(&b).unwrap());
            assert_bits_equal(
                oracle.data(),
                got.data(),
                &format!("matmul {path} m={m} k={k} n={n}"),
            );
        }
    }
}

/// Odd im2col geometries — kernel larger than one, strides and pads
/// that leave ragged output extents, dilation holes, `1×1` kernels —
/// run bit-identically through both kernel paths, and track the
/// direct-convolution oracle within FP tolerance (direct sums in a
/// different order, so bit-equality across *algorithms* is not
/// expected there).
#[test]
fn conv_im2col_paths_are_bit_identical_on_odd_geometries() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let mut rng = Rng::from_seed(0xC0DE);
    // (hw, k, stride, pad, dilation)
    let geometries = [
        (7, 3, 1, 0, 1),
        (7, 3, 2, 1, 1),
        (9, 1, 1, 0, 1), // 1×1 kernel: im2col is a pure GEMM
        (9, 1, 3, 0, 1), // stride > kernel
        (8, 5, 1, 2, 1),
        (11, 3, 2, 0, 2), // dilation hole
        (13, 3, 3, 2, 2),
        (6, 2, 2, 1, 1), // even kernel
    ];
    for &(hw, k, stride, pad, dilation) in &geometries {
        let (nb, c_in, c_out) = (2, 3, 5);
        let input = Tensor::from_vec(
            operand(&mut rng, nb * c_in * hw * hw),
            &[nb, c_in, hw, hw],
        )
        .unwrap();
        let weight = Tensor::from_vec(
            operand(&mut rng, c_out * c_in * k * k),
            &[c_out, c_in, k, k],
        )
        .unwrap();
        let bias = Tensor::from_vec(operand(&mut rng, c_out), &[c_out]).unwrap();
        let cfg = ConvConfig::with_dilation(stride, pad, dilation).unwrap();
        for bias_opt in [None, Some(&bias)] {
            let reference = with_kernel(KernelPath::Reference, || {
                conv2d_im2col(&input, &weight, bias_opt, cfg).unwrap()
            });
            let blocked = with_kernel(KernelPath::Blocked, || {
                conv2d_im2col(&input, &weight, bias_opt, cfg).unwrap()
            });
            assert_eq!(reference.dims(), blocked.dims());
            assert_bits_equal(
                reference.data(),
                blocked.data(),
                &format!("conv hw={hw} k={k} s={stride} p={pad} d={dilation} bias={}", bias_opt.is_some()),
            );
            let direct = conv2d_direct(&input, &weight, bias_opt, cfg).unwrap();
            assert!(
                direct.max_abs_diff(&reference).unwrap() < 1e-3,
                "im2col drifted from the direct oracle (hw={hw} k={k} s={stride} p={pad} d={dilation})"
            );
        }
    }
}

/// The batch-parallel convolution is bit-identical across kernel paths
/// at every pool cap 1–8.
#[test]
fn conv_paths_are_bit_identical_at_every_pool_cap() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let mut rng = Rng::from_seed(0xBA7C);
    let (nb, c_in, c_out, hw, k) = (5, 3, 4, 9, 3);
    let input =
        Tensor::from_vec(operand(&mut rng, nb * c_in * hw * hw), &[nb, c_in, hw, hw]).unwrap();
    let weight =
        Tensor::from_vec(operand(&mut rng, c_out * c_in * k * k), &[c_out, c_in, k, k]).unwrap();
    let bias = Tensor::from_vec(operand(&mut rng, c_out), &[c_out]).unwrap();
    let cfg = ConvConfig::with_dilation(2, 1, 1).unwrap();
    let golden = alfi_pool::with_parallelism(1, || {
        with_kernel(KernelPath::Reference, || {
            conv2d_im2col(&input, &weight, Some(&bias), cfg).unwrap()
        })
    });
    for threads in 1..=8 {
        for path in [KernelPath::Reference, KernelPath::Blocked] {
            let got = alfi_pool::with_parallelism(threads, || {
                with_kernel(path, || conv2d_im2col(&input, &weight, Some(&bias), cfg).unwrap())
            });
            assert_bits_equal(
                golden.data(),
                got.data(),
                &format!("conv {path} at {threads} threads"),
            );
        }
    }
}

/// The fused epilogue hook fires exactly once per element with the
/// element's global flat index, on both paths, sequential and
/// parallel — the invariant injection correctness rests on.
#[test]
fn epilogue_fires_once_per_element_with_global_indices() {
    use std::sync::atomic::{AtomicU32, Ordering};

    struct CountEpilogue {
        hits: Vec<AtomicU32>,
    }
    impl gemm::Epilogue for CountEpilogue {
        fn apply(&self, flat: usize, v: f32) -> f32 {
            self.hits[flat].fetch_add(1, Ordering::Relaxed);
            v
        }
    }

    let (m, k, n) = (37, 48, 53); // crosses the parallel threshold
    let mut rng = Rng::from_seed(0xE417);
    let a = operand(&mut rng, m * k);
    let b = operand(&mut rng, k * n);
    let spec =
        GemmSpec { m, k, n, layout: BLayout::RowMajor, skip_zero_a: true, bias: Bias::None };
    for threads in [1, 3, 8] {
        for path in [KernelPath::Reference, KernelPath::Blocked] {
            let epi = CountEpilogue { hits: (0..m * n).map(|_| AtomicU32::new(0)).collect() };
            let mut out = vec![0.0f32; m * n];
            alfi_pool::with_parallelism(threads, || {
                gemm::gemm_with(&a, &b, &mut out, &spec, &epi, path)
            });
            assert!(
                epi.hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{path} at {threads} threads: epilogue fired != once for some element"
            );
        }
    }
    // NoEpilogue must be skipped entirely and identical to itself.
    let mut plain = vec![0.0f32; m * n];
    gemm::gemm_with(&a, &b, &mut plain, &spec, &NoEpilogue, KernelPath::Blocked);
    let reference = run_gemm(&a, &b, &spec, KernelPath::Reference);
    assert_bits_equal(&reference, &plain, "NoEpilogue blocked");
}
