//! Pinned FLOP/byte accounting for the kernel meters.
//!
//! The packed-B GEMM writes each `B` element into its panel exactly
//! once per GEMM invocation, no matter how many `MR × NR` register
//! tiles later stream the panel — so `gemm_pack_bytes` must grow by
//! `4 · ⌈n/NR⌉ · NR · k` per call, not by that amount times the tile
//! count. These tests pin the exact counter deltas for known shapes on
//! both kernel paths (the reference path packs nothing).
//!
//! Everything lives in one `#[test]` because the counters are
//! process-global: concurrent test functions would race each other's
//! deltas.

use alfi_metrics::names;
use alfi_rng::Rng;
use alfi_tensor::conv::{conv2d_im2col, ConvConfig};
use alfi_tensor::gemm::{self, KernelPath, BLOCKED_MIN_M, NR};
use alfi_tensor::Tensor;

struct Meters {
    matmul_flops: u64,
    matmul_bytes: u64,
    conv_flops: u64,
    conv_bytes: u64,
    pack_bytes: u64,
}

fn read_meters() -> Meters {
    let snap = alfi_metrics::global().snapshot();
    Meters {
        matmul_flops: snap.counter(names::TENSOR_MATMUL_FLOPS),
        matmul_bytes: snap.counter(names::TENSOR_MATMUL_BYTES),
        conv_flops: snap.counter(names::TENSOR_CONV_FLOPS),
        conv_bytes: snap.counter(names::TENSOR_CONV_BYTES),
        pack_bytes: snap.counter(names::TENSOR_GEMM_PACK_BYTES),
    }
}

fn with_kernel<R>(path: KernelPath, f: impl FnOnce() -> R) -> R {
    let prev = gemm::kernel_override();
    gemm::set_kernel_override(Some(path));
    let out = f();
    gemm::set_kernel_override(prev);
    out
}

#[test]
fn flop_and_byte_counts_are_pinned_for_known_shapes() {
    alfi_metrics::set_global_enabled(true);
    let mut rng = Rng::from_seed(7);

    // --- matmul: [m,k] × [k,n] with n deliberately not a multiple of
    // NR, so the ragged last panel's zero-padding is part of the pin,
    // and m above the thin-shape floor so the blocked path packs.
    let (m, k, n) = (BLOCKED_MIN_M + 1, 12usize, 2 * NR + 3);
    let a = Tensor::rand_normal(&mut rng, &[m, k], 0.0, 1.0);
    let b = Tensor::rand_normal(&mut rng, &[k, n], 0.0, 1.0);

    let before = read_meters();
    with_kernel(KernelPath::Blocked, || a.matmul(&b).unwrap());
    let after = read_meters();
    assert_eq!(after.matmul_flops - before.matmul_flops, 2 * (m * k * n) as u64);
    assert_eq!(
        after.matmul_bytes - before.matmul_bytes,
        4 * (m * k + k * n + m * n) as u64
    );
    let panel_elems = n.div_ceil(NR) * NR * k; // 3 panels of NR·k, zero-padded
    assert_eq!(
        after.pack_bytes - before.pack_bytes,
        4 * panel_elems as u64,
        "pack bytes must be charged once per GEMM call, not per tile"
    );
    assert_eq!(after.conv_flops, before.conv_flops, "matmul must not touch conv meters");

    // The reference path never packs: same matmul meters, zero pack delta.
    let before = read_meters();
    with_kernel(KernelPath::Reference, || a.matmul(&b).unwrap());
    let after = read_meters();
    assert_eq!(after.matmul_flops - before.matmul_flops, 2 * (m * k * n) as u64);
    assert_eq!(after.pack_bytes, before.pack_bytes, "reference path packs nothing");

    // --- conv: the conv meter counts the convolution as a whole, and
    // the blocked path packs one im2col B panel set per batch item.
    let (nb, c_in, c_out, hw, kk) = (3usize, 2usize, BLOCKED_MIN_M, 9usize, 3usize);
    let cfg = ConvConfig::new(2, 1).unwrap();
    let input = Tensor::rand_normal(&mut rng, &[nb, c_in, hw, hw], 0.0, 1.0);
    let weight = Tensor::rand_normal(&mut rng, &[c_out, c_in, kk, kk], 0.0, 1.0);
    let out_hw = (hw + 2 - kk) / 2 + 1; // stride 2, pad 1
    let spatial = out_hw * out_hw;
    let kdim = c_in * kk * kk;

    let before = read_meters();
    with_kernel(KernelPath::Blocked, || conv2d_im2col(&input, &weight, None, cfg).unwrap());
    let after = read_meters();
    assert_eq!(
        after.conv_flops - before.conv_flops,
        2 * (nb * c_out * spatial * kdim) as u64
    );
    assert_eq!(
        after.conv_bytes - before.conv_bytes,
        4 * (input.num_elements() + weight.num_elements() + nb * c_out * spatial) as u64
    );
    assert_eq!(
        after.pack_bytes - before.pack_bytes,
        (nb * 4 * spatial.div_ceil(NR) * NR * kdim) as u64,
        "one pack per batch item's GEMM"
    );
    assert_eq!(after.matmul_flops, before.matmul_flops, "conv must not touch matmul meters");

    // --- thin products delegate to the reference kernel: no pack.
    let thin = Tensor::rand_normal(&mut rng, &[BLOCKED_MIN_M - 1, k], 0.0, 1.0);
    let before = read_meters();
    with_kernel(KernelPath::Blocked, || thin.matmul(&b).unwrap());
    let after = read_meters();
    assert_eq!(
        after.matmul_flops - before.matmul_flops,
        2 * ((BLOCKED_MIN_M - 1) * k * n) as u64
    );
    assert_eq!(
        after.pack_bytes, before.pack_bytes,
        "below the thin-shape floor the blocked path must not pack"
    );

    // --- disabled runs meter nothing.
    alfi_metrics::set_global_enabled(false);
    let before = read_meters();
    with_kernel(KernelPath::Blocked, || a.matmul(&b).unwrap());
    let after = read_meters();
    assert_eq!(after.matmul_flops, before.matmul_flops);
    assert_eq!(after.pack_bytes, before.pack_bytes);
}
