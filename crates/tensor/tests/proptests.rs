//! Property-based tests for the tensor substrate's core invariants,
//! running on the in-tree `alfi-check` harness.

use alfi_check::{assume, check, check_with, gen};
use alfi_rng::Rng;
use alfi_tensor::conv::{avg_pool2d, conv2d_direct, conv2d_im2col, max_pool2d, ConvConfig};
use alfi_tensor::f16::{Bf16, F16};
use alfi_tensor::gemm::{
    self, BLayout, Bias, Clamp, ClampMode, FusedEpilogue, GemmSpec, InjectMap, InjectOp,
    KernelPath, NoEpilogue,
};
use alfi_tensor::quant::{flip_bit_i8, QuantParams};
use alfi_tensor::{bits, Shape, Tensor};

/// Flipping any bit twice restores the exact bit pattern — the
/// transient-fault restore guarantee rests on this.
#[test]
fn f32_flip_is_involutive() {
    check("f32_flip_is_involutive", |rng| {
        let v = gen::any_f32(rng);
        let pos: u8 = rng.gen_range(0u8..32);
        let back = bits::flip_bit(bits::flip_bit(v, pos), pos);
        assert_eq!(back.to_bits(), v.to_bits());
    });
}

/// Flip direction is consistent with the pre-flip bit value.
#[test]
fn flip_direction_matches_bit() {
    check("flip_direction_matches_bit", |rng| {
        let v = gen::any_f32(rng);
        let pos: u8 = rng.gen_range(0u8..32);
        let was_set = bits::get_bit(v, pos);
        let (_, dir) = bits::flip_bit_traced(v, pos);
        assert_eq!(dir == bits::FlipDirection::OneToZero, was_set);
    });
}

/// A flipped value always differs from the original in exactly one bit.
#[test]
fn flip_changes_exactly_one_bit() {
    check("flip_changes_exactly_one_bit", |rng| {
        let v = gen::any_f32(rng);
        let pos: u8 = rng.gen_range(0u8..32);
        let c = bits::flip_bit(v, pos);
        assert_eq!((c.to_bits() ^ v.to_bits()).count_ones(), 1);
    });
}

/// Stuck-at faults are idempotent.
#[test]
fn stuck_at_is_idempotent() {
    check("stuck_at_is_idempotent", |rng| {
        let v = gen::any_f32(rng);
        let pos: u8 = rng.gen_range(0u8..32);
        let bit = gen::any_bool(rng);
        let once = bits::set_bit(v, pos, bit);
        let twice = bits::set_bit(once, pos, bit);
        assert_eq!(once.to_bits(), twice.to_bits());
    });
}

/// Shape flat/multi index round trip for arbitrary small shapes.
#[test]
fn shape_index_round_trip() {
    check("shape_index_round_trip", |rng| {
        let dims = gen::vec_of(rng, 1..5, |r| r.gen_range(1usize..6));
        let s = Shape::new(&dims);
        let n = s.num_elements();
        for flat in [0, n / 2, n - 1] {
            let idx = s.multi_index(flat).unwrap();
            assert_eq!(s.flat_index(&idx).unwrap(), flat);
        }
    });
}

/// f16 conversion round-trips values already representable in f16.
#[test]
fn f16_double_conversion_is_stable() {
    check("f16_double_conversion_is_stable", |rng| {
        let v: f32 = rng.gen_range(-60000.0f32..60000.0);
        let once = F16::from_f32(v).to_f32();
        let twice = F16::from_f32(once).to_f32();
        assert_eq!(once.to_bits(), twice.to_bits());
    });
}

/// f16 conversion error is within one ULP of the f16 grid for normal values.
#[test]
fn f16_error_bound() {
    check("f16_error_bound", |rng| {
        let v: f32 = rng.gen_range(1.0e-3f32..60000.0);
        let back = F16::from_f32(v).to_f32();
        // ulp at magnitude v is at most v * 2^-10
        assert!((back - v).abs() <= v * 1.0e-3, "{} -> {}", v, back);
    });
}

/// bf16 conversion error bound for normal values (7-bit mantissa).
#[test]
fn bf16_error_bound() {
    check("bf16_error_bound", |rng| {
        let v: f32 = rng.gen_range(1.0e-3f32..1.0e30);
        let back = Bf16::from_f32(v).to_f32();
        assert!((back - v).abs() <= v * 8.0e-3, "{} -> {}", v, back);
    });
}

/// f16/bf16 flips are involutive.
#[test]
fn f16_bf16_flip_involutive() {
    check("f16_bf16_flip_involutive", |rng| {
        let v = gen::any_f32(rng);
        let pos: u8 = rng.gen_range(0u8..16);
        let h = F16::from_f32(v);
        assert_eq!(h.flip_bit(pos).flip_bit(pos), h);
        let b = Bf16::from_f32(v);
        assert_eq!(b.flip_bit(pos).flip_bit(pos), b);
    });
}

/// Quantize/dequantize error stays within half a step for in-range values.
#[test]
fn quant_round_trip_error() {
    check("quant_round_trip_error", |rng| {
        let lo: f32 = rng.gen_range(-10.0f32..-0.1);
        let hi: f32 = rng.gen_range(0.1f32..10.0);
        let x: f32 = rng.gen_range(-0.09f32..0.09);
        let p = QuantParams::from_range(lo, hi);
        let x = x * (hi - lo) * 5.0; // scale into range
        let x = x.clamp(lo, hi);
        let back = p.dequantize(p.quantize(x));
        assert!((back - x).abs() <= p.max_round_error() + p.scale * 1e-3);
    });
}

/// int8 flips are involutive.
#[test]
fn i8_flip_involutive() {
    check("i8_flip_involutive", |rng| {
        let q = gen::any_i8(rng);
        let pos: u8 = rng.gen_range(0u8..8);
        assert_eq!(flip_bit_i8(flip_bit_i8(q, pos), pos), q);
    });
}

/// Direct and im2col convolutions agree on random configurations.
#[test]
fn conv_implementations_agree() {
    check("conv_implementations_agree", |rng| {
        let seed = gen::any_u64(rng);
        let c_in: usize = rng.gen_range(1usize..4);
        let c_out: usize = rng.gen_range(1usize..4);
        let hw: usize = rng.gen_range(3usize..8);
        let k: usize = rng.gen_range(1usize..4);
        let pad: usize = rng.gen_range(0usize..2);
        assume!(k <= hw + 2 * pad);
        let mut data_rng = Rng::from_seed(seed);
        let input = Tensor::rand_normal(&mut data_rng, &[1, c_in, hw, hw], 0.0, 1.0);
        let weight = Tensor::rand_normal(&mut data_rng, &[c_out, c_in, k, k], 0.0, 1.0);
        let cfg = ConvConfig { stride: 1, padding: pad, dilation: 1 };
        let a = conv2d_direct(&input, &weight, None, cfg).unwrap();
        let b = conv2d_im2col(&input, &weight, None, cfg).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-3);
    });
}

/// Max pool output never exceeds the input maximum and avg pool stays
/// within [min, max].
#[test]
fn pooling_bounds() {
    check("pooling_bounds", |rng| {
        let seed = gen::any_u64(rng);
        let hw: usize = rng.gen_range(2usize..8);
        let k: usize = rng.gen_range(1usize..4);
        assume!(k <= hw);
        let mut data_rng = Rng::from_seed(seed);
        let input = Tensor::rand_normal(&mut data_rng, &[1, 2, hw, hw], 0.0, 3.0);
        let cfg = ConvConfig::default();
        let mx = max_pool2d(&input, k, cfg).unwrap();
        let av = avg_pool2d(&input, k, cfg).unwrap();
        assert!(mx.max() <= input.max());
        assert!(av.max() <= input.max() + 1e-5);
        assert!(av.min() >= input.min() - 1e-5);
    });
}

/// softmax output is a probability vector for finite inputs.
#[test]
fn softmax_is_probability() {
    check("softmax_is_probability", |rng| {
        let v = gen::vec_of(rng, 1..20, |r| r.gen_range(-50.0f32..50.0));
        let n = v.len();
        let t = Tensor::from_vec(v, &[n]).unwrap();
        let s = t.softmax_lastdim().unwrap();
        let sum: f32 = s.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(s.data().iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    });
}

/// The row-chunked parallel matmul is bit-identical to the sequential
/// kernel at every thread cap 1–8. Shapes straddle the
/// parallelization threshold (`m·k·n` from ~2k to ~180k), so both the
/// sequential fast path and the chunked pool path are exercised.
#[test]
fn parallel_matmul_is_bit_identical() {
    check_with(32, "parallel_matmul_is_bit_identical", |rng| {
        let seed = gen::any_u64(rng);
        let m: usize = rng.gen_range(2usize..6);
        let k: usize = rng.gen_range(16usize..96);
        let n: usize = rng.gen_range(64usize..320);
        let mut data_rng = Rng::from_seed(seed);
        let a = Tensor::rand_normal(&mut data_rng, &[m, k], 0.0, 1.0);
        let b = Tensor::rand_normal(&mut data_rng, &[k, n], 0.0, 1.0);
        let reference = alfi_pool::with_parallelism(1, || a.matmul(&b).unwrap());
        for threads in 2..=8 {
            let par = alfi_pool::with_parallelism(threads, || a.matmul(&b).unwrap());
            assert_eq!(
                reference.data(),
                par.data(),
                "parallel matmul diverged at {threads} threads (m={m} k={k} n={n})"
            );
        }
    });
}

/// The batch-parallel im2col convolution is bit-identical to its
/// sequential path at every thread cap 1–8, and tracks the direct
/// kernel within FP tolerance (the two differ in summation order, so
/// bit-equality across *implementations* is not expected).
#[test]
fn parallel_conv_is_bit_identical_and_matches_direct() {
    check_with(32, "parallel_conv_is_bit_identical_and_matches_direct", |rng| {
        let seed = gen::any_u64(rng);
        let nb: usize = rng.gen_range(1usize..5);
        let c_in: usize = rng.gen_range(1usize..4);
        let c_out: usize = rng.gen_range(1usize..4);
        let hw: usize = rng.gen_range(4usize..10);
        let k: usize = rng.gen_range(1usize..4);
        let pad: usize = rng.gen_range(0usize..2);
        let stride: usize = rng.gen_range(1usize..3);
        assume!(k <= hw + 2 * pad);
        let mut data_rng = Rng::from_seed(seed);
        let input = Tensor::rand_normal(&mut data_rng, &[nb, c_in, hw, hw], 0.0, 1.0);
        let weight = Tensor::rand_normal(&mut data_rng, &[c_out, c_in, k, k], 0.0, 1.0);
        let bias = Tensor::rand_normal(&mut data_rng, &[c_out], 0.0, 1.0);
        let cfg = ConvConfig { stride, padding: pad, dilation: 1 };
        let reference = alfi_pool::with_parallelism(1, || {
            conv2d_im2col(&input, &weight, Some(&bias), cfg).unwrap()
        });
        for threads in 2..=8 {
            let par = alfi_pool::with_parallelism(threads, || {
                conv2d_im2col(&input, &weight, Some(&bias), cfg).unwrap()
            });
            assert_eq!(
                reference.data(),
                par.data(),
                "parallel conv diverged at {threads} threads (nb={nb} hw={hw} k={k} s={stride} p={pad})"
            );
        }
        let direct = conv2d_direct(&input, &weight, Some(&bias), cfg).unwrap();
        assert!(direct.max_abs_diff(&reference).unwrap() < 1e-3);
    });
}

// ---------------------------------------------------------------------------
// Fused-epilogue differential properties: the in-kernel epilogue
// (injection mask + range clamp) must be bit-for-bit identical to the
// historical two-pass form (plain GEMM, then a separate full pass over
// the output), on both kernel paths — including NaN/Inf operands and
// clamp bounds that land exactly on output values.
// ---------------------------------------------------------------------------

/// Generates a random injection map over a `len`-element output:
/// bit-flips, stuck-at bits and direct value writes at random flat
/// indices (duplicates allowed — same-index ops compose in insertion
/// order).
fn random_inject_map(rng: &mut Rng, len: usize) -> InjectMap {
    let count = rng.gen_range(0usize..6);
    let entries: Vec<(usize, InjectOp)> = (0..count)
        .map(|_| {
            let flat = rng.gen_range(0usize..len);
            let op = match rng.gen_range(0u32..3) {
                0 => InjectOp::BitFlip(rng.gen_range(0u8..32)),
                1 => InjectOp::StuckAt {
                    pos: rng.gen_range(0u8..32),
                    high: rng.gen_range(0u32..2) == 1,
                },
                _ => InjectOp::Set(rng.gen_range(-100.0f32..100.0)),
            };
            (flat, op)
        })
        .collect();
    InjectMap::new(entries)
}

/// The two-pass reference the fused epilogue must reproduce: plain
/// GEMM result, then injections in map order, then a full clamp pass.
fn separate_passes(
    a: &[f32],
    b: &[f32],
    spec: &GemmSpec<'_>,
    inject: Option<&InjectMap>,
    clamp: Option<Clamp>,
    path: KernelPath,
) -> Vec<f32> {
    let mut out = vec![0.0f32; spec.m * spec.n];
    gemm::gemm_with(a, b, &mut out, spec, &NoEpilogue, path);
    if let Some(map) = inject {
        for &(flat, op) in map.entries() {
            out[flat] = op.apply(out[flat]);
        }
    }
    if let Some(c) = clamp {
        for v in &mut out {
            *v = c.apply(*v);
        }
    }
    out
}

fn assert_bits_eq(reference: &[f32], fused: &[f32], what: &str) {
    for (i, (r, f)) in reference.iter().zip(fused.iter()).enumerate() {
        assert_eq!(
            r.to_bits(),
            f.to_bits(),
            "{what}: fused drifted from separate passes at flat {i} ({r} vs {f})"
        );
    }
}

/// Fused inject+clamp == separate passes, bit-for-bit, on both kernel
/// paths, for random shapes, maps and clamp windows.
#[test]
fn fused_epilogue_matches_separate_passes() {
    check_with(64, "fused_epilogue_matches_separate_passes", |rng| {
        let seed = gen::any_u64(rng);
        let m: usize = rng.gen_range(1usize..10);
        let k: usize = rng.gen_range(1usize..20);
        let n: usize = rng.gen_range(1usize..40);
        let mut data_rng = Rng::from_seed(seed);
        let a: Vec<f32> = (0..m * k).map(|_| data_rng.gen_range(-2.0f32..2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| data_rng.gen_range(-2.0f32..2.0)).collect();
        let inject = random_inject_map(&mut data_rng, m * n);
        let lo = data_rng.gen_range(-3.0f32..0.0);
        let hi = data_rng.gen_range(0.0f32..3.0);
        let mode = if data_rng.gen_range(0u32..2) == 0 { ClampMode::Clip } else { ClampMode::Zero };
        let clamp = Clamp { lo, hi, mode };
        let spec = GemmSpec {
            m,
            k,
            n,
            layout: BLayout::RowMajor,
            skip_zero_a: true,
            bias: Bias::None,
        };
        for path in [KernelPath::Reference, KernelPath::Blocked] {
            let reference = separate_passes(&a, &b, &spec, Some(&inject), Some(clamp), path);
            let mut fused = vec![0.0f32; m * n];
            let epi = FusedEpilogue { base: 0, inject: Some(&inject), clamp: Some(clamp) };
            gemm::gemm_with(&a, &b, &mut fused, &spec, &epi, path);
            assert_bits_eq(&reference, &fused, &format!("{path} m={m} k={k} n={n}"));
        }
    });
}

/// Same property with NaN and ±Inf sprinkled through both operands:
/// the fused epilogue and both kernel paths must propagate non-finite
/// values with identical bit patterns (this is exactly the regime the
/// zero-skip rule exists for — `0·∞` never materializes because the
/// zero term is skipped, on every path).
#[test]
fn fused_epilogue_is_bitwise_stable_under_nonfinite_operands() {
    check_with(64, "fused_epilogue_is_bitwise_stable_under_nonfinite_operands", |rng| {
        let seed = gen::any_u64(rng);
        let m: usize = rng.gen_range(1usize..8);
        let k: usize = rng.gen_range(1usize..12);
        let n: usize = rng.gen_range(1usize..24);
        let mut data_rng = Rng::from_seed(seed);
        let special = |r: &mut Rng| -> f32 {
            match r.gen_range(0u32..10) {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                3 => 0.0,
                4 => -0.0,
                _ => r.gen_range(-2.0f32..2.0),
            }
        };
        let a: Vec<f32> = (0..m * k).map(|_| special(&mut data_rng)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| special(&mut data_rng)).collect();
        let inject = random_inject_map(&mut data_rng, m * n);
        let clamp = Clamp { lo: -1.0, hi: 1.0, mode: ClampMode::Clip };
        for skip in [false, true] {
            let spec = GemmSpec {
                m,
                k,
                n,
                layout: BLayout::RowMajor,
                skip_zero_a: skip,
                bias: Bias::None,
            };
            let epi = FusedEpilogue { base: 0, inject: Some(&inject), clamp: Some(clamp) };
            let reference =
                separate_passes(&a, &b, &spec, Some(&inject), Some(clamp), KernelPath::Reference);
            for path in [KernelPath::Reference, KernelPath::Blocked] {
                let mut fused = vec![0.0f32; m * n];
                gemm::gemm_with(&a, &b, &mut fused, &spec, &epi, path);
                assert_bits_eq(&reference, &fused, &format!("nonfinite {path} skip={skip}"));
            }
        }
    });
}

/// Clamp bounds that land *exactly* on values present in the output:
/// boundary values must pass through unchanged in `Clip` mode and
/// survive in `Zero` mode (the range check is inclusive), and the
/// fused form must agree with the separate pass on both paths.
#[test]
fn fused_clamp_at_exact_boundaries() {
    check_with(64, "fused_clamp_at_exact_boundaries", |rng| {
        let seed = gen::any_u64(rng);
        let m: usize = rng.gen_range(2usize..8);
        let k: usize = rng.gen_range(1usize..12);
        let n: usize = rng.gen_range(2usize..24);
        let mut data_rng = Rng::from_seed(seed);
        let a: Vec<f32> = (0..m * k).map(|_| data_rng.gen_range(-2.0f32..2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| data_rng.gen_range(-2.0f32..2.0)).collect();
        let spec = GemmSpec {
            m,
            k,
            n,
            layout: BLayout::RowMajor,
            skip_zero_a: true,
            bias: Bias::None,
        };
        // Take the clamp window from actual output values, so both
        // bounds land exactly on representable results.
        let plain = separate_passes(&a, &b, &spec, None, None, KernelPath::Reference);
        let lo_i = data_rng.gen_range(0usize..plain.len());
        let hi_i = data_rng.gen_range(0usize..plain.len());
        let (lo, hi) = (plain[lo_i].min(plain[hi_i]), plain[lo_i].max(plain[hi_i]));
        for mode in [ClampMode::Clip, ClampMode::Zero] {
            let clamp = Clamp { lo, hi, mode };
            let reference =
                separate_passes(&a, &b, &spec, None, Some(clamp), KernelPath::Reference);
            // Boundary semantics: the bound values themselves survive.
            assert_eq!(clamp.apply(lo).to_bits(), lo.to_bits(), "lo is inclusive");
            assert_eq!(clamp.apply(hi).to_bits(), hi.to_bits(), "hi is inclusive");
            for path in [KernelPath::Reference, KernelPath::Blocked] {
                let mut fused = vec![0.0f32; m * n];
                let epi = FusedEpilogue { base: 0, inject: None, clamp: Some(clamp) };
                gemm::gemm_with(&a, &b, &mut fused, &spec, &epi, path);
                assert_bits_eq(&reference, &fused, &format!("boundary {mode:?} {path}"));
            }
        }
    });
}

/// The fused convolution entry point agrees bit-for-bit with a plain
/// convolution followed by separate injection and clamp passes, on
/// both kernel paths and with the epilogue's per-item base offset in
/// play (batch > 1).
#[test]
fn fused_conv_matches_separate_passes() {
    check_with(32, "fused_conv_matches_separate_passes", |rng| {
        let seed = gen::any_u64(rng);
        let nb: usize = rng.gen_range(1usize..4);
        let c_in: usize = rng.gen_range(1usize..3);
        let c_out: usize = rng.gen_range(1usize..4);
        let hw: usize = rng.gen_range(4usize..8);
        let kk: usize = rng.gen_range(1usize..4);
        let pad: usize = rng.gen_range(0usize..2);
        assume!(kk <= hw + 2 * pad);
        let mut data_rng = Rng::from_seed(seed);
        let input = Tensor::rand_normal(&mut data_rng, &[nb, c_in, hw, hw], 0.0, 1.0);
        let weight = Tensor::rand_normal(&mut data_rng, &[c_out, c_in, kk, kk], 0.0, 1.0);
        let cfg = ConvConfig { stride: 1, padding: pad, dilation: 1 };
        let plain = conv2d_im2col(&input, &weight, None, cfg).unwrap();
        let inject = random_inject_map(&mut data_rng, plain.num_elements());
        let clamp = Clamp { lo: -1.5, hi: 1.5, mode: ClampMode::Clip };

        let mut expected = plain.data().to_vec();
        for &(flat, op) in inject.entries() {
            expected[flat] = op.apply(expected[flat]);
        }
        for v in &mut expected {
            *v = clamp.apply(*v);
        }

        let fused =
            alfi_tensor::conv::conv2d_fused(&input, &weight, None, cfg, Some(&inject), Some(clamp))
                .unwrap();
        assert_bits_eq(
            &expected,
            fused.data(),
            &format!("conv nb={nb} hw={hw} k={kk} pad={pad}"),
        );
    });
}

/// stack/batch_item round trip.
#[test]
fn stack_round_trip() {
    check("stack_round_trip", |rng| {
        let seed = gen::any_u64(rng);
        let n: usize = rng.gen_range(1usize..5);
        let len: usize = rng.gen_range(1usize..10);
        let mut data_rng = Rng::from_seed(seed);
        let items: Vec<Tensor> =
            (0..n).map(|_| Tensor::rand_uniform(&mut data_rng, &[len], -1.0, 1.0)).collect();
        let stacked = Tensor::stack(&items).unwrap();
        for (i, item) in items.iter().enumerate() {
            assert_eq!(&stacked.batch_item(i).unwrap(), item);
        }
    });
}
