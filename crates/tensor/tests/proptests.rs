//! Property-based tests for the tensor substrate's core invariants.

use alfi_tensor::conv::{avg_pool2d, conv2d_direct, conv2d_im2col, max_pool2d, ConvConfig};
use alfi_tensor::f16::{Bf16, F16};
use alfi_tensor::quant::{flip_bit_i8, QuantParams};
use alfi_tensor::{bits, Shape, Tensor};
use proptest::prelude::*;

proptest! {
    /// Flipping any bit twice restores the exact bit pattern — the
    /// transient-fault restore guarantee rests on this.
    #[test]
    fn f32_flip_is_involutive(v in any::<f32>(), pos in 0u8..32) {
        let back = bits::flip_bit(bits::flip_bit(v, pos), pos);
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    /// Flip direction is consistent with the pre-flip bit value.
    #[test]
    fn flip_direction_matches_bit(v in any::<f32>(), pos in 0u8..32) {
        let was_set = bits::get_bit(v, pos);
        let (_, dir) = bits::flip_bit_traced(v, pos);
        prop_assert_eq!(dir == bits::FlipDirection::OneToZero, was_set);
    }

    /// A flipped value always differs from the original in exactly one bit.
    #[test]
    fn flip_changes_exactly_one_bit(v in any::<f32>(), pos in 0u8..32) {
        let c = bits::flip_bit(v, pos);
        prop_assert_eq!((c.to_bits() ^ v.to_bits()).count_ones(), 1);
    }

    /// Stuck-at faults are idempotent.
    #[test]
    fn stuck_at_is_idempotent(v in any::<f32>(), pos in 0u8..32, bit in any::<bool>()) {
        let once = bits::set_bit(v, pos, bit);
        let twice = bits::set_bit(once, pos, bit);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    /// Shape flat/multi index round trip for arbitrary small shapes.
    #[test]
    fn shape_index_round_trip(dims in proptest::collection::vec(1usize..6, 1..5)) {
        let s = Shape::new(&dims);
        let n = s.num_elements();
        for flat in [0, n / 2, n - 1] {
            let idx = s.multi_index(flat).unwrap();
            prop_assert_eq!(s.flat_index(&idx).unwrap(), flat);
        }
    }

    /// f16 conversion round-trips values already representable in f16.
    #[test]
    fn f16_double_conversion_is_stable(v in -60000.0f32..60000.0) {
        let once = F16::from_f32(v).to_f32();
        let twice = F16::from_f32(once).to_f32();
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    /// f16 conversion error is within one ULP of the f16 grid for normal values.
    #[test]
    fn f16_error_bound(v in 1.0e-3f32..60000.0) {
        let back = F16::from_f32(v).to_f32();
        // ulp at magnitude v is at most v * 2^-10
        prop_assert!((back - v).abs() <= v * 1.0e-3, "{} -> {}", v, back);
    }

    /// bf16 conversion error bound for normal values (7-bit mantissa).
    #[test]
    fn bf16_error_bound(v in 1.0e-3f32..1.0e30) {
        let back = Bf16::from_f32(v).to_f32();
        prop_assert!((back - v).abs() <= v * 8.0e-3, "{} -> {}", v, back);
    }

    /// f16/bf16 flips are involutive.
    #[test]
    fn f16_bf16_flip_involutive(v in any::<f32>(), pos in 0u8..16) {
        let h = F16::from_f32(v);
        prop_assert_eq!(h.flip_bit(pos).flip_bit(pos), h);
        let b = Bf16::from_f32(v);
        prop_assert_eq!(b.flip_bit(pos).flip_bit(pos), b);
    }

    /// Quantize/dequantize error stays within half a step for in-range values.
    #[test]
    fn quant_round_trip_error(lo in -10.0f32..-0.1, hi in 0.1f32..10.0, x in -0.09f32..0.09) {
        let p = QuantParams::from_range(lo, hi);
        let x = x * (hi - lo) * 5.0; // scale into range
        let x = x.clamp(lo, hi);
        let back = p.dequantize(p.quantize(x));
        prop_assert!((back - x).abs() <= p.max_round_error() + p.scale * 1e-3);
    }

    /// int8 flips are involutive.
    #[test]
    fn i8_flip_involutive(q in any::<i8>(), pos in 0u8..8) {
        prop_assert_eq!(flip_bit_i8(flip_bit_i8(q, pos), pos), q);
    }

    /// Direct and im2col convolutions agree on random configurations.
    #[test]
    fn conv_implementations_agree(
        seed in any::<u64>(),
        c_in in 1usize..4,
        c_out in 1usize..4,
        hw in 3usize..8,
        k in 1usize..4,
        pad in 0usize..2,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        prop_assume!(k <= hw + 2 * pad);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor::rand_normal(&mut rng, &[1, c_in, hw, hw], 0.0, 1.0);
        let weight = Tensor::rand_normal(&mut rng, &[c_out, c_in, k, k], 0.0, 1.0);
        let cfg = ConvConfig { stride: 1, padding: pad };
        let a = conv2d_direct(&input, &weight, None, cfg).unwrap();
        let b = conv2d_im2col(&input, &weight, None, cfg).unwrap();
        prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-3);
    }

    /// Max pool output never exceeds the input maximum and avg pool stays
    /// within [min, max].
    #[test]
    fn pooling_bounds(seed in any::<u64>(), hw in 2usize..8, k in 1usize..4) {
        use rand::{rngs::StdRng, SeedableRng};
        prop_assume!(k <= hw);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor::rand_normal(&mut rng, &[1, 2, hw, hw], 0.0, 3.0);
        let cfg = ConvConfig::default();
        let mx = max_pool2d(&input, k, cfg).unwrap();
        let av = avg_pool2d(&input, k, cfg).unwrap();
        prop_assert!(mx.max() <= input.max());
        prop_assert!(av.max() <= input.max() + 1e-5);
        prop_assert!(av.min() >= input.min() - 1e-5);
    }

    /// softmax output is a probability vector for finite inputs.
    #[test]
    fn softmax_is_probability(v in proptest::collection::vec(-50.0f32..50.0, 1..20)) {
        let n = v.len();
        let t = Tensor::from_vec(v, &[n]).unwrap();
        let s = t.softmax_lastdim().unwrap();
        let sum: f32 = s.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(s.data().iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    }

    /// stack/batch_item round trip.
    #[test]
    fn stack_round_trip(seed in any::<u64>(), n in 1usize..5, len in 1usize..10) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let items: Vec<Tensor> =
            (0..n).map(|_| Tensor::rand_uniform(&mut rng, &[len], -1.0, 1.0)).collect();
        let stacked = Tensor::stack(&items).unwrap();
        for (i, item) in items.iter().enumerate() {
            prop_assert_eq!(&stacked.batch_item(i).unwrap(), item);
        }
    }
}
