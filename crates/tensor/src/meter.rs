//! Kernel instrumentation into the global `alfi-metrics` registry.
//!
//! One relaxed shard add per *kernel invocation* — never per element —
//! and only while `alfi_metrics::global_enabled()`; a disabled run
//! pays a single relaxed load per kernel call. The conv kernel drives
//! [`crate::gemm`] directly (not through [`crate::Tensor::matmul`]),
//! so matmul counters cover explicit matmul calls only; the conv
//! counters measure the convolution as a whole. B-panel packing bytes
//! for the blocked GEMM are accounted once per GEMM invocation —
//! packing writes each operand element exactly once regardless of how
//! many register tiles later stream the panel.

use alfi_metrics::{names, Class, Counter};
use std::sync::OnceLock;

struct Handles {
    matmul_flops: Counter,
    matmul_bytes: Counter,
    conv_flops: Counter,
    conv_bytes: Counter,
    gemm_pack_bytes: Counter,
}

fn handles() -> &'static Handles {
    static H: OnceLock<Handles> = OnceLock::new();
    H.get_or_init(|| {
        let reg = alfi_metrics::global();
        Handles {
            matmul_flops: reg.counter(
                names::TENSOR_MATMUL_FLOPS,
                "Floating-point operations issued by the matmul kernel",
                Class::Runtime,
            ),
            matmul_bytes: reg.counter(
                names::TENSOR_MATMUL_BYTES,
                "Bytes of operand and result data touched by the matmul kernel",
                Class::Runtime,
            ),
            conv_flops: reg.counter(
                names::TENSOR_CONV_FLOPS,
                "Floating-point operations issued by the im2col conv kernel",
                Class::Runtime,
            ),
            conv_bytes: reg.counter(
                names::TENSOR_CONV_BYTES,
                "Bytes of operand and result data touched by the im2col conv kernel",
                Class::Runtime,
            ),
            gemm_pack_bytes: reg.counter(
                names::TENSOR_GEMM_PACK_BYTES,
                "Bytes written into packed B panels by the blocked GEMM (once per GEMM call)",
                Class::Runtime,
            ),
        }
    })
}

/// Counts one `[m,k] × [k,n]` matmul (2·m·k·n FLOPs, f32 operands).
#[inline]
pub(crate) fn matmul(m: usize, k: usize, n: usize) {
    if alfi_metrics::global_enabled() {
        let h = handles();
        h.matmul_flops.add(2 * (m * k * n) as u64);
        h.matmul_bytes.add(4 * (m * k + k * n + m * n) as u64);
    }
}

/// Counts one im2col convolution over a whole batch.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the conv kernel's geometry parameters
pub(crate) fn conv2d(
    batch: usize,
    c_in: usize,
    c_out: usize,
    kh: usize,
    kw: usize,
    spatial_out: usize,
    input_elems: usize,
    weight_elems: usize,
) {
    if alfi_metrics::global_enabled() {
        let h = handles();
        let macs = batch * c_out * spatial_out * c_in * kh * kw;
        h.conv_flops.add(2 * macs as u64);
        h.conv_bytes
            .add(4 * (input_elems + weight_elems + batch * c_out * spatial_out) as u64);
    }
}

/// Counts one blocked-GEMM B-pack of `packed_elems` f32 elements.
/// Called exactly once per GEMM invocation, *not* per tile: the packed
/// buffer is written once and then shared (read-only) by every worker
/// and register tile, so charging it per tile would overstate traffic
/// by `m / MR ×`.
#[inline]
pub(crate) fn gemm_pack(packed_elems: usize) {
    if alfi_metrics::global_enabled() {
        handles().gemm_pack_bytes.add(4 * packed_elems as u64);
    }
}
