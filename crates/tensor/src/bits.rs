//! Bit-level fault primitives on IEEE-754 `f32` values.
//!
//! Hardware faults (radiation-induced single-event upsets, voltage droop,
//! stuck-at defects) manifest at the application level as corrupted bits
//! in register or memory words. This module implements the fault model
//! PyTorchALFI uses: single- and multi-bit flips at chosen positions of a
//! 32-bit float, with classification of which IEEE-754 field a bit
//! belongs to and the direction of the flip (0→1 or 1→0) — both of which
//! the paper's trace files record for every injected fault.
//!
//! Bit numbering is LSB-first: bit 0 is the least-significant mantissa
//! bit, bits 0–22 are mantissa, 23–30 exponent, 31 the sign.

/// Number of bits in the `f32` representation.
pub const F32_BITS: u8 = 32;
/// Inclusive range of mantissa bit positions in an `f32`.
pub const F32_MANTISSA_RANGE: (u8, u8) = (0, 22);
/// Inclusive range of exponent bit positions in an `f32` — the
/// "exponential bits" the paper's Fig. 2a campaign targets.
pub const F32_EXPONENT_RANGE: (u8, u8) = (23, 30);
/// Sign bit position in an `f32`.
pub const F32_SIGN_BIT: u8 = 31;

/// The IEEE-754 field a bit position belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitField {
    /// Bits 0–22: fraction. Flips here perturb the value by at most a
    /// factor of 2 and are frequently masked by the network.
    Mantissa,
    /// Bits 23–30: biased exponent. Flips here rescale the value by up to
    /// 2^128 and dominate silent-data-error rates.
    Exponent,
    /// Bit 31. Flips the sign of the value.
    Sign,
}

impl BitField {
    /// Classifies an `f32` bit position.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 32`.
    pub fn of(pos: u8) -> BitField {
        assert!(pos < F32_BITS, "bit position {pos} out of range for f32");
        match pos {
            0..=22 => BitField::Mantissa,
            23..=30 => BitField::Exponent,
            _ => BitField::Sign,
        }
    }
}

impl std::fmt::Display for BitField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BitField::Mantissa => "mantissa",
            BitField::Exponent => "exponent",
            BitField::Sign => "sign",
        };
        f.write_str(s)
    }
}

/// Direction of a bit flip, recorded in ALFI trace files so experiments
/// can distinguish 0→1 upsets (which tend to inflate magnitudes when they
/// hit high exponent bits) from 1→0 upsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlipDirection {
    /// The bit was 0 before the fault and 1 after.
    ZeroToOne,
    /// The bit was 1 before the fault and 0 after.
    OneToZero,
}

impl std::fmt::Display for FlipDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlipDirection::ZeroToOne => f.write_str("0->1"),
            FlipDirection::OneToZero => f.write_str("1->0"),
        }
    }
}

/// Flips bit `pos` of `value`, returning the corrupted value.
///
/// # Panics
///
/// Panics if `pos >= 32`.
///
/// # Example
///
/// ```
/// use alfi_tensor::bits::flip_bit;
///
/// // Flipping the sign bit of 1.0 yields -1.0.
/// assert_eq!(flip_bit(1.0, 31), -1.0);
/// // Flipping twice restores the original bit pattern exactly.
/// assert_eq!(flip_bit(flip_bit(3.5, 17), 17), 3.5);
/// ```
pub fn flip_bit(value: f32, pos: u8) -> f32 {
    assert!(pos < F32_BITS, "bit position {pos} out of range for f32");
    f32::from_bits(value.to_bits() ^ (1u32 << pos))
}

/// Flips bit `pos` and additionally reports the flip direction.
///
/// # Panics
///
/// Panics if `pos >= 32`.
pub fn flip_bit_traced(value: f32, pos: u8) -> (f32, FlipDirection) {
    assert!(pos < F32_BITS, "bit position {pos} out of range for f32");
    let was_set = value.to_bits() & (1u32 << pos) != 0;
    let direction = if was_set { FlipDirection::OneToZero } else { FlipDirection::ZeroToOne };
    (flip_bit(value, pos), direction)
}

/// Reads bit `pos` of `value`.
///
/// # Panics
///
/// Panics if `pos >= 32`.
pub fn get_bit(value: f32, pos: u8) -> bool {
    assert!(pos < F32_BITS, "bit position {pos} out of range for f32");
    value.to_bits() & (1u32 << pos) != 0
}

/// Forces bit `pos` of `value` to `bit` — the *stuck-at* permanent fault
/// model (stuck-at-1 for `bit = true`, stuck-at-0 for `bit = false`).
///
/// # Panics
///
/// Panics if `pos >= 32`.
pub fn set_bit(value: f32, pos: u8, bit: bool) -> f32 {
    assert!(pos < F32_BITS, "bit position {pos} out of range for f32");
    let mask = 1u32 << pos;
    let bits = if bit { value.to_bits() | mask } else { value.to_bits() & !mask };
    f32::from_bits(bits)
}

/// Flips several distinct bit positions at once (multi-bit upset).
///
/// # Panics
///
/// Panics if any position is `>= 32`.
pub fn flip_bits(value: f32, positions: &[u8]) -> f32 {
    let mut mask = 0u32;
    for &p in positions {
        assert!(p < F32_BITS, "bit position {p} out of range for f32");
        mask ^= 1u32 << p;
    }
    f32::from_bits(value.to_bits() ^ mask)
}

/// Relative magnitude perturbation caused by flipping `pos` in `value`:
/// `|corrupted - value| / max(|value|, f32::MIN_POSITIVE)`.
///
/// Infinite or NaN corruptions return `f32::INFINITY`. Used by analyses
/// ranking bit positions by expected impact.
///
/// # Panics
///
/// Panics if `pos >= 32`.
pub fn flip_impact(value: f32, pos: u8) -> f32 {
    let corrupted = flip_bit(value, pos);
    if !corrupted.is_finite() {
        return f32::INFINITY;
    }
    (corrupted - value).abs() / value.abs().max(f32::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_field_classification_matches_ieee754_layout() {
        assert_eq!(BitField::of(0), BitField::Mantissa);
        assert_eq!(BitField::of(22), BitField::Mantissa);
        assert_eq!(BitField::of(23), BitField::Exponent);
        assert_eq!(BitField::of(30), BitField::Exponent);
        assert_eq!(BitField::of(31), BitField::Sign);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_field_of_32_panics() {
        let _ = BitField::of(32);
    }

    #[test]
    fn flip_is_involutive() {
        for pos in 0..32u8 {
            let v = 123.456f32;
            assert_eq!(flip_bit(flip_bit(v, pos), pos).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn sign_bit_flip_negates() {
        assert_eq!(flip_bit(2.5, F32_SIGN_BIT), -2.5);
        assert_eq!(flip_bit(-2.5, F32_SIGN_BIT), 2.5);
    }

    #[test]
    fn high_exponent_flip_explodes_magnitude() {
        // 1.0 has exponent 0111_1111; flipping bit 30 gives exponent
        // 1111_1111 with zero mantissa => +inf is NOT produced (exponent
        // 0xFF with zero mantissa is inf). Verify the documented hazard.
        let corrupted = flip_bit(1.0, 30);
        assert!(corrupted.is_infinite() || corrupted > 1.0e30);
    }

    #[test]
    fn low_mantissa_flip_is_tiny() {
        let v = 1.0f32;
        let c = flip_bit(v, 0);
        assert!((c - v).abs() < 1e-6);
    }

    #[test]
    fn traced_flip_reports_direction() {
        // Bit 30 of 1.0 (0x3F800000) is 0 -> flipping sets it.
        let (_, d) = flip_bit_traced(1.0, 30);
        assert_eq!(d, FlipDirection::ZeroToOne);
        // Bit 23 of 1.0 is 1 (exponent 0x7F = 0111_1111).
        let (_, d) = flip_bit_traced(1.0, 23);
        assert_eq!(d, FlipDirection::OneToZero);
    }

    #[test]
    fn set_bit_implements_stuck_at() {
        let v = 1.0f32;
        // stuck-at on an already-correct bit is a no-op
        assert_eq!(set_bit(v, 23, true).to_bits(), v.to_bits());
        // stuck-at-0 on a set bit changes the value
        assert_ne!(set_bit(v, 23, false).to_bits(), v.to_bits());
        // idempotent
        let s = set_bit(v, 30, true);
        assert_eq!(set_bit(s, 30, true).to_bits(), s.to_bits());
    }

    #[test]
    fn multi_bit_flip_composes_single_flips() {
        let v = 7.25f32;
        let a = flip_bits(v, &[3, 17, 29]);
        let b = flip_bit(flip_bit(flip_bit(v, 3), 17), 29);
        assert_eq!(a.to_bits(), b.to_bits());
        // flipping the same bit twice in one call cancels
        assert_eq!(flip_bits(v, &[5, 5]).to_bits(), v.to_bits());
    }

    #[test]
    fn flip_impact_ranks_exponent_above_mantissa() {
        let v = 3.0f32;
        assert!(flip_impact(v, 30) > flip_impact(v, 1));
    }

    #[test]
    fn flip_impact_reports_infinity_for_non_finite_corruption() {
        // 1.5 has exponent 0111_1111 and a nonzero mantissa; setting bit 30
        // yields exponent 1111_1111 with nonzero mantissa, i.e. NaN.
        assert_eq!(flip_impact(1.5, 30), f32::INFINITY);
    }

    #[test]
    fn get_bit_reads_pattern() {
        // 1.0f32 = 0x3F80_0000
        assert!(get_bit(1.0, 23));
        assert!(get_bit(1.0, 29));
        assert!(!get_bit(1.0, 30));
        assert!(!get_bit(1.0, 31));
    }
}
