//! Convolution and pooling compute kernels.
//!
//! These are the MAC-heavy kernels whose outputs PyTorchALFI's hooks
//! intercept: "one of the hook function parameters is the output of a
//! specific layer's MAC operation" (§II). The layer wrappers in `alfi-nn`
//! call into this module and then hand the output tensor to the hook
//! registry for in-place corruption.
//!
//! Two 2-D convolution implementations are provided: a direct 7-loop
//! kernel (`conv2d_direct`, the reference) and an im2col + GEMM kernel
//! (`conv2d_im2col`, the fast path, driven by the [`crate::gemm`]
//! blocked/reference kernels). Tests assert they agree bit-for-bit
//! modulo floating-point associativity. [`conv2d_fused`] additionally
//! fuses per-element fault injection and a range-supervision clamp
//! into the GEMM epilogue so hardened runs avoid a second pass over
//! the activations.

use crate::gemm::{self, Clamp, InjectMap};
use crate::{Tensor, TensorError};

/// Stride/padding/dilation configuration shared by convolution and
/// pooling kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvConfig {
    /// Step between successive kernel applications (same in H and W).
    pub stride: usize,
    /// Zero padding added on every spatial border.
    pub padding: usize,
    /// Spacing between kernel taps (1 = dense kernel, the default).
    pub dilation: usize,
}

impl Default for ConvConfig {
    fn default() -> Self {
        ConvConfig { stride: 1, padding: 0, dilation: 1 }
    }
}

impl ConvConfig {
    /// Creates a dense (dilation 1) configuration, validating that the
    /// stride is nonzero.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidKernelConfig`] if `stride == 0`.
    pub fn new(stride: usize, padding: usize) -> Result<Self, TensorError> {
        Self::with_dilation(stride, padding, 1)
    }

    /// Creates a configuration with an explicit dilation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidKernelConfig`] if `stride == 0` or
    /// `dilation == 0`.
    pub fn with_dilation(
        stride: usize,
        padding: usize,
        dilation: usize,
    ) -> Result<Self, TensorError> {
        if stride == 0 {
            return Err(TensorError::InvalidKernelConfig("stride must be nonzero".into()));
        }
        if dilation == 0 {
            return Err(TensorError::InvalidKernelConfig("dilation must be nonzero".into()));
        }
        Ok(ConvConfig { stride, padding, dilation })
    }

    /// The span a `k`-tap kernel covers in the input under this
    /// dilation: `(k - 1) * dilation + 1`.
    fn effective_kernel(&self, k: usize) -> usize {
        if k == 0 {
            0
        } else {
            (k - 1) * self.dilation + 1
        }
    }

    /// Output spatial size for an input of size `n` and kernel size `k`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidKernelConfig`] if the (dilated)
    /// kernel does not fit in the padded input.
    pub fn out_size(&self, n: usize, k: usize) -> Result<usize, TensorError> {
        let padded = n + 2 * self.padding;
        let eff = self.effective_kernel(k);
        if k == 0 || eff > padded {
            return Err(TensorError::InvalidKernelConfig(format!(
                "kernel size {k} (dilation {}) does not fit input {n} with padding {}",
                self.dilation, self.padding
            )));
        }
        Ok((padded - eff) / self.stride + 1)
    }
}

fn check_rank(t: &Tensor, rank: usize) -> Result<(), TensorError> {
    if t.rank() != rank {
        return Err(TensorError::RankMismatch { expected: rank, actual: t.rank() });
    }
    Ok(())
}

/// 2-D convolution, direct nested-loop reference implementation.
///
/// * `input`: `[n, c_in, h, w]`
/// * `weight`: `[c_out, c_in, kh, kw]`
/// * `bias`: `[c_out]` or `None`
///
/// Returns `[n, c_out, h_out, w_out]`.
///
/// # Errors
///
/// Returns an error for rank/shape mismatches or kernels that do not fit.
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: ConvConfig,
) -> Result<Tensor, TensorError> {
    check_rank(input, 4)?;
    check_rank(weight, 4)?;
    let (n, c_in, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    let (c_out, wc_in, kh, kw) =
        (weight.dims()[0], weight.dims()[1], weight.dims()[2], weight.dims()[3]);
    if wc_in != c_in {
        return Err(TensorError::ShapeMismatch {
            left: input.dims().to_vec(),
            right: weight.dims().to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.dims() != [c_out] {
            return Err(TensorError::ShapeMismatch {
                left: vec![c_out],
                right: b.dims().to_vec(),
            });
        }
    }
    let h_out = cfg.out_size(h, kh)?;
    let w_out = cfg.out_size(w, kw)?;
    let mut out = vec![0.0f32; n * c_out * h_out * w_out];
    let in_data = input.data();
    let w_data = weight.data();
    let pad = cfg.padding as isize;

    for b in 0..n {
        for oc in 0..c_out {
            let bias_v = bias.map_or(0.0, |t| t.data()[oc]);
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut acc = bias_v;
                    for ic in 0..c_in {
                        for ky in 0..kh {
                            let iy = (oy * cfg.stride + ky * cfg.dilation) as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * cfg.stride + kx * cfg.dilation) as isize - pad;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let iv = in_data
                                    [((b * c_in + ic) * h + iy as usize) * w + ix as usize];
                                let wv = w_data[((oc * c_in + ic) * kh + ky) * kw + kx];
                                acc += iv * wv;
                            }
                        }
                    }
                    out[((b * c_out + oc) * h_out + oy) * w_out + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c_out, h_out, w_out])
}

/// Lowers an input image into column-matrix form for GEMM convolution.
///
/// Produces a `[c_in*kh*kw, h_out*w_out]` matrix per batch item; this
/// function returns the matrix for batch item `b`.
fn im2col(
    input: &Tensor,
    b: usize,
    kh: usize,
    kw: usize,
    h_out: usize,
    w_out: usize,
    cfg: ConvConfig,
) -> Tensor {
    let (c_in, h, w) = (input.dims()[1], input.dims()[2], input.dims()[3]);
    let rows = c_in * kh * kw;
    let cols = h_out * w_out;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.data();
    let pad = cfg.padding;
    let (stride, dil) = (cfg.stride, cfg.dilation);
    // Valid output-coordinate range for a tap offset `t = k * dilation`:
    // the input coordinate `o * stride + t - pad` must land in
    // `[0, extent)`. Hoisting the range out of the copy loops removes
    // the per-element boundary branches; out-of-range positions keep
    // their zero initialization, exactly as the branch-per-element form
    // produced.
    let valid = |t: usize, extent: usize, o_count: usize| -> (usize, usize) {
        let o_min = if t >= pad { 0 } else { (pad - t).div_ceil(stride) };
        let o_end = if extent + pad <= t {
            0
        } else {
            (extent + pad - t).div_ceil(stride).min(o_count)
        };
        (o_min.min(o_end), o_end)
    };
    for ic in 0..c_in {
        let plane_start = (b * c_in + ic) * h * w;
        let plane = &data[plane_start..plane_start + h * w];
        for ky in 0..kh {
            let ty = ky * dil;
            let (oy0, oy1) = valid(ty, h, h_out);
            for kx in 0..kw {
                let tx = kx * dil;
                let (ox0, ox1) = valid(tx, w, w_out);
                let row = (ic * kh + ky) * kw + kx;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oy in oy0..oy1 {
                    let iy = oy * stride + ty - pad;
                    let src = &plane[iy * w..(iy + 1) * w];
                    let dst = &mut out_row[oy * w_out + ox0..oy * w_out + ox1];
                    if stride == 1 {
                        // Contiguous tap row: one memcpy per output row.
                        let ix0 = ox0 + tx - pad;
                        dst.copy_from_slice(&src[ix0..ix0 + dst.len()]);
                    } else {
                        for (j, d) in dst.iter_mut().enumerate() {
                            *d = src[(ox0 + j) * stride + tx - pad];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols]).expect("im2col dims consistent")
}

/// 2-D convolution via im2col + GEMM — the fast path used by `alfi-nn`.
///
/// Semantics and argument conventions are identical to [`conv2d_direct`].
///
/// # Errors
///
/// Returns an error for rank/shape mismatches or kernels that do not fit.
pub fn conv2d_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: ConvConfig,
) -> Result<Tensor, TensorError> {
    conv2d_fused(input, weight, bias, cfg, None, None)
}

/// [`conv2d_im2col`] with per-element fault injection and a
/// range-supervision clamp fused into the GEMM epilogue.
///
/// Per output element the operation order is fixed — GEMM sum, bias,
/// injection (looked up by the element's flat index in the full
/// `[n, c_out, h_out, w_out]` output), clamp — which is exactly the
/// separate-pass sequence (forward, then hook mutation, then a spliced
/// `RangeRestrict` layer), so fused and separate-pass results are
/// bit-identical. With `inject = None` and `clamp = None` this *is*
/// `conv2d_im2col`.
///
/// # Errors
///
/// Returns an error for rank/shape mismatches or kernels that do not fit.
pub fn conv2d_fused(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: ConvConfig,
    inject: Option<&InjectMap>,
    clamp: Option<Clamp>,
) -> Result<Tensor, TensorError> {
    check_rank(input, 4)?;
    check_rank(weight, 4)?;
    let (n, c_in, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    let (c_out, wc_in, kh, kw) =
        (weight.dims()[0], weight.dims()[1], weight.dims()[2], weight.dims()[3]);
    if wc_in != c_in {
        return Err(TensorError::ShapeMismatch {
            left: input.dims().to_vec(),
            right: weight.dims().to_vec(),
        });
    }
    if let Some(bt) = bias {
        if bt.dims() != [c_out] {
            return Err(TensorError::ShapeMismatch {
                left: vec![c_out],
                right: bt.dims().to_vec(),
            });
        }
    }
    let h_out = cfg.out_size(h, kh)?;
    let w_out = cfg.out_size(w, kw)?;
    let kdim = c_in * kh * kw;
    let spatial = h_out * w_out;
    let per_item = c_out * spatial;
    let mut out = vec![0.0f32; n * per_item];
    crate::meter::conv2d(n, c_in, c_out, kh, kw, spatial, input.data().len(), weight.data().len());

    // The `[c_out, c_in, kh, kw]` weight buffer is already the
    // `[c_out, kdim]` GEMM operand in row-major order.
    let w_data = weight.data();
    // The historical kernel always ran the bias pass (adding 0.0 when
    // no bias was given), so a zero vector — not skipping the pass —
    // preserves bit-identity (`-0.0 + 0.0 == +0.0`).
    let zero_bias;
    let bias_row = match bias {
        Some(t) => t.data(),
        None => {
            zero_bias = vec![0.0f32; c_out];
            &zero_bias[..]
        }
    };
    // Resolve the kernel path on the caller thread so pool workers all
    // run the same implementation.
    let path = gemm::kernel_path();

    // One batch item = one fully independent im2col + GEMM + epilogue,
    // writing only its own slice of `out`. The per-item computation is
    // identical on both paths, so parallel output is bit-identical to
    // sequential for any thread count.
    let conv_item = |b: usize, dst_item: &mut [f32]| {
        let cols = im2col(input, b, kh, kw, h_out, w_out, cfg);
        let spec = gemm::GemmSpec {
            m: c_out,
            k: kdim,
            n: spatial,
            layout: gemm::BLayout::RowMajor,
            skip_zero_a: true,
            bias: gemm::Bias::PostPerRow(bias_row),
        };
        let epi = gemm::FusedEpilogue { base: b * per_item, inject, clamp };
        gemm::gemm_with(w_data, cols.data(), dst_item, &spec, &epi, path);
    };

    let threads = alfi_pool::current_parallelism();
    if threads > 1 && n > 1 {
        alfi_pool::global().parallel_chunks_mut(threads, &mut out, per_item, |b, chunk| {
            conv_item(b, chunk);
        });
    } else {
        for b in 0..n {
            conv_item(b, &mut out[b * per_item..(b + 1) * per_item]);
        }
    }
    Tensor::from_vec(out, &[n, c_out, h_out, w_out])
}

/// 3-D convolution (direct implementation).
///
/// * `input`: `[n, c_in, d, h, w]`
/// * `weight`: `[c_out, c_in, kd, kh, kw]`
/// * `bias`: `[c_out]` or `None`
///
/// Returns `[n, c_out, d_out, h_out, w_out]`. Conv3d is one of the three
/// layer types PyTorchALFI supports for fault injection (§IV-B), and its
/// presence is why Table I's fault records carry an extra *Depth* row.
///
/// # Errors
///
/// Returns an error for rank/shape mismatches or kernels that do not fit.
pub fn conv3d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: ConvConfig,
) -> Result<Tensor, TensorError> {
    check_rank(input, 5)?;
    check_rank(weight, 5)?;
    let (n, c_in, d, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
        input.dims()[4],
    );
    let (c_out, wc_in, kd, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
        weight.dims()[4],
    );
    if wc_in != c_in {
        return Err(TensorError::ShapeMismatch {
            left: input.dims().to_vec(),
            right: weight.dims().to_vec(),
        });
    }
    let d_out = cfg.out_size(d, kd)?;
    let h_out = cfg.out_size(h, kh)?;
    let w_out = cfg.out_size(w, kw)?;
    let mut out = vec![0.0f32; n * c_out * d_out * h_out * w_out];
    let in_data = input.data();
    let w_data = weight.data();
    let pad = cfg.padding as isize;

    for b in 0..n {
        for oc in 0..c_out {
            let bias_v = bias.map_or(0.0, |t| t.data()[oc]);
            for oz in 0..d_out {
                for oy in 0..h_out {
                    for ox in 0..w_out {
                        let mut acc = bias_v;
                        for ic in 0..c_in {
                            for kz in 0..kd {
                                let iz = (oz * cfg.stride + kz * cfg.dilation) as isize - pad;
                                if iz < 0 || iz >= d as isize {
                                    continue;
                                }
                                for ky in 0..kh {
                                    let iy = (oy * cfg.stride + ky * cfg.dilation) as isize - pad;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..kw {
                                        let ix = (ox * cfg.stride + kx * cfg.dilation) as isize - pad;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        let iv = in_data[(((b * c_in + ic) * d + iz as usize) * h
                                            + iy as usize)
                                            * w
                                            + ix as usize];
                                        let wv = w_data
                                            [(((oc * c_in + ic) * kd + kz) * kh + ky) * kw + kx];
                                        acc += iv * wv;
                                    }
                                }
                            }
                        }
                        out[(((b * c_out + oc) * d_out + oz) * h_out + oy) * w_out + ox] = acc;
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c_out, d_out, h_out, w_out])
}

/// 2-D max pooling over `[n, c, h, w]` with square window `k`.
///
/// Padding positions contribute `f32::NEG_INFINITY` (i.e. are ignored
/// unless the whole window is padding).
///
/// # Errors
///
/// Returns an error for rank mismatches or windows that do not fit.
pub fn max_pool2d(input: &Tensor, k: usize, cfg: ConvConfig) -> Result<Tensor, TensorError> {
    check_rank(input, 4)?;
    let (n, c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    let h_out = cfg.out_size(h, k)?;
    let w_out = cfg.out_size(w, k)?;
    let mut out = vec![f32::NEG_INFINITY; n * c * h_out * w_out];
    let data = input.data();
    let pad = cfg.padding as isize;
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut m = f32::NEG_INFINITY;
                    for ky in 0..k {
                        let iy = (oy * cfg.stride + ky * cfg.dilation) as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * cfg.stride + kx * cfg.dilation) as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            m = m.max(data[((b * c + ch) * h + iy as usize) * w + ix as usize]);
                        }
                    }
                    out[((b * c + ch) * h_out + oy) * w_out + ox] = m;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, h_out, w_out])
}

/// 2-D average pooling over `[n, c, h, w]` with square window `k`.
///
/// The divisor counts only in-bounds positions (PyTorch's
/// `count_include_pad=False` convention).
///
/// # Errors
///
/// Returns an error for rank mismatches or windows that do not fit.
pub fn avg_pool2d(input: &Tensor, k: usize, cfg: ConvConfig) -> Result<Tensor, TensorError> {
    check_rank(input, 4)?;
    let (n, c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    let h_out = cfg.out_size(h, k)?;
    let w_out = cfg.out_size(w, k)?;
    let mut out = vec![0.0f32; n * c * h_out * w_out];
    let data = input.data();
    let pad = cfg.padding as isize;
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut acc = 0.0f32;
                    let mut cnt = 0usize;
                    for ky in 0..k {
                        let iy = (oy * cfg.stride + ky * cfg.dilation) as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * cfg.stride + kx * cfg.dilation) as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += data[((b * c + ch) * h + iy as usize) * w + ix as usize];
                            cnt += 1;
                        }
                    }
                    out[((b * c + ch) * h_out + oy) * w_out + ox] =
                        if cnt > 0 { acc / cnt as f32 } else { 0.0 };
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, h_out, w_out])
}

/// Adaptive average pooling to an exact `out × out` spatial size, as used
/// by ResNet/VGG classifier heads.
///
/// # Errors
///
/// Returns an error for rank mismatches or `out == 0`.
pub fn adaptive_avg_pool2d(input: &Tensor, out_hw: usize) -> Result<Tensor, TensorError> {
    check_rank(input, 4)?;
    if out_hw == 0 {
        return Err(TensorError::InvalidKernelConfig("adaptive pool output size must be nonzero".into()));
    }
    let (n, c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    let mut out = vec![0.0f32; n * c * out_hw * out_hw];
    let data = input.data();
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..out_hw {
                let y0 = oy * h / out_hw;
                let y1 = ((oy + 1) * h).div_ceil(out_hw);
                for ox in 0..out_hw {
                    let x0 = ox * w / out_hw;
                    let x1 = ((ox + 1) * w).div_ceil(out_hw);
                    let mut acc = 0.0f32;
                    let mut cnt = 0usize;
                    for iy in y0..y1.min(h) {
                        for ix in x0..x1.min(w) {
                            acc += data[((b * c + ch) * h + iy) * w + ix];
                            cnt += 1;
                        }
                    }
                    out[((b * c + ch) * out_hw + oy) * out_hw + ox] =
                        if cnt > 0 { acc / cnt as f32 } else { 0.0 };
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, out_hw, out_hw])
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_rng::Rng;

    #[test]
    fn conv_config_validates() {
        assert!(ConvConfig::new(0, 1).is_err());
        let c = ConvConfig::new(2, 1).unwrap();
        assert_eq!(c.out_size(5, 3).unwrap(), 3); // (5+2-3)/2+1
        assert!(c.out_size(1, 5).is_err());
    }

    #[test]
    fn conv2d_identity_kernel_preserves_input() {
        // 1x1 kernel with weight 1.0 is identity.
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv2d_direct(&input, &weight, None, ConvConfig::default()).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv2d_matches_hand_computed_example() {
        // 3x3 input, 2x2 kernel of ones: each output = sum of 2x2 patch.
        let input =
            Tensor::from_vec(vec![1., 2., 3., 4., 5., 6., 7., 8., 9.], &[1, 1, 3, 3]).unwrap();
        let weight = Tensor::ones(&[1, 1, 2, 2]);
        let out = conv2d_direct(&input, &weight, None, ConvConfig::default()).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[12., 16., 24., 28.]);
    }

    #[test]
    fn conv2d_bias_adds_per_channel() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let weight = Tensor::zeros(&[2, 1, 1, 1]);
        let bias = Tensor::from_vec(vec![5.0, -3.0], &[2]).unwrap();
        let out = conv2d_direct(&input, &weight, Some(&bias), ConvConfig::default()).unwrap();
        assert!(out.data()[..4].iter().all(|&x| x == 5.0));
        assert!(out.data()[4..].iter().all(|&x| x == -3.0));
    }

    #[test]
    fn conv2d_padding_grows_output() {
        let input = Tensor::ones(&[1, 1, 3, 3]);
        let weight = Tensor::ones(&[1, 1, 3, 3]);
        let out =
            conv2d_direct(&input, &weight, None, ConvConfig { stride: 1, padding: 1, dilation: 1 }).unwrap();
        assert_eq!(out.dims(), &[1, 1, 3, 3]);
        // center sees all 9 ones; corner sees 4
        assert_eq!(out.get(&[0, 0, 1, 1]), 9.0);
        assert_eq!(out.get(&[0, 0, 0, 0]), 4.0);
    }

    #[test]
    fn im2col_agrees_with_direct_on_random_inputs() {
        let mut rng = Rng::from_seed(42);
        for &(n, c_in, c_out, hw, k, s, p) in
            &[(2, 3, 4, 8, 3, 1, 1), (1, 1, 1, 5, 2, 2, 0), (2, 4, 2, 7, 3, 2, 1)]
        {
            let input = Tensor::rand_normal(&mut rng, &[n, c_in, hw, hw], 0.0, 1.0);
            let weight = Tensor::rand_normal(&mut rng, &[c_out, c_in, k, k], 0.0, 0.5);
            let bias = Tensor::rand_normal(&mut rng, &[c_out], 0.0, 0.1);
            let cfg = ConvConfig { stride: s, padding: p, dilation: 1 };
            let a = conv2d_direct(&input, &weight, Some(&bias), cfg).unwrap();
            let b = conv2d_im2col(&input, &weight, Some(&bias), cfg).unwrap();
            assert_eq!(a.dims(), b.dims());
            assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
        }
    }

    #[test]
    fn conv2d_rejects_channel_mismatch() {
        let input = Tensor::zeros(&[1, 3, 4, 4]);
        let weight = Tensor::zeros(&[2, 4, 3, 3]);
        assert!(conv2d_direct(&input, &weight, None, ConvConfig::default()).is_err());
        assert!(conv2d_im2col(&input, &weight, None, ConvConfig::default()).is_err());
    }

    #[test]
    fn conv3d_reduces_to_conv2d_for_depth_one() {
        let mut rng = Rng::from_seed(9);
        let input2 = Tensor::rand_normal(&mut rng, &[1, 2, 5, 5], 0.0, 1.0);
        let weight2 = Tensor::rand_normal(&mut rng, &[3, 2, 3, 3], 0.0, 1.0);
        let input3 = input2.reshape(&[1, 2, 1, 5, 5]).unwrap();
        let weight3 = weight2.reshape(&[3, 2, 1, 3, 3]).unwrap();
        let a = conv2d_direct(&input2, &weight2, None, ConvConfig::default()).unwrap();
        let b = conv3d_direct(&input3, &weight3, None, ConvConfig::default()).unwrap();
        assert_eq!(b.dims(), &[1, 3, 1, 3, 3]);
        assert!(a.reshape(&[1, 3, 1, 3, 3]).unwrap().max_abs_diff(&b).unwrap() < 1e-5);
    }

    #[test]
    fn conv3d_sums_across_depth() {
        let input = Tensor::ones(&[1, 1, 2, 2, 2]);
        let weight = Tensor::ones(&[1, 1, 2, 2, 2]);
        let out = conv3d_direct(&input, &weight, None, ConvConfig::default()).unwrap();
        assert_eq!(out.dims(), &[1, 1, 1, 1, 1]);
        assert_eq!(out.data()[0], 8.0);
    }

    #[test]
    fn max_pool_takes_window_maximum() {
        let input =
            Tensor::from_vec(vec![1., 2., 3., 4., 5., 6., 7., 8., 9.], &[1, 1, 3, 3]).unwrap();
        let out = max_pool2d(&input, 2, ConvConfig::default()).unwrap();
        assert_eq!(out.data(), &[5., 6., 8., 9.]);
    }

    #[test]
    fn max_pool_stride_two_downsamples() {
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let out = max_pool2d(&input, 2, ConvConfig { stride: 2, padding: 0, dilation: 1 }).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[5., 7., 13., 15.]);
    }

    #[test]
    fn avg_pool_ignores_padding_in_divisor() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let out = avg_pool2d(&input, 3, ConvConfig { stride: 1, padding: 1, dilation: 1 }).unwrap();
        // every window contains only ones (padding excluded from divisor)
        assert!(out.data().iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    #[test]
    fn adaptive_avg_pool_to_one_is_global_mean() {
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let out = adaptive_avg_pool2d(&input, 1).unwrap();
        assert_eq!(out.dims(), &[1, 1, 1, 1]);
        assert!((out.data()[0] - 7.5).abs() < 1e-6);
    }

    #[test]
    fn adaptive_avg_pool_identity_when_sizes_match() {
        let mut rng = Rng::from_seed(1);
        let input = Tensor::rand_normal(&mut rng, &[1, 2, 3, 3], 0.0, 1.0);
        let out = adaptive_avg_pool2d(&input, 3).unwrap();
        assert!(input.max_abs_diff(&out).unwrap() < 1e-6);
    }

    #[test]
    fn pooling_rejects_bad_rank() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(max_pool2d(&t, 2, ConvConfig::default()).is_err());
        assert!(avg_pool2d(&t, 2, ConvConfig::default()).is_err());
        assert!(adaptive_avg_pool2d(&t, 1).is_err());
    }
}
