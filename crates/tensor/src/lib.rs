#![warn(missing_docs)]
//! # alfi-tensor
//!
//! Dense tensor substrate for the ALFI fault-injection framework.
//!
//! This crate replaces the role PyTorch tensors play in the original
//! PyTorchALFI tool (Gräfe et al., DSN 2023). It provides:
//!
//! * [`Tensor`] — a dense, row-major `f32` tensor with NCHW conventions,
//!   elementwise and linear-algebra kernels sufficient for CNN inference;
//! * [`bits`] — bit-level fault primitives on IEEE-754 `f32` values
//!   (single-bit flips, bit-field classification, flip direction), the
//!   core mechanism by which hardware faults are modelled at the
//!   application level;
//! * [`mod@f16`] and [`quant`] — software half-precision (`f16`/`bf16`) and
//!   affine-quantized `int8` numeric types with the same flip API, used
//!   for the paper's "vulnerability of different numeric types" use case;
//! * [`conv`] — convolution and pooling compute kernels used by
//!   `alfi-nn` layers;
//! * [`gemm`] — cache-blocked, panel-packed GEMM microkernels with a
//!   fused per-element epilogue (fault injection + range clamp), plus
//!   the `ALFI_KERNEL` reference/blocked path switch. Both paths are
//!   bit-identical by contract.
//!
//! # Example
//!
//! ```
//! use alfi_tensor::{Tensor, bits};
//!
//! let mut t = Tensor::zeros(&[2, 3]);
//! t.set(&[1, 2], 1.0);
//! // Flip the top exponent bit of one element — a classic SDE-producing fault.
//! let flipped = bits::flip_bit(t.get(&[1, 2]), 30);
//! assert!(flipped > 1.0e30);
//! ```

pub mod bits;
pub mod conv;
pub mod error;
pub mod f16;
pub mod gemm;
mod meter;
pub mod quant;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::{matmul_rows, Tensor};
