//! Software half-precision (`f16`) and bfloat16 (`bf16`) numeric types.
//!
//! The paper motivates large-scale FI partly by data-type proliferation:
//! "a 16-bit model with over 10 million parameters will result in 160
//! million vulnerable bits". To exercise the *vulnerability of different
//! numeric types* use case (§V) without external crates, this module
//! implements IEEE-754 binary16 and bfloat16 conversion and the same
//! bit-flip API as [`crate::bits`], operating on the 16-bit encodings.
//!
//! Bit numbering is LSB-first within the 16-bit word.
//! * `f16`: bits 0–9 mantissa, 10–14 exponent, 15 sign.
//! * `bf16`: bits 0–6 mantissa, 7–14 exponent, 15 sign.

use crate::bits::BitField;

/// An IEEE-754 binary16 value stored as its raw 16-bit encoding.
///
/// # Example
///
/// ```
/// use alfi_tensor::f16::F16;
///
/// let h = F16::from_f32(1.5);
/// assert_eq!(h.to_f32(), 1.5);
/// // Sign-bit flip negates, exactly as for f32.
/// assert_eq!(h.flip_bit(15).to_f32(), -1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(pub u16);

/// A bfloat16 value stored as its raw 16-bit encoding.
///
/// bfloat16 is the upper half of an `f32`: same 8-bit exponent, truncated
/// 7-bit mantissa. Exponent-bit flips in bf16 are therefore exactly as
/// catastrophic as in f32, while the format has *more* exponent bits per
/// word than f16 — a distinction the numeric-type vulnerability benchmark
/// surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bf16(pub u16);

/// Number of bits in a 16-bit float encoding.
pub const F16_BITS: u8 = 16;
/// Inclusive exponent bit range of binary16.
pub const F16_EXPONENT_RANGE: (u8, u8) = (10, 14);
/// Inclusive exponent bit range of bfloat16.
pub const BF16_EXPONENT_RANGE: (u8, u8) = (7, 14);

impl F16 {
    /// Converts an `f32` to binary16 with round-to-nearest-even.
    pub fn from_f32(x: f32) -> F16 {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN: preserve class; keep a nonzero mantissa for NaN.
            let m = if mant != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | m);
        }
        // Re-bias: f32 bias 127, f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            return F16(sign | 0x7C00); // overflow to inf
        }
        if unbiased >= -14 {
            // Normal range: round 23-bit mantissa to 10 bits.
            let half_exp = (unbiased + 15) as u16;
            let shifted = mant >> 13;
            let round_bits = mant & 0x1FFF;
            let mut out = (sign as u32) | ((half_exp as u32) << 10) | shifted;
            // round to nearest even
            if round_bits > 0x1000 || (round_bits == 0x1000 && (shifted & 1) == 1) {
                out += 1; // may carry into exponent; encoding stays valid
            }
            return F16(out as u16);
        }
        if unbiased >= -24 {
            // Subnormal f16.
            let full_mant = mant | 0x0080_0000; // implicit leading 1
            let shift = (-14 - unbiased) as u32 + 13;
            let shifted = full_mant >> shift;
            let round_mask = 1u32 << (shift - 1);
            let mut out = (sign as u32) | shifted;
            let rem = full_mant & ((1u32 << shift) - 1);
            if rem > round_mask || (rem == round_mask && (shifted & 1) == 1) {
                out += 1;
            }
            return F16(out as u16);
        }
        F16(sign) // underflow to signed zero
    }

    /// Converts the binary16 encoding back to `f32` (exact).
    pub fn to_f32(self) -> f32 {
        let bits = self.0 as u32;
        let sign = (bits & 0x8000) << 16;
        let exp = (bits >> 10) & 0x1F;
        let mant = bits & 0x03FF;
        let out = if exp == 0x1F {
            // inf / nan
            sign | 0x7F80_0000 | (mant << 13)
        } else if exp == 0 {
            if mant == 0 {
                sign // signed zero
            } else {
                // subnormal: value = mant * 2^-24; normalize so the implicit
                // bit lands at position 10 after `s` shifts, giving
                // f32 exponent field 113 - s.
                let mut s = 0u32;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    s += 1;
                }
                m &= 0x03FF;
                let f32_exp = 113 - s;
                sign | (f32_exp << 23) | (m << 13)
            }
        } else {
            let f32_exp = exp + 127 - 15;
            sign | (f32_exp << 23) | (mant << 13)
        };
        f32::from_bits(out)
    }

    /// Flips bit `pos` of the 16-bit encoding.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 16`.
    pub fn flip_bit(self, pos: u8) -> F16 {
        assert!(pos < F16_BITS, "bit position {pos} out of range for f16");
        F16(self.0 ^ (1u16 << pos))
    }

    /// Classifies a binary16 bit position into sign / exponent / mantissa.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 16`.
    pub fn bit_field(pos: u8) -> BitField {
        assert!(pos < F16_BITS, "bit position {pos} out of range for f16");
        match pos {
            0..=9 => BitField::Mantissa,
            10..=14 => BitField::Exponent,
            _ => BitField::Sign,
        }
    }

    /// Whether this encoding denotes NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Whether this encoding denotes ±infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }
}

impl Bf16 {
    /// Converts an `f32` to bfloat16 with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Bf16 {
        let bits = x.to_bits();
        if x.is_nan() {
            // keep a quiet NaN
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        let round_bit = 0x0000_8000u32;
        let mut upper = bits >> 16;
        let lower = bits & 0xFFFF;
        if lower > round_bit || (lower == round_bit && (upper & 1) == 1) {
            upper += 1;
        }
        Bf16(upper as u16)
    }

    /// Converts the bfloat16 encoding back to `f32` (exact: zero-extend).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Flips bit `pos` of the 16-bit encoding.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 16`.
    pub fn flip_bit(self, pos: u8) -> Bf16 {
        assert!(pos < F16_BITS, "bit position {pos} out of range for bf16");
        Bf16(self.0 ^ (1u16 << pos))
    }

    /// Classifies a bfloat16 bit position into sign / exponent / mantissa.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 16`.
    pub fn bit_field(pos: u8) -> BitField {
        assert!(pos < F16_BITS, "bit position {pos} out of range for bf16");
        match pos {
            0..=6 => BitField::Mantissa,
            7..=14 => BitField::Exponent,
            _ => BitField::Sign,
        }
    }

    /// Whether this encoding denotes NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// Whether this encoding denotes ±infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7F80
    }
}

impl std::fmt::Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl std::fmt::Display for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trips_exactly_representable_values() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, 1.5, -3.25, 65504.0, 6.1035156e-5] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn f16_known_encodings() {
        assert_eq!(F16::from_f32(1.0).0, 0x3C00);
        assert_eq!(F16::from_f32(-2.0).0, 0xC000);
        assert_eq!(F16::from_f32(0.0).0, 0x0000);
        assert_eq!(F16::from_f32(-0.0).0, 0x8000);
        assert_eq!(F16::from_f32(f32::INFINITY).0, 0x7C00);
    }

    #[test]
    fn f16_overflow_saturates_to_inf() {
        assert!(F16::from_f32(1.0e6).is_infinite());
        assert!(F16::from_f32(-1.0e6).to_f32().is_infinite());
    }

    #[test]
    fn f16_nan_is_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn f16_subnormals_round_trip() {
        // Smallest positive f16 subnormal = 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        // Below half of it underflows to zero.
        assert_eq!(F16::from_f32(2.0f32.powi(-26)).to_f32(), 0.0);
    }

    #[test]
    fn f16_rounding_is_nearest_even() {
        // 1.0 + 2^-11 rounds down to 1.0 (tie to even).
        let v = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(v).to_f32(), 1.0);
        // 1.0 + 3*2^-11 is halfway between steps 1 and 2 above 1.0;
        // the tie rounds to the even mantissa, i.e. 1.0 + 2*2^-10.
        let v = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(v).to_f32(), 1.0 + 2.0 * 2.0f32.powi(-10));
    }

    #[test]
    fn f16_flip_is_involutive_and_sign_flip_negates() {
        let h = F16::from_f32(3.5);
        for pos in 0..16u8 {
            assert_eq!(h.flip_bit(pos).flip_bit(pos), h);
        }
        assert_eq!(h.flip_bit(15).to_f32(), -3.5);
    }

    #[test]
    fn f16_bit_fields() {
        assert_eq!(F16::bit_field(0), BitField::Mantissa);
        assert_eq!(F16::bit_field(9), BitField::Mantissa);
        assert_eq!(F16::bit_field(10), BitField::Exponent);
        assert_eq!(F16::bit_field(14), BitField::Exponent);
        assert_eq!(F16::bit_field(15), BitField::Sign);
    }

    #[test]
    fn f16_top_exponent_flip_produces_huge_or_nonfinite() {
        let h = F16::from_f32(1.0);
        let c = h.flip_bit(14).to_f32();
        assert!(!c.is_finite() || c.abs() > 1.0e4);
    }

    #[test]
    fn bf16_round_trip_preserves_upper_bits() {
        for &v in &[0.0f32, 1.0, -1.0, 256.0, 3.0e38, 1.0e-30] {
            let b = Bf16::from_f32(v);
            let back = b.to_f32();
            assert!((back - v).abs() <= v.abs() * 0.01, "{v} -> {back}");
        }
    }

    #[test]
    fn bf16_known_encodings() {
        assert_eq!(Bf16::from_f32(1.0).0, 0x3F80);
        assert_eq!(Bf16::from_f32(-2.0).0, 0xC000);
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(Bf16::from_f32(f32::INFINITY).is_infinite());
    }

    #[test]
    fn bf16_rounding_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between bf16(1.0) and the next bf16;
        // ties round to even (stay at 1.0).
        let v = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(v).0, 0x3F80);
        // slightly above the tie rounds up
        let v = f32::from_bits(0x3F80_8001);
        assert_eq!(Bf16::from_f32(v).0, 0x3F81);
    }

    #[test]
    fn bf16_flip_involutive_and_fields() {
        let b = Bf16::from_f32(-7.0);
        for pos in 0..16u8 {
            assert_eq!(b.flip_bit(pos).flip_bit(pos), b);
        }
        assert_eq!(Bf16::bit_field(6), BitField::Mantissa);
        assert_eq!(Bf16::bit_field(7), BitField::Exponent);
        assert_eq!(Bf16::bit_field(15), BitField::Sign);
    }

    #[test]
    fn bf16_exponent_flip_matches_f32_severity() {
        // bf16 bit 14 corresponds to f32 bit 30.
        let v = 1.0f32;
        let bf = Bf16::from_f32(v).flip_bit(14).to_f32();
        let f = crate::bits::flip_bit(v, 30);
        assert_eq!(bf.to_bits(), f.to_bits());
    }
}
