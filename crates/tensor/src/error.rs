//! Error type for tensor operations.

use std::fmt;

/// Error produced by fallible tensor operations.
///
/// Display messages are lowercase and concise per Rust API guidelines
/// (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape that was indexed.
        shape: Vec<usize>,
    },
    /// The number of elements implied by a shape did not match the data length.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// An operation received a tensor of unsupported rank.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the tensor provided.
        actual: usize,
    },
    /// Parameters to a kernel (stride, padding, kernel size) were invalid.
    InvalidKernelConfig(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: shape implies {expected} elements, got {actual}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected rank {expected}, got rank {actual}")
            }
            TensorError::InvalidKernelConfig(msg) => {
                write!(f, "invalid kernel configuration: {msg}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TensorError::ShapeMismatch { left: vec![2, 3], right: vec![3, 2] };
        assert_eq!(e.to_string(), "shape mismatch: [2, 3] vs [3, 2]");
        let e = TensorError::IndexOutOfBounds { index: vec![5], shape: vec![3] };
        assert!(e.to_string().contains("out of bounds"));
        let e = TensorError::LengthMismatch { expected: 6, actual: 5 };
        assert!(e.to_string().contains('6'));
        let e = TensorError::RankMismatch { expected: 4, actual: 2 };
        assert!(e.to_string().contains("rank"));
        let e = TensorError::InvalidKernelConfig("stride must be nonzero".into());
        assert!(e.to_string().contains("stride"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
