//! Affine `int8` quantization with bit-level fault primitives.
//!
//! PyTorchALFI's requirements (§IV-A) include addressing "numeric type
//! used and bit position within this numeric type". Quantized inference
//! is the natural third point of comparison next to `f32` and the 16-bit
//! floats: an `int8` word has no exponent field, so a single-bit upset
//! perturbs the dequantized value by at most `128 · scale` — a bounded,
//! linear error in contrast to the exponential blow-ups of floating
//! point. The numeric-type vulnerability benchmark quantifies exactly
//! this difference.

/// Parameters of an affine (asymmetric) int8 quantizer:
/// `real = scale * (q - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Positive step size between adjacent quantization levels.
    pub scale: f32,
    /// The quantized code that maps to real value 0.0.
    pub zero_point: i8,
}

impl QuantParams {
    /// Derives quantization parameters covering `[lo, hi]` with the full
    /// int8 code range.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn from_range(lo: f32, hi: f32) -> QuantParams {
        assert!(lo.is_finite() && hi.is_finite(), "range bounds must be finite");
        assert!(lo < hi, "range must be non-degenerate: lo={lo} hi={hi}");
        let scale = (hi - lo) / 255.0;
        let zp = (-128.0 - lo / scale).round().clamp(-128.0, 127.0) as i8;
        QuantParams { scale, zero_point: zp }
    }

    /// Quantizes a real value to its nearest int8 code (saturating).
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x / self.scale).round() + self.zero_point as f32;
        q.clamp(-128.0, 127.0) as i8
    }

    /// Dequantizes an int8 code back to a real value.
    pub fn dequantize(&self, q: i8) -> f32 {
        self.scale * (q as i16 - self.zero_point as i16) as f32
    }

    /// Largest possible absolute dequantization error for values inside
    /// the covered range: half a step.
    pub fn max_round_error(&self) -> f32 {
        self.scale / 2.0
    }
}

/// Number of bits in the int8 encoding.
pub const I8_BITS: u8 = 8;

/// Flips bit `pos` (LSB-first) of an int8 code — the quantized-domain
/// fault model. Bit 7 is the two's-complement sign bit.
///
/// # Panics
///
/// Panics if `pos >= 8`.
///
/// # Example
///
/// ```
/// use alfi_tensor::quant::flip_bit_i8;
///
/// assert_eq!(flip_bit_i8(0, 0), 1);
/// assert_eq!(flip_bit_i8(0, 7), -128);
/// ```
pub fn flip_bit_i8(q: i8, pos: u8) -> i8 {
    assert!(pos < I8_BITS, "bit position {pos} out of range for i8");
    (q as u8 ^ (1u8 << pos)) as i8
}

/// Worst-case dequantized perturbation of a single-bit flip at `pos`:
/// `2^pos * scale`. The bound is exact because int8 codes are two's
/// complement: flipping bit `pos` changes the code by exactly ±2^pos.
pub fn flip_error_bound(params: &QuantParams, pos: u8) -> f32 {
    assert!(pos < I8_BITS, "bit position {pos} out of range for i8");
    (1u32 << pos) as f32 * params.scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_range_round_trips_within_half_step() {
        let p = QuantParams::from_range(-1.0, 1.0);
        for i in -100..=100 {
            let x = i as f32 / 100.0;
            let back = p.dequantize(p.quantize(x));
            assert!((back - x).abs() <= p.max_round_error() + 1e-6, "{x} -> {back}");
        }
    }

    #[test]
    fn zero_maps_near_zero() {
        let p = QuantParams::from_range(-2.0, 6.0);
        let back = p.dequantize(p.quantize(0.0));
        assert!(back.abs() <= p.max_round_error());
    }

    #[test]
    fn quantize_saturates_out_of_range() {
        let p = QuantParams::from_range(-1.0, 1.0);
        assert_eq!(p.quantize(100.0), 127);
        assert_eq!(p.quantize(-100.0), -128);
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn degenerate_range_panics() {
        let _ = QuantParams::from_range(1.0, 1.0);
    }

    #[test]
    fn flip_bit_i8_is_involutive() {
        for pos in 0..8u8 {
            for q in [-128i8, -1, 0, 1, 63, 127] {
                assert_eq!(flip_bit_i8(flip_bit_i8(q, pos), pos), q);
            }
        }
    }

    #[test]
    fn sign_bit_flip_shifts_by_128_codes() {
        assert_eq!(flip_bit_i8(0, 7), -128);
        assert_eq!(flip_bit_i8(127, 7), -1);
        assert_eq!(flip_bit_i8(-128, 7), 0);
    }

    #[test]
    fn flip_error_bound_is_exact() {
        let p = QuantParams::from_range(-1.0, 1.0);
        for pos in 0..8u8 {
            for q in [-128i8, -5, 0, 17, 127] {
                let err = (p.dequantize(flip_bit_i8(q, pos)) - p.dequantize(q)).abs();
                let bound = flip_error_bound(&p, pos);
                assert!((err - bound).abs() < 1e-5, "pos {pos} q {q}: err {err} bound {bound}");
            }
        }
    }

    #[test]
    fn int8_worst_case_is_bounded_unlike_float() {
        // The key property the numeric-type benchmark relies on: int8
        // worst-case error is 128*scale, finite; f32 exponent flips can be
        // infinite.
        let p = QuantParams::from_range(-1.0, 1.0);
        let worst = flip_error_bound(&p, 7);
        assert!(worst <= 128.0 * p.scale + 1e-6);
        assert!(crate::bits::flip_impact(1.0, 30) > worst);
    }
}
