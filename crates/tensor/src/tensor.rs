//! Dense `f32` tensor with the kernels needed for CNN inference and
//! application-level fault injection.

use crate::{gemm, Shape, TensorError};
use alfi_rng::Rng;

/// A dense, row-major `f32` tensor.
///
/// `Tensor` is the single numeric carrier of the ALFI substrate: model
/// parameters, activations and fault-injected values all live in tensors.
/// Fault injection mutates tensors *in place* — mirroring how PyTorchFI
/// hooks mutate the output of a layer's MAC operation before it reaches
/// the activation function.
///
/// # Example
///
/// ```
/// use alfi_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
/// let b = Tensor::full(&[2, 2], 0.5);
/// let c = a.add(&b).unwrap();
/// assert_eq!(c.get(&[1, 1]), 4.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor { shape, data: vec![value; n] }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not
    /// equal the number of elements implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if shape.num_elements() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(rng: &mut Rng, dims: &[usize], lo: f32, hi: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with elements drawn from a normal distribution
    /// `N(mean, std^2)` using a Box–Muller transform (no external
    /// distribution crates required).
    pub fn rand_normal(rng: &mut Rng, dims: &[usize], mean: f32, std: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the backing buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    ///
    /// This is the low-level access path used by neuron fault injection:
    /// hooks compute a flat offset from the fault coordinates and mutate
    /// the value in place.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds; use [`Tensor::try_get`] for a
    /// fallible variant.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.try_get(index).expect("index in bounds")
    }

    /// Fallible element read.
    ///
    /// # Errors
    ///
    /// Returns an error if the index has the wrong rank or is out of bounds.
    pub fn try_get(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.flat_index(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds; use [`Tensor::try_set`] for a
    /// fallible variant.
    pub fn set(&mut self, index: &[usize], value: f32) {
        self.try_set(index, value).expect("index in bounds");
    }

    /// Fallible element write.
    ///
    /// # Errors
    ///
    /// Returns an error if the index has the wrong rank or is out of bounds.
    pub fn try_set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let flat = self.shape.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: FnMut(f32) -> f32>(&self, mut f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two equally-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip<F: FnMut(f32, f32) -> f32>(&self, other: &Tensor, mut f: F) -> Result<Tensor, TensorError> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor { shape: self.shape.clone(), data })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// 2-D matrix multiplication: `self [m,k] × other [k,n] → [m,n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are
    /// rank 2, and [`TensorError::ShapeMismatch`] if the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.rank() });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: other.rank() });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        crate::meter::matmul(m, k, n);
        // Both kernel paths (and every thread count) are bit-identical:
        // the blocked path preserves the reference per-element operation
        // order, and chunk boundaries depend only on the problem size.
        let spec = gemm::GemmSpec {
            m,
            k,
            n,
            layout: gemm::BLayout::RowMajor,
            skip_zero_a: true,
            bias: gemm::Bias::None,
        };
        gemm::gemm(&self.data, &other.data, &mut out, &spec, gemm::kernel_path());
        Tensor::from_vec(out, &[m, n])
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Minimum element (`f32::INFINITY` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element (`f32::NEG_INFINITY` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element (flat, row-major; ties resolve to the
    /// first occurrence). Returns `None` for an empty tensor.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// The `k` largest elements as `(flat_index, value)` pairs, sorted by
    /// descending value (ties broken by ascending index). NaN values sort
    /// last and never appear unless fewer than `k` non-NaN values exist.
    ///
    /// Used to extract the top-5 classes the paper's classification CSV
    /// output stores.
    pub fn topk(&self, k: usize) -> Vec<(usize, f32)> {
        let mut indexed: Vec<(usize, f32)> = self.data.iter().copied().enumerate().collect();
        indexed.sort_by(|a, b| match (a.1.is_nan(), b.1.is_nan()) {
            (true, true) => a.0.cmp(&b.0),
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => {
                b.1.partial_cmp(&a.1).expect("both finite-or-inf").then(a.0.cmp(&b.0))
            }
        });
        indexed.truncate(k);
        indexed
    }

    /// Numerically-stable softmax over the last dimension.
    ///
    /// For rank-1 tensors this is a plain softmax; for rank-2 `[n, c]` it
    /// is applied row-wise. NaN/Inf inputs propagate (they are exactly
    /// what DUE monitoring must observe, so they are not sanitized here).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank 0 tensors.
    pub fn softmax_lastdim(&self) -> Result<Tensor, TensorError> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch { expected: 1, actual: 0 });
        }
        let c = *self.dims().last().expect("rank >= 1");
        if c == 0 {
            return Ok(self.clone());
        }
        let rows = self.num_elements() / c;
        let mut out = vec![0.0f32; self.num_elements()];
        for r in 0..rows {
            let row = &self.data[r * c..(r + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (i, &x) in row.iter().enumerate() {
                let e = (x - m).exp();
                out[r * c + i] = e;
                denom += e;
            }
            for v in &mut out[r * c..(r + 1) * c] {
                *v /= denom;
            }
        }
        Tensor::from_vec(out, self.dims())
    }

    /// Number of NaN elements — one half of the DUE (detected uncorrectable
    /// error) monitor.
    pub fn count_nan(&self) -> usize {
        self.data.iter().filter(|x| x.is_nan()).count()
    }

    /// Number of infinite elements — the other half of the DUE monitor.
    pub fn count_inf(&self) -> usize {
        self.data.iter().filter(|x| x.is_infinite()).count()
    }

    /// Whether any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Extracts batch item `b` from an NCHW (or NC / NCDHW) tensor as a new
    /// tensor with the leading batch dimension removed.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `b` exceeds the batch
    /// size or the tensor is rank 0.
    pub fn batch_item(&self, b: usize) -> Result<Tensor, TensorError> {
        if self.rank() == 0 || b >= self.dims()[0] {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![b],
                shape: self.dims().to_vec(),
            });
        }
        let rest: usize = self.dims()[1..].iter().product();
        let data = self.data[b * rest..(b + 1) * rest].to_vec();
        Tensor::from_vec(data, &self.dims()[1..])
    }

    /// Stacks equally-shaped tensors along a new leading batch dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ, or
    /// [`TensorError::LengthMismatch`] for an empty input slice.
    pub fn stack(items: &[Tensor]) -> Result<Tensor, TensorError> {
        let first = items.first().ok_or(TensorError::LengthMismatch { expected: 1, actual: 0 })?;
        let mut data = Vec::with_capacity(first.num_elements() * items.len());
        for t in items {
            if !t.shape.same_as(&first.shape) {
                return Err(TensorError::ShapeMismatch {
                    left: first.dims().to_vec(),
                    right: t.dims().to_vec(),
                });
            }
            data.extend_from_slice(&t.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Maximum absolute elementwise difference to another tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }
}

/// Computes output rows `row0..row0 + out_rows.len() / n` of `a × b`
/// into `out_rows`. This is the sequential *reference oracle* kernel:
/// both paths of [`crate::gemm`] are required to reproduce its
/// per-element floating-point operation sequence bit-for-bit, and the
/// kernel-conformance suite pins every blocked/packed variant against
/// it. It is retained verbatim from the pre-blocked implementation and
/// must not be "optimized".
pub fn matmul_rows(a: &[f32], b: &[f32], out_rows: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = out_rows.len() / n;
    // i-k-j loop order keeps the inner loop sequential over `b`'s rows
    // for cache friendliness.
    for r in 0..rows {
        let i = row0 + r;
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let row = &b[kk * n..(kk + 1) * n];
            let dst = &mut out_rows[r * n..(r + 1) * n];
            for (d, &bv) in dst.iter_mut().zip(row.iter()) {
                *d += av * bv;
            }
        }
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} n={}", self.shape, self.num_elements())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_rng::Rng;

    #[test]
    fn constructors_fill_correctly() {
        assert!(Tensor::zeros(&[2, 2]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[2], 7.5).data().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::LengthMismatch { expected: 6, actual: 5 })
        ));
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 42.0);
        assert_eq!(t.get(&[1, 2, 3]), 42.0);
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(a.matmul(&b), Err(TensorError::ShapeMismatch { .. })));
        let c = Tensor::zeros(&[2, 3, 4]);
        assert!(matches!(a.matmul(&c), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let s = t.softmax_lastdim().unwrap();
        for r in 0..2 {
            let sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // softmax is monotone: larger logit -> larger probability
        assert!(s.get(&[0, 2]) > s.get(&[0, 1]));
    }

    #[test]
    fn softmax_is_stable_for_large_values() {
        let t = Tensor::from_vec(vec![1e30, 1e30 + 1.0], &[2]).unwrap();
        let s = t.softmax_lastdim().unwrap();
        assert!(s.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn topk_orders_descending_and_breaks_ties_by_index() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.9, 0.5], &[4]).unwrap();
        let top = t.topk(3);
        assert_eq!(top[0], (1, 0.9));
        assert_eq!(top[1], (2, 0.9));
        assert_eq!(top[2], (3, 0.5));
    }

    #[test]
    fn topk_handles_nan_last() {
        let t = Tensor::from_vec(vec![f32::NAN, 1.0, 2.0], &[3]).unwrap();
        let top = t.topk(2);
        assert_eq!(top[0].0, 2);
        assert_eq!(top[1].0, 1);
    }

    #[test]
    fn nan_inf_counters() {
        let t = Tensor::from_vec(vec![1.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY], &[4]).unwrap();
        assert_eq!(t.count_nan(), 1);
        assert_eq!(t.count_inf(), 2);
        assert!(t.has_non_finite());
        assert!(!Tensor::zeros(&[2]).has_non_finite());
    }

    #[test]
    fn batch_item_and_stack_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.batch_item(0).unwrap(), a);
        assert_eq!(s.batch_item(1).unwrap(), b);
        assert!(s.batch_item(2).is_err());
    }

    #[test]
    fn stack_rejects_mixed_shapes_and_empty() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(Tensor::stack(&[a, b]).is_err());
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn rand_normal_has_plausible_moments() {
        let mut rng = Rng::from_seed(7);
        let t = Tensor::rand_normal(&mut rng, &[10_000], 2.0, 3.0);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let mut rng = Rng::from_seed(3);
        let t = Tensor::rand_uniform(&mut rng, &[1000], -1.0, 1.0);
        assert!(t.min() >= -1.0 && t.max() < 1.0);
    }

    #[test]
    fn max_abs_diff_detects_single_corruption() {
        let a = Tensor::zeros(&[4]);
        let mut b = a.clone();
        b.set(&[2], 0.25);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.25);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[3]).is_err());
    }
}
