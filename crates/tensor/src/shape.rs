//! Tensor shape and row-major stride arithmetic.

use crate::TensorError;

/// The shape of a dense tensor: a list of dimension sizes.
///
/// Shapes are stored row-major ("C order"): the last dimension is
/// contiguous in memory. CNN tensors follow the NCHW convention used by
/// PyTorch, i.e. `[batch, channels, height, width]` (and
/// `[batch, channels, depth, height, width]` for 3-D convolutions).
///
/// # Example
///
/// ```
/// use alfi_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.num_elements(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.flat_index(&[1, 2, 3]).unwrap(), 23);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    ///
    /// A zero-length slice denotes a scalar (one element). Dimensions of
    /// size zero are permitted and denote an empty tensor.
    pub fn new(dims: &[usize]) -> Self {
        Shape { dims: dims.to_vec() }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank) of the shape.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Total number of elements (product of all dimensions; 1 for scalars).
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides: `strides[i]` is the flat-index distance between
    /// consecutive elements along axis `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `index.len() != rank()` and
    /// [`TensorError::IndexOutOfBounds`] if any coordinate exceeds its
    /// dimension.
    pub fn flat_index(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() {
            return Err(TensorError::RankMismatch {
                expected: self.dims.len(),
                actual: index.len(),
            });
        }
        let mut flat = 0usize;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims.clone(),
                });
            }
            flat += i * strides[axis];
        }
        Ok(flat)
    }

    /// Converts a flat offset back into a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `flat >= num_elements()`.
    pub fn multi_index(&self, flat: usize) -> Result<Vec<usize>, TensorError> {
        if flat >= self.num_elements() {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![flat],
                shape: self.dims.clone(),
            });
        }
        let mut rem = flat;
        let mut idx = vec![0usize; self.dims.len()];
        for (axis, stride) in self.strides().iter().enumerate() {
            idx[axis] = rem / stride;
            rem %= stride;
        }
        Ok(idx)
    }

    /// Whether two shapes are compatible for elementwise binary operations.
    ///
    /// ALFI kernels require exact shape equality (no NumPy broadcasting);
    /// this keeps fault locations unambiguous.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.flat_index(&[]).unwrap(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4, 5]);
        assert_eq!(s.strides(), vec![60, 20, 5, 1]);
    }

    #[test]
    fn flat_index_matches_manual_computation() {
        let s = Shape::new(&[4, 5, 6]);
        assert_eq!(s.flat_index(&[2, 3, 4]).unwrap(), 2 * 30 + 3 * 6 + 4);
    }

    #[test]
    fn flat_and_multi_index_round_trip() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.num_elements() {
            let idx = s.multi_index(flat).unwrap();
            assert_eq!(s.flat_index(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn out_of_bounds_index_is_rejected() {
        let s = Shape::new(&[2, 2]);
        assert!(matches!(
            s.flat_index(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            s.flat_index(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(s.multi_index(4).is_err());
    }

    #[test]
    fn empty_dimension_yields_empty_tensor() {
        let s = Shape::new(&[2, 0, 3]);
        assert_eq!(s.num_elements(), 0);
        assert!(s.multi_index(0).is_err());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Shape::new(&[1, 3, 32, 32]).to_string(), "[1x3x32x32]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }

    #[test]
    fn conversions_from_vec_and_slice() {
        let a: Shape = vec![2, 3].into();
        let b: Shape = (&[2usize, 3][..]).into();
        assert!(a.same_as(&b));
    }
}
