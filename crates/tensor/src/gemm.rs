//! Cache-blocked, panel-packed GEMM kernels with a fused epilogue.
//!
//! This module is the compute core behind [`crate::Tensor::matmul`],
//! `conv2d_im2col` and the `alfi-nn` linear layer. Two kernel paths
//! exist and are required to produce **bit-identical** results:
//!
//! * **Reference** — the historical scalar kernels (`matmul_rows`-style
//!   i-k-j loops plus separate bias/epilogue passes). These are the
//!   oracle every golden artifact was pinned against.
//! * **Blocked** — packed-B, register-tiled microkernels ([`MR`]×[`NR`]
//!   output tiles accumulated in registers over the full inner
//!   dimension). An AVX2 variant is selected at runtime on `x86_64`
//!   when available; a portable variant (written to autovectorize)
//!   runs everywhere else.
//!
//! # Kernel determinism rules
//!
//! Bit-identity between the paths holds because, per output element:
//!
//! 1. products are accumulated in strictly ascending `k` order into a
//!    single accumulator chain (register tiling vectorizes across
//!    *independent* output elements, never within one element's sum);
//! 2. every operation is an exactly-rounded IEEE-754 `f32` multiply
//!    followed by an add — never a fused multiply-add (the AVX2 path
//!    deliberately uses `mul` + `add`, not FMA intrinsics);
//! 3. the zero-skip rule (`a == 0.0` contributes nothing) is applied
//!    identically on both paths — skipping is *not* a no-op in IEEE
//!    arithmetic (`0.0 × ∞ = NaN`, `-0.0 + 0.0 = 0.0`), so it is part
//!    of the kernel contract, not an optimization detail;
//! 4. the epilogue (bias, injection, clamp) applies the same per-element
//!    operation sequence in the same order on both paths.
//!
//! The active path is selected by the `ALFI_KERNEL` environment
//! variable (`reference` | `blocked`, default `blocked`), overridable
//! per run via [`set_kernel_override`] (used by the campaign engine's
//! `RunConfig::kernel`). `ALFI_KERNEL_PORTABLE=1` disables the
//! `std::arch` path so the portable fallback can be tested on AVX2
//! hardware.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Rows per register tile (output rows computed simultaneously).
/// `6 × 16` uses 12 of the 16 AVX2 `ymm` registers for accumulators,
/// leaving room for the two panel loads and the broadcast — each panel
/// load is then reused across six rows, which is what lifts the kernel
/// off the load ports and onto the FP units.
pub const MR: usize = 6;
/// Columns per packed panel and register tile.
pub const NR: usize = 16;

/// Environment variable selecting the kernel path
/// (`reference` | `blocked`).
pub const KERNEL_ENV: &str = "ALFI_KERNEL";
/// Environment variable forcing the portable (no `std::arch`)
/// microkernel when set to `1`/`true`.
pub const KERNEL_PORTABLE_ENV: &str = "ALFI_KERNEL_PORTABLE";

/// Which GEMM implementation executes tensor contractions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPath {
    /// Historical scalar kernels — the conformance oracle.
    Reference,
    /// Packed, register-tiled microkernels (AVX2 or portable).
    Blocked,
}

impl std::fmt::Display for KernelPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelPath::Reference => "reference",
            KernelPath::Blocked => "blocked",
        })
    }
}

impl std::str::FromStr for KernelPath {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reference" => Ok(KernelPath::Reference),
            "blocked" => Ok(KernelPath::Blocked),
            other => Err(format!("unknown kernel path `{other}` (expected reference|blocked)")),
        }
    }
}

// Process-global override: 0 = unset (fall back to the environment),
// 1 = Reference, 2 = Blocked. An atomic rather than a thread-local so
// the choice propagates into pool worker threads.
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Overrides the kernel path process-wide (`None` restores the
/// environment default). Used by the campaign engine to honour
/// `RunConfig::kernel`; the override is visible to pool workers.
pub fn set_kernel_override(path: Option<KernelPath>) {
    let v = match path {
        None => 0,
        Some(KernelPath::Reference) => 1,
        Some(KernelPath::Blocked) => 2,
    };
    KERNEL_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The current process-wide override, if any.
pub fn kernel_override() -> Option<KernelPath> {
    match KERNEL_OVERRIDE.load(Ordering::Relaxed) {
        1 => Some(KernelPath::Reference),
        2 => Some(KernelPath::Blocked),
        _ => None,
    }
}

fn env_kernel() -> KernelPath {
    static ENV: OnceLock<KernelPath> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var(KERNEL_ENV) {
        Ok(v) => v.parse().unwrap_or(KernelPath::Blocked),
        Err(_) => KernelPath::Blocked,
    })
}

/// Resolves the active kernel path: the process-wide override wins,
/// then `ALFI_KERNEL`, then the default ([`KernelPath::Blocked`]).
pub fn kernel_path() -> KernelPath {
    kernel_override().unwrap_or_else(env_kernel)
}

/// Whether the blocked path may use the `std::arch` AVX2 microkernel.
/// Resolved once: requires `x86_64`, runtime AVX2 detection and
/// `ALFI_KERNEL_PORTABLE` unset.
pub fn simd_available() -> bool {
    static SIMD: OnceLock<bool> = OnceLock::new();
    *SIMD.get_or_init(|| {
        let forced_portable = std::env::var(KERNEL_PORTABLE_ENV)
            .map(|v| matches!(v.trim(), "1" | "true" | "yes"))
            .unwrap_or(false);
        if forced_portable {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Storage layout of the `B` operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BLayout {
    /// `b` is `[k, n]` row-major: `B[kk][j] = b[kk * n + j]` (matmul, conv).
    RowMajor,
    /// `b` is `[n, k]` row-major: `B[kk][j] = b[j * k + kk]` — the
    /// linear layer's `x · Wᵀ` without materializing the transpose.
    Transposed,
}

/// How the bias vector participates in the accumulation.
#[derive(Debug, Clone, Copy)]
pub enum Bias<'a> {
    /// No bias.
    None,
    /// `bias[j]` *initializes* the accumulator of column `j` before the
    /// `k` loop — the linear layer's historical operation order.
    InitPerCol(&'a [f32]),
    /// `bias[i]` is added to row `i` *after* the `k` sum — the conv
    /// kernel's historical operation order (bias pass after the GEMM).
    PostPerRow(&'a [f32]),
}

/// Full description of one GEMM: `out[m,n] = A[m,k] × B` plus bias and
/// the zero-skip rule.
#[derive(Debug, Clone, Copy)]
pub struct GemmSpec<'a> {
    /// Output rows.
    pub m: usize,
    /// Inner (contraction) dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Layout of the `B` operand.
    pub layout: BLayout,
    /// Whether `a == 0.0` entries are skipped (the historical
    /// `matmul_rows` rule; the linear layer does *not* skip).
    pub skip_zero_a: bool,
    /// Bias participation.
    pub bias: Bias<'a>,
}

// ---------------------------------------------------------------------------
// Epilogue: per-element post-ops fused into the kernel.
// ---------------------------------------------------------------------------

/// A per-element transformation applied to each output value exactly
/// once, after its `k` sum (and bias) completes. `flat` is the
/// element's row-major index in the full `[m, n]` output.
pub trait Epilogue: Sync {
    /// Transforms the finished value at `flat`.
    fn apply(&self, flat: usize, v: f32) -> f32;
    /// `true` when the epilogue is a guaranteed no-op, letting kernels
    /// skip the pass entirely.
    fn is_identity(&self) -> bool {
        false
    }
}

/// The do-nothing epilogue — monomorphizes to zero cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoEpilogue;

impl Epilogue for NoEpilogue {
    #[inline(always)]
    fn apply(&self, _flat: usize, v: f32) -> f32 {
        v
    }

    fn is_identity(&self) -> bool {
        true
    }
}

/// One fault operation applied to a single output element — the fused
/// mirror of the hook-based neuron corruption in `alfi-core`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectOp {
    /// Flip one bit of the IEEE-754 representation.
    BitFlip(u8),
    /// Force one bit to a fixed value.
    StuckAt {
        /// Bit position (0 = LSB of the mantissa, 31 = sign).
        pos: u8,
        /// Forced bit value.
        high: bool,
    },
    /// Replace the value outright.
    Set(f32),
}

impl InjectOp {
    /// Applies the corruption to `v`.
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            InjectOp::BitFlip(pos) => crate::bits::flip_bit(v, pos),
            InjectOp::StuckAt { pos, high } => crate::bits::set_bit(v, pos, high),
            InjectOp::Set(x) => x,
        }
    }
}

/// A sparse set of per-element corruptions keyed by flat output index.
/// Multiple entries on the same index apply in insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InjectMap {
    entries: Vec<(usize, InjectOp)>,
}

impl InjectMap {
    /// Builds a map from `(flat_index, op)` pairs; entries are sorted by
    /// index (stable, so same-index ops keep their given order).
    pub fn new(mut entries: Vec<(usize, InjectOp)>) -> Self {
        entries.sort_by_key(|e| e.0);
        InjectMap { entries }
    }

    /// Number of corruption entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map contains no corruptions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The sorted `(flat_index, op)` entries.
    pub fn entries(&self) -> &[(usize, InjectOp)] {
        &self.entries
    }

    /// Applies every op registered for `flat` to `v`, in order.
    #[inline]
    pub fn apply(&self, flat: usize, v: f32) -> f32 {
        let start = self.entries.partition_point(|e| e.0 < flat);
        let mut v = v;
        for (idx, op) in &self.entries[start..] {
            if *idx != flat {
                break;
            }
            v = op.apply(v);
        }
        v
    }
}

/// Out-of-range handling for [`Clamp`] — mirrors `alfi-nn`'s
/// `RestrictMode` semantics exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClampMode {
    /// Ranger: saturate to the violated bound; NaN maps to `lo`.
    Clip,
    /// Clipper: out-of-range (or NaN) values become zero.
    Zero,
}

/// Range-supervision clamp fused into the kernel epilogue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clamp {
    /// Lower bound of the healthy activation range.
    pub lo: f32,
    /// Upper bound of the healthy activation range.
    pub hi: f32,
    /// Out-of-range handling.
    pub mode: ClampMode,
}

impl Clamp {
    /// Applies the clamp to `v` (identical per-element semantics to the
    /// spliced `RangeRestrict` layer).
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self.mode {
            ClampMode::Clip => {
                if v.is_nan() {
                    self.lo
                } else {
                    v.clamp(self.lo, self.hi)
                }
            }
            ClampMode::Zero => {
                if v.is_nan() || v < self.lo || v > self.hi {
                    0.0
                } else {
                    v
                }
            }
        }
    }
}

/// The standard fused epilogue: optional injection followed by an
/// optional range clamp. Per element the order is fixed —
/// **bias → inject → clamp** — matching a hook that mutates the layer
/// output followed by a spliced `RangeRestrict` node.
#[derive(Debug, Clone, Copy)]
pub struct FusedEpilogue<'a> {
    /// Offset added to the kernel-local flat index before looking up
    /// injections (e.g. `batch_item * per_item_elements` for conv).
    pub base: usize,
    /// Sparse per-element corruption map, if any.
    pub inject: Option<&'a InjectMap>,
    /// Range-supervision clamp, if any.
    pub clamp: Option<Clamp>,
}

impl Epilogue for FusedEpilogue<'_> {
    #[inline]
    fn apply(&self, flat: usize, v: f32) -> f32 {
        let mut v = v;
        if let Some(map) = self.inject {
            v = map.apply(self.base + flat, v);
        }
        if let Some(clamp) = self.clamp {
            v = clamp.apply(v);
        }
        v
    }

    fn is_identity(&self) -> bool {
        self.inject.is_none_or(InjectMap::is_empty) && self.clamp.is_none()
    }
}

// ---------------------------------------------------------------------------
// Driver: path dispatch and deterministic parallel fan-out.
// ---------------------------------------------------------------------------

/// Minimum multiply-accumulate count (`m * k * n`) before a GEMM fans
/// out on the pool; below this the fixed task overhead dominates.
pub(crate) const PAR_MIN_FLOPS: usize = 64 * 1024;

/// Minimum output-row count before the blocked path packs `B`: the
/// pack costs `k · n` writes against `m · k · n` multiplies, so below
/// this the blocked driver delegates to the (bit-identical) reference
/// kernel instead of paying a `≥ 1/8` packing overhead.
pub const BLOCKED_MIN_M: usize = 8;

/// Rows per parallel chunk — a pure function of the inner dimensions,
/// so chunk boundaries never depend on the thread count (part of the
/// pool's determinism contract).
pub(crate) fn rows_per_chunk(k: usize, n: usize) -> usize {
    (PAR_MIN_FLOPS / (k * n).max(1)).max(1)
}

/// Runs one GEMM with a fused epilogue on the selected kernel path,
/// fanning out over the shared pool when profitable. Both paths and
/// every thread count produce bit-identical output.
///
/// # Panics
///
/// Panics (debug assertions) if operand slice lengths disagree with the
/// spec.
pub fn gemm_with<E: Epilogue>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    spec: &GemmSpec<'_>,
    epi: &E,
    path: KernelPath,
) {
    let (m, k, n) = (spec.m, spec.k, spec.n);
    debug_assert_eq!(a.len(), m * k, "A operand length");
    debug_assert_eq!(b.len(), k * n, "B operand length");
    debug_assert_eq!(out.len(), m * n, "output length");
    if let Bias::InitPerCol(bias) = spec.bias {
        debug_assert_eq!(bias.len(), n, "per-column bias length");
    }
    if let Bias::PostPerRow(bias) = spec.bias {
        debug_assert_eq!(bias.len(), m, "per-row bias length");
    }
    if m == 0 || n == 0 {
        return;
    }

    match path {
        KernelPath::Reference => {
            let threads = alfi_pool::current_parallelism();
            if threads > 1 && m > 1 && m * k * n >= PAR_MIN_FLOPS {
                let rpc = rows_per_chunk(k, n);
                alfi_pool::global().parallel_chunks_mut(threads, out, rpc * n, |ci, chunk| {
                    reference_chunk(a, b, chunk, ci * rpc, spec, epi);
                });
            } else {
                reference_chunk(a, b, out, 0, spec, epi);
            }
        }
        KernelPath::Blocked => {
            // Thin row-major products (few output rows) can't amortize
            // the B pack — its cost relative to the multiply work is
            // `1/m`, and the row-major reference kernel already
            // vectorizes across output columns — so they run on the
            // reference kernel, which is the same function by the
            // bit-identity contract. Transposed `B` is exempt from the
            // floor: its reference kernel is a latency-bound scalar
            // dot-product chain, which the packed kernel beats at any
            // `m` (the pack is a single streaming transpose of data
            // the dot products would read anyway).
            if m < BLOCKED_MIN_M && matches!(spec.layout, BLayout::RowMajor) {
                gemm_with(a, b, out, spec, epi, KernelPath::Reference);
                return;
            }
            // B is packed exactly once per GEMM call into NR-wide
            // column panels; every worker reads the same shared pack.
            let packed = pack_b(b, k, n, spec.layout);
            crate::meter::gemm_pack(packed.len());
            let simd = simd_available();
            let threads = alfi_pool::current_parallelism();
            if threads > 1 && m > 1 && m * k * n >= PAR_MIN_FLOPS {
                // Round the chunk size up to a whole number of register
                // tiles — still a pure function of (k, n).
                let rpc = rows_per_chunk(k, n).div_ceil(MR) * MR;
                alfi_pool::global().parallel_chunks_mut(threads, out, rpc * n, |ci, chunk| {
                    blocked_chunk(a, &packed, chunk, ci * rpc, spec, epi, simd);
                });
            } else {
                blocked_chunk(a, &packed, out, 0, spec, epi, simd);
            }
        }
    }
}

/// [`gemm_with`] without an epilogue.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], spec: &GemmSpec<'_>, path: KernelPath) {
    gemm_with(a, b, out, spec, &NoEpilogue, path);
}

// ---------------------------------------------------------------------------
// Reference path: the historical scalar kernels plus separate passes.
// ---------------------------------------------------------------------------

/// Computes rows `row0..` of the output into `out_rows` using the
/// reference operation order: the GEMM sum first (i-k-j for row-major
/// `B`, i-j-k dot products for transposed `B` — per element both are
/// "init, then products in ascending `k` order"), then a separate
/// per-row bias pass, then a separate epilogue pass. This is exactly
/// the pre-blocked `matmul_rows` + conv bias-pass sequence.
fn reference_chunk<E: Epilogue>(
    a: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    spec: &GemmSpec<'_>,
    epi: &E,
) {
    let (k, n) = (spec.k, spec.n);
    let rows = out_rows.len() / n;
    match spec.layout {
        BLayout::RowMajor => {
            if let Bias::InitPerCol(bias) = spec.bias {
                for r in 0..rows {
                    out_rows[r * n..(r + 1) * n].copy_from_slice(bias);
                }
            }
            for r in 0..rows {
                let i = row0 + r;
                for kk in 0..k {
                    let av = a[i * k + kk];
                    if spec.skip_zero_a && av == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    let dst = &mut out_rows[r * n..(r + 1) * n];
                    for (d, &bv) in dst.iter_mut().zip(brow.iter()) {
                        *d += av * bv;
                    }
                }
            }
        }
        BLayout::Transposed => {
            for r in 0..rows {
                let i = row0 + r;
                let xin = &a[i * k..(i + 1) * k];
                for (j, dst) in out_rows[r * n..(r + 1) * n].iter_mut().enumerate() {
                    let mut acc = match spec.bias {
                        Bias::InitPerCol(bias) => bias[j],
                        _ => 0.0,
                    };
                    let col = &b[j * k..(j + 1) * k];
                    for (&av, &bv) in xin.iter().zip(col.iter()) {
                        if spec.skip_zero_a && av == 0.0 {
                            continue;
                        }
                        acc += av * bv;
                    }
                    *dst = acc;
                }
            }
        }
    }
    if let Bias::PostPerRow(bias) = spec.bias {
        for r in 0..rows {
            let bv = bias[row0 + r];
            for d in &mut out_rows[r * n..(r + 1) * n] {
                *d += bv;
            }
        }
    }
    if !epi.is_identity() {
        for r in 0..rows {
            for (j, d) in out_rows[r * n..(r + 1) * n].iter_mut().enumerate() {
                *d = epi.apply((row0 + r) * n + j, *d);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked path: packed panels + register-tiled microkernels.
// ---------------------------------------------------------------------------

/// Packs `B` into NR-wide column panels, panel-major:
/// `packed[p][kk][j] = B[kk][p * NR + j]`, zero-padded in the last
/// panel. The packed layout makes the microkernel's inner loop a pure
/// sequential stream regardless of the original layout.
fn pack_b(b: &[f32], k: usize, n: usize, layout: BLayout) -> Vec<f32> {
    let panels = n.div_ceil(NR);
    let mut packed = vec![0.0f32; panels * k * NR];
    for (p, panel) in packed.chunks_exact_mut(k * NR).enumerate() {
        let j0 = p * NR;
        let nr = NR.min(n - j0);
        match layout {
            BLayout::RowMajor => {
                for (kk, dst) in panel.chunks_exact_mut(NR).enumerate() {
                    let src = &b[kk * n + j0..kk * n + j0 + nr];
                    dst[..nr].copy_from_slice(src);
                }
            }
            BLayout::Transposed => {
                for j in 0..nr {
                    let col = &b[(j0 + j) * k..(j0 + j) * k + k];
                    for (kk, &v) in col.iter().enumerate() {
                        panel[kk * NR + j] = v;
                    }
                }
            }
        }
    }
    packed
}

/// Row super-block target: the `A` rows live in L2 while every packed
/// panel streams across them, so `A` is read from memory once per GEMM
/// call instead of once per panel.
const MC_L2_BYTES: usize = 256 * 1024;

/// Rows per super-block for a given inner dimension, rounded down to a
/// whole number of register tiles. Purely a cache-shaping choice: tile
/// visit order never changes any per-element accumulation chain.
fn mc_rows(k: usize) -> usize {
    (MC_L2_BYTES / (4 * k.max(1))).max(MR) / MR * MR
}

/// Computes rows `row0..` of the output from the shared packed `B`.
/// Within each row super-block, per column panel, each MR×NR register
/// tile accumulates over the full `k` range in registers, then bias and
/// epilogue apply in the fixed per-element order before the tile is
/// stored.
fn blocked_chunk<E: Epilogue>(
    a: &[f32],
    packed: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    spec: &GemmSpec<'_>,
    epi: &E,
    simd: bool,
) {
    let (k, n) = (spec.k, spec.n);
    let rows = out_rows.len() / n;
    let skip = spec.skip_zero_a;
    let apply_epi = !epi.is_identity();
    let mc = mc_rows(k);
    let mut rb0 = 0;
    while rb0 < rows {
        let rend = rows.min(rb0 + mc);
        blocked_superblock(a, packed, out_rows, row0, rb0, rend, spec, epi, simd, skip, apply_epi);
        rb0 = rend;
    }
}

/// One row super-block of [`blocked_chunk`]: rows `rb0..rend` of the
/// chunk against every column panel.
#[allow(clippy::too_many_arguments)]
fn blocked_superblock<E: Epilogue>(
    a: &[f32],
    packed: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    rb0: usize,
    rend: usize,
    spec: &GemmSpec<'_>,
    epi: &E,
    simd: bool,
    skip: bool,
    apply_epi: bool,
) {
    let (k, n) = (spec.k, spec.n);
    for (p, panel) in packed.chunks_exact(k * NR).enumerate() {
        let j0 = p * NR;
        if j0 >= n {
            break;
        }
        let nr = NR.min(n - j0);
        let mut r0 = rb0;
        while r0 < rend {
            let mr = MR.min(rend - r0);
            let mut acc = [[0.0f32; NR]; MR];
            if let Bias::InitPerCol(bias) = spec.bias {
                for acc_r in acc.iter_mut().take(mr) {
                    acc_r[..nr].copy_from_slice(&bias[j0..j0 + nr]);
                }
            }
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: AVX2 availability is checked at runtime by
                // `simd_available`; slice bounds are guaranteed by the
                // spec invariants (a is [m,k], panel is [k,NR]).
                unsafe { tile_avx2(a, row0 + r0, mr, k, panel, skip, &mut acc) };
            } else {
                tile_portable(a, row0 + r0, mr, k, panel, skip, &mut acc);
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                let _ = simd;
                tile_portable(a, row0 + r0, mr, k, panel, skip, &mut acc);
            }
            for (r, acc_r) in acc.iter().enumerate().take(mr) {
                let grow = row0 + r0 + r;
                let dst = &mut out_rows[(r0 + r) * n + j0..(r0 + r) * n + j0 + nr];
                dst.copy_from_slice(&acc_r[..nr]);
                if let Bias::PostPerRow(bias) = spec.bias {
                    let bv = bias[grow];
                    for d in dst.iter_mut() {
                        *d += bv;
                    }
                }
                if apply_epi {
                    for (j, d) in dst.iter_mut().enumerate() {
                        *d = epi.apply(grow * n + j0 + j, *d);
                    }
                }
            }
            r0 += mr;
        }
    }
}

/// Portable MR×NR microkernel. The fixed-size inner loop over `NR`
/// autovectorizes; per output element the adds happen in ascending `kk`
/// order with the same zero-skip rule as the reference kernel.
fn tile_portable(
    a: &[f32],
    arow0: usize,
    mr: usize,
    k: usize,
    panel: &[f32],
    skip: bool,
    acc: &mut [[f32; NR]; MR],
) {
    for (kk, brow) in panel.chunks_exact(NR).enumerate().take(k) {
        for (r, acc_r) in acc.iter_mut().enumerate().take(mr) {
            let av = a[(arow0 + r) * k + kk];
            if skip && av == 0.0 {
                continue;
            }
            for (d, &bv) in acc_r.iter_mut().zip(brow.iter()) {
                *d += av * bv;
            }
        }
    }
}

/// AVX2 mr×NR microkernel: identical operation order to
/// [`tile_portable`], executed on 8-lane vectors. Uses separate
/// multiply and add instructions — **never FMA** — so every lane
/// produces the exactly-rounded `f32` result of the scalar kernel.
/// Handles partial tiles (`mr < MR`) by simply bounding the row loop;
/// full tiles keep all `2·MR` accumulators register-resident.
///
/// # Safety
///
/// Caller must ensure AVX2 is available, `panel.len() >= k * NR` and
/// `a` covers rows `arow0..arow0 + mr` of an `[_, k]` matrix.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tile_avx2(
    a: &[f32],
    arow0: usize,
    mr: usize,
    k: usize,
    panel: &[f32],
    skip: bool,
    acc: &mut [[f32; NR]; MR],
) {
    use std::arch::x86_64::*;
    let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
    for (r, acc_r) in acc.iter().enumerate().take(mr) {
        c[r][0] = _mm256_loadu_ps(acc_r.as_ptr());
        c[r][1] = _mm256_loadu_ps(acc_r.as_ptr().add(8));
    }
    let ap = a.as_ptr();
    let pp = panel.as_ptr();
    for kk in 0..k {
        let b0 = _mm256_loadu_ps(pp.add(kk * NR));
        let b1 = _mm256_loadu_ps(pp.add(kk * NR + 8));
        for (r, cr) in c.iter_mut().enumerate().take(mr) {
            let av = *ap.add((arow0 + r) * k + kk);
            if skip && av == 0.0 {
                continue;
            }
            let va = _mm256_set1_ps(av);
            cr[0] = _mm256_add_ps(cr[0], _mm256_mul_ps(va, b0));
            cr[1] = _mm256_add_ps(cr[1], _mm256_mul_ps(va, b1));
        }
    }
    for (r, acc_r) in acc.iter_mut().enumerate().take(mr) {
        _mm256_storeu_ps(acc_r.as_mut_ptr(), c[r][0]);
        _mm256_storeu_ps(acc_r.as_mut_ptr().add(8), c[r][1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_rng::Rng;

    fn random(rng: &mut Rng, len: usize) -> Vec<f32> {
        (0..len)
            .map(|_| {
                // Sprinkle exact zeros so the skip rule is exercised.
                let v: f32 = rng.gen_range(-2.0..2.0);
                if rng.gen_range(0.0..1.0) < 0.15 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    fn run(spec: &GemmSpec<'_>, a: &[f32], b: &[f32], path: KernelPath) -> Vec<f32> {
        let mut out = vec![0.0f32; spec.m * spec.n];
        gemm(a, b, &mut out, spec, path);
        out
    }

    #[test]
    fn blocked_matches_reference_over_shape_sweep() {
        let mut rng = Rng::from_seed(0xC0FFEE);
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 3, 37),
            (5, 1, NR),
            (MR, 7, NR + 1),
            (MR + 1, 16, NR - 1),
            (2 * MR + 3, 33, 2 * NR + 5),
            (17, 64, 9),
        ] {
            let a = random(&mut rng, m * k);
            let b = random(&mut rng, k * n);
            for layout in [BLayout::RowMajor, BLayout::Transposed] {
                for skip in [false, true] {
                    let spec =
                        GemmSpec { m, k, n, layout, skip_zero_a: skip, bias: Bias::None };
                    let r = run(&spec, &a, &b, KernelPath::Reference);
                    let bl = run(&spec, &a, &b, KernelPath::Blocked);
                    for (x, y) in r.iter().zip(bl.iter()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n} {layout:?} skip={skip}");
                    }
                }
            }
        }
    }

    #[test]
    fn bias_modes_match_between_paths() {
        let mut rng = Rng::from_seed(7);
        let (m, k, n) = (9, 13, NR + 3);
        let a = random(&mut rng, m * k);
        let b = random(&mut rng, k * n);
        let row_bias = random(&mut rng, m);
        let col_bias = random(&mut rng, n);
        for bias in [Bias::PostPerRow(&row_bias), Bias::InitPerCol(&col_bias)] {
            let spec = GemmSpec { m, k, n, layout: BLayout::RowMajor, skip_zero_a: false, bias };
            let r = run(&spec, &a, &b, KernelPath::Reference);
            let bl = run(&spec, &a, &b, KernelPath::Blocked);
            assert_eq!(
                r.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                bl.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn inject_map_applies_ops_in_order() {
        let map = InjectMap::new(vec![
            (3, InjectOp::Set(1.0)),
            (3, InjectOp::BitFlip(31)),
            (1, InjectOp::StuckAt { pos: 31, high: true }),
        ]);
        assert_eq!(map.len(), 3);
        assert_eq!(map.apply(0, 5.0), 5.0);
        assert_eq!(map.apply(1, 5.0), -5.0);
        // Set(1.0) then sign flip -> -1.0
        assert_eq!(map.apply(3, 42.0), -1.0);
    }

    #[test]
    fn clamp_matches_range_restrict_semantics() {
        let clip = Clamp { lo: -1.0, hi: 2.0, mode: ClampMode::Clip };
        assert_eq!(clip.apply(-5.0), -1.0);
        assert_eq!(clip.apply(0.5), 0.5);
        assert_eq!(clip.apply(99.0), 2.0);
        assert_eq!(clip.apply(f32::NAN), -1.0);
        assert_eq!(clip.apply(f32::INFINITY), 2.0);
        let zero = Clamp { lo: -1.0, hi: 2.0, mode: ClampMode::Zero };
        assert_eq!(zero.apply(-5.0), 0.0);
        assert_eq!(zero.apply(0.5), 0.5);
        assert_eq!(zero.apply(f32::NAN), 0.0);
        assert_eq!(zero.apply(f32::NEG_INFINITY), 0.0);
    }

    #[test]
    fn zero_skip_is_semantically_visible_with_inf_operands() {
        // With Inf in B, skipping a == 0.0 avoids 0 * Inf = NaN: both
        // paths must agree on this *semantic* (not just perf) rule.
        let a = vec![0.0f32, 1.0];
        let mut b = vec![1.0f32; 2 * NR];
        b[0] = f32::INFINITY;
        let spec = GemmSpec {
            m: 1,
            k: 2,
            n: NR,
            layout: BLayout::RowMajor,
            skip_zero_a: true,
            bias: Bias::None,
        };
        let r = run(&spec, &a, &b, KernelPath::Reference);
        let bl = run(&spec, &a, &b, KernelPath::Blocked);
        assert!(r[0].is_finite());
        assert_eq!(r[0].to_bits(), bl[0].to_bits());
        let no_skip = GemmSpec { skip_zero_a: false, ..spec };
        let r2 = run(&no_skip, &a, &b, KernelPath::Reference);
        let bl2 = run(&no_skip, &a, &b, KernelPath::Blocked);
        assert!(r2[0].is_nan());
        assert_eq!(r2[0].to_bits(), bl2[0].to_bits());
    }

    #[test]
    fn kernel_path_parsing_and_override() {
        assert_eq!("reference".parse::<KernelPath>().unwrap(), KernelPath::Reference);
        assert_eq!("Blocked".parse::<KernelPath>().unwrap(), KernelPath::Blocked);
        assert!("fast".parse::<KernelPath>().is_err());
        let prev = kernel_override();
        set_kernel_override(Some(KernelPath::Reference));
        assert_eq!(kernel_path(), KernelPath::Reference);
        set_kernel_override(prev);
    }

    #[test]
    fn fused_epilogue_identity_detection() {
        let empty = InjectMap::default();
        let epi = FusedEpilogue { base: 0, inject: Some(&empty), clamp: None };
        assert!(epi.is_identity());
        let epi = FusedEpilogue {
            base: 0,
            inject: None,
            clamp: Some(Clamp { lo: 0.0, hi: 1.0, mode: ClampMode::Clip }),
        };
        assert!(!epi.is_identity());
    }
}
