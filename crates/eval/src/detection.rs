//! Object-detection KPIs: the IVMOD metric (paper §V-F-2, Fig. 2b).
//!
//! IVMOD (Image-wise Vulnerability Metric for Object Detection, paper
//! reference \[5\]) judges each *image*: comparing the fault-injected
//! detection set against the fault-free one, an image counts as SDE-
//! corrupted if the fault introduced any false positives or false
//! negatives (IoU-matched, class-aware), and as DUE if NaN/Inf surfaced
//! during inference.

use crate::stats::Rate;
use alfi_core::campaign::DetectionRow;
use alfi_nn::detection::{match_detections, Detection};
use alfi_serde::json_struct;

/// Per-image comparison of a faulty detection set against the fault-free
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageDelta {
    /// Detections present under fault but unmatched in the reference.
    pub false_positives: usize,
    /// Reference detections missing under fault.
    pub false_negatives: usize,
    /// Matched pairs.
    pub matched: usize,
}

json_struct!(ImageDelta { false_positives, false_negatives, matched });

impl ImageDelta {
    /// Whether the image's detection output degraded at all.
    pub fn is_corrupted(&self) -> bool {
        self.false_positives > 0 || self.false_negatives > 0
    }
}

/// Compares faulty detections against fault-free detections for one
/// image (IoU ≥ `iou_thresh`, class-aware, one-to-one matching).
pub fn image_delta(orig: &[Detection], corr: &[Detection], iou_thresh: f32) -> ImageDelta {
    let pairs = match_detections(orig, corr, iou_thresh);
    ImageDelta {
        matched: pairs.len(),
        false_negatives: orig.len() - pairs.len(),
        false_positives: corr.len() - pairs.len(),
    }
}

/// Campaign-level IVMOD rates.
#[derive(Debug, Clone, PartialEq)]
pub struct IvmodKpis {
    /// Fraction of images whose detection set silently degraded.
    pub ivmod_sde: Rate,
    /// Fraction of images whose inference produced NaN/Inf.
    pub ivmod_due: Rate,
    /// Mean false positives per corrupted image.
    pub mean_fp: f64,
    /// Mean false negatives per corrupted image.
    pub mean_fn: f64,
}

json_struct!(IvmodKpis { ivmod_sde, ivmod_due, mean_fp, mean_fn });

/// Computes IVMOD_SDE / IVMOD_DUE over all campaign rows.
///
/// DUE takes precedence over SDE per image: a detectable error is not
/// silent.
pub fn ivmod_kpis(rows: &[DetectionRow], iou_thresh: f32) -> IvmodKpis {
    let total = rows.len();
    let mut sde = 0usize;
    let mut due = 0usize;
    let mut fp_sum = 0usize;
    let mut fn_sum = 0usize;
    let mut corrupted_images = 0usize;
    for row in rows {
        let non_finite = row.corr_nan + row.corr_inf > 0
            || row.corr.iter().any(|d| !d.score.is_finite() || d.bbox.has_non_finite());
        if non_finite {
            due += 1;
            continue;
        }
        let delta = image_delta(&row.orig, &row.corr, iou_thresh);
        if delta.is_corrupted() {
            sde += 1;
            corrupted_images += 1;
            fp_sum += delta.false_positives;
            fn_sum += delta.false_negatives;
        }
    }
    IvmodKpis {
        ivmod_sde: Rate::from_counts(sde, total),
        ivmod_due: Rate::from_counts(due, total),
        mean_fp: if corrupted_images > 0 { fp_sum as f64 / corrupted_images as f64 } else { 0.0 },
        mean_fn: if corrupted_images > 0 { fn_sum as f64 / corrupted_images as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_nn::detection::BBox;

    fn det(x: f32, class_id: usize, score: f32) -> Detection {
        Detection { bbox: BBox::new(x, 0.0, x + 10.0, 10.0), score, class_id }
    }

    fn row(orig: Vec<Detection>, corr: Vec<Detection>, nan: usize) -> DetectionRow {
        DetectionRow {
            image_id: 0,
            ground_truth: vec![],
            orig,
            corr,
            resil: None,
            faults: vec![],
            corr_nan: nan,
            corr_inf: 0,
        }
    }

    #[test]
    fn identical_sets_are_clean() {
        let d = image_delta(&[det(0.0, 1, 0.9)], &[det(0.0, 1, 0.9)], 0.5);
        assert_eq!(d.matched, 1);
        assert!(!d.is_corrupted());
    }

    #[test]
    fn extra_detection_is_false_positive() {
        let d = image_delta(&[det(0.0, 1, 0.9)], &[det(0.0, 1, 0.9), det(50.0, 2, 0.8)], 0.5);
        assert_eq!(d.false_positives, 1);
        assert_eq!(d.false_negatives, 0);
        assert!(d.is_corrupted());
    }

    #[test]
    fn missing_detection_is_false_negative() {
        let d = image_delta(&[det(0.0, 1, 0.9), det(50.0, 2, 0.8)], &[det(0.0, 1, 0.9)], 0.5);
        assert_eq!(d.false_negatives, 1);
    }

    #[test]
    fn class_flip_counts_as_fp_plus_fn() {
        let d = image_delta(&[det(0.0, 1, 0.9)], &[det(0.0, 2, 0.9)], 0.5);
        assert_eq!((d.false_positives, d.false_negatives), (1, 1));
    }

    #[test]
    fn shifted_box_below_iou_threshold_is_corruption() {
        let orig = vec![det(0.0, 1, 0.9)];
        let corr = vec![det(8.0, 1, 0.9)]; // IoU = 2/18 < 0.5
        let d = image_delta(&orig, &corr, 0.5);
        assert!(d.is_corrupted());
    }

    #[test]
    fn ivmod_separates_sde_and_due() {
        let rows = vec![
            row(vec![det(0.0, 1, 0.9)], vec![det(0.0, 1, 0.9)], 0), // clean
            row(vec![det(0.0, 1, 0.9)], vec![det(40.0, 1, 0.9)], 0), // sde
            row(vec![det(0.0, 1, 0.9)], vec![det(0.0, 1, 0.9)], 3), // due
            row(vec![det(0.0, 1, 0.9)], vec![det(0.0, 1, f32::NAN)], 0), // due (nan score)
        ];
        let k = ivmod_kpis(&rows, 0.5);
        assert_eq!(k.ivmod_sde.hits, 1);
        assert_eq!(k.ivmod_due.hits, 2);
        assert_eq!(k.ivmod_sde.total, 4);
    }

    #[test]
    fn mean_fp_fn_average_over_corrupted_images_only() {
        let rows = vec![
            row(vec![det(0.0, 1, 0.9)], vec![det(0.0, 1, 0.9)], 0), // clean
            row(vec![], vec![det(0.0, 1, 0.9), det(40.0, 1, 0.8)], 0), // 2 FP
        ];
        let k = ivmod_kpis(&rows, 0.5);
        assert_eq!(k.mean_fp, 2.0);
        assert_eq!(k.mean_fn, 0.0);
    }

    #[test]
    fn empty_campaign_is_vacuous() {
        let k = ivmod_kpis(&[], 0.5);
        assert_eq!(k.ivmod_sde.total, 0);
        assert_eq!(k.mean_fp, 0.0);
    }
}
