#![warn(missing_docs)]
//! # alfi-eval
//!
//! KPI generation for ALFI fault-injection campaigns — the paper's
//! "commonly used and new KPIs are automatically calculated at the end
//! of test runs" (§I).
//!
//! * [`stats`] — rates with Wilson confidence intervals;
//! * [`classification`] — SDE / DUE / masked outcome classification and
//!   campaign rates (Fig. 2a);
//! * [`detection`] — the IVMOD image-wise vulnerability metric for
//!   object detection (Fig. 2b);
//! * [`coco_map`] — COCO-style AP / mAP / AR (§V-E);
//! * [`writers`] — the Fig. 3 three-output-set JSON pipeline.
//!
//! # Example
//!
//! ```
//! use alfi_eval::stats::Rate;
//!
//! // 118 corrupted outputs in 1000 injections — the paper's VGG-16
//! // headline figure is 11.8 %.
//! let sde = Rate::from_counts(118, 1000);
//! assert!((sde.percent() - 11.8).abs() < 1e-9);
//! assert!(sde.ci_low > 0.09 && sde.ci_high < 0.14);
//! ```

pub mod analysis;
pub mod classification;
pub mod coco_map;
pub mod csv;
pub mod detection;
pub mod stats;
pub mod writers;

pub use analysis::{
    flip_direction_stats, layer_table, outcomes_by_bit_field, outcomes_by_bit_position,
    outcomes_by_layer, DirectionStats, OutcomeCounts,
};
pub use csv::{parse_classification_csv, read_classification_csv, CsvRow, ParseCsvError};
pub use classification::{
    classification_kpis, classify, classify_row, resil_sde_rate, ClassificationKpis, Outcome,
    SdeCriterion,
};
pub use coco_map::{
    average_precision, coco_iou_grid, coco_metrics, precision_recall_curve, recall, CocoMetrics,
};
pub use detection::{image_delta, ivmod_kpis, ImageDelta, IvmodKpis};
pub use stats::Rate;
pub use writers::{
    detection_summary, read_predictions, write_detection_outputs, DetectionSummary,
    ImagePredictions,
};
