//! Classification KPIs: SDE / DUE / masked outcome classification and
//! campaign-level rates (paper §V-F-1, Fig. 2a).

use crate::stats::Rate;
use alfi_core::campaign::{ClassificationRow, TopK};
use alfi_serde::{json_struct, FromJson, Json, JsonError, ToJson};

/// Outcome of one fault-injected inference relative to the fault-free
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The fault was absorbed: the reference prediction is unchanged.
    Masked,
    /// Silent data error: the prediction changed with no error signature.
    Sde,
    /// Detected uncorrectable error: NaN/Inf surfaced during inference,
    /// i.e. the corruption is detectable without a reference run.
    Due,
}

/// Which comparison defines an SDE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SdeCriterion {
    /// The top-1 class changed.
    Top1Mismatch,
    /// The top-5 class *sets* differ (order-insensitive).
    Top5SetMismatch,
}

impl ToJson for Outcome {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Outcome::Masked => "Masked",
                Outcome::Sde => "Sde",
                Outcome::Due => "Due",
            }
            .to_string(),
        )
    }
}

impl FromJson for Outcome {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Str(s) if s == "Masked" => Ok(Outcome::Masked),
            Json::Str(s) if s == "Sde" => Ok(Outcome::Sde),
            Json::Str(s) if s == "Due" => Ok(Outcome::Due),
            _ => Err(JsonError::new("expected an Outcome variant name")),
        }
    }
}

impl ToJson for SdeCriterion {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                SdeCriterion::Top1Mismatch => "Top1Mismatch",
                SdeCriterion::Top5SetMismatch => "Top5SetMismatch",
            }
            .to_string(),
        )
    }
}

impl FromJson for SdeCriterion {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Str(s) if s == "Top1Mismatch" => Ok(SdeCriterion::Top1Mismatch),
            Json::Str(s) if s == "Top5SetMismatch" => Ok(SdeCriterion::Top5SetMismatch),
            _ => Err(JsonError::new("expected an SdeCriterion variant name")),
        }
    }
}

fn top1(t: &TopK) -> Option<usize> {
    t.first().map(|&(c, _)| c)
}

/// Classifies one row's corrupted output against its fault-free output.
///
/// DUE takes precedence: an inference that produced NaN/Inf anywhere is
/// *detected*, not silent, regardless of the final prediction.
pub fn classify_row(row: &ClassificationRow, criterion: SdeCriterion) -> Outcome {
    classify(
        &row.orig_top5,
        &row.corr_top5,
        row.corr_nan + row.corr_inf > 0,
        criterion,
    )
}

/// Classifies a corrupted top-k against a reference top-k.
pub fn classify(
    orig: &TopK,
    corr: &TopK,
    non_finite_detected: bool,
    criterion: SdeCriterion,
) -> Outcome {
    if non_finite_detected || corr.iter().any(|(_, p)| !p.is_finite()) {
        return Outcome::Due;
    }
    let mismatch = match criterion {
        SdeCriterion::Top1Mismatch => top1(orig) != top1(corr),
        SdeCriterion::Top5SetMismatch => {
            let mut a: Vec<usize> = orig.iter().map(|&(c, _)| c).collect();
            let mut b: Vec<usize> = corr.iter().map(|&(c, _)| c).collect();
            a.sort_unstable();
            b.sort_unstable();
            a != b
        }
    };
    if mismatch {
        Outcome::Sde
    } else {
        Outcome::Masked
    }
}

/// Campaign-level classification KPIs.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationKpis {
    /// Fraction of inferences whose prediction silently changed.
    pub sde: Rate,
    /// Fraction of inferences that signalled NaN/Inf.
    pub due: Rate,
    /// Fraction of inferences with unchanged predictions.
    pub masked: Rate,
    /// Fault-free top-1 accuracy against dataset labels.
    pub orig_top1_accuracy: Rate,
    /// Corrupted top-1 accuracy against dataset labels.
    pub corr_top1_accuracy: Rate,
}

json_struct!(ClassificationKpis { sde, due, masked, orig_top1_accuracy, corr_top1_accuracy });

/// Computes campaign KPIs over all rows.
pub fn classification_kpis(rows: &[ClassificationRow], criterion: SdeCriterion) -> ClassificationKpis {
    let total = rows.len();
    let mut sde = 0usize;
    let mut due = 0usize;
    let mut masked = 0usize;
    let mut orig_correct = 0usize;
    let mut corr_correct = 0usize;
    for row in rows {
        match classify_row(row, criterion) {
            Outcome::Sde => sde += 1,
            Outcome::Due => due += 1,
            Outcome::Masked => masked += 1,
        }
        if top1(&row.orig_top5) == Some(row.label) {
            orig_correct += 1;
        }
        if top1(&row.corr_top5) == Some(row.label) {
            corr_correct += 1;
        }
    }
    ClassificationKpis {
        sde: Rate::from_counts(sde, total),
        due: Rate::from_counts(due, total),
        masked: Rate::from_counts(masked, total),
        orig_top1_accuracy: Rate::from_counts(orig_correct, total),
        corr_top1_accuracy: Rate::from_counts(corr_correct, total),
    }
}

/// Computes the SDE rate of hardened (resil) outputs relative to the
/// fault-free original — the number Fig. 2a reports for Ranger/Clipper
/// curves. Rows without a resil output are skipped.
pub fn resil_sde_rate(rows: &[ClassificationRow], criterion: SdeCriterion) -> Rate {
    let mut sde = 0usize;
    let mut total = 0usize;
    for row in rows {
        let Some(resil) = &row.resil_top5 else { continue };
        total += 1;
        // The hardened model neutralizes NaN/Inf by construction; judge
        // purely on prediction change (non-finite resil output still
        // counts as SDE-adjacent corruption).
        let out = classify(&row.orig_top5, resil, false, criterion);
        if out != Outcome::Masked {
            sde += 1;
        }
    }
    Rate::from_counts(sde, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topk(classes: &[usize]) -> TopK {
        classes.iter().enumerate().map(|(i, &c)| (c, 1.0 - i as f32 * 0.1)).collect()
    }

    fn row(orig: &[usize], corr: &[usize], nan: usize) -> ClassificationRow {
        ClassificationRow {
            image_id: 0,
            file_name: "x".into(),
            label: orig[0],
            orig_top5: topk(orig),
            corr_top5: topk(corr),
            resil_top5: None,
            faults: vec![],
            corr_nan: nan,
            corr_inf: 0,
        }
    }

    #[test]
    fn unchanged_prediction_is_masked() {
        let r = row(&[3, 1, 2], &[3, 2, 1], 0);
        assert_eq!(classify_row(&r, SdeCriterion::Top1Mismatch), Outcome::Masked);
    }

    #[test]
    fn changed_top1_is_sde() {
        let r = row(&[3, 1, 2], &[1, 3, 2], 0);
        assert_eq!(classify_row(&r, SdeCriterion::Top1Mismatch), Outcome::Sde);
    }

    #[test]
    fn top5_set_criterion_ignores_order_but_not_membership() {
        let r = row(&[1, 2, 3, 4, 5], &[5, 4, 3, 2, 1], 0);
        assert_eq!(classify_row(&r, SdeCriterion::Top5SetMismatch), Outcome::Masked);
        // membership change -> SDE even though top-1 matches
        let r = row(&[1, 2, 3, 4, 5], &[1, 2, 3, 4, 9], 0);
        assert_eq!(classify_row(&r, SdeCriterion::Top5SetMismatch), Outcome::Sde);
        assert_eq!(classify_row(&r, SdeCriterion::Top1Mismatch), Outcome::Masked);
    }

    #[test]
    fn nan_detection_is_due_even_if_prediction_matches() {
        let r = row(&[3, 1], &[3, 1], 2);
        assert_eq!(classify_row(&r, SdeCriterion::Top1Mismatch), Outcome::Due);
    }

    #[test]
    fn non_finite_probability_is_due() {
        let mut r = row(&[3, 1], &[3, 1], 0);
        r.corr_top5[0].1 = f32::NAN;
        assert_eq!(classify_row(&r, SdeCriterion::Top1Mismatch), Outcome::Due);
    }

    #[test]
    fn kpis_partition_rows() {
        let rows = vec![
            row(&[1], &[1], 0), // masked
            row(&[1], &[2], 0), // sde
            row(&[1], &[1], 1), // due
            row(&[2], &[2], 0), // masked
        ];
        let k = classification_kpis(&rows, SdeCriterion::Top1Mismatch);
        assert_eq!(k.sde.hits, 1);
        assert_eq!(k.due.hits, 1);
        assert_eq!(k.masked.hits, 2);
        assert_eq!(k.sde.hits + k.due.hits + k.masked.hits, 4);
        assert_eq!(k.orig_top1_accuracy.hits, 4); // labels == orig top1 here
        assert_eq!(k.corr_top1_accuracy.hits, 3);
    }

    #[test]
    fn resil_rate_skips_rows_without_resil_output() {
        let mut with = row(&[1], &[2], 0);
        with.resil_top5 = Some(topk(&[1]));
        let without = row(&[1], &[2], 0);
        let r = resil_sde_rate(&[with.clone(), without], SdeCriterion::Top1Mismatch);
        assert_eq!(r.total, 1);
        assert_eq!(r.hits, 0, "resil restored the prediction");
        with.resil_top5 = Some(topk(&[9]));
        let r = resil_sde_rate(&[with], SdeCriterion::Top1Mismatch);
        assert_eq!(r.hits, 1);
    }
}
