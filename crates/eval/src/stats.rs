//! Statistical helpers: rates with confidence intervals.
//!
//! Large-scale FI campaigns report *rates* (SDE %, DUE %) estimated from
//! finite samples; comparing models or protections is only meaningful
//! with uncertainty bounds, so every rate carries a Wilson score
//! interval.

use alfi_serde::json_struct;

/// A binomial rate estimate with a Wilson score confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rate {
    /// Number of positive outcomes.
    pub hits: usize,
    /// Number of trials.
    pub total: usize,
    /// Point estimate `hits / total` (0 for zero trials).
    pub value: f64,
    /// Lower bound of the 95 % Wilson interval.
    pub ci_low: f64,
    /// Upper bound of the 95 % Wilson interval.
    pub ci_high: f64,
}

json_struct!(Rate { hits, total, value, ci_low, ci_high });

impl Rate {
    /// Estimates a rate with a 95 % Wilson score interval.
    pub fn from_counts(hits: usize, total: usize) -> Rate {
        Rate::with_confidence(hits, total, 1.959964)
    }

    /// Estimates a rate with a Wilson interval at the given z-score.
    pub fn with_confidence(hits: usize, total: usize, z: f64) -> Rate {
        if total == 0 {
            return Rate { hits, total, value: 0.0, ci_low: 0.0, ci_high: 1.0 };
        }
        let n = total as f64;
        let p = hits as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        Rate {
            hits,
            total,
            value: p,
            ci_low: (center - half).max(0.0),
            ci_high: (center + half).min(1.0),
        }
    }

    /// The rate as a percentage.
    pub fn percent(&self) -> f64 {
        self.value * 100.0
    }

    /// Whether two rates' confidence intervals are disjoint (a crude but
    /// conservative significance check used when ranking models).
    pub fn significantly_differs_from(&self, other: &Rate) -> bool {
        self.ci_high < other.ci_low || other.ci_high < self.ci_low
    }
}

impl std::fmt::Display for Rate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2}% [{:.2}, {:.2}] ({}/{})",
            self.percent(),
            self.ci_low * 100.0,
            self.ci_high * 100.0,
            self.hits,
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimate_is_ratio() {
        let r = Rate::from_counts(25, 100);
        assert!((r.value - 0.25).abs() < 1e-12);
        assert!((r.percent() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn wilson_interval_known_value() {
        // 10/100 at 95%: Wilson interval approx [0.0552, 0.1744]
        let r = Rate::from_counts(10, 100);
        assert!((r.ci_low - 0.0552).abs() < 0.002, "low {}", r.ci_low);
        assert!((r.ci_high - 0.1744).abs() < 0.002, "high {}", r.ci_high);
    }

    #[test]
    fn zero_hits_interval_excludes_negative() {
        let r = Rate::from_counts(0, 50);
        assert_eq!(r.value, 0.0);
        assert_eq!(r.ci_low, 0.0);
        assert!(r.ci_high > 0.0 && r.ci_high < 0.15);
    }

    #[test]
    fn full_hits_interval_excludes_above_one() {
        let r = Rate::from_counts(50, 50);
        assert_eq!(r.value, 1.0);
        assert!(r.ci_low > 0.85);
        assert!(r.ci_high > 1.0 - 1e-9, "upper bound {}", r.ci_high);
    }

    #[test]
    fn zero_trials_is_vacuous() {
        let r = Rate::from_counts(0, 0);
        assert_eq!(r.value, 0.0);
        assert_eq!((r.ci_low, r.ci_high), (0.0, 1.0));
    }

    #[test]
    fn interval_shrinks_with_samples() {
        let small = Rate::from_counts(10, 100);
        let large = Rate::from_counts(100, 1000);
        assert!(large.ci_high - large.ci_low < small.ci_high - small.ci_low);
    }

    #[test]
    fn significance_check_requires_disjoint_intervals() {
        let a = Rate::from_counts(10, 1000);
        let b = Rate::from_counts(300, 1000);
        assert!(a.significantly_differs_from(&b));
        let c = Rate::from_counts(11, 1000);
        assert!(!a.significantly_differs_from(&c));
    }

    #[test]
    fn display_is_readable() {
        let s = Rate::from_counts(118, 1000).to_string();
        assert!(s.contains("11.80%"));
        assert!(s.contains("118/1000"));
    }
}
