//! Statistical helpers: rates with confidence intervals.
//!
//! Large-scale FI campaigns report *rates* (SDE %, DUE %) estimated from
//! finite samples; comparing models or protections is only meaningful
//! with uncertainty bounds, so every rate carries a confidence interval.
//! The interval math itself lives in [`alfi_core::stats`] (re-exported
//! here) so the campaign engine's early-stop evaluation and this crate's
//! reporting use the same bit-deterministic implementation.

use alfi_serde::json_struct;

pub use alfi_core::stats::{
    clopper_pearson_interval, wilson_interval, z_for_confidence, BinomialCi,
};

/// A binomial rate estimate with a confidence interval (Wilson score by
/// default, Clopper-Pearson on request).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rate {
    /// Number of positive outcomes (clamped to `total`).
    pub hits: usize,
    /// Number of trials.
    pub total: usize,
    /// Point estimate `hits / total` (0 for zero trials).
    pub value: f64,
    /// Lower bound of the interval (exactly 0 when `hits == 0`).
    pub ci_low: f64,
    /// Upper bound of the interval (exactly 1 when `hits == total`).
    pub ci_high: f64,
}

json_struct!(Rate { hits, total, value, ci_low, ci_high });

impl Rate {
    /// Estimates a rate with a 95 % Wilson score interval.
    pub fn from_counts(hits: usize, total: usize) -> Rate {
        Rate::with_confidence(hits, total, 1.959964)
    }

    /// Estimates a rate with a Wilson interval at the given z-score.
    ///
    /// Edge cases are exact: `total == 0` yields the vacuous `[0, 1]`,
    /// `hits == 0` pins the lower bound to `0.0`, `hits >= total` pins
    /// the upper bound to `1.0` (and clamps `hits`). Bounds always lie
    /// ordered inside `[0, 1]`.
    pub fn with_confidence(hits: usize, total: usize, z: f64) -> Rate {
        Rate::from_interval(hits, total, wilson_interval(hits, total, z))
    }

    /// Estimates a rate with a Wilson interval at a two-sided
    /// confidence level (e.g. `0.95`).
    pub fn wilson(hits: usize, total: usize, confidence: f64) -> Rate {
        Rate::with_confidence(hits, total, z_for_confidence(confidence))
    }

    /// Estimates a rate with an exact (conservative) Clopper-Pearson
    /// interval at a two-sided confidence level. Preferred for the
    /// near-0 SDC/DUE rates hardened models exhibit, where the normal
    /// approximation undercovers.
    pub fn clopper_pearson(hits: usize, total: usize, confidence: f64) -> Rate {
        Rate::from_interval(hits, total, clopper_pearson_interval(hits, total, confidence))
    }

    fn from_interval(hits: usize, total: usize, ci: BinomialCi) -> Rate {
        let hits = hits.min(total);
        let value = if total == 0 { 0.0 } else { hits as f64 / total as f64 };
        Rate { hits, total, value, ci_low: ci.low, ci_high: ci.high }
    }

    /// The rate as a percentage.
    pub fn percent(&self) -> f64 {
        self.value * 100.0
    }

    /// Half the interval width — the "±" precision of the estimate.
    pub fn half_width(&self) -> f64 {
        (self.ci_high - self.ci_low) / 2.0
    }

    /// Whether two rates' confidence intervals are disjoint (a crude but
    /// conservative significance check used when ranking models).
    pub fn significantly_differs_from(&self, other: &Rate) -> bool {
        self.ci_high < other.ci_low || other.ci_high < self.ci_low
    }
}

impl std::fmt::Display for Rate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2}% [{:.2}, {:.2}] ({}/{})",
            self.percent(),
            self.ci_low * 100.0,
            self.ci_high * 100.0,
            self.hits,
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimate_is_ratio() {
        let r = Rate::from_counts(25, 100);
        assert!((r.value - 0.25).abs() < 1e-12);
        assert!((r.percent() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn wilson_interval_known_value() {
        // 10/100 at 95%: Wilson interval approx [0.0552, 0.1744]
        let r = Rate::from_counts(10, 100);
        assert!((r.ci_low - 0.0552).abs() < 0.002, "low {}", r.ci_low);
        assert!((r.ci_high - 0.1744).abs() < 0.002, "high {}", r.ci_high);
        assert!((r.half_width() - (r.ci_high - r.ci_low) / 2.0).abs() < 1e-15);
    }

    #[test]
    fn zero_hits_lower_bound_is_exactly_zero() {
        // The old normal approximation left ~5.6e-17 of floating-point
        // dirt here; the boundary must be exact.
        let r = Rate::from_counts(0, 50);
        assert_eq!(r.value, 0.0);
        assert_eq!(r.ci_low, 0.0, "hits == 0 pins the lower bound");
        assert!(r.ci_high > 0.0 && r.ci_high < 0.15);
    }

    #[test]
    fn full_hits_upper_bound_is_exactly_one() {
        let r = Rate::from_counts(50, 50);
        assert_eq!(r.value, 1.0);
        assert!(r.ci_low > 0.85);
        assert_eq!(r.ci_high, 1.0, "hits == total pins the upper bound");
    }

    #[test]
    fn zero_trials_is_vacuous() {
        let r = Rate::from_counts(0, 0);
        assert_eq!(r.value, 0.0);
        assert_eq!((r.ci_low, r.ci_high), (0.0, 1.0));
        assert_eq!(r.half_width(), 0.5);
    }

    #[test]
    fn excess_hits_clamp_to_total() {
        // Corrupt inputs (hits > total) clamp instead of yielding a
        // rate above 1 or a NaN interval.
        let r = Rate::from_counts(7, 5);
        assert_eq!((r.hits, r.total), (5, 5));
        assert_eq!(r.value, 1.0);
        assert!(r.ci_low >= 0.0 && r.ci_low <= 1.0);
        assert_eq!(r.ci_high, 1.0);
    }

    #[test]
    fn wilson_by_confidence_matches_z_form() {
        let by_conf = Rate::wilson(10, 100, 0.95);
        let by_z = Rate::with_confidence(10, 100, z_for_confidence(0.95));
        assert_eq!(by_conf, by_z);
    }

    #[test]
    fn clopper_pearson_known_value_and_boundaries() {
        // 10/100 at 95%: CP interval approx [0.0490, 0.1762].
        let r = Rate::clopper_pearson(10, 100, 0.95);
        assert!((r.ci_low - 0.0490).abs() < 0.002, "low {}", r.ci_low);
        assert!((r.ci_high - 0.1762).abs() < 0.002, "high {}", r.ci_high);

        let zero = Rate::clopper_pearson(0, 50, 0.95);
        assert_eq!(zero.ci_low, 0.0);
        // Rule of three: upper ~ 1 - (alpha/2)^(1/n) ~ 0.0711.
        assert!((zero.ci_high - 0.0711).abs() < 0.002, "high {}", zero.ci_high);

        let full = Rate::clopper_pearson(50, 50, 0.95);
        assert_eq!(full.ci_high, 1.0);
        let vacuous = Rate::clopper_pearson(0, 0, 0.95);
        assert_eq!((vacuous.ci_low, vacuous.ci_high), (0.0, 1.0));
    }

    #[test]
    fn interval_shrinks_with_samples() {
        let small = Rate::from_counts(10, 100);
        let large = Rate::from_counts(100, 1000);
        assert!(large.half_width() < small.half_width());
    }

    #[test]
    fn significance_check_requires_disjoint_intervals() {
        let a = Rate::from_counts(10, 1000);
        let b = Rate::from_counts(300, 1000);
        assert!(a.significantly_differs_from(&b));
        let c = Rate::from_counts(11, 1000);
        assert!(!a.significantly_differs_from(&c));
    }

    #[test]
    fn display_is_readable() {
        let s = Rate::from_counts(118, 1000).to_string();
        assert!(s.contains("11.80%"));
        assert!(s.contains("118/1000"));
    }
}
