//! COCO-style average precision / average recall.
//!
//! PyTorchALFI evaluates object detection with "COCO-based Average-
//! Precision metric variants (AP) ... Intersection over Union (IoU),
//! average precision (AP), and average recall (AR) are computed using
//! COCO's defined metrics" (§V-E). This module implements the 101-point
//! interpolated AP, AP@[.50:.95] averaging and AR, operating on the
//! framework's detection and ground-truth types.

use alfi_datasets::GroundTruthBox;
use alfi_nn::detection::{BBox, Detection};
use alfi_serde::json_struct;
use std::collections::BTreeMap;

/// Converts a COCO `[x, y, w, h]` ground-truth box to corner form.
fn gt_bbox(g: &GroundTruthBox) -> BBox {
    BBox::new(g.bbox[0], g.bbox[1], g.bbox[0] + g.bbox[2], g.bbox[1] + g.bbox[3])
}

/// Summary metrics over a detection dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CocoMetrics {
    /// Mean AP at IoU 0.50 over classes with ground truth.
    pub map_50: f64,
    /// Mean AP averaged over IoU ∈ {0.50, 0.55, …, 0.95}.
    pub map_50_95: f64,
    /// Per-class AP at IoU 0.50.
    pub ap_per_class_50: BTreeMap<usize, f64>,
    /// Average recall at 100 detections per image, averaged over the
    /// same IoU grid.
    pub ar_100: f64,
}

json_struct!(CocoMetrics { map_50, map_50_95, ap_per_class_50, ar_100 });

/// Computes the 101-point interpolated average precision for one class
/// at one IoU threshold.
///
/// `detections[i]` / `ground_truth[i]` belong to image `i`; only entries
/// of `class_id` are considered. Returns 0 when the class has no ground
/// truth.
pub fn average_precision(
    detections: &[Vec<Detection>],
    ground_truth: &[Vec<GroundTruthBox>],
    class_id: usize,
    iou_thresh: f32,
) -> f64 {
    let pr = precision_recall_curve(detections, ground_truth, class_id, iou_thresh);
    // 101-point interpolation: p(r) = max precision at recall >= r.
    let mut ap = 0.0;
    for i in 0..=100 {
        let r = i as f64 / 100.0;
        let p = pr
            .iter()
            .filter(|(rec, _)| *rec >= r)
            .map(|(_, prec)| *prec)
            .fold(0.0, f64::max);
        ap += p;
    }
    ap / 101.0
}

/// Computes the raw precision-recall points for one class at one IoU
/// threshold: one `(recall, precision)` pair per detection, in score
/// order — the series a PR-curve plot consumes. Empty when the class has
/// no ground truth.
///
/// # Panics
///
/// Panics if the per-image lists have different lengths.
pub fn precision_recall_curve(
    detections: &[Vec<Detection>],
    ground_truth: &[Vec<GroundTruthBox>],
    class_id: usize,
    iou_thresh: f32,
) -> Vec<(f64, f64)> {
    assert_eq!(detections.len(), ground_truth.len(), "per-image lists must align");
    let num_gt: usize = ground_truth
        .iter()
        .map(|g| g.iter().filter(|b| b.category_id == class_id).count())
        .sum();
    if num_gt == 0 {
        return Vec::new();
    }
    // Gather (score, image, det) for the class, sorted by score desc.
    let mut all: Vec<(f32, usize, &Detection)> = Vec::new();
    for (img, dets) in detections.iter().enumerate() {
        for d in dets {
            if d.class_id == class_id && d.score.is_finite() {
                all.push((d.score, img, d));
            }
        }
    }
    all.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));

    // Greedy matching in score order, one GT used at most once.
    let mut gt_used: Vec<Vec<bool>> = ground_truth
        .iter()
        .map(|g| vec![false; g.len()])
        .collect();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut pr: Vec<(f64, f64)> = Vec::with_capacity(all.len());
    for (_, img, det) in &all {
        let gts = &ground_truth[*img];
        let mut best = None;
        let mut best_iou = iou_thresh;
        for (gi, g) in gts.iter().enumerate() {
            if g.category_id != class_id || gt_used[*img][gi] {
                continue;
            }
            let iou = det.bbox.iou(&gt_bbox(g));
            if iou >= best_iou {
                best_iou = iou;
                best = Some(gi);
            }
        }
        match best {
            Some(gi) => {
                gt_used[*img][gi] = true;
                tp += 1;
            }
            None => fp += 1,
        }
        pr.push((tp as f64 / num_gt as f64, tp as f64 / (tp + fp) as f64));
    }
    pr
}

/// Computes the recall for one class at one IoU threshold, considering
/// at most `max_dets` highest-scoring detections per image.
pub fn recall(
    detections: &[Vec<Detection>],
    ground_truth: &[Vec<GroundTruthBox>],
    class_id: usize,
    iou_thresh: f32,
    max_dets: usize,
) -> f64 {
    let num_gt: usize = ground_truth
        .iter()
        .map(|g| g.iter().filter(|b| b.category_id == class_id).count())
        .sum();
    if num_gt == 0 {
        return 0.0;
    }
    let mut matched = 0usize;
    for (dets, gts) in detections.iter().zip(ground_truth.iter()) {
        let mut top: Vec<&Detection> =
            dets.iter().filter(|d| d.class_id == class_id && d.score.is_finite()).collect();
        top.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
        top.truncate(max_dets);
        let mut used = vec![false; gts.len()];
        for d in top {
            let mut best = None;
            let mut best_iou = iou_thresh;
            for (gi, g) in gts.iter().enumerate() {
                if g.category_id != class_id || used[gi] {
                    continue;
                }
                let iou = d.bbox.iou(&gt_bbox(g));
                if iou >= best_iou {
                    best_iou = iou;
                    best = Some(gi);
                }
            }
            if let Some(gi) = best {
                used[gi] = true;
                matched += 1;
            }
        }
    }
    matched as f64 / num_gt as f64
}

/// The ten COCO IoU thresholds `0.50, 0.55, …, 0.95`.
pub fn coco_iou_grid() -> [f32; 10] {
    let mut grid = [0.0f32; 10];
    for (i, g) in grid.iter_mut().enumerate() {
        *g = 0.5 + 0.05 * i as f32;
    }
    grid
}

/// Computes the full COCO metric summary over per-image detections and
/// ground truth. Classes absent from the ground truth are excluded from
/// the means (COCO convention).
pub fn coco_metrics(
    detections: &[Vec<Detection>],
    ground_truth: &[Vec<GroundTruthBox>],
    num_classes: usize,
) -> CocoMetrics {
    let classes_with_gt: Vec<usize> = (0..num_classes)
        .filter(|c| {
            ground_truth.iter().any(|g| g.iter().any(|b| b.category_id == *c))
        })
        .collect();
    let mut ap_per_class_50 = BTreeMap::new();
    let mut map_50 = 0.0;
    let mut map_50_95 = 0.0;
    let mut ar_100 = 0.0;
    let grid = coco_iou_grid();
    for &c in &classes_with_gt {
        let ap50 = average_precision(detections, ground_truth, c, 0.5);
        ap_per_class_50.insert(c, ap50);
        map_50 += ap50;
        let mut ap_sum = 0.0;
        let mut r_sum = 0.0;
        for &iou in &grid {
            ap_sum += average_precision(detections, ground_truth, c, iou);
            r_sum += recall(detections, ground_truth, c, iou, 100);
        }
        map_50_95 += ap_sum / grid.len() as f64;
        ar_100 += r_sum / grid.len() as f64;
    }
    let n = classes_with_gt.len().max(1) as f64;
    CocoMetrics {
        map_50: map_50 / n,
        map_50_95: map_50_95 / n,
        ap_per_class_50,
        ar_100: ar_100 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt(x: f32, y: f32, w: f32, h: f32, c: usize) -> GroundTruthBox {
        GroundTruthBox { bbox: [x, y, w, h], category_id: c }
    }

    fn det(x: f32, y: f32, w: f32, h: f32, c: usize, score: f32) -> Detection {
        Detection { bbox: BBox::new(x, y, x + w, y + h), score, class_id: c }
    }

    #[test]
    fn perfect_detections_have_ap_one() {
        let gts = vec![vec![gt(0.0, 0.0, 10.0, 10.0, 0)], vec![gt(5.0, 5.0, 10.0, 10.0, 0)]];
        let dets = vec![
            vec![det(0.0, 0.0, 10.0, 10.0, 0, 0.9)],
            vec![det(5.0, 5.0, 10.0, 10.0, 0, 0.8)],
        ];
        let ap = average_precision(&dets, &gts, 0, 0.5);
        assert!((ap - 1.0).abs() < 1e-9, "ap {ap}");
    }

    #[test]
    fn no_detections_ap_zero() {
        let gts = vec![vec![gt(0.0, 0.0, 10.0, 10.0, 0)]];
        let dets = vec![vec![]];
        assert_eq!(average_precision(&dets, &gts, 0, 0.5), 0.0);
    }

    #[test]
    fn class_without_gt_has_ap_zero_and_is_excluded_from_map() {
        let gts = vec![vec![gt(0.0, 0.0, 10.0, 10.0, 0)]];
        let dets = vec![vec![det(0.0, 0.0, 10.0, 10.0, 0, 0.9)]];
        assert_eq!(average_precision(&dets, &gts, 1, 0.5), 0.0);
        let m = coco_metrics(&dets, &gts, 3);
        assert_eq!(m.ap_per_class_50.len(), 1);
        assert!((m.map_50 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn false_positive_before_true_positive_halves_early_precision() {
        // One GT; two detections: higher-scored FP then TP.
        let gts = vec![vec![gt(0.0, 0.0, 10.0, 10.0, 0)]];
        let dets = vec![vec![
            det(50.0, 50.0, 10.0, 10.0, 0, 0.9), // FP
            det(0.0, 0.0, 10.0, 10.0, 0, 0.8),   // TP
        ]];
        let ap = average_precision(&dets, &gts, 0, 0.5);
        // recall 1.0 reached at precision 1/2 => AP = 0.5
        assert!((ap - 0.5).abs() < 0.01, "ap {ap}");
    }

    #[test]
    fn duplicate_detection_of_one_gt_is_fp() {
        let gts = vec![vec![gt(0.0, 0.0, 10.0, 10.0, 0)]];
        let dets = vec![vec![
            det(0.0, 0.0, 10.0, 10.0, 0, 0.9),
            det(0.5, 0.5, 10.0, 10.0, 0, 0.8), // matches same GT -> FP
        ]];
        let ap = average_precision(&dets, &gts, 0, 0.5);
        assert!((ap - 1.0).abs() < 1e-9, "TP came first so AP stays 1, got {ap}");
        let r = recall(&dets, &gts, 0, 0.5, 100);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn higher_iou_threshold_is_stricter() {
        let gts = vec![vec![gt(0.0, 0.0, 10.0, 10.0, 0)]];
        // Overlap ~0.6 box
        let dets = vec![vec![det(2.0, 0.0, 10.0, 10.0, 0, 0.9)]];
        let ap_50 = average_precision(&dets, &gts, 0, 0.5);
        let ap_90 = average_precision(&dets, &gts, 0, 0.9);
        assert!(ap_50 > 0.9);
        assert_eq!(ap_90, 0.0);
    }

    #[test]
    fn recall_respects_max_dets() {
        let gts = vec![vec![gt(0.0, 0.0, 10.0, 10.0, 0), gt(50.0, 50.0, 10.0, 10.0, 0)]];
        let dets = vec![vec![
            det(0.0, 0.0, 10.0, 10.0, 0, 0.9),
            det(50.0, 50.0, 10.0, 10.0, 0, 0.8),
        ]];
        assert_eq!(recall(&dets, &gts, 0, 0.5, 100), 1.0);
        assert_eq!(recall(&dets, &gts, 0, 0.5, 1), 0.5);
    }

    #[test]
    fn nan_scores_are_ignored() {
        let gts = vec![vec![gt(0.0, 0.0, 10.0, 10.0, 0)]];
        let dets = vec![vec![det(0.0, 0.0, 10.0, 10.0, 0, f32::NAN)]];
        assert_eq!(average_precision(&dets, &gts, 0, 0.5), 0.0);
    }

    #[test]
    fn coco_grid_has_ten_thresholds() {
        let g = coco_iou_grid();
        assert_eq!(g.len(), 10);
        assert!((g[0] - 0.5).abs() < 1e-6);
        assert!((g[9] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn pr_curve_recall_is_monotone_and_bounded() {
        let gts = vec![vec![gt(0.0, 0.0, 10.0, 10.0, 0), gt(50.0, 50.0, 10.0, 10.0, 0)]];
        let dets = vec![vec![
            det(0.0, 0.0, 10.0, 10.0, 0, 0.9),   // TP
            det(90.0, 90.0, 5.0, 5.0, 0, 0.8),   // FP
            det(50.0, 50.0, 10.0, 10.0, 0, 0.7), // TP
        ]];
        let pr = precision_recall_curve(&dets, &gts, 0, 0.5);
        assert_eq!(pr.len(), 3);
        assert_eq!(pr[0], (0.5, 1.0));
        assert_eq!(pr[1], (0.5, 0.5));
        assert_eq!(pr[2], (1.0, 2.0 / 3.0));
        for w in pr.windows(2) {
            assert!(w[1].0 >= w[0].0, "recall never decreases");
        }
        // no ground truth -> empty curve
        assert!(precision_recall_curve(&dets, &gts, 3, 0.5).is_empty());
    }

    #[test]
    fn map_50_95_is_at_most_map_50() {
        let gts = vec![vec![gt(0.0, 0.0, 10.0, 10.0, 0)]];
        let dets = vec![vec![det(1.0, 0.0, 10.0, 10.0, 0, 0.9)]];
        let m = coco_metrics(&dets, &gts, 1);
        assert!(m.map_50_95 <= m.map_50 + 1e-9);
        assert!(m.ar_100 <= 1.0);
    }
}
