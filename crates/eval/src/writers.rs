//! Detection result writers — the Fig. 3 output pipeline.
//!
//! The object-detection submodule stores three output sets per campaign
//! (§V-F-2): (a) COCO ground truth + meta-files, (b) intermediate result
//! JSONs with "predicted classes, scores, and bounding box location per
//! object" for the fault-free and corrupted passes, and (c) mAP / IVMOD
//! summary values. This module writes all three from a
//! [`DetectionCampaignResult`].

use crate::coco_map::{coco_metrics, CocoMetrics};
use crate::detection::{ivmod_kpis, IvmodKpis};
use alfi_core::campaign::DetectionCampaignResult;
use alfi_core::CoreError;
use alfi_datasets::{CocoGroundTruth, GroundTruthBox};
use alfi_nn::detection::Detection;
use alfi_serde::{json_struct, FromJson, Json, ToJson};
use std::path::Path;

/// One image's predictions in the intermediate-result JSON files.
#[derive(Debug, Clone, PartialEq)]
pub struct ImagePredictions {
    /// Dataset image id.
    pub image_id: u64,
    /// Predicted objects.
    pub detections: Vec<Detection>,
}

json_struct!(ImagePredictions { image_id, detections });

/// The metrics summary JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionSummary {
    /// Detector model name.
    pub model: String,
    /// COCO metrics of the fault-free pass against ground truth.
    pub orig_coco: CocoMetrics,
    /// COCO metrics of the corrupted pass against ground truth.
    pub corr_coco: CocoMetrics,
    /// IVMOD rates of corrupted vs fault-free detections.
    pub ivmod: IvmodKpis,
}

json_struct!(DetectionSummary { model, orig_coco, corr_coco, ivmod });

/// Computes the summary metrics for a detection campaign.
pub fn detection_summary(
    result: &DetectionCampaignResult,
    num_classes: usize,
    iou_thresh: f32,
) -> DetectionSummary {
    let gts: Vec<Vec<GroundTruthBox>> = result.rows.iter().map(|r| r.ground_truth.clone()).collect();
    let orig: Vec<Vec<Detection>> = result.rows.iter().map(|r| r.orig.clone()).collect();
    let corr: Vec<Vec<Detection>> = result.rows.iter().map(|r| r.corr.clone()).collect();
    DetectionSummary {
        model: result.model_name.clone(),
        orig_coco: coco_metrics(&orig, &gts, num_classes),
        corr_coco: coco_metrics(&corr, &gts, num_classes),
        ivmod: ivmod_kpis(&result.rows, iou_thresh),
    }
}

/// Writes the three Fig. 3 output sets into `dir`:
///
/// * `ground_truth.json` — COCO-format annotations (set a),
/// * `detections_orig.json` / `detections_corr.json` — per-image
///   intermediate results (set b),
/// * `metrics.json` — mAP + IVMOD summary (set c),
///
/// plus `scenario.yml`, `faults.bin` and `trace.bin` for replay.
///
/// # Errors
///
/// Returns [`CoreError::Io`] on filesystem failures.
pub fn write_detection_outputs(
    result: &DetectionCampaignResult,
    ground_truth: &CocoGroundTruth,
    num_classes: usize,
    iou_thresh: f32,
    dir: impl AsRef<Path>,
) -> Result<DetectionSummary, CoreError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(|e| CoreError::Io(e.to_string()))?;
    let gt_json = ground_truth.to_json().map_err(|e| CoreError::Io(e.to_string()))?;
    std::fs::write(dir.join("ground_truth.json"), gt_json)
        .map_err(|e| CoreError::Io(e.to_string()))?;

    let to_preds = |get: &dyn Fn(&alfi_core::campaign::DetectionRow) -> Vec<Detection>| {
        result
            .rows
            .iter()
            .map(|r| ImagePredictions { image_id: r.image_id, detections: get(r) })
            .collect::<Vec<_>>()
    };
    let orig = to_preds(&|r| r.orig.clone());
    let corr = to_preds(&|r| r.corr.clone());
    std::fs::write(dir.join("detections_orig.json"), ToJson::to_json(&orig).pretty())
        .map_err(|e| CoreError::Io(e.to_string()))?;
    std::fs::write(dir.join("detections_corr.json"), ToJson::to_json(&corr).pretty())
        .map_err(|e| CoreError::Io(e.to_string()))?;
    if result.rows.iter().any(|r| r.resil.is_some()) {
        let resil = to_preds(&|r| r.resil.clone().unwrap_or_default());
        std::fs::write(dir.join("detections_resil.json"), ToJson::to_json(&resil).pretty())
            .map_err(|e| CoreError::Io(e.to_string()))?;
    }

    let summary = detection_summary(result, num_classes, iou_thresh);
    std::fs::write(dir.join("metrics.json"), ToJson::to_json(&summary).pretty())
        .map_err(|e| CoreError::Io(e.to_string()))?;

    result
        .scenario
        .save(dir.join("scenario.yml"))
        .map_err(|e| CoreError::Io(e.to_string()))?;
    alfi_core::save_fault_matrix(&result.fault_matrix, dir.join("faults.bin"))?;
    result.trace.save(dir.join("trace.bin"))?;
    Ok(summary)
}

/// Parses a `detections_*.json` file back into per-image predictions.
///
/// # Errors
///
/// Returns [`CoreError::Io`] on read failures or malformed JSON.
pub fn read_predictions(path: impl AsRef<Path>) -> Result<Vec<ImagePredictions>, CoreError> {
    let text = std::fs::read_to_string(path.as_ref()).map_err(|e| CoreError::Io(e.to_string()))?;
    let json = Json::parse(&text).map_err(|e| CoreError::Io(e.to_string()))?;
    FromJson::from_json(&json).map_err(|e| CoreError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_core::campaign::DetectionRow;
    use alfi_core::{FaultMatrix, RunTrace};
    use alfi_nn::detection::BBox;
    use alfi_scenario::{InjectionTarget, Scenario};

    fn det(x: f32, c: usize, s: f32) -> Detection {
        Detection { bbox: BBox::new(x, 0.0, x + 10.0, 10.0), score: s, class_id: c }
    }

    fn result() -> DetectionCampaignResult {
        DetectionCampaignResult {
            rows: vec![
                DetectionRow {
                    image_id: 0,
                    ground_truth: vec![GroundTruthBox { bbox: [0.0, 0.0, 10.0, 10.0], category_id: 1 }],
                    orig: vec![det(0.0, 1, 0.9)],
                    corr: vec![det(40.0, 1, 0.9)],
                    resil: None,
                    faults: vec![],
                    corr_nan: 0,
                    corr_inf: 0,
                },
                DetectionRow {
                    image_id: 1,
                    ground_truth: vec![GroundTruthBox { bbox: [5.0, 0.0, 10.0, 10.0], category_id: 0 }],
                    orig: vec![det(5.0, 0, 0.8)],
                    corr: vec![det(5.0, 0, 0.8)],
                    resil: None,
                    faults: vec![],
                    corr_nan: 0,
                    corr_inf: 0,
                },
            ],
            scenario: Scenario::default(),
            fault_matrix: FaultMatrix {
                records: vec![],
                target: InjectionTarget::Neurons,
                faults_per_image: 1,
            },
            trace: RunTrace::default(),
            model_name: "yolo_grid".into(),
        }
    }

    #[test]
    fn summary_reports_orig_better_than_corr() {
        let s = detection_summary(&result(), 2, 0.5);
        assert!(s.orig_coco.map_50 > s.corr_coco.map_50);
        assert_eq!(s.ivmod.ivmod_sde.hits, 1);
        assert_eq!(s.ivmod.ivmod_sde.total, 2);
    }

    #[test]
    fn all_three_output_sets_are_written_and_parse() {
        let dir = std::env::temp_dir().join("alfi_det_outputs");
        let _ = std::fs::remove_dir_all(&dir);
        let r = result();
        let gt = CocoGroundTruth::default();
        let summary = write_detection_outputs(&r, &gt, 2, 0.5, &dir).unwrap();
        for f in [
            "ground_truth.json",
            "detections_orig.json",
            "detections_corr.json",
            "metrics.json",
            "scenario.yml",
            "faults.bin",
            "trace.bin",
        ] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        // intermediate results round-trip
        let orig = read_predictions(dir.join("detections_orig.json")).unwrap();
        assert_eq!(orig.len(), 2);
        assert_eq!(orig[0].detections, r.rows[0].orig);
        // metrics parse back
        let text = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        let parsed: DetectionSummary = FromJson::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, summary);
    }

    #[test]
    fn read_predictions_rejects_garbage() {
        let dir = std::env::temp_dir().join("alfi_det_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.json");
        std::fs::write(&p, "{oops").unwrap();
        assert!(read_predictions(&p).is_err());
        assert!(read_predictions(dir.join("missing.json")).is_err());
    }
}
