//! Reader for the classification result CSV files.
//!
//! PyTorchALFI stores classification outputs as CSV so that
//! "post-processing" can run long after the campaign (§V-F-1). This
//! module parses the files `alfi-core` writes back into structured rows,
//! closing the persistence loop: analyses in [`crate::analysis`]-style
//! can run on reloaded data.

use std::fmt;
use std::path::Path;

/// One parsed CSV result row (the per-variant view: one top-5 set).
#[derive(Debug, Clone, PartialEq)]
pub struct CsvRow {
    /// Dataset image id.
    pub image_id: u64,
    /// Virtual file path.
    pub file_name: String,
    /// Ground-truth label.
    pub label: usize,
    /// Top-5 `(class, probability)`; fewer entries if the model has
    /// fewer classes.
    pub top5: Vec<(usize, f32)>,
    /// Fault layer indices (one per simultaneous fault).
    pub fault_layers: Vec<usize>,
    /// Flipped bit positions; `None` for stuck-at/value faults.
    pub fault_bits: Vec<Option<u8>>,
    /// NaN count observed during the corrupted inference.
    pub nan_count: usize,
    /// Inf count observed during the corrupted inference.
    pub inf_count: usize,
}

/// Error produced when a result CSV is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCsvError {
    /// 1-based line number (line 1 is the header).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCsvError {}

fn field_err(line: usize, what: impl Into<String>) -> ParseCsvError {
    ParseCsvError { line, message: what.into() }
}

/// Parses the content of a `results_*.csv` file.
///
/// # Errors
///
/// Returns [`ParseCsvError`] with the offending line number on malformed
/// input (wrong column count, unparseable numbers, missing header).
pub fn parse_classification_csv(text: &str) -> Result<Vec<CsvRow>, ParseCsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| field_err(1, "empty file"))?;
    if !header.starts_with("image_id,file_name,label") {
        return Err(field_err(1, "unrecognized header"));
    }
    let expected_cols = header.split(',').count();
    let mut rows = Vec::new();
    for (i, line) in lines {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != expected_cols {
            return Err(field_err(
                lineno,
                format!("expected {expected_cols} columns, got {}", cols.len()),
            ));
        }
        let image_id =
            cols[0].parse().map_err(|_| field_err(lineno, "bad image_id"))?;
        let file_name = cols[1].to_string();
        let label = cols[2].parse().map_err(|_| field_err(lineno, "bad label"))?;
        let mut top5 = Vec::new();
        for k in 0..5 {
            let c = cols[3 + 2 * k];
            let p = cols[4 + 2 * k];
            if c.is_empty() {
                continue;
            }
            let class: usize = c.parse().map_err(|_| field_err(lineno, "bad top-k class"))?;
            let prob: f32 = p.parse().map_err(|_| field_err(lineno, "bad top-k probability"))?;
            top5.push((class, prob));
        }
        fn split_list(s: &str) -> Vec<&str> {
            if s.is_empty() {
                Vec::new()
            } else {
                s.split(';').collect()
            }
        }
        let fault_layers = split_list(cols[13])
            .into_iter()
            .map(|s| s.parse().map_err(|_| field_err(lineno, "bad fault layer")))
            .collect::<Result<Vec<usize>, _>>()?;
        let fault_bits = split_list(cols[18])
            .into_iter()
            .map(|s| {
                if s.starts_with('s') || s == "v" {
                    Ok(None)
                } else {
                    s.parse::<u8>().map(Some).map_err(|_| field_err(lineno, "bad fault bit"))
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let nan_count = cols[19].parse().map_err(|_| field_err(lineno, "bad nan count"))?;
        let inf_count = cols[20].parse().map_err(|_| field_err(lineno, "bad inf count"))?;
        rows.push(CsvRow {
            image_id,
            file_name,
            label,
            top5,
            fault_layers,
            fault_bits,
            nan_count,
            inf_count,
        });
    }
    Ok(rows)
}

/// Reads and parses a result CSV file from disk.
///
/// # Errors
///
/// Returns [`ParseCsvError`] for parse failures (I/O errors are reported
/// as line-0 errors with the OS message).
pub fn read_classification_csv(path: impl AsRef<Path>) -> Result<Vec<CsvRow>, ParseCsvError> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| field_err(0, format!("cannot read file: {e}")))?;
    parse_classification_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "image_id,file_name,label,top1,top1_p,top2,top2_p,top3,top3_p,top4,top4_p,top5,top5_p,fault_layers,fault_channels,fault_depths,fault_heights,fault_widths,fault_bits,nan_count,inf_count";

    fn sample_line() -> String {
        format!("{HEADER}\n7,synthetic/class/img_000007.png,3,3,0.9,1,0.05,0,0.03,2,0.01,4,0.01,2;5,10;3,-;-,1;0,4;2,30;s23,0,2\n")
    }

    #[test]
    fn parses_written_format() {
        let rows = parse_classification_csv(&sample_line()).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.image_id, 7);
        assert_eq!(r.label, 3);
        assert_eq!(r.top5.len(), 5);
        assert_eq!(r.top5[0], (3, 0.9));
        assert_eq!(r.fault_layers, vec![2, 5]);
        assert_eq!(r.fault_bits, vec![Some(30), None]);
        assert_eq!((r.nan_count, r.inf_count), (0, 2));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_classification_csv("").is_err());
        assert!(parse_classification_csv("wrong,header\n").is_err());
        let missing_cols = format!("{HEADER}\n1,x,2\n");
        let e = parse_classification_csv(&missing_cols).unwrap_err();
        assert_eq!(e.line, 2);
        let bad_number = sample_line().replace("7,synthetic", "seven,synthetic");
        assert!(parse_classification_csv(&bad_number).is_err());
    }

    #[test]
    fn empty_fault_lists_parse() {
        let line = format!("{HEADER}\n1,x,0,0,1.0,,,,,,,,,,,,,,,0,0\n");
        let rows = parse_classification_csv(&line).unwrap();
        assert!(rows[0].fault_layers.is_empty());
        assert!(rows[0].fault_bits.is_empty());
        assert_eq!(rows[0].top5.len(), 1);
    }

    #[test]
    fn round_trips_a_real_campaign_csv() {
        use alfi_core::campaign::{CsvVariant, ImgClassCampaign, RunConfig};
        use alfi_datasets::{ClassificationDataset, ClassificationLoader};
        use alfi_nn::models::{alexnet, ModelConfig};
        use alfi_scenario::{FaultMode, InjectionTarget, Scenario};

        let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, ..ModelConfig::default() };
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let ds = ClassificationDataset::new(3, mcfg.num_classes, 3, 16, 1);
        let loader = ClassificationLoader::new(ds, 1);
        let result = ImgClassCampaign::new(alexnet(&mcfg), s, loader).run_with(&RunConfig::default()).unwrap();
        let csv = result.to_csv(CsvVariant::Corrupted);
        let rows = parse_classification_csv(&csv).unwrap();
        assert_eq!(rows.len(), result.rows.len());
        for (parsed, orig) in rows.iter().zip(result.rows.iter()) {
            assert_eq!(parsed.image_id, orig.image_id);
            assert_eq!(parsed.label, orig.label);
            assert_eq!(parsed.top5.len(), orig.corr_top5.len());
            assert_eq!(parsed.top5[0].0, orig.corr_top5[0].0);
            assert_eq!(parsed.fault_layers.len(), orig.faults.len());
        }
    }
}
