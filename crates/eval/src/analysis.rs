//! Post-processing analysis of campaign results — the paper's "this raw
//! basic information is further processed to quantify the vulnerability
//! ... bit-wise and layer-wise, SDE information was easily extracted"
//! (§V-F-1).
//!
//! All breakdowns operate on the campaign rows (which carry the applied
//! faults) so they can equally run on freshly produced results or on
//! results reloaded from persisted CSV/trace files.

use crate::classification::{classify_row, Outcome, SdeCriterion};
use crate::stats::Rate;
use alfi_core::campaign::ClassificationRow;
use alfi_core::FaultValue;
use alfi_tensor::bits::{BitField, FlipDirection};
use alfi_serde::json_struct;
use std::collections::BTreeMap;

/// SDE/DUE/masked counts for one slice of a breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    /// Silent data errors.
    pub sde: usize,
    /// Detected uncorrectable errors.
    pub due: usize,
    /// Masked (absorbed) faults.
    pub masked: usize,
}

json_struct!(OutcomeCounts { sde, due, masked });

impl OutcomeCounts {
    fn add(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Sde => self.sde += 1,
            Outcome::Due => self.due += 1,
            Outcome::Masked => self.masked += 1,
        }
    }

    /// Total observations in this slice.
    pub fn total(&self) -> usize {
        self.sde + self.due + self.masked
    }

    /// The slice's SDE rate with confidence interval.
    pub fn sde_rate(&self) -> Rate {
        Rate::from_counts(self.sde, self.total())
    }

    /// The slice's corruption (SDE + DUE) rate with confidence interval.
    pub fn corruption_rate(&self) -> Rate {
        Rate::from_counts(self.sde + self.due, self.total())
    }
}

/// Layer-wise outcome breakdown: which layers' faults corrupted the
/// output. Rows with multiple faults contribute to every involved layer.
pub fn outcomes_by_layer(
    rows: &[ClassificationRow],
    criterion: SdeCriterion,
) -> BTreeMap<usize, OutcomeCounts> {
    let mut map: BTreeMap<usize, OutcomeCounts> = BTreeMap::new();
    for row in rows {
        let outcome = classify_row(row, criterion);
        for fault in &row.faults {
            map.entry(fault.record.layer).or_default().add(outcome);
        }
    }
    map
}

/// Bit-position breakdown (bit-flip faults only).
pub fn outcomes_by_bit_position(
    rows: &[ClassificationRow],
    criterion: SdeCriterion,
) -> BTreeMap<u8, OutcomeCounts> {
    let mut map: BTreeMap<u8, OutcomeCounts> = BTreeMap::new();
    for row in rows {
        let outcome = classify_row(row, criterion);
        for fault in &row.faults {
            if let FaultValue::BitFlip(pos) = fault.record.value {
                map.entry(pos).or_default().add(outcome);
            }
        }
    }
    map
}

/// Bit-field (mantissa/exponent/sign) breakdown of bit-flip faults.
pub fn outcomes_by_bit_field(
    rows: &[ClassificationRow],
    criterion: SdeCriterion,
) -> BTreeMap<String, OutcomeCounts> {
    let mut map: BTreeMap<String, OutcomeCounts> = BTreeMap::new();
    for (pos, counts) in outcomes_by_bit_position(rows, criterion) {
        let field = BitField::of(pos).to_string();
        let entry = map.entry(field).or_default();
        entry.sde += counts.sde;
        entry.due += counts.due;
        entry.masked += counts.masked;
    }
    map
}

/// Flip-direction statistics: how many applied bit flips were 0→1 vs
/// 1→0, and the corruption rate of each direction — the paper's trace
/// files record the direction for exactly this analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirectionStats {
    /// 0→1 flips observed / corrupted.
    pub zero_to_one: OutcomeCounts,
    /// 1→0 flips observed / corrupted.
    pub one_to_zero: OutcomeCounts,
}

json_struct!(DirectionStats { zero_to_one, one_to_zero });

/// Computes flip-direction statistics over campaign rows.
pub fn flip_direction_stats(
    rows: &[ClassificationRow],
    criterion: SdeCriterion,
) -> DirectionStats {
    let mut stats = DirectionStats::default();
    for row in rows {
        let outcome = classify_row(row, criterion);
        for fault in &row.faults {
            match fault.direction {
                Some(FlipDirection::ZeroToOne) => stats.zero_to_one.add(outcome),
                Some(FlipDirection::OneToZero) => stats.one_to_zero.add(outcome),
                None => {}
            }
        }
    }
    stats
}

/// Renders a layer-wise breakdown as an aligned text table — the
/// at-a-glance artifact the paper's campaign logs provide.
pub fn layer_table(breakdown: &BTreeMap<usize, OutcomeCounts>) -> String {
    let mut out = String::from("layer     n     sde     due  masked  sde_rate\n");
    for (layer, c) in breakdown {
        out.push_str(&format!(
            "{:<7} {:>4} {:>7} {:>7} {:>7}  {:>7.2}%\n",
            layer,
            c.total(),
            c.sde,
            c.due,
            c.masked,
            c.sde_rate().percent()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_core::{AppliedFault, FaultRecord};

    fn fault(layer: usize, bit: u8, dir: FlipDirection) -> AppliedFault {
        AppliedFault {
            record: FaultRecord {
                batch: 0,
                layer,
                channel: 0,
                channel_in: 0,
                depth: None,
                height: 0,
                width: 0,
                value: FaultValue::BitFlip(bit),
            },
            original: 1.0,
            corrupted: 2.0,
            direction: Some(dir),
        }
    }

    fn row(orig_cls: usize, corr_cls: usize, nan: usize, faults: Vec<AppliedFault>) -> ClassificationRow {
        ClassificationRow {
            image_id: 0,
            file_name: "x".into(),
            label: orig_cls,
            orig_top5: vec![(orig_cls, 0.9)],
            corr_top5: vec![(corr_cls, 0.9)],
            resil_top5: None,
            faults,
            corr_nan: nan,
            corr_inf: 0,
        }
    }

    #[test]
    fn layer_breakdown_attributes_outcomes_to_fault_layers() {
        let rows = vec![
            row(1, 1, 0, vec![fault(0, 30, FlipDirection::ZeroToOne)]), // masked @ layer0
            row(1, 2, 0, vec![fault(0, 30, FlipDirection::ZeroToOne)]), // sde @ layer0
            row(1, 1, 1, vec![fault(3, 23, FlipDirection::OneToZero)]), // due @ layer3
        ];
        let b = outcomes_by_layer(&rows, SdeCriterion::Top1Mismatch);
        assert_eq!(b[&0].sde, 1);
        assert_eq!(b[&0].masked, 1);
        assert_eq!(b[&0].total(), 2);
        assert_eq!(b[&3].due, 1);
        assert!((b[&0].sde_rate().value - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multi_fault_rows_count_once_per_fault() {
        let rows = vec![row(
            1,
            2,
            0,
            vec![fault(0, 30, FlipDirection::ZeroToOne), fault(5, 24, FlipDirection::ZeroToOne)],
        )];
        let b = outcomes_by_layer(&rows, SdeCriterion::Top1Mismatch);
        assert_eq!(b[&0].sde, 1);
        assert_eq!(b[&5].sde, 1);
    }

    #[test]
    fn bit_breakdowns_group_positions_and_fields() {
        let rows = vec![
            row(1, 2, 0, vec![fault(0, 30, FlipDirection::ZeroToOne)]), // exponent sde
            row(1, 1, 0, vec![fault(0, 2, FlipDirection::OneToZero)]),  // mantissa masked
            row(1, 2, 0, vec![fault(0, 31, FlipDirection::ZeroToOne)]), // sign sde
        ];
        let pos = outcomes_by_bit_position(&rows, SdeCriterion::Top1Mismatch);
        assert_eq!(pos[&30].sde, 1);
        assert_eq!(pos[&2].masked, 1);
        let field = outcomes_by_bit_field(&rows, SdeCriterion::Top1Mismatch);
        assert_eq!(field["exponent"].sde, 1);
        assert_eq!(field["mantissa"].masked, 1);
        assert_eq!(field["sign"].sde, 1);
    }

    #[test]
    fn direction_stats_split_by_flip_direction() {
        let rows = vec![
            row(1, 2, 0, vec![fault(0, 30, FlipDirection::ZeroToOne)]),
            row(1, 1, 0, vec![fault(0, 30, FlipDirection::OneToZero)]),
        ];
        let d = flip_direction_stats(&rows, SdeCriterion::Top1Mismatch);
        assert_eq!(d.zero_to_one.sde, 1);
        assert_eq!(d.one_to_zero.masked, 1);
    }

    #[test]
    fn layer_table_renders_rows() {
        let rows = vec![row(1, 2, 0, vec![fault(4, 30, FlipDirection::ZeroToOne)])];
        let b = outcomes_by_layer(&rows, SdeCriterion::Top1Mismatch);
        let table = layer_table(&b);
        assert!(table.starts_with("layer"));
        assert!(table.contains('4'));
        assert!(table.contains("100.00%"));
    }

    #[test]
    fn corruption_rate_combines_sde_and_due() {
        let mut c = OutcomeCounts::default();
        c.sde = 2;
        c.due = 1;
        c.masked = 7;
        assert!((c.corruption_rate().value - 0.3).abs() < 1e-9);
    }
}
