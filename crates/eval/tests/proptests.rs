//! Property-based tests for KPI invariants, running on the in-tree
//! `alfi-check` harness.

use alfi_check::{check_with, gen};
use alfi_datasets::GroundTruthBox;
use alfi_eval::{average_precision, classify, image_delta, recall, Outcome, Rate, SdeCriterion};
use alfi_nn::detection::{BBox, Detection};
use alfi_rng::Rng;

const CASES: usize = 96;

fn arb_topk(rng: &mut Rng) -> Vec<(usize, f32)> {
    gen::vec_of(rng, 1..6, |rng| (rng.gen_range(0usize..20), rng.gen_range(0.0f32..=1.0)))
}

fn arb_detection(rng: &mut Rng) -> Detection {
    let x: f32 = rng.gen_range(0.0f32..80.0);
    let y: f32 = rng.gen_range(0.0f32..80.0);
    let w: f32 = rng.gen_range(1.0f32..30.0);
    let h: f32 = rng.gen_range(1.0f32..30.0);
    Detection {
        bbox: BBox::new(x, y, x + w, y + h),
        score: rng.gen_range(0.0f32..=1.0),
        class_id: rng.gen_range(0usize..4),
    }
}

fn arb_gt(rng: &mut Rng) -> GroundTruthBox {
    GroundTruthBox {
        bbox: [
            rng.gen_range(0.0f32..80.0),
            rng.gen_range(0.0f32..80.0),
            rng.gen_range(1.0f32..30.0),
            rng.gen_range(1.0f32..30.0),
        ],
        category_id: rng.gen_range(0usize..4),
    }
}

/// Wilson interval always brackets the point estimate and stays in
/// [0, 1]; the interval never widens with more samples at the same
/// ratio.
#[test]
fn wilson_interval_invariants() {
    check_with(CASES, "wilson_interval_invariants", |rng| {
        let hits: usize = rng.gen_range(0usize..500);
        let extra: usize = rng.gen_range(0usize..500);
        let total = hits + extra;
        let r = Rate::from_counts(hits, total);
        assert!(r.ci_low >= 0.0 && r.ci_high <= 1.0);
        if total > 0 {
            assert!(r.ci_low <= r.value + 1e-12);
            assert!(r.value <= r.ci_high + 1e-12);
            let r10 = Rate::from_counts(hits * 10, total * 10);
            assert!(
                r10.ci_high - r10.ci_low <= r.ci_high - r.ci_low + 1e-12,
                "interval must shrink with 10x samples"
            );
        }
    });
}

/// Both interval families produce ordered bounds inside [0, 1] that
/// bracket the point estimate, for arbitrary (hits, total, confidence)
/// triples including the hits > total corruption case.
#[test]
fn interval_bounds_ordered_and_contain_estimate() {
    use alfi_eval::stats::{clopper_pearson_interval, wilson_interval, z_for_confidence};
    check_with(CASES, "interval_bounds_ordered_and_contain_estimate", |rng| {
        let total: usize = rng.gen_range(0usize..400);
        let hits: usize = rng.gen_range(0usize..500);
        let confidence: f64 = rng.gen_range(0.5f64..0.999);
        let p = if total == 0 { 0.0 } else { hits.min(total) as f64 / total as f64 };
        for ci in [
            wilson_interval(hits, total, z_for_confidence(confidence)),
            clopper_pearson_interval(hits, total, confidence),
        ] {
            assert!(ci.low >= 0.0 && ci.high <= 1.0, "bounds in [0,1]: {ci:?}");
            assert!(ci.low <= ci.high, "bounds ordered: {ci:?}");
            if total > 0 {
                assert!(ci.low <= p + 1e-12 && p <= ci.high + 1e-12, "{ci:?} brackets {p}");
            }
        }
    });
}

/// At a fixed ratio, both interval families shrink (weakly) as the
/// sample count grows.
#[test]
fn interval_half_width_shrinks_with_samples() {
    use alfi_eval::stats::{clopper_pearson_interval, wilson_interval, z_for_confidence};
    check_with(CASES, "interval_half_width_shrinks_with_samples", |rng| {
        let hits: usize = rng.gen_range(0usize..100);
        let extra: usize = rng.gen_range(1usize..100);
        let total = hits + extra;
        let k: usize = rng.gen_range(2usize..12);
        let confidence: f64 = rng.gen_range(0.5f64..0.999);
        let z = z_for_confidence(confidence);
        let w = wilson_interval(hits, total, z);
        let wk = wilson_interval(hits * k, total * k, z);
        assert!(wk.half_width() <= w.half_width() + 1e-12, "wilson shrinks with {k}x samples");
        let c = clopper_pearson_interval(hits, total, confidence);
        let ck = clopper_pearson_interval(hits * k, total * k, confidence);
        assert!(ck.half_width() <= c.half_width() + 1e-9, "cp shrinks with {k}x samples");
    });
}

/// Clopper-Pearson's defining guarantee, which Wilson only
/// approximates: its *exact coverage probability* — the chance over
/// binomial draws that the interval contains the true rate — is at
/// least the nominal confidence, for every (n, p, confidence). This is
/// the sense in which CP "covers" Wilson; pointwise containment of one
/// interval by the other is false in general (either can be tighter on
/// one side at extreme rates), so that is deliberately not asserted.
#[test]
fn clopper_pearson_coverage_is_conservative() {
    use alfi_eval::stats::clopper_pearson_interval;
    check_with(CASES, "clopper_pearson_coverage_is_conservative", |rng| {
        let n: usize = rng.gen_range(2usize..60);
        let p: f64 = rng.gen_range(0.01f64..0.99);
        let confidence: f64 = rng.gen_range(0.5f64..0.99);
        let mut ln_fact = vec![0.0f64; n + 1];
        for i in 1..=n {
            ln_fact[i] = ln_fact[i - 1] + (i as f64).ln();
        }
        let mut coverage = 0.0;
        for h in 0..=n {
            let ci = clopper_pearson_interval(h, n, confidence);
            if ci.low <= p && p <= ci.high {
                let ln_pmf = ln_fact[n] - ln_fact[h] - ln_fact[n - h]
                    + h as f64 * p.ln()
                    + (n - h) as f64 * (1.0 - p).ln();
                coverage += ln_pmf.exp();
            }
        }
        assert!(
            coverage >= confidence - 1e-9,
            "CP coverage {coverage} < nominal {confidence} at n={n}, p={p}"
        );
    });
}

/// Outcome classification is exhaustive and consistent: identical
/// top-k with finite scores is never SDE/DUE; any NaN flag is DUE.
#[test]
fn outcome_classification_invariants() {
    check_with(CASES, "outcome_classification_invariants", |rng| {
        let orig = arb_topk(rng);
        let nan = gen::any_bool(rng);
        let same = classify(&orig, &orig, false, SdeCriterion::Top1Mismatch);
        assert_eq!(same, Outcome::Masked);
        let flagged = classify(&orig, &orig, nan, SdeCriterion::Top1Mismatch);
        assert_eq!(flagged, if nan { Outcome::Due } else { Outcome::Masked });
    });
}

/// image_delta bookkeeping: matched + FN = |orig|, matched + FP =
/// |corr|; comparing a set with itself is clean.
#[test]
fn image_delta_bookkeeping() {
    check_with(CASES, "image_delta_bookkeeping", |rng| {
        let orig = gen::vec_of(rng, 0..10, arb_detection);
        let corr = gen::vec_of(rng, 0..10, arb_detection);
        let thr: f32 = rng.gen_range(0.2f32..0.8);
        let d = image_delta(&orig, &corr, thr);
        assert_eq!(d.matched + d.false_negatives, orig.len());
        assert_eq!(d.matched + d.false_positives, corr.len());
        let self_d = image_delta(&orig, &orig, thr);
        assert!(!self_d.is_corrupted());
    });
}

/// AP and recall stay within [0, 1]; recall is monotone in max_dets
/// and antitone in the IoU threshold.
#[test]
fn ap_recall_bounds_and_monotonicity() {
    check_with(CASES, "ap_recall_bounds_and_monotonicity", |rng| {
        let n: usize = rng.gen_range(1usize..4);
        let dets: Vec<Vec<Detection>> =
            (0..n).map(|_| gen::vec_of(rng, 0..6, arb_detection)).collect();
        let gts: Vec<Vec<GroundTruthBox>> = (0..n).map(|_| gen::vec_of(rng, 0..6, arb_gt)).collect();
        let class_id: usize = rng.gen_range(0usize..4);
        let ap = average_precision(&dets, &gts, class_id, 0.5);
        assert!((0.0..=1.0).contains(&ap));
        let r_all = recall(&dets, &gts, class_id, 0.5, 100);
        let r_one = recall(&dets, &gts, class_id, 0.5, 1);
        assert!((0.0..=1.0).contains(&r_all));
        assert!(r_one <= r_all + 1e-9);
        let r_strict = recall(&dets, &gts, class_id, 0.9, 100);
        assert!(r_strict <= r_all + 1e-9);
    });
}

/// Perfect predictions always score AP = 1 for classes with ground
/// truth.
#[test]
fn perfect_predictions_are_perfect() {
    check_with(CASES, "perfect_predictions_are_perfect", |rng| {
        let n: usize = rng.gen_range(1usize..4);
        let gts: Vec<Vec<GroundTruthBox>> = (0..n).map(|_| gen::vec_of(rng, 1..5, arb_gt)).collect();
        let dets: Vec<Vec<Detection>> = gts
            .iter()
            .map(|g| {
                g.iter()
                    .map(|b| Detection {
                        bbox: BBox::new(
                            b.bbox[0],
                            b.bbox[1],
                            b.bbox[0] + b.bbox[2],
                            b.bbox[1] + b.bbox[3],
                        ),
                        score: 0.9,
                        class_id: b.category_id,
                    })
                    .collect()
            })
            .collect();
        for class_id in 0..4 {
            let has_gt = gts.iter().any(|g| g.iter().any(|b| b.category_id == class_id));
            let ap = average_precision(&dets, &gts, class_id, 0.5);
            if has_gt {
                assert!((ap - 1.0).abs() < 1e-9, "class {class_id}: ap {ap}");
            } else {
                assert_eq!(ap, 0.0);
            }
        }
    });
}
