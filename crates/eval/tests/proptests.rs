//! Property-based tests for KPI invariants, running on the in-tree
//! `alfi-check` harness.

use alfi_check::{check_with, gen};
use alfi_datasets::GroundTruthBox;
use alfi_eval::{average_precision, classify, image_delta, recall, Outcome, Rate, SdeCriterion};
use alfi_nn::detection::{BBox, Detection};
use alfi_rng::Rng;

const CASES: usize = 96;

fn arb_topk(rng: &mut Rng) -> Vec<(usize, f32)> {
    gen::vec_of(rng, 1..6, |rng| (rng.gen_range(0usize..20), rng.gen_range(0.0f32..=1.0)))
}

fn arb_detection(rng: &mut Rng) -> Detection {
    let x: f32 = rng.gen_range(0.0f32..80.0);
    let y: f32 = rng.gen_range(0.0f32..80.0);
    let w: f32 = rng.gen_range(1.0f32..30.0);
    let h: f32 = rng.gen_range(1.0f32..30.0);
    Detection {
        bbox: BBox::new(x, y, x + w, y + h),
        score: rng.gen_range(0.0f32..=1.0),
        class_id: rng.gen_range(0usize..4),
    }
}

fn arb_gt(rng: &mut Rng) -> GroundTruthBox {
    GroundTruthBox {
        bbox: [
            rng.gen_range(0.0f32..80.0),
            rng.gen_range(0.0f32..80.0),
            rng.gen_range(1.0f32..30.0),
            rng.gen_range(1.0f32..30.0),
        ],
        category_id: rng.gen_range(0usize..4),
    }
}

/// Wilson interval always brackets the point estimate and stays in
/// [0, 1]; the interval never widens with more samples at the same
/// ratio.
#[test]
fn wilson_interval_invariants() {
    check_with(CASES, "wilson_interval_invariants", |rng| {
        let hits: usize = rng.gen_range(0usize..500);
        let extra: usize = rng.gen_range(0usize..500);
        let total = hits + extra;
        let r = Rate::from_counts(hits, total);
        assert!(r.ci_low >= 0.0 && r.ci_high <= 1.0);
        if total > 0 {
            assert!(r.ci_low <= r.value + 1e-12);
            assert!(r.value <= r.ci_high + 1e-12);
            let r10 = Rate::from_counts(hits * 10, total * 10);
            assert!(
                r10.ci_high - r10.ci_low <= r.ci_high - r.ci_low + 1e-12,
                "interval must shrink with 10x samples"
            );
        }
    });
}

/// Outcome classification is exhaustive and consistent: identical
/// top-k with finite scores is never SDE/DUE; any NaN flag is DUE.
#[test]
fn outcome_classification_invariants() {
    check_with(CASES, "outcome_classification_invariants", |rng| {
        let orig = arb_topk(rng);
        let nan = gen::any_bool(rng);
        let same = classify(&orig, &orig, false, SdeCriterion::Top1Mismatch);
        assert_eq!(same, Outcome::Masked);
        let flagged = classify(&orig, &orig, nan, SdeCriterion::Top1Mismatch);
        assert_eq!(flagged, if nan { Outcome::Due } else { Outcome::Masked });
    });
}

/// image_delta bookkeeping: matched + FN = |orig|, matched + FP =
/// |corr|; comparing a set with itself is clean.
#[test]
fn image_delta_bookkeeping() {
    check_with(CASES, "image_delta_bookkeeping", |rng| {
        let orig = gen::vec_of(rng, 0..10, arb_detection);
        let corr = gen::vec_of(rng, 0..10, arb_detection);
        let thr: f32 = rng.gen_range(0.2f32..0.8);
        let d = image_delta(&orig, &corr, thr);
        assert_eq!(d.matched + d.false_negatives, orig.len());
        assert_eq!(d.matched + d.false_positives, corr.len());
        let self_d = image_delta(&orig, &orig, thr);
        assert!(!self_d.is_corrupted());
    });
}

/// AP and recall stay within [0, 1]; recall is monotone in max_dets
/// and antitone in the IoU threshold.
#[test]
fn ap_recall_bounds_and_monotonicity() {
    check_with(CASES, "ap_recall_bounds_and_monotonicity", |rng| {
        let n: usize = rng.gen_range(1usize..4);
        let dets: Vec<Vec<Detection>> =
            (0..n).map(|_| gen::vec_of(rng, 0..6, arb_detection)).collect();
        let gts: Vec<Vec<GroundTruthBox>> = (0..n).map(|_| gen::vec_of(rng, 0..6, arb_gt)).collect();
        let class_id: usize = rng.gen_range(0usize..4);
        let ap = average_precision(&dets, &gts, class_id, 0.5);
        assert!((0.0..=1.0).contains(&ap));
        let r_all = recall(&dets, &gts, class_id, 0.5, 100);
        let r_one = recall(&dets, &gts, class_id, 0.5, 1);
        assert!((0.0..=1.0).contains(&r_all));
        assert!(r_one <= r_all + 1e-9);
        let r_strict = recall(&dets, &gts, class_id, 0.9, 100);
        assert!(r_strict <= r_all + 1e-9);
    });
}

/// Perfect predictions always score AP = 1 for classes with ground
/// truth.
#[test]
fn perfect_predictions_are_perfect() {
    check_with(CASES, "perfect_predictions_are_perfect", |rng| {
        let n: usize = rng.gen_range(1usize..4);
        let gts: Vec<Vec<GroundTruthBox>> = (0..n).map(|_| gen::vec_of(rng, 1..5, arb_gt)).collect();
        let dets: Vec<Vec<Detection>> = gts
            .iter()
            .map(|g| {
                g.iter()
                    .map(|b| Detection {
                        bbox: BBox::new(
                            b.bbox[0],
                            b.bbox[1],
                            b.bbox[0] + b.bbox[2],
                            b.bbox[1] + b.bbox[3],
                        ),
                        score: 0.9,
                        class_id: b.category_id,
                    })
                    .collect()
            })
            .collect();
        for class_id in 0..4 {
            let has_gt = gts.iter().any(|g| g.iter().any(|b| b.category_id == class_id));
            let ap = average_precision(&dets, &gts, class_id, 0.5);
            if has_gt {
                assert!((ap - 1.0).abs() < 1e-9, "class {class_id}: ap {ap}");
            } else {
                assert_eq!(ap, 0.0);
            }
        }
    });
}
