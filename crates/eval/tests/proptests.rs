//! Property-based tests for KPI invariants.

use alfi_datasets::GroundTruthBox;
use alfi_eval::{average_precision, classify, image_delta, recall, Outcome, Rate, SdeCriterion};
use alfi_nn::detection::{BBox, Detection};
use proptest::prelude::*;

fn arb_topk() -> impl Strategy<Value = Vec<(usize, f32)>> {
    proptest::collection::vec((0usize..20, 0.0f32..=1.0), 1..6)
}

fn arb_detection() -> impl Strategy<Value = Detection> {
    (0.0f32..80.0, 0.0f32..80.0, 1.0f32..30.0, 1.0f32..30.0, 0.0f32..=1.0, 0usize..4).prop_map(
        |(x, y, w, h, score, class_id)| Detection {
            bbox: BBox::new(x, y, x + w, y + h),
            score,
            class_id,
        },
    )
}

fn arb_gt() -> impl Strategy<Value = GroundTruthBox> {
    (0.0f32..80.0, 0.0f32..80.0, 1.0f32..30.0, 1.0f32..30.0, 0usize..4)
        .prop_map(|(x, y, w, h, category_id)| GroundTruthBox { bbox: [x, y, w, h], category_id })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Wilson interval always brackets the point estimate and stays in
    /// [0, 1]; the interval never widens with more samples at the same
    /// ratio.
    #[test]
    fn wilson_interval_invariants(hits in 0usize..500, extra in 0usize..500) {
        let total = hits + extra;
        let r = Rate::from_counts(hits, total);
        prop_assert!(r.ci_low >= 0.0 && r.ci_high <= 1.0);
        if total > 0 {
            prop_assert!(r.ci_low <= r.value + 1e-12);
            prop_assert!(r.value <= r.ci_high + 1e-12);
            let r10 = Rate::from_counts(hits * 10, total * 10);
            prop_assert!(
                r10.ci_high - r10.ci_low <= r.ci_high - r.ci_low + 1e-12,
                "interval must shrink with 10x samples"
            );
        }
    }

    /// Outcome classification is exhaustive and consistent: identical
    /// top-k with finite scores is never SDE/DUE; any NaN flag is DUE.
    #[test]
    fn outcome_classification_invariants(orig in arb_topk(), nan in any::<bool>()) {
        let same = classify(&orig, &orig, false, SdeCriterion::Top1Mismatch);
        prop_assert_eq!(same, Outcome::Masked);
        let flagged = classify(&orig, &orig, nan, SdeCriterion::Top1Mismatch);
        prop_assert_eq!(flagged, if nan { Outcome::Due } else { Outcome::Masked });
    }

    /// image_delta bookkeeping: matched + FN = |orig|, matched + FP =
    /// |corr|; comparing a set with itself is clean.
    #[test]
    fn image_delta_bookkeeping(
        orig in proptest::collection::vec(arb_detection(), 0..10),
        corr in proptest::collection::vec(arb_detection(), 0..10),
        thr in 0.2f32..0.8,
    ) {
        let d = image_delta(&orig, &corr, thr);
        prop_assert_eq!(d.matched + d.false_negatives, orig.len());
        prop_assert_eq!(d.matched + d.false_positives, corr.len());
        let self_d = image_delta(&orig, &orig, thr);
        prop_assert!(!self_d.is_corrupted());
    }

    /// AP and recall stay within [0, 1]; recall is monotone in max_dets
    /// and antitone in the IoU threshold.
    #[test]
    fn ap_recall_bounds_and_monotonicity(
        dets in proptest::collection::vec(proptest::collection::vec(arb_detection(), 0..6), 1..4),
        gts in proptest::collection::vec(proptest::collection::vec(arb_gt(), 0..6), 1..4),
        class_id in 0usize..4,
    ) {
        prop_assume!(dets.len() == gts.len());
        let ap = average_precision(&dets, &gts, class_id, 0.5);
        prop_assert!((0.0..=1.0).contains(&ap));
        let r_all = recall(&dets, &gts, class_id, 0.5, 100);
        let r_one = recall(&dets, &gts, class_id, 0.5, 1);
        prop_assert!((0.0..=1.0).contains(&r_all));
        prop_assert!(r_one <= r_all + 1e-9);
        let r_strict = recall(&dets, &gts, class_id, 0.9, 100);
        prop_assert!(r_strict <= r_all + 1e-9);
    }

    /// Perfect predictions always score AP = 1 for classes with ground
    /// truth.
    #[test]
    fn perfect_predictions_are_perfect(gts in proptest::collection::vec(proptest::collection::vec(arb_gt(), 1..5), 1..4)) {
        let dets: Vec<Vec<Detection>> = gts
            .iter()
            .map(|g| {
                g.iter()
                    .map(|b| Detection {
                        bbox: BBox::new(
                            b.bbox[0],
                            b.bbox[1],
                            b.bbox[0] + b.bbox[2],
                            b.bbox[1] + b.bbox[3],
                        ),
                        score: 0.9,
                        class_id: b.category_id,
                    })
                    .collect()
            })
            .collect();
        for class_id in 0..4 {
            let has_gt = gts.iter().any(|g| g.iter().any(|b| b.category_id == class_id));
            let ap = average_precision(&dets, &gts, class_id, 0.5);
            if has_gt {
                prop_assert!((ap - 1.0).abs() < 1e-9, "class {class_id}: ap {ap}");
            } else {
                prop_assert_eq!(ap, 0.0);
            }
        }
    }
}
