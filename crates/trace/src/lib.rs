#![warn(missing_docs)]
//! # alfi-trace
//!
//! Campaign observability for the ALFI workspace. PyTorchALFI's value
//! proposition is *validation efficiency at scale* (PAPER.md §IV):
//! large fault-injection campaigns must be monitorable while they run
//! and exactly attributable afterwards. This crate provides the
//! cross-cutting instrumentation layer the campaign drivers, thread
//! pool, network graphs and benches share:
//!
//! * [`Recorder`] — a lock-cheap, clonable handle collecting span
//!   timings (monotonic clocks), per-layer / per-bit-position injection
//!   counters, fault-effect tallies keyed by SDC/DUE/masked outcome and
//!   NaN/Inf monitor rollups. A disabled recorder
//!   ([`Recorder::disabled`]) is a no-op constant: every method returns
//!   immediately without reading a clock or touching a lock, so
//!   uninstrumented runs pay nothing.
//! * a **live progress line** for long campaigns (rate-limited to
//!   [`PROGRESS_INTERVAL_MS`], opt-in via [`Recorder::with_progress`]);
//! * a structured **JSONL event log** ([`Recorder::events_jsonl`])
//!   whose header records the scenario hash, seed and thread count so
//!   any run is attributable and replayable. Events carry **no wall
//!   clock timestamps** and are emitted in deterministic (row) order by
//!   the campaign drivers, so the log is byte-identical across thread
//!   counts (modulo the recorded thread-count header field);
//! * an end-of-run [`TraceSummary`] with per-phase timing histograms
//!   (p50/p95/max for forward, inject, eval and persist).
//!
//! # Example
//!
//! ```
//! use alfi_trace::{EffectClass, InjectionEvent, Phase, Recorder, RunMeta};
//!
//! let rec = Recorder::new();
//! rec.set_meta(RunMeta {
//!     campaign: "classification".into(),
//!     model: "alexnet".into(),
//!     scenario_hash: alfi_trace::hash_hex(b"scenario-yaml"),
//!     seed: 7,
//!     threads: 1,
//! });
//! {
//!     let _span = rec.span(Phase::Forward);
//!     // ... forward pass ...
//! }
//! rec.record_injection(InjectionEvent {
//!     image_id: 0,
//!     layer: 3,
//!     bit: Some(30),
//!     original: 1.0,
//!     corrupted: -2.0e30,
//! });
//! rec.record_outcome(EffectClass::Sdc);
//! let summary = rec.summary();
//! assert_eq!(summary.injections, 1);
//! assert_eq!(summary.outcomes.sdc, 1);
//! let log = rec.events_jsonl();
//! assert!(log.starts_with("{\"event\":\"header\""));
//! ```

mod reader;

pub use reader::{EventHeader, EventLog, EventLogError, EventStopRecord, EventSummaryRecord};

use alfi_serde::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Version stamp written into the JSONL header record.
pub const EVENT_FORMAT_VERSION: u32 = 1;

/// Minimum milliseconds between two live progress lines.
pub const PROGRESS_INTERVAL_MS: u64 = 200;

/// Default file name campaigns write the event log under.
pub const EVENTS_FILE: &str = "events.jsonl";

/// The campaign phase a [`Span`] attributes its elapsed time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Model forward passes (fault-free, corrupted and hardened).
    Forward,
    /// Fault-matrix resolution and arming/disarming of faults.
    Inject,
    /// Output post-processing: softmax/top-k, row assembly, KPIs.
    Eval,
    /// Artifact persistence (CSV/JSON/binary/event-log writes).
    Persist,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 4] = [Phase::Forward, Phase::Inject, Phase::Eval, Phase::Persist];

    /// Stable lowercase name used in reports and summaries.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Forward => "forward",
            Phase::Inject => "inject",
            Phase::Eval => "eval",
            Phase::Persist => "persist",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Forward => 0,
            Phase::Inject => 1,
            Phase::Eval => 2,
            Phase::Persist => 3,
        }
    }
}

/// Coarse fault-effect classification of one inference — the trace-level
/// counterpart of the paper's SDC (silent data corruption, called SDE
/// in the classification KPIs), DUE (detected uncorrectable error, i.e.
/// NaN/Inf surfaced) and masked outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectClass {
    /// The fault was absorbed; the reference prediction is unchanged.
    Masked,
    /// The prediction silently changed (no error signature).
    Sdc,
    /// NaN/Inf surfaced during the corrupted inference.
    Due,
}

impl EffectClass {
    /// Stable lowercase name used in the event log and summaries.
    pub fn name(self) -> &'static str {
        match self {
            EffectClass::Masked => "masked",
            EffectClass::Sdc => "sdc",
            EffectClass::Due => "due",
        }
    }
}

/// The replay header written as the first JSONL record: everything
/// needed to attribute a log to the campaign that produced it and to
/// re-run that campaign exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Campaign kind (`classification` / `detection`).
    pub campaign: String,
    /// Model or detector name.
    pub model: String,
    /// Hash of the serialized scenario (see [`hash_hex`]).
    pub scenario_hash: String,
    /// The scenario's fault-generation seed.
    pub seed: u64,
    /// Thread count the run was configured with. This is the only
    /// header field allowed to differ between otherwise-identical runs.
    pub threads: usize,
}

/// One applied fault, in deterministic row order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionEvent {
    /// Dataset image id the fault was attributed to.
    pub image_id: u64,
    /// Index into the model's injectable-layer list.
    pub layer: usize,
    /// Flipped/stuck bit position; `None` for value-replacement faults.
    pub bit: Option<u8>,
    /// Value before corruption.
    pub original: f32,
    /// Value after corruption.
    pub corrupted: f32,
}

/// The verdict of one statistical stop decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopVerdict {
    /// The whole campaign reached its target precision and ends here.
    StopCampaign,
    /// One layer stratum reached its target precision and is retired;
    /// the rest of the campaign continues.
    RetireStratum,
}

impl StopVerdict {
    /// Stable lowercase name used in the event log and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            StopVerdict::StopCampaign => "stop",
            StopVerdict::RetireStratum => "retire",
        }
    }
}

/// One statistical stop decision, recorded by the engine in
/// deterministic boundary order. Carries no wall-clock data: the
/// decision is a pure function of the sample counts at an armed-scope
/// boundary, so stopped runs stay byte-identical across thread counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopEvent {
    /// What was decided.
    pub verdict: StopVerdict,
    /// Injectable-layer index of the retired stratum; `None` for
    /// whole-campaign decisions.
    pub stratum: Option<usize>,
    /// Number of fault scopes armed (executed + skipped) when the
    /// decision fired — always a multiple of the policy's `check_every`.
    pub scope_index: u64,
    /// Classified inferences backing the decision.
    pub samples: u64,
    /// SDC outcomes among those samples.
    pub sdc: u64,
    /// DUE outcomes among those samples.
    pub due: u64,
    /// SDC-rate confidence interval at the decision.
    pub sdc_ci: (f64, f64),
    /// DUE-rate confidence interval at the decision.
    pub due_ci: (f64, f64),
    /// The wider of the two half-widths — what was compared against the
    /// policy target.
    pub half_width: f64,
}

/// Achieved-vs-requested precision of an early-stop campaign, surfaced
/// in [`TraceSummary::stop`] and the final report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopOutcome {
    /// The policy's target CI half-width.
    pub requested_half_width: f64,
    /// The policy's confidence level.
    pub confidence: f64,
    /// Campaign-level SDC-rate half-width actually achieved.
    pub achieved_sdc_half_width: f64,
    /// Campaign-level DUE-rate half-width actually achieved.
    pub achieved_due_half_width: f64,
    /// Fault scopes executed.
    pub executed_scopes: u64,
    /// Fault scopes skipped because their stratum was already retired.
    pub skipped_scopes: u64,
    /// Total fault-scope budget of the full matrix.
    pub planned_scopes: u64,
    /// Stop decisions recorded (retirements plus campaign stop).
    pub decisions: u64,
    /// Whether the run ended before exhausting the matrix.
    pub stopped_early: bool,
}

/// Per-phase aggregate timing statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Number of recorded spans.
    pub count: u64,
    /// Sum of all span durations in nanoseconds.
    pub total_ns: u64,
    /// Median span duration.
    pub p50_ns: u64,
    /// 95th-percentile span duration.
    pub p95_ns: u64,
    /// Longest span duration.
    pub max_ns: u64,
}

/// Accumulated forward time of one named layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerTime {
    /// Number of recorded evaluations.
    pub count: u64,
    /// Sum of all evaluation times in nanoseconds.
    pub total_ns: u64,
}

/// Fault-effect tallies over all classified inferences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeTallies {
    /// Inferences whose prediction was unchanged.
    pub masked: u64,
    /// Inferences whose prediction silently changed.
    pub sdc: u64,
    /// Inferences that surfaced NaN/Inf.
    pub due: u64,
}

impl OutcomeTallies {
    /// Total classified inferences.
    pub fn total(&self) -> u64 {
        self.masked + self.sdc + self.due
    }
}

/// End-of-run aggregate view of everything a [`Recorder`] collected.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// The replay header, when one was set.
    pub meta: Option<RunMeta>,
    /// Per-phase timing histograms, keyed by [`Phase::name`]. Phases
    /// with no recorded spans are omitted.
    pub phases: BTreeMap<&'static str, PhaseStats>,
    /// Busy nanoseconds per deterministic worker index (0 = the
    /// submitting thread).
    pub worker_busy_ns: BTreeMap<usize, u64>,
    /// Accumulated forward time per layer name.
    pub layer_forward: BTreeMap<String, LayerTime>,
    /// Total applied faults.
    pub injections: u64,
    /// Applied faults per injectable-layer index.
    pub injections_per_layer: BTreeMap<usize, u64>,
    /// Applied faults per bit position (value-replacement faults are
    /// not bit-addressed and are excluded).
    pub injections_per_bit: BTreeMap<u8, u64>,
    /// Fault-effect tallies.
    pub outcomes: OutcomeTallies,
    /// Total NaN elements observed by the monitors.
    pub nan: u64,
    /// Total Inf elements observed by the monitors.
    pub inf: u64,
    /// Work items (images) finished.
    pub items: u64,
    /// Wall-clock nanoseconds since the recorder was created.
    pub wall_ns: u64,
    /// Health watchdog events raised during the run (rendered
    /// messages, in raise order). Empty when no watchdog ran or the
    /// campaign stayed healthy.
    pub health: Vec<String>,
    /// Achieved-vs-requested precision when the run had a stop policy;
    /// `None` for exhaustive campaigns.
    pub stop: Option<StopOutcome>,
}

impl TraceSummary {
    /// Renders a compact human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(m) = &self.meta {
            out.push_str(&format!(
                "run {} ({}) scenario {} seed {} threads {}\n",
                m.campaign, m.model, m.scenario_hash, m.seed, m.threads
            ));
        }
        out.push_str(&format!(
            "items {} | injections {} | masked {} sdc {} due {} | nan {} inf {}\n",
            self.items,
            self.injections,
            self.outcomes.masked,
            self.outcomes.sdc,
            self.outcomes.due,
            self.nan,
            self.inf
        ));
        for phase in Phase::ALL {
            if let Some(s) = self.phases.get(phase.name()) {
                out.push_str(&format!(
                    "phase {:<8} n {:<6} p50 {:>10} p95 {:>10} max {:>10} total {:>10}\n",
                    phase.name(),
                    s.count,
                    fmt_ns(s.p50_ns),
                    fmt_ns(s.p95_ns),
                    fmt_ns(s.max_ns),
                    fmt_ns(s.total_ns)
                ));
            }
        }
        for msg in &self.health {
            out.push_str(&format!("health {msg}\n"));
        }
        if let Some(s) = &self.stop {
            out.push_str(&format!(
                "stop requested ±{:.4} @{:.0}% | achieved sdc ±{:.4} due ±{:.4} | scopes \
                 executed {} skipped {} of {} | decisions {} ({})\n",
                s.requested_half_width,
                s.confidence * 100.0,
                s.achieved_sdc_half_width,
                s.achieved_due_half_width,
                s.executed_scopes,
                s.skipped_scopes,
                s.planned_scopes,
                s.decisions,
                if s.stopped_early { "stopped early" } else { "ran to completion" }
            ));
        }
        out
    }

    /// Sum of recorded span time for one phase, in nanoseconds.
    pub fn phase_total_ns(&self, phase: Phase) -> u64 {
        self.phases.get(phase.name()).map_or(0, |s| s.total_ns)
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1.0e9 {
        format!("{:.3}s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.3}ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.3}µs", ns / 1.0e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Shared mutable recorder state. Hot counters are atomics; everything
/// that needs aggregation (span samples, maps, the event list) sits
/// behind short-lived uncontended mutexes that are locked once per
/// item/span — never per tensor element.
#[derive(Debug)]
struct Inner {
    started: Instant,
    progress: AtomicBool,
    meta: Mutex<Option<RunMeta>>,
    phase_ns: [Mutex<Vec<u64>>; 4],
    worker_busy_ns: Mutex<BTreeMap<usize, u64>>,
    layer_ns: Mutex<BTreeMap<String, LayerTime>>,
    layer_inj: Mutex<BTreeMap<usize, u64>>,
    bit_inj: Mutex<BTreeMap<u8, u64>>,
    masked: AtomicU64,
    sdc: AtomicU64,
    due: AtomicU64,
    nan: AtomicU64,
    inf: AtomicU64,
    events: Mutex<Vec<InjectionEvent>>,
    stops: Mutex<Vec<StopEvent>>,
    stop_outcome: Mutex<Option<StopOutcome>>,
    health: Mutex<Vec<String>>,
    applied_live: AtomicU64,
    items_done: AtomicU64,
    items_total: AtomicU64,
    last_progress_ms: AtomicU64,
}

impl Inner {
    fn new() -> Self {
        Inner {
            started: Instant::now(),
            progress: AtomicBool::new(false),
            meta: Mutex::new(None),
            phase_ns: [Mutex::new(Vec::new()), Mutex::new(Vec::new()), Mutex::new(Vec::new()), Mutex::new(Vec::new())],
            worker_busy_ns: Mutex::new(BTreeMap::new()),
            layer_ns: Mutex::new(BTreeMap::new()),
            layer_inj: Mutex::new(BTreeMap::new()),
            bit_inj: Mutex::new(BTreeMap::new()),
            masked: AtomicU64::new(0),
            sdc: AtomicU64::new(0),
            due: AtomicU64::new(0),
            nan: AtomicU64::new(0),
            inf: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
            stops: Mutex::new(Vec::new()),
            stop_outcome: Mutex::new(None),
            health: Mutex::new(Vec::new()),
            applied_live: AtomicU64::new(0),
            items_done: AtomicU64::new(0),
            items_total: AtomicU64::new(0),
            last_progress_ms: AtomicU64::new(0),
        }
    }
}

/// Locks a mutex, recovering the data if a panicking task poisoned it —
/// the recorder must stay usable while a campaign reports the panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The campaign observability handle.
///
/// Cloning is cheap (an [`Arc`] bump); all clones feed the same
/// underlying state, which is how the campaign drivers, pool workers
/// and layer timers share one recorder. A **disabled** recorder
/// (the default, or [`Recorder::disabled`]) holds no state at all:
/// every method is a branch-and-return, so instrumentation left in hot
/// paths costs nothing when tracing is off.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// Creates an enabled recorder.
    pub fn new() -> Recorder {
        Recorder { inner: Some(Arc::new(Inner::new())) }
    }

    /// The no-op recorder: collects nothing, never reads a clock.
    pub const fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether this recorder collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Enables (or disables) the live progress line. No-op when the
    /// recorder is disabled.
    pub fn with_progress(self, on: bool) -> Recorder {
        if let Some(inner) = &self.inner {
            inner.progress.store(on, Ordering::Relaxed);
        }
        self
    }

    /// Sets the replay header written as the first JSONL record.
    pub fn set_meta(&self, meta: RunMeta) {
        if let Some(inner) = &self.inner {
            *lock(&inner.meta) = Some(meta);
        }
    }

    /// Opens a timing span for `phase` attributed to worker 0 (the
    /// submitting thread). Dropping the guard records the elapsed time.
    pub fn span(&self, phase: Phase) -> Span<'_> {
        self.span_on(phase, 0)
    }

    /// Opens a timing span for `phase` attributed to the given
    /// deterministic worker index (`alfi_pool::worker_index()` in pool
    /// tasks). Disabled recorders return a guard that never reads the
    /// clock.
    pub fn span_on(&self, phase: Phase, worker: usize) -> Span<'_> {
        match &self.inner {
            Some(inner) => Span { inner: Some(inner), phase, worker, start: Some(Instant::now()) },
            None => Span { inner: None, phase, worker, start: None },
        }
    }

    /// Records a pre-measured phase duration (used where a guard's
    /// lifetime is awkward).
    pub fn record_phase_ns(&self, phase: Phase, worker: usize, ns: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.phase_ns[phase.index()]).push(ns);
            *lock(&inner.worker_busy_ns).entry(worker).or_insert(0) += ns;
        }
    }

    /// Accumulates forward time for one named layer.
    pub fn record_layer_ns(&self, layer: &str, ns: u64) {
        if let Some(inner) = &self.inner {
            let mut map = lock(&inner.layer_ns);
            match map.get_mut(layer) {
                Some(t) => {
                    t.count += 1;
                    t.total_ns += ns;
                }
                None => {
                    map.insert(layer.to_string(), LayerTime { count: 1, total_ns: ns });
                }
            }
        }
    }

    /// Bumps the live applied-fault counter feeding the progress line.
    /// Call during processing; the structured [`InjectionEvent`]s are
    /// recorded separately (post-run, in deterministic row order) via
    /// [`Recorder::record_injection`] and are what the event log and
    /// summary count.
    pub fn record_applied(&self, n: u64) {
        if let Some(inner) = &self.inner {
            inner.applied_live.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one applied fault: bumps the per-layer / per-bit
    /// counters and appends the structured event. Campaign drivers call
    /// this in deterministic row order so the event log is reproducible
    /// across thread counts.
    pub fn record_injection(&self, ev: InjectionEvent) {
        if let Some(inner) = &self.inner {
            *lock(&inner.layer_inj).entry(ev.layer).or_insert(0) += 1;
            if let Some(bit) = ev.bit {
                *lock(&inner.bit_inj).entry(bit).or_insert(0) += 1;
            }
            lock(&inner.events).push(ev);
        }
    }

    /// Tallies one classified inference outcome.
    pub fn record_outcome(&self, outcome: EffectClass) {
        if let Some(inner) = &self.inner {
            let counter = match outcome {
                EffectClass::Masked => &inner.masked,
                EffectClass::Sdc => &inner.sdc,
                EffectClass::Due => &inner.due,
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one statistical stop decision. Campaign drivers call
    /// this post-run in deterministic boundary order, so the event log
    /// stays byte-identical across thread counts.
    pub fn record_stop(&self, ev: StopEvent) {
        if let Some(inner) = &self.inner {
            lock(&inner.stops).push(ev);
        }
    }

    /// Recorded stop decisions, in boundary order.
    pub fn stop_events(&self) -> Vec<StopEvent> {
        match &self.inner {
            Some(inner) => lock(&inner.stops).clone(),
            None => Vec::new(),
        }
    }

    /// Sets the achieved-vs-requested precision summary of an
    /// early-stop run (surfaced in [`TraceSummary::stop`]).
    pub fn set_stop_outcome(&self, outcome: StopOutcome) {
        if let Some(inner) = &self.inner {
            *lock(&inner.stop_outcome) = Some(outcome);
        }
    }

    /// Appends one rendered health-watchdog event. Wall-clock-driven,
    /// so health messages surface in [`TraceSummary::health`] but stay
    /// out of the deterministic JSONL event log.
    pub fn record_health(&self, msg: impl Into<String>) {
        if let Some(inner) = &self.inner {
            lock(&inner.health).push(msg.into());
        }
    }

    /// Adds NaN/Inf element counts observed by a monitor.
    pub fn record_nonfinite(&self, nan: u64, inf: u64) {
        if let Some(inner) = &self.inner {
            if nan > 0 {
                inner.nan.fetch_add(nan, Ordering::Relaxed);
            }
            if inf > 0 {
                inner.inf.fetch_add(inf, Ordering::Relaxed);
            }
        }
    }

    /// Declares the expected number of work items (images) for progress
    /// reporting.
    pub fn begin_items(&self, total: u64) {
        if let Some(inner) = &self.inner {
            inner.items_total.store(total, Ordering::Relaxed);
            inner.items_done.store(0, Ordering::Relaxed);
        }
    }

    /// Marks one work item finished and, when the progress line is
    /// enabled, emits a rate-limited status line to stderr.
    pub fn item_finished(&self) {
        let Some(inner) = &self.inner else { return };
        let done = inner.items_done.fetch_add(1, Ordering::Relaxed) + 1;
        if !inner.progress.load(Ordering::Relaxed) {
            return;
        }
        let total = inner.items_total.load(Ordering::Relaxed);
        let elapsed_ms = inner.started.elapsed().as_millis() as u64;
        let last = inner.last_progress_ms.load(Ordering::Relaxed);
        let final_item = total > 0 && done >= total;
        if !final_item && elapsed_ms.saturating_sub(last) < PROGRESS_INTERVAL_MS {
            return;
        }
        if inner
            .last_progress_ms
            .compare_exchange(last, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
            && !final_item
        {
            return; // another thread just printed
        }
        let rate = if elapsed_ms > 0 { done as f64 * 1000.0 / elapsed_ms as f64 } else { 0.0 };
        // Campaigns report applied faults live via `record_applied`
        // (structured `InjectionEvent`s land post-run, in row order).
        let injections =
            inner.applied_live.load(Ordering::Relaxed).max(lock(&inner.events).len() as u64);
        eprintln!(
            "[alfi] {done}/{total} items | inj {injections} | masked {} sdc {} due {} | {rate:.1} items/s",
            inner.masked.load(Ordering::Relaxed),
            inner.sdc.load(Ordering::Relaxed),
            inner.due.load(Ordering::Relaxed),
        );
    }

    /// Builds the end-of-run summary. Disabled recorders return an
    /// empty default summary.
    pub fn summary(&self) -> TraceSummary {
        let Some(inner) = &self.inner else {
            return TraceSummary {
                meta: None,
                phases: BTreeMap::new(),
                worker_busy_ns: BTreeMap::new(),
                layer_forward: BTreeMap::new(),
                injections: 0,
                injections_per_layer: BTreeMap::new(),
                injections_per_bit: BTreeMap::new(),
                outcomes: OutcomeTallies::default(),
                nan: 0,
                inf: 0,
                items: 0,
                wall_ns: 0,
                health: Vec::new(),
                stop: None,
            };
        };
        let mut phases = BTreeMap::new();
        for phase in Phase::ALL {
            let samples = lock(&inner.phase_ns[phase.index()]).clone();
            if let Some(stats) = phase_stats(&samples) {
                phases.insert(phase.name(), stats);
            }
        }
        TraceSummary {
            meta: lock(&inner.meta).clone(),
            phases,
            worker_busy_ns: lock(&inner.worker_busy_ns).clone(),
            layer_forward: lock(&inner.layer_ns).clone(),
            injections: lock(&inner.events).len() as u64,
            injections_per_layer: lock(&inner.layer_inj).clone(),
            injections_per_bit: lock(&inner.bit_inj).clone(),
            outcomes: OutcomeTallies {
                masked: inner.masked.load(Ordering::Relaxed),
                sdc: inner.sdc.load(Ordering::Relaxed),
                due: inner.due.load(Ordering::Relaxed),
            },
            nan: inner.nan.load(Ordering::Relaxed),
            inf: inner.inf.load(Ordering::Relaxed),
            items: inner.items_done.load(Ordering::Relaxed),
            wall_ns: inner.started.elapsed().as_nanos() as u64,
            health: lock(&inner.health).clone(),
            stop: *lock(&inner.stop_outcome),
        }
    }

    /// Renders the structured event log: one JSON object per line —
    /// the replay header, every injection event in recorded order, and
    /// a closing summary record of the deterministic counters. Contains
    /// no timing data, so the log is byte-identical across thread
    /// counts except for the header's `threads` field.
    ///
    /// Disabled recorders return an empty string.
    pub fn events_jsonl(&self) -> String {
        let Some(inner) = &self.inner else { return String::new() };
        let mut out = String::new();

        let meta = lock(&inner.meta).clone();
        let mut header = vec![
            ("event".to_string(), Json::Str("header".into())),
            ("format".to_string(), Json::Int(EVENT_FORMAT_VERSION as i128)),
        ];
        if let Some(m) = meta {
            header.push(("campaign".to_string(), Json::Str(m.campaign)));
            header.push(("model".to_string(), Json::Str(m.model)));
            header.push(("scenario_hash".to_string(), Json::Str(m.scenario_hash)));
            header.push(("seed".to_string(), Json::Int(m.seed as i128)));
            header.push(("threads".to_string(), Json::Int(m.threads as i128)));
        }
        out.push_str(&Json::Obj(header).compact());
        out.push('\n');

        for ev in lock(&inner.events).iter() {
            let obj = Json::Obj(vec![
                ("event".to_string(), Json::Str("injection".into())),
                ("image_id".to_string(), Json::Int(ev.image_id as i128)),
                ("layer".to_string(), Json::Int(ev.layer as i128)),
                (
                    "bit".to_string(),
                    match ev.bit {
                        Some(b) => Json::Int(b as i128),
                        None => Json::Null,
                    },
                ),
                ("original".to_string(), Json::Float(ev.original as f64)),
                ("corrupted".to_string(), Json::Float(ev.corrupted as f64)),
            ]);
            out.push_str(&obj.compact());
            out.push('\n');
        }

        for ev in lock(&inner.stops).iter() {
            let obj = Json::Obj(vec![
                ("event".to_string(), Json::Str("stop".into())),
                ("verdict".to_string(), Json::Str(ev.verdict.name().into())),
                (
                    "stratum".to_string(),
                    match ev.stratum {
                        Some(layer) => Json::Int(layer as i128),
                        None => Json::Null,
                    },
                ),
                ("scope_index".to_string(), Json::Int(ev.scope_index as i128)),
                ("samples".to_string(), Json::Int(ev.samples as i128)),
                ("sdc".to_string(), Json::Int(ev.sdc as i128)),
                ("due".to_string(), Json::Int(ev.due as i128)),
                (
                    "sdc_ci".to_string(),
                    Json::Arr(vec![Json::Float(ev.sdc_ci.0), Json::Float(ev.sdc_ci.1)]),
                ),
                (
                    "due_ci".to_string(),
                    Json::Arr(vec![Json::Float(ev.due_ci.0), Json::Float(ev.due_ci.1)]),
                ),
                ("half_width".to_string(), Json::Float(ev.half_width)),
            ]);
            out.push_str(&obj.compact());
            out.push('\n');
        }

        let count_map = |m: &BTreeMap<usize, u64>| {
            Json::Obj(m.iter().map(|(k, v)| (k.to_string(), Json::Int(*v as i128))).collect())
        };
        let bit_map = |m: &BTreeMap<u8, u64>| {
            Json::Obj(m.iter().map(|(k, v)| (k.to_string(), Json::Int(*v as i128))).collect())
        };
        let summary = Json::Obj(vec![
            ("event".to_string(), Json::Str("summary".into())),
            ("items".to_string(), Json::Int(inner.items_done.load(Ordering::Relaxed) as i128)),
            ("injections".to_string(), Json::Int(lock(&inner.events).len() as i128)),
            ("per_layer".to_string(), count_map(&lock(&inner.layer_inj))),
            ("per_bit".to_string(), bit_map(&lock(&inner.bit_inj))),
            (
                "outcomes".to_string(),
                Json::Obj(vec![
                    ("masked".to_string(), Json::Int(inner.masked.load(Ordering::Relaxed) as i128)),
                    ("sdc".to_string(), Json::Int(inner.sdc.load(Ordering::Relaxed) as i128)),
                    ("due".to_string(), Json::Int(inner.due.load(Ordering::Relaxed) as i128)),
                ]),
            ),
            ("nan".to_string(), Json::Int(inner.nan.load(Ordering::Relaxed) as i128)),
            ("inf".to_string(), Json::Int(inner.inf.load(Ordering::Relaxed) as i128)),
        ]);
        out.push_str(&summary.compact());
        out.push('\n');
        out
    }

    /// Writes [`Recorder::events_jsonl`] to a file. No-op for disabled
    /// recorders.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_events(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        if !self.is_enabled() {
            return Ok(());
        }
        std::fs::write(path, self.events_jsonl())
    }
}

/// RAII span guard: records the elapsed time into its phase histogram
/// (and the worker busy tally) on drop. Disabled guards do nothing.
#[must_use]
#[derive(Debug)]
pub struct Span<'a> {
    inner: Option<&'a Inner>,
    phase: Phase,
    worker: usize,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let (Some(inner), Some(start)) = (self.inner, self.start) {
            let ns = start.elapsed().as_nanos() as u64;
            lock(&inner.phase_ns[self.phase.index()]).push(ns);
            *lock(&inner.worker_busy_ns).entry(self.worker).or_insert(0) += ns;
        }
    }
}

/// Nearest-rank percentile over an unsorted sample set.
fn phase_stats(samples: &[u64]) -> Option<PhaseStats> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let pick = |q: f64| {
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };
    Some(PhaseStats {
        count: sorted.len() as u64,
        total_ns: sorted.iter().sum(),
        p50_ns: pick(0.50),
        p95_ns: pick(0.95),
        max_ns: *sorted.last().expect("non-empty"),
    })
}

/// FNV-1a 64-bit hash rendered as 16 hex digits — the scenario
/// fingerprint written into the replay header. Stable across platforms
/// and releases (the constant offset/prime pair is part of the event
/// format).
pub fn hash_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RunMeta {
        RunMeta {
            campaign: "classification".into(),
            model: "alexnet".into(),
            scenario_hash: hash_hex(b"demo"),
            seed: 42,
            threads: 4,
        }
    }

    fn injection(layer: usize, bit: Option<u8>) -> InjectionEvent {
        InjectionEvent { image_id: 9, layer, bit, original: 1.5, corrupted: -3.0 }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let _s = rec.span(Phase::Forward);
        }
        rec.record_injection(injection(0, Some(3)));
        rec.record_outcome(EffectClass::Due);
        rec.record_nonfinite(5, 5);
        rec.begin_items(10);
        rec.item_finished();
        let s = rec.summary();
        assert_eq!(s.injections, 0);
        assert_eq!(s.outcomes.total(), 0);
        assert!(s.phases.is_empty());
        assert_eq!(rec.events_jsonl(), "");
    }

    #[test]
    fn default_recorder_is_disabled() {
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn spans_feed_phase_histograms_and_worker_tallies() {
        let rec = Recorder::new();
        for _ in 0..3 {
            let _s = rec.span(Phase::Forward);
        }
        rec.record_phase_ns(Phase::Inject, 2, 1_000);
        let s = rec.summary();
        let f = s.phases["forward"];
        assert_eq!(f.count, 3);
        assert!(f.p50_ns <= f.p95_ns && f.p95_ns <= f.max_ns);
        assert_eq!(s.phases["inject"].total_ns, 1_000);
        assert_eq!(s.worker_busy_ns[&2], 1_000);
        assert!(s.worker_busy_ns.contains_key(&0));
        assert!(!s.phases.contains_key("persist"));
    }

    #[test]
    fn counters_and_events_accumulate() {
        let rec = Recorder::new();
        rec.record_injection(injection(3, Some(30)));
        rec.record_injection(injection(3, Some(24)));
        rec.record_injection(injection(1, None));
        rec.record_outcome(EffectClass::Masked);
        rec.record_outcome(EffectClass::Sdc);
        rec.record_outcome(EffectClass::Due);
        rec.record_nonfinite(7, 2);
        rec.record_layer_ns("conv1", 100);
        rec.record_layer_ns("conv1", 50);
        let s = rec.summary();
        assert_eq!(s.injections, 3);
        assert_eq!(s.injections_per_layer[&3], 2);
        assert_eq!(s.injections_per_layer[&1], 1);
        assert_eq!(s.injections_per_bit.len(), 2);
        assert_eq!(s.outcomes, OutcomeTallies { masked: 1, sdc: 1, due: 1 });
        assert_eq!((s.nan, s.inf), (7, 2));
        assert_eq!(s.layer_forward["conv1"], LayerTime { count: 2, total_ns: 150 });
    }

    #[test]
    fn jsonl_has_header_events_and_summary() {
        let rec = Recorder::new();
        rec.set_meta(meta());
        rec.begin_items(1);
        rec.record_injection(injection(3, Some(30)));
        rec.record_outcome(EffectClass::Sdc);
        rec.item_finished();
        let log = rec.events_jsonl();
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"event\":\"header\""));
        assert!(lines[0].contains("\"scenario_hash\""));
        assert!(lines[0].contains("\"threads\":4"));
        assert!(lines[1].contains("\"event\":\"injection\""));
        assert!(lines[1].contains("\"bit\":30"));
        assert!(lines[2].contains("\"event\":\"summary\""));
        assert!(lines[2].contains("\"sdc\":1"));
        // every line parses as standalone JSON
        for line in lines {
            Json::parse(line).unwrap();
        }
    }

    #[test]
    fn jsonl_is_reproducible_and_timestamp_free() {
        let build = || {
            let rec = Recorder::new();
            rec.set_meta(meta());
            for i in 0..4u8 {
                let _s = rec.span(Phase::Forward); // timing must not leak into events
                rec.record_injection(injection(i as usize, Some(i)));
            }
            rec.record_outcome(EffectClass::Masked);
            rec.events_jsonl()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn replace_faults_have_null_bit_and_no_bit_counter() {
        let rec = Recorder::new();
        rec.record_injection(injection(0, None));
        assert!(rec.events_jsonl().contains("\"bit\":null"));
        assert!(rec.summary().injections_per_bit.is_empty());
        assert_eq!(rec.summary().injections, 1);
    }

    #[test]
    fn summary_render_mentions_phases_and_tallies() {
        let rec = Recorder::new();
        rec.set_meta(meta());
        rec.record_phase_ns(Phase::Forward, 0, 2_000_000);
        rec.record_outcome(EffectClass::Due);
        let text = rec.summary().render();
        assert!(text.contains("phase forward"));
        assert!(text.contains("due 1"));
        assert!(text.contains("threads 4"));
    }

    #[test]
    fn stop_events_and_outcome_surface_in_log_and_summary() {
        let rec = Recorder::new();
        rec.set_meta(meta());
        rec.record_stop(StopEvent {
            verdict: StopVerdict::StopCampaign,
            stratum: None,
            scope_index: 48,
            samples: 48,
            sdc: 12,
            due: 4,
            sdc_ci: (0.14, 0.39),
            due_ci: (0.02, 0.2),
            half_width: 0.125,
        });
        rec.set_stop_outcome(StopOutcome {
            requested_half_width: 0.15,
            confidence: 0.95,
            achieved_sdc_half_width: 0.125,
            achieved_due_half_width: 0.09,
            executed_scopes: 48,
            skipped_scopes: 0,
            planned_scopes: 400,
            decisions: 1,
            stopped_early: true,
        });
        let log = rec.events_jsonl();
        let stop_line = log.lines().find(|l| l.contains("\"event\":\"stop\"")).unwrap();
        assert!(stop_line.contains("\"verdict\":\"stop\""), "{stop_line}");
        assert!(stop_line.contains("\"stratum\":null"), "{stop_line}");
        assert!(stop_line.contains("\"sdc_ci\":[0.14,0.39]"), "{stop_line}");
        // Stop records sit between injections and the closing summary.
        let lines: Vec<&str> = log.lines().collect();
        assert!(lines[lines.len() - 1].contains("\"event\":\"summary\""));
        assert!(lines[lines.len() - 2].contains("\"event\":\"stop\""));

        let summary = rec.summary();
        let outcome = summary.stop.expect("stop outcome set");
        assert_eq!(outcome.executed_scopes, 48);
        assert_eq!(rec.stop_events().len(), 1);
        let text = summary.render();
        assert!(text.contains("stopped early"), "{text}");
        assert!(text.contains("executed 48"), "{text}");
    }

    #[test]
    fn disabled_recorder_ignores_stop_records() {
        let rec = Recorder::disabled();
        rec.record_stop(StopEvent {
            verdict: StopVerdict::RetireStratum,
            stratum: Some(1),
            scope_index: 8,
            samples: 8,
            sdc: 0,
            due: 0,
            sdc_ci: (0.0, 0.4),
            due_ci: (0.0, 0.4),
            half_width: 0.2,
        });
        assert!(rec.stop_events().is_empty());
        assert_eq!(rec.summary().stop, None);
    }

    #[test]
    fn hash_is_stable_and_input_sensitive() {
        assert_eq!(hash_hex(b""), "cbf29ce484222325");
        assert_eq!(hash_hex(b"a"), hash_hex(b"a"));
        assert_ne!(hash_hex(b"a"), hash_hex(b"b"));
        assert_eq!(hash_hex(b"scenario").len(), 16);
    }

    #[test]
    fn progress_counts_items_without_printing_when_disabled() {
        let rec = Recorder::new(); // progress line off by default
        rec.begin_items(3);
        for _ in 0..3 {
            rec.item_finished();
        }
        assert_eq!(rec.summary().items, 3);
    }

    #[test]
    fn clones_share_state() {
        let rec = Recorder::new();
        let clone = rec.clone();
        clone.record_outcome(EffectClass::Sdc);
        assert_eq!(rec.summary().outcomes.sdc, 1);
    }

    #[test]
    fn phase_stats_percentiles_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = phase_stats(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 51); // ((100-1)*0.5).round() = 50 -> sorted[50]
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.max_ns, 100);
        assert!(phase_stats(&[]).is_none());
    }
}
