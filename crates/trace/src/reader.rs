//! Reader for the JSONL event log — the consuming half of
//! [`Recorder::events_jsonl`](crate::Recorder::events_jsonl). Turns a
//! written log back into typed records (replay header, injection
//! events, closing summary) so the artifact is an API, not a
//! write-only file.

use crate::{InjectionEvent, OutcomeTallies, RunMeta, StopEvent, StopVerdict, EVENT_FORMAT_VERSION};
use alfi_serde::Json;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug)]
pub enum EventLogError {
    /// The log (or a line of it) was not valid JSON.
    Json {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        detail: String,
    },
    /// A record was structurally wrong (missing/mistyped field,
    /// unknown event kind, misplaced record).
    Record {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// The log was written by an incompatible format version.
    Version {
        /// Version found in the header.
        found: u32,
    },
    /// The file could not be read.
    Io(std::io::Error),
}

impl fmt::Display for EventLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventLogError::Json { line, detail } => {
                write!(f, "line {line}: invalid JSON: {detail}")
            }
            EventLogError::Record { line, detail } => write!(f, "line {line}: {detail}"),
            EventLogError::Version { found } => write!(
                f,
                "unsupported event format version {found} (reader supports {EVENT_FORMAT_VERSION})"
            ),
            EventLogError::Io(e) => write!(f, "reading event log: {e}"),
        }
    }
}

impl std::error::Error for EventLogError {}

impl From<std::io::Error> for EventLogError {
    fn from(e: std::io::Error) -> Self {
        EventLogError::Io(e)
    }
}

/// The parsed replay header (first record of every log).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventHeader {
    /// Event format version the log was written with.
    pub format: u32,
    /// Replay identity, when the writing recorder had one set.
    pub meta: Option<RunMeta>,
}

/// The parsed closing summary record: the deterministic counters the
/// writer emitted at end of run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventSummaryRecord {
    /// Work items finished.
    pub items: u64,
    /// Total applied faults.
    pub injections: u64,
    /// Applied faults per injectable-layer index.
    pub per_layer: BTreeMap<usize, u64>,
    /// Applied faults per bit position.
    pub per_bit: BTreeMap<u8, u64>,
    /// Fault-effect tallies.
    pub outcomes: OutcomeTallies,
    /// NaN elements observed.
    pub nan: u64,
    /// Inf elements observed.
    pub inf: u64,
}

/// A parsed statistical stop decision (the reader-side name of
/// [`StopEvent`] — stop records round-trip losslessly).
pub type EventStopRecord = StopEvent;

/// A fully parsed `events.jsonl` log.
#[derive(Debug, Clone, PartialEq)]
pub struct EventLog {
    /// The replay header.
    pub header: EventHeader,
    /// Injection events in recorded (deterministic row) order.
    pub injections: Vec<InjectionEvent>,
    /// Statistical stop decisions in boundary order (empty for
    /// exhaustive campaigns).
    pub stops: Vec<EventStopRecord>,
    /// The closing summary, when the log has one.
    pub summary: Option<EventSummaryRecord>,
}

fn field<'j>(obj: &'j Json, key: &str, line: usize) -> Result<&'j Json, EventLogError> {
    obj.get(key)
        .ok_or_else(|| EventLogError::Record { line, detail: format!("missing field `{key}`") })
}

fn uint(obj: &Json, key: &str, line: usize) -> Result<u64, EventLogError> {
    field(obj, key, line)?
        .as_int()
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| EventLogError::Record {
            line,
            detail: format!("field `{key}` is not an unsigned integer"),
        })
}

fn float(obj: &Json, key: &str, line: usize) -> Result<f64, EventLogError> {
    field(obj, key, line)?.as_f64().ok_or_else(|| EventLogError::Record {
        line,
        detail: format!("field `{key}` is not a number"),
    })
}

fn string(obj: &Json, key: &str, line: usize) -> Result<String, EventLogError> {
    field(obj, key, line)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| EventLogError::Record { line, detail: format!("field `{key}` is not a string") })
}

/// Parses an integer-keyed count map (the writer renders map keys as
/// decimal strings).
fn count_map<K: std::str::FromStr + Ord>(
    obj: &Json,
    key: &str,
    line: usize,
) -> Result<BTreeMap<K, u64>, EventLogError> {
    let entries = field(obj, key, line)?.as_obj().ok_or_else(|| EventLogError::Record {
        line,
        detail: format!("field `{key}` is not an object"),
    })?;
    let mut map = BTreeMap::new();
    for (k, v) in entries {
        let parsed_key = k.parse::<K>().map_err(|_| EventLogError::Record {
            line,
            detail: format!("field `{key}` has non-numeric key `{k}`"),
        })?;
        let count =
            v.as_int().and_then(|n| u64::try_from(n).ok()).ok_or_else(|| EventLogError::Record {
                line,
                detail: format!("field `{key}` has a non-count value under `{k}`"),
            })?;
        map.insert(parsed_key, count);
    }
    Ok(map)
}

fn parse_header(obj: &Json, line: usize) -> Result<EventHeader, EventLogError> {
    let format = uint(obj, "format", line)? as u32;
    if format != EVENT_FORMAT_VERSION {
        return Err(EventLogError::Version { found: format });
    }
    // Replay identity is present only when the writer had meta set; the
    // `campaign` key marks it.
    let meta = if obj.get("campaign").is_some() {
        Some(RunMeta {
            campaign: string(obj, "campaign", line)?,
            model: string(obj, "model", line)?,
            scenario_hash: string(obj, "scenario_hash", line)?,
            seed: uint(obj, "seed", line)?,
            threads: uint(obj, "threads", line)? as usize,
        })
    } else {
        None
    };
    Ok(EventHeader { format, meta })
}

fn parse_injection(obj: &Json, line: usize) -> Result<InjectionEvent, EventLogError> {
    let bit = match field(obj, "bit", line)? {
        Json::Null => None,
        v => Some(v.as_int().and_then(|b| u8::try_from(b).ok()).ok_or_else(|| {
            EventLogError::Record { line, detail: "field `bit` is not a bit position".into() }
        })?),
    };
    Ok(InjectionEvent {
        image_id: uint(obj, "image_id", line)?,
        layer: uint(obj, "layer", line)? as usize,
        bit,
        original: float(obj, "original", line)? as f32,
        corrupted: float(obj, "corrupted", line)? as f32,
    })
}

fn parse_ci(obj: &Json, key: &str, line: usize) -> Result<(f64, f64), EventLogError> {
    let arr = field(obj, key, line)?.as_arr().ok_or_else(|| EventLogError::Record {
        line,
        detail: format!("field `{key}` is not an array"),
    })?;
    match arr {
        [lo, hi] => match (lo.as_f64(), hi.as_f64()) {
            (Some(lo), Some(hi)) => Ok((lo, hi)),
            _ => Err(EventLogError::Record {
                line,
                detail: format!("field `{key}` bounds are not numbers"),
            }),
        },
        _ => Err(EventLogError::Record {
            line,
            detail: format!("field `{key}` must have exactly two bounds"),
        }),
    }
}

fn parse_stop(obj: &Json, line: usize) -> Result<StopEvent, EventLogError> {
    let verdict = match string(obj, "verdict", line)?.as_str() {
        "stop" => StopVerdict::StopCampaign,
        "retire" => StopVerdict::RetireStratum,
        other => {
            return Err(EventLogError::Record {
                line,
                detail: format!("unknown stop verdict `{other}`"),
            })
        }
    };
    let stratum = match field(obj, "stratum", line)? {
        Json::Null => None,
        v => Some(v.as_int().and_then(|s| usize::try_from(s).ok()).ok_or_else(|| {
            EventLogError::Record { line, detail: "field `stratum` is not a layer index".into() }
        })?),
    };
    Ok(StopEvent {
        verdict,
        stratum,
        scope_index: uint(obj, "scope_index", line)?,
        samples: uint(obj, "samples", line)?,
        sdc: uint(obj, "sdc", line)?,
        due: uint(obj, "due", line)?,
        sdc_ci: parse_ci(obj, "sdc_ci", line)?,
        due_ci: parse_ci(obj, "due_ci", line)?,
        half_width: float(obj, "half_width", line)?,
    })
}

fn parse_summary(obj: &Json, line: usize) -> Result<EventSummaryRecord, EventLogError> {
    let outcomes = field(obj, "outcomes", line)?;
    Ok(EventSummaryRecord {
        items: uint(obj, "items", line)?,
        injections: uint(obj, "injections", line)?,
        per_layer: count_map(obj, "per_layer", line)?,
        per_bit: count_map(obj, "per_bit", line)?,
        outcomes: OutcomeTallies {
            masked: uint(outcomes, "masked", line)?,
            sdc: uint(outcomes, "sdc", line)?,
            due: uint(outcomes, "due", line)?,
        },
        nan: uint(obj, "nan", line)?,
        inf: uint(obj, "inf", line)?,
    })
}

impl EventLog {
    /// Parses a full JSONL log as written by
    /// [`Recorder::events_jsonl`](crate::Recorder::events_jsonl): a
    /// header record first, then injection records in order, then an
    /// optional closing summary.
    ///
    /// # Errors
    ///
    /// Returns an [`EventLogError`] on malformed JSON, a missing or
    /// misplaced record, or an incompatible format version.
    pub fn parse(text: &str) -> Result<EventLog, EventLogError> {
        let mut header = None;
        let mut injections = Vec::new();
        let mut stops = Vec::new();
        let mut summary: Option<EventSummaryRecord> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let obj = Json::parse(raw)
                .map_err(|e| EventLogError::Json { line, detail: e.to_string() })?;
            let kind = string(&obj, "event", line)?;
            match kind.as_str() {
                "header" => {
                    if header.is_some() {
                        return Err(EventLogError::Record {
                            line,
                            detail: "duplicate header record".into(),
                        });
                    }
                    if !injections.is_empty() || summary.is_some() {
                        return Err(EventLogError::Record {
                            line,
                            detail: "header record is not first".into(),
                        });
                    }
                    header = Some(parse_header(&obj, line)?);
                }
                "injection" => {
                    if header.is_none() {
                        return Err(EventLogError::Record {
                            line,
                            detail: "injection record before the header".into(),
                        });
                    }
                    if summary.is_some() {
                        return Err(EventLogError::Record {
                            line,
                            detail: "injection record after the summary".into(),
                        });
                    }
                    injections.push(parse_injection(&obj, line)?);
                }
                "stop" => {
                    if header.is_none() {
                        return Err(EventLogError::Record {
                            line,
                            detail: "stop record before the header".into(),
                        });
                    }
                    if summary.is_some() {
                        return Err(EventLogError::Record {
                            line,
                            detail: "stop record after the summary".into(),
                        });
                    }
                    stops.push(parse_stop(&obj, line)?);
                }
                "summary" => {
                    if summary.is_some() {
                        return Err(EventLogError::Record {
                            line,
                            detail: "duplicate summary record".into(),
                        });
                    }
                    summary = Some(parse_summary(&obj, line)?);
                }
                other => {
                    return Err(EventLogError::Record {
                        line,
                        detail: format!("unknown event kind `{other}`"),
                    });
                }
            }
        }
        let header = header.ok_or(EventLogError::Record {
            line: 1,
            detail: "log has no header record".into(),
        })?;
        Ok(EventLog { header, injections, stops, summary })
    }

    /// Reads and parses an `events.jsonl` file.
    ///
    /// # Errors
    ///
    /// As [`parse`](Self::parse), plus I/O failures.
    pub fn load(path: impl AsRef<Path>) -> Result<EventLog, EventLogError> {
        Self::parse(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hash_hex, EffectClass, Recorder};

    fn meta() -> RunMeta {
        RunMeta {
            campaign: "classification".into(),
            model: "alexnet".into(),
            scenario_hash: hash_hex(b"demo"),
            seed: 42,
            threads: 4,
        }
    }

    #[test]
    fn write_read_round_trip() {
        let rec = Recorder::new();
        rec.set_meta(meta());
        rec.begin_items(3);
        let events = vec![
            InjectionEvent { image_id: 0, layer: 2, bit: Some(30), original: 1.5, corrupted: -3.0e12 },
            InjectionEvent { image_id: 1, layer: 2, bit: Some(7), original: -0.25, corrupted: 0.125 },
            InjectionEvent { image_id: 2, layer: 5, bit: None, original: 0.0, corrupted: f32::MAX },
        ];
        for ev in &events {
            rec.record_injection(*ev);
        }
        rec.record_outcome(EffectClass::Masked);
        rec.record_outcome(EffectClass::Due);
        rec.record_nonfinite(4, 1);
        for _ in 0..3 {
            rec.item_finished();
        }

        let log = EventLog::parse(&rec.events_jsonl()).unwrap();
        assert_eq!(log.header.format, EVENT_FORMAT_VERSION);
        assert_eq!(log.header.meta, Some(meta()));
        assert_eq!(log.injections, events);
        let summary = log.summary.expect("log has a summary");
        assert_eq!(summary.items, 3);
        assert_eq!(summary.injections, 3);
        assert_eq!(summary.per_layer, BTreeMap::from([(2, 2), (5, 1)]));
        assert_eq!(summary.per_bit, BTreeMap::from([(7, 1), (30, 1)]));
        assert_eq!(summary.outcomes, OutcomeTallies { masked: 1, sdc: 0, due: 1 });
        assert_eq!((summary.nan, summary.inf), (4, 1));
    }

    #[test]
    fn file_round_trip_via_load() {
        let rec = Recorder::new();
        rec.set_meta(meta());
        rec.record_injection(InjectionEvent {
            image_id: 7,
            layer: 1,
            bit: Some(3),
            original: 2.0,
            corrupted: 8.0,
        });
        let dir = std::env::temp_dir().join("alfi_trace_reader_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(crate::EVENTS_FILE);
        rec.write_events(&path).unwrap();
        let log = EventLog::load(&path).unwrap();
        assert_eq!(log.injections.len(), 1);
        assert_eq!(log.injections[0].image_id, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_records_round_trip() {
        let rec = Recorder::new();
        rec.set_meta(meta());
        let stops = vec![
            StopEvent {
                verdict: StopVerdict::RetireStratum,
                stratum: Some(3),
                scope_index: 16,
                samples: 16,
                sdc: 5,
                due: 1,
                sdc_ci: (0.125, 0.55),
                due_ci: (0.0, 0.28),
                half_width: 0.2125,
            },
            StopEvent {
                verdict: StopVerdict::StopCampaign,
                stratum: None,
                scope_index: 32,
                samples: 32,
                sdc: 9,
                due: 3,
                sdc_ci: (0.15, 0.46),
                due_ci: (0.02, 0.24),
                half_width: 0.155,
            },
        ];
        for ev in &stops {
            rec.record_stop(*ev);
        }
        let log = EventLog::parse(&rec.events_jsonl()).unwrap();
        assert_eq!(log.stops, stops);

        let err = EventLog::parse(
            "{\"event\":\"header\",\"format\":1}\n{\"event\":\"stop\",\"verdict\":\"maybe\"}\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("verdict"), "{err}");
    }

    #[test]
    fn headerless_meta_parses_as_none() {
        let rec = Recorder::new();
        let log = EventLog::parse(&rec.events_jsonl()).unwrap();
        assert_eq!(log.header.meta, None);
        assert!(log.injections.is_empty());
        assert!(log.summary.is_some());
    }

    #[test]
    fn malformed_logs_are_rejected_with_line_numbers() {
        let err = EventLog::parse("{\"event\":\"injection\"}\n").unwrap_err();
        assert!(matches!(err, EventLogError::Record { line: 1, .. }), "{err}");

        let err = EventLog::parse("not json\n").unwrap_err();
        assert!(matches!(err, EventLogError::Json { line: 1, .. }), "{err}");

        let good = Recorder::new();
        good.set_meta(meta());
        let mut log = good.events_jsonl();
        log.push_str("{\"event\":\"mystery\"}\n");
        let err = EventLog::parse(&log).unwrap_err();
        assert!(matches!(err, EventLogError::Record { .. }), "{err}");
        assert!(err.to_string().contains("mystery"), "{err}");
    }

    #[test]
    fn future_format_versions_are_rejected() {
        let err = EventLog::parse("{\"event\":\"header\",\"format\":999}\n").unwrap_err();
        assert!(matches!(err, EventLogError::Version { found: 999 }), "{err}");
    }

    #[test]
    fn empty_log_has_no_header() {
        let err = EventLog::parse("").unwrap_err();
        assert!(err.to_string().contains("no header"), "{err}");
    }
}
