//! Property-based tests: scenario and YAML round-trip invariants.

use alfi_scenario::{
    FaultCount, FaultDuration, FaultMode, InjectionPolicy, InjectionTarget, LayerType, Scenario,
    Yaml,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let fault_mode = prop_oneof![
        (0u8..32, 0u8..32).prop_map(|(a, b)| FaultMode::BitFlip {
            bit_range: (a.min(b), a.max(b))
        }),
        (0u8..32, 0u8..32, any::<bool>()).prop_map(|(a, b, high)| FaultMode::StuckAt {
            bit_range: (a.min(b), a.max(b)),
            stuck_high: high,
        }),
        (-100.0f32..0.0, 0.0f32..100.0)
            .prop_map(|(min, max)| FaultMode::RandomValue { min, max }),
    ];
    let faults = prop_oneof![
        (0usize..1000).prop_map(FaultCount::Fixed),
        (0.0f64..=1.0).prop_map(FaultCount::Fraction),
    ];
    let layer_types = proptest::sample::subsequence(
        vec![LayerType::Conv2d, LayerType::Conv3d, LayerType::Linear],
        1..=3,
    );
    (
        (0usize..100_000, 0usize..10, faults, 1usize..64),
        (any::<bool>(), 0usize..3, any::<bool>(), fault_mode),
        layer_types,
        proptest::option::of((0usize..50, 0usize..50)),
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(
            |(
                (dataset_size, num_runs, faults_per_image, batch_size),
                (neurons, policy, transient, fault_mode),
                layer_types,
                range,
                weighted_layer_selection,
                seed,
            )| Scenario {
                dataset_size,
                num_runs,
                faults_per_image,
                batch_size,
                injection_target: if neurons {
                    InjectionTarget::Neurons
                } else {
                    InjectionTarget::Weights
                },
                injection_policy: match policy {
                    0 => InjectionPolicy::PerImage,
                    1 => InjectionPolicy::PerBatch,
                    _ => InjectionPolicy::PerEpoch,
                },
                fault_duration: if transient {
                    FaultDuration::Transient
                } else {
                    FaultDuration::Permanent
                },
                fault_mode,
                layer_types,
                layer_range: range.map(|(a, b)| (a.min(b), a.max(b))),
                weighted_layer_selection,
                seed,
            },
        )
}

/// Arbitrary YAML values over the subset our parser supports. Strings
/// avoid the characters the emitter would have to escape beyond quoting.
fn arb_yaml(depth: u32) -> BoxedStrategy<Yaml> {
    let scalar = prop_oneof![
        Just(Yaml::Null),
        any::<bool>().prop_map(Yaml::Bool),
        any::<i64>().prop_map(Yaml::Int),
        (-1.0e12f64..1.0e12).prop_map(Yaml::Float),
        "[a-zA-Z][a-zA-Z0-9 _./-]{0,14}[a-zA-Z0-9]".prop_map(Yaml::Str),
    ];
    if depth == 0 {
        return scalar.boxed();
    }
    prop_oneof![
        4 => scalar.clone(),
        1 => proptest::collection::vec(scalar.clone(), 0..4).prop_map(Yaml::List),
        1 => proptest::collection::btree_map(
            "[a-z][a-z0-9_]{0,10}",
            arb_yaml(depth - 1),
            0..4,
        )
        .prop_map(|m| Yaml::Map(m.into_iter().collect::<BTreeMap<_, _>>())),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every representable scenario round-trips through YAML exactly.
    #[test]
    fn scenario_yaml_round_trip(s in arb_scenario()) {
        let text = s.to_yaml_string();
        let back = Scenario::from_yaml_str(&text).unwrap();
        prop_assert_eq!(s, back);
    }

    /// YAML documents emitted by the serializer re-parse to the same
    /// value (maps/lists/scalars, arbitrary nesting).
    #[test]
    fn yaml_emit_parse_round_trip(y in arb_yaml(3)) {
        // Top-level scalars serialize as a single line; wrap in a map for
        // the canonical document form too.
        let mut doc = BTreeMap::new();
        doc.insert("root".to_string(), y);
        let doc = Yaml::Map(doc);
        let text = doc.to_yaml_string();
        let back = Yaml::parse(&text).unwrap();
        prop_assert_eq!(doc, back);
    }

    /// total_faults never overflows the product semantics for sane sizes.
    #[test]
    fn total_faults_is_product(ds in 0usize..1000, runs in 0usize..10, fpi in 0usize..100) {
        let mut s = Scenario::default();
        s.dataset_size = ds;
        s.num_runs = runs;
        s.faults_per_image = FaultCount::Fixed(fpi);
        prop_assert_eq!(s.total_faults(123), ds * runs * fpi);
    }

    /// The parser never panics on arbitrary input strings.
    #[test]
    fn parser_is_total(input in "\\PC{0,200}") {
        let _ = Yaml::parse(&input);
        let _ = Scenario::from_yaml_str(&input);
    }
}
