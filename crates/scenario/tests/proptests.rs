//! Property-based tests: scenario and YAML round-trip invariants,
//! running on the in-tree `alfi-check` harness.

use alfi_check::{check_with, gen};
use alfi_rng::Rng;
use alfi_scenario::{
    ArtifactFormat, CiMethod, FaultCount, FaultDuration, FaultMode, InjectionPolicy,
    InjectionTarget, LayerOverride, LayerType, Scenario, StopPolicy, StopScope, Yaml,
};
use std::collections::BTreeMap;

const CASES: usize = 128;

fn arb_fault_mode(rng: &mut Rng) -> FaultMode {
    match rng.gen_range(0u8..4) {
        0 => {
            let a: u8 = rng.gen_range(0u8..32);
            let b: u8 = rng.gen_range(0u8..32);
            FaultMode::BitFlip { bit_range: (a.min(b), a.max(b)) }
        }
        1 => {
            let a: u8 = rng.gen_range(0u8..32);
            let b: u8 = rng.gen_range(0u8..32);
            FaultMode::StuckAt { bit_range: (a.min(b), a.max(b)), stuck_high: gen::any_bool(rng) }
        }
        2 => {
            let bits: u8 = rng.gen_range(2u8..17);
            let a: u8 = rng.gen_range(0..bits);
            let b: u8 = rng.gen_range(0..bits);
            FaultMode::QuantStep {
                bits,
                amax: rng.gen_range(0.001f32..1000.0),
                bit_range: (a.min(b), a.max(b)),
            }
        }
        _ => FaultMode::RandomValue {
            min: rng.gen_range(-100.0f32..0.0),
            max: rng.gen_range(0.0f32..100.0),
        },
    }
}

fn arb_layer_overrides(rng: &mut Rng) -> BTreeMap<String, LayerOverride> {
    let n = rng.gen_range(0usize..4);
    let mut m = BTreeMap::new();
    for _ in 0..n {
        // Keys exercise every pattern form: name, index, range, glob.
        let key = match rng.gen_range(0u8..4) {
            0 => format!("features.{}", rng.gen_range(0u64..20)),
            1 => rng.gen_range(0u64..20).to_string(),
            2 => {
                let a: u64 = rng.gen_range(0u64..20);
                format!("{a}-{}", a + rng.gen_range(0u64..5))
            }
            _ => "classifier*".to_string(),
        };
        let mut o = LayerOverride::default();
        // Each override sets at least one field (empty ones are invalid).
        loop {
            if gen::any_bool(rng) {
                o.rate = Some(rng.gen_range(0.0f64..=1.0));
            }
            if gen::any_bool(rng) {
                o.mode = Some(arb_fault_mode(rng));
            }
            if gen::any_bool(rng) {
                let a: usize = rng.gen_range(0usize..64);
                let b: usize = rng.gen_range(0usize..64);
                o.channel_range = Some((a.min(b), a.max(b)));
            }
            if !o.is_empty() {
                break;
            }
        }
        m.insert(key, o);
    }
    m
}

fn arb_stop_policy(rng: &mut Rng) -> StopPolicy {
    StopPolicy {
        half_width: rng.gen_range(0.001f64..0.5),
        confidence: rng.gen_range(0.5f64..0.999),
        min_samples: rng.gen_range(1usize..500),
        check_every: rng.gen_range(1usize..100),
        scope: if gen::any_bool(rng) { StopScope::Campaign } else { StopScope::PerLayer },
        method: if gen::any_bool(rng) { CiMethod::Wilson } else { CiMethod::ClopperPearson },
    }
}

fn arb_scenario(rng: &mut Rng) -> Scenario {
    let faults = if gen::any_bool(rng) {
        FaultCount::Fixed(rng.gen_range(0usize..1000))
    } else {
        FaultCount::Fraction(rng.gen_range(0.0f64..=1.0))
    };
    let layer_types =
        gen::subsequence(rng, &[LayerType::Conv2d, LayerType::Conv3d, LayerType::Linear], 1, 3);
    let layer_range = if gen::any_bool(rng) {
        let a: usize = rng.gen_range(0usize..50);
        let b: usize = rng.gen_range(0usize..50);
        Some((a.min(b), a.max(b)))
    } else {
        None
    };
    Scenario {
        dataset_size: rng.gen_range(0usize..100_000),
        num_runs: rng.gen_range(0usize..10),
        faults_per_image: faults,
        batch_size: rng.gen_range(1usize..64),
        injection_target: if gen::any_bool(rng) {
            InjectionTarget::Neurons
        } else {
            InjectionTarget::Weights
        },
        injection_policy: match rng.gen_range(0usize..3) {
            0 => InjectionPolicy::PerImage,
            1 => InjectionPolicy::PerBatch,
            _ => InjectionPolicy::PerEpoch,
        },
        fault_duration: if gen::any_bool(rng) {
            FaultDuration::Transient
        } else {
            FaultDuration::Permanent
        },
        fault_mode: arb_fault_mode(rng),
        layer_types,
        layer_range,
        weighted_layer_selection: gen::any_bool(rng),
        seed: gen::any_u64(rng),
        stop_policy: if gen::any_bool(rng) { Some(arb_stop_policy(rng)) } else { None },
        artifact_format: match rng.gen_range(0usize..3) {
            0 => None,
            1 => Some(ArtifactFormat::Csv),
            _ => Some(ArtifactFormat::Binary),
        },
        report: match rng.gen_range(0usize..3) {
            0 => None,
            1 => Some(false),
            _ => Some(true),
        },
        layer_overrides: arb_layer_overrides(rng),
    }
}

/// Arbitrary YAML values over the subset our parser supports. Strings
/// avoid the characters the emitter would have to escape beyond quoting.
fn arb_yaml(rng: &mut Rng, depth: u32) -> Yaml {
    const BODY: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '.', '/', '-',
    ];
    const EDGE: &[char] = &['a', 'm', 'z', 'A', 'Z', '0', '9'];
    let scalar = |rng: &mut Rng| match rng.gen_range(0u8..5) {
        0 => Yaml::Null,
        1 => Yaml::Bool(gen::any_bool(rng)),
        2 => Yaml::Int(gen::any_u64(rng) as i64),
        3 => Yaml::Float(rng.gen_range(-1.0e12f64..1.0e12)),
        _ => {
            // Pattern "[a-zA-Z][a-zA-Z0-9 _./-]{0,14}[a-zA-Z0-9]".
            let first = ['a', 'q', 'z', 'B', 'Y'][rng.gen_range(0..5usize)];
            let mid = gen::string_from(rng, BODY, 0..15);
            let last = EDGE[rng.gen_range(0..EDGE.len())];
            Yaml::Str(format!("{first}{mid}{last}"))
        }
    };
    if depth == 0 {
        return scalar(rng);
    }
    match rng.gen_range(0u8..6) {
        0 => Yaml::List(gen::vec_of(rng, 0..4, scalar)),
        1 => {
            let n = rng.gen_range(0usize..4);
            let mut m = BTreeMap::new();
            for _ in 0..n {
                let head = ['a', 'h', 'p', 'x'][rng.gen_range(0..4usize)];
                let tail = gen::string_from(
                    rng,
                    &['a', 'e', 'k', 's', 'z', '0', '7', '_'],
                    0..11,
                );
                m.insert(format!("{head}{tail}"), arb_yaml(rng, depth - 1));
            }
            Yaml::Map(m)
        }
        _ => scalar(rng),
    }
}

/// Every representable scenario round-trips through YAML exactly.
#[test]
fn scenario_yaml_round_trip() {
    check_with(CASES, "scenario_yaml_round_trip", |rng| {
        let s = arb_scenario(rng);
        let text = s.to_yaml_string();
        let back = Scenario::from_yaml_str(&text).unwrap();
        assert_eq!(s, back);
    });
}

/// YAML documents emitted by the serializer re-parse to the same
/// value (maps/lists/scalars, arbitrary nesting).
#[test]
fn yaml_emit_parse_round_trip() {
    check_with(CASES, "yaml_emit_parse_round_trip", |rng| {
        let y = arb_yaml(rng, 3);
        // Top-level scalars serialize as a single line; wrap in a map for
        // the canonical document form too.
        let mut doc = BTreeMap::new();
        doc.insert("root".to_string(), y);
        let doc = Yaml::Map(doc);
        let text = doc.to_yaml_string();
        let back = Yaml::parse(&text).unwrap();
        assert_eq!(doc, back);
    });
}

/// total_faults never overflows the product semantics for sane sizes.
#[test]
fn total_faults_is_product() {
    check_with(CASES, "total_faults_is_product", |rng| {
        let ds: usize = rng.gen_range(0usize..1000);
        let runs: usize = rng.gen_range(0usize..10);
        let fpi: usize = rng.gen_range(0usize..100);
        let mut s = Scenario::default();
        s.dataset_size = ds;
        s.num_runs = runs;
        s.faults_per_image = FaultCount::Fixed(fpi);
        assert_eq!(s.total_faults(123), ds * runs * fpi);
    });
}

/// The parser never panics on arbitrary input strings.
#[test]
fn parser_is_total() {
    check_with(CASES, "parser_is_total", |rng| {
        let input = gen::printable_string(rng, 0..200);
        let _ = Yaml::parse(&input);
        let _ = Scenario::from_yaml_str(&input);
    });
}
