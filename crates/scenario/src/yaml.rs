//! A small, self-contained YAML-subset parser and serializer.
//!
//! PyTorchALFI configures every campaign through a `default.yml` scenario
//! file and dumps the effective parameters back to YAML for replay
//! (§IV-B: "PyTorchALFI saves all experiment parameters in a yml file
//! format, which can be used to replicate an experiment"). No YAML crate
//! is available offline, so this module implements the subset those
//! files need:
//!
//! * nested maps via indentation,
//! * scalars: null, booleans, integers, floats, single/double-quoted and
//!   bare strings,
//! * inline flow lists of scalars (`[0, 31]`),
//! * block lists of scalars (`- conv2d`),
//! * `#` comments and blank lines.
//!
//! Deliberately unsupported: anchors, aliases, multi-document streams,
//! block lists of maps, multiline strings.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed YAML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Yaml {
    /// `null` / `~` / empty value.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer scalar.
    Int(i64),
    /// Floating-point scalar.
    Float(f64),
    /// String scalar.
    Str(String),
    /// Sequence (`[..]` or `- item` block form).
    List(Vec<Yaml>),
    /// Mapping. Keys keep sorted order for deterministic serialization.
    Map(BTreeMap<String, Yaml>),
}

/// Error produced when parsing malformed YAML input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseYamlError {
    /// 1-based line number of the offending input line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseYamlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "yaml parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseYamlError {}

impl Yaml {
    /// Parses a YAML document into a value (usually a [`Yaml::Map`]).
    ///
    /// # Errors
    ///
    /// Returns [`ParseYamlError`] with a line number on malformed input.
    pub fn parse(text: &str) -> Result<Yaml, ParseYamlError> {
        let lines: Vec<Line> = text
            .lines()
            .enumerate()
            .map(|(i, raw)| Line::lex(i + 1, raw))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .flatten()
            .collect();
        if lines.is_empty() {
            return Ok(Yaml::Map(BTreeMap::new()));
        }
        let mut pos = 0usize;
        let v = parse_block(&lines, &mut pos, lines[0].indent)?;
        if pos != lines.len() {
            return Err(ParseYamlError {
                line: lines[pos].number,
                message: "trailing content outside the document structure".into(),
            });
        }
        Ok(v)
    }

    /// Serializes the value as a YAML document string. Parsing the output
    /// reproduces the value exactly (round-trip property).
    pub fn to_yaml_string(&self) -> String {
        let mut out = String::new();
        match self {
            Yaml::Map(_) | Yaml::List(_) => emit(self, 0, &mut out),
            scalar => {
                out.push_str(&emit_scalar(scalar));
                out.push('\n');
            }
        }
        out
    }

    /// The value under `key` if this is a map.
    pub fn get(&self, key: &str) -> Option<&Yaml> {
        match self {
            Yaml::Map(m) => m.get(key),
            _ => None,
        }
    }

    /// Interprets the value as an integer (accepting `Int`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Yaml::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interprets the value as a float (accepting `Float` and `Int`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Yaml::Float(f) => Some(*f),
            Yaml::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Interprets the value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Yaml::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interprets the value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Yaml::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets the value as a list slice.
    pub fn as_list(&self) -> Option<&[Yaml]> {
        match self {
            Yaml::List(l) => Some(l),
            _ => None,
        }
    }
}

impl From<i64> for Yaml {
    fn from(v: i64) -> Self {
        Yaml::Int(v)
    }
}

impl From<f64> for Yaml {
    fn from(v: f64) -> Self {
        Yaml::Float(v)
    }
}

impl From<bool> for Yaml {
    fn from(v: bool) -> Self {
        Yaml::Bool(v)
    }
}

impl From<&str> for Yaml {
    fn from(v: &str) -> Self {
        Yaml::Str(v.to_string())
    }
}

impl From<String> for Yaml {
    fn from(v: String) -> Self {
        Yaml::Str(v)
    }
}

/// One meaningful (non-blank, non-comment) input line.
#[derive(Debug)]
struct Line {
    number: usize,
    indent: usize,
    content: LineContent,
}

#[derive(Debug)]
enum LineContent {
    /// `key:` or `key: value`
    KeyValue(String, Option<String>),
    /// `- value`
    ListItem(String),
}

impl Line {
    /// Lexes a raw line; comments and blank lines produce `None`.
    fn lex(number: usize, raw: &str) -> Result<Option<Line>, ParseYamlError> {
        let without_comment = strip_comment(raw);
        let trimmed_end = without_comment.trim_end();
        if trimmed_end.trim().is_empty() {
            return Ok(None);
        }
        let indent = trimmed_end.len() - trimmed_end.trim_start().len();
        if trimmed_end[..indent].contains('\t') {
            return Err(ParseYamlError { line: number, message: "tabs are not allowed in indentation".into() });
        }
        let body = trimmed_end.trim_start();
        let content = if let Some(rest) = body.strip_prefix("- ") {
            LineContent::ListItem(rest.trim().to_string())
        } else if body == "-" {
            LineContent::ListItem(String::new())
        } else if let Some(colon) = find_key_colon(body) {
            let key = unquote(body[..colon].trim());
            let val = body[colon + 1..].trim();
            LineContent::KeyValue(key, if val.is_empty() { None } else { Some(val.to_string()) })
        } else {
            return Err(ParseYamlError {
                line: number,
                message: format!("expected `key: value` or `- item`, got `{body}`"),
            });
        };
        Ok(Some(Line { number, indent, content }))
    }
}

/// Removes a `#` comment unless inside quotes.
fn strip_comment(s: &str) -> &str {
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in s.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '#' if !in_single && !in_double => return &s[..i],
            _ => {}
        }
    }
    s
}

/// Finds the colon separating key from value (outside quotes / brackets).
fn find_key_colon(s: &str) -> Option<usize> {
    let mut in_single = false;
    let mut in_double = false;
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '[' if !in_single && !in_double => depth += 1,
            ']' if !in_single && !in_double => depth -= 1,
            ':' if !in_single && !in_double && depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

fn unquote(s: &str) -> String {
    let bytes = s.as_bytes();
    if bytes.len() >= 2
        && ((bytes[0] == b'"' && bytes[bytes.len() - 1] == b'"')
            || (bytes[0] == b'\'' && bytes[bytes.len() - 1] == b'\''))
    {
        s[1..s.len() - 1].to_string()
    } else {
        s.to_string()
    }
}

/// Parses a scalar or inline-list token.
fn parse_scalar(token: &str, line: usize) -> Result<Yaml, ParseYamlError> {
    let t = token.trim();
    if t.is_empty() || t == "~" || t == "null" {
        return Ok(Yaml::Null);
    }
    if t == "{}" {
        return Ok(Yaml::Map(BTreeMap::new()));
    }
    if t.starts_with('[') {
        if !t.ends_with(']') {
            return Err(ParseYamlError { line, message: format!("unterminated inline list `{t}`") });
        }
        let inner = &t[1..t.len() - 1];
        let mut items = Vec::new();
        for piece in split_inline(inner) {
            let piece = piece.trim();
            if !piece.is_empty() {
                items.push(parse_scalar(piece, line)?);
            }
        }
        return Ok(Yaml::List(items));
    }
    if t == "true" {
        return Ok(Yaml::Bool(true));
    }
    if t == "false" {
        return Ok(Yaml::Bool(false));
    }
    let quoted = (t.starts_with('"') && t.ends_with('"') && t.len() >= 2)
        || (t.starts_with('\'') && t.ends_with('\'') && t.len() >= 2);
    if quoted {
        return Ok(Yaml::Str(unquote(t)));
    }
    if let Ok(i) = t.parse::<i64>() {
        return Ok(Yaml::Int(i));
    }
    if let Ok(f) = t.parse::<f64>() {
        return Ok(Yaml::Float(f));
    }
    Ok(Yaml::Str(t.to_string()))
}

/// Splits inline list content on commas outside quotes/brackets.
fn split_inline(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut depth = 0i32;
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in s.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '[' if !in_single && !in_double => depth += 1,
            ']' if !in_single && !in_double => depth -= 1,
            ',' if depth == 0 && !in_single && !in_double => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Parses a block (map or list) whose lines share indentation `indent`.
fn parse_block(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Yaml, ParseYamlError> {
    let first_is_list = matches!(lines[*pos].content, LineContent::ListItem(_));
    if first_is_list {
        let mut items = Vec::new();
        while *pos < lines.len() && lines[*pos].indent == indent {
            match &lines[*pos].content {
                LineContent::ListItem(v) => {
                    items.push(parse_scalar(v, lines[*pos].number)?);
                    *pos += 1;
                }
                LineContent::KeyValue(..) => break,
            }
        }
        return Ok(Yaml::List(items));
    }
    let mut map = BTreeMap::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(ParseYamlError {
                line: line.number,
                message: "unexpected indentation increase".into(),
            });
        }
        match &line.content {
            LineContent::ListItem(_) => {
                return Err(ParseYamlError {
                    line: line.number,
                    message: "list item in map context".into(),
                })
            }
            LineContent::KeyValue(key, value) => {
                let key = key.clone();
                let number = line.number;
                if map.contains_key(&key) {
                    return Err(ParseYamlError {
                        line: number,
                        message: format!("duplicate key `{key}`"),
                    });
                }
                match value {
                    Some(v) => {
                        let parsed = parse_scalar(v, number)?;
                        *pos += 1;
                        map.insert(key, parsed);
                    }
                    None => {
                        *pos += 1;
                        if *pos < lines.len() && lines[*pos].indent > indent {
                            let child_indent = lines[*pos].indent;
                            let child = parse_block(lines, pos, child_indent)?;
                            map.insert(key, child);
                        } else {
                            map.insert(key, Yaml::Null);
                        }
                    }
                }
            }
        }
    }
    Ok(Yaml::Map(map))
}

fn emit_scalar(v: &Yaml) -> String {
    match v {
        Yaml::Null => "null".to_string(),
        Yaml::Bool(b) => b.to_string(),
        Yaml::Int(i) => i.to_string(),
        Yaml::Float(f) => {
            // Ensure floats stay floats across a round trip.
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Yaml::Str(s) => {
            let needs_quotes = s.is_empty()
                || s.parse::<i64>().is_ok()
                || s.parse::<f64>().is_ok()
                || matches!(s.as_str(), "true" | "false" | "null" | "~")
                || s.contains([':', '#', '[', ']', ',', '\'', '"', '\n'])
                || s.starts_with(['-', ' '])
                || s.ends_with(' ');
            if needs_quotes {
                format!("\"{}\"", s.replace('"', "'"))
            } else {
                s.clone()
            }
        }
        Yaml::List(items) => {
            let inner: Vec<String> = items.iter().map(emit_scalar).collect();
            format!("[{}]", inner.join(", "))
        }
        Yaml::Map(m) if m.is_empty() => "{}".to_string(),
        Yaml::Map(_) => unreachable!("non-empty maps are emitted in block form"),
    }
}

fn emit(v: &Yaml, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match v {
        Yaml::Map(m) => {
            for (k, val) in m {
                match val {
                    Yaml::Map(inner) if !inner.is_empty() => {
                        out.push_str(&format!("{pad}{k}:\n"));
                        emit(val, indent + 1, out);
                    }
                    _ => {
                        out.push_str(&format!("{pad}{k}: {}\n", emit_scalar(val)));
                    }
                }
            }
        }
        Yaml::List(items) => {
            for item in items {
                out.push_str(&format!("{pad}- {}\n", emit_scalar(item)));
            }
        }
        scalar => {
            out.push_str(&format!("{pad}{}\n", emit_scalar(scalar)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_map_with_scalars() {
        let y = Yaml::parse(
            "dataset_size: 100\nnum_runs: 2\nfrac: 0.5\nenabled: true\nname: resnet\nnothing: ~\n",
        )
        .unwrap();
        assert_eq!(y.get("dataset_size").unwrap().as_i64(), Some(100));
        assert_eq!(y.get("frac").unwrap().as_f64(), Some(0.5));
        assert_eq!(y.get("enabled").unwrap().as_bool(), Some(true));
        assert_eq!(y.get("name").unwrap().as_str(), Some("resnet"));
        assert_eq!(y.get("nothing"), Some(&Yaml::Null));
    }

    #[test]
    fn parses_nested_maps() {
        let y = Yaml::parse("fault_model:\n  mode: bitflip\n  range: [0, 31]\nseed: 7\n").unwrap();
        let fm = y.get("fault_model").unwrap();
        assert_eq!(fm.get("mode").unwrap().as_str(), Some("bitflip"));
        assert_eq!(
            fm.get("range").unwrap().as_list().unwrap(),
            &[Yaml::Int(0), Yaml::Int(31)]
        );
        assert_eq!(y.get("seed").unwrap().as_i64(), Some(7));
    }

    #[test]
    fn parses_block_lists() {
        let y = Yaml::parse("layer_types:\n  - conv2d\n  - linear\n").unwrap();
        let l = y.get("layer_types").unwrap().as_list().unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].as_str(), Some("conv2d"));
    }

    #[test]
    fn strips_comments_and_blank_lines() {
        let y = Yaml::parse("# header\n\na: 1 # trailing\n# middle\nb: 2\n").unwrap();
        assert_eq!(y.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(y.get("b").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn quoted_strings_preserve_specials() {
        let y = Yaml::parse("a: \"has # hash\"\nb: '123'\n").unwrap();
        assert_eq!(y.get("a").unwrap().as_str(), Some("has # hash"));
        assert_eq!(y.get("b").unwrap().as_str(), Some("123"));
    }

    #[test]
    fn rejects_duplicate_keys() {
        let e = Yaml::parse("a: 1\na: 2\n").unwrap_err();
        assert!(e.to_string().contains("duplicate"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_tab_indentation_and_garbage() {
        assert!(Yaml::parse("a:\n\tb: 1\n").is_err());
        assert!(Yaml::parse("just some words\n").is_err());
        assert!(Yaml::parse("a: [1, 2\n").is_err());
    }

    #[test]
    fn rejects_list_item_in_map_context() {
        assert!(Yaml::parse("a: 1\n- b\n").is_err());
    }

    #[test]
    fn empty_document_is_empty_map() {
        assert_eq!(Yaml::parse("").unwrap(), Yaml::Map(BTreeMap::new()));
        assert_eq!(Yaml::parse("# only comments\n").unwrap(), Yaml::Map(BTreeMap::new()));
    }

    #[test]
    fn negative_and_float_scalars() {
        let y = Yaml::parse("a: -5\nb: -2.25\nc: 1e3\n").unwrap();
        assert_eq!(y.get("a").unwrap().as_i64(), Some(-5));
        assert_eq!(y.get("b").unwrap().as_f64(), Some(-2.25));
        assert_eq!(y.get("c").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn round_trip_nested_document() {
        let src = "fault_model:\n  mode: bitflip\n  range: [0, 31]\nlayers:\n  - conv2d\n  - linear\nseed: 7\nfrac: 0.5\n";
        let y = Yaml::parse(src).unwrap();
        let emitted = y.to_yaml_string();
        let reparsed = Yaml::parse(&emitted).unwrap();
        assert_eq!(y, reparsed);
    }

    #[test]
    fn numeric_looking_strings_survive_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("v".to_string(), Yaml::Str("123".into()));
        m.insert("w".to_string(), Yaml::Str("true".into()));
        let y = Yaml::Map(m);
        let reparsed = Yaml::parse(&y.to_yaml_string()).unwrap();
        assert_eq!(y, reparsed);
    }

    #[test]
    fn float_int_distinction_survives_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("f".to_string(), Yaml::Float(2.0));
        m.insert("i".to_string(), Yaml::Int(2));
        let y = Yaml::Map(m);
        let reparsed = Yaml::parse(&y.to_yaml_string()).unwrap();
        assert_eq!(y, reparsed);
    }

    #[test]
    fn deep_nesting_round_trips() {
        let src = "a:\n  b:\n    c:\n      d: 1\n";
        let y = Yaml::parse(src).unwrap();
        assert_eq!(
            y.get("a").unwrap().get("b").unwrap().get("c").unwrap().get("d").unwrap().as_i64(),
            Some(1)
        );
        assert_eq!(Yaml::parse(&y.to_yaml_string()).unwrap(), y);
    }

    #[test]
    fn key_with_empty_nested_block_is_null() {
        let y = Yaml::parse("a:\nb: 2\n").unwrap();
        assert_eq!(y.get("a"), Some(&Yaml::Null));
    }
}
