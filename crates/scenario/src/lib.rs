#![warn(missing_docs)]
//! # alfi-scenario
//!
//! Scenario configuration for ALFI fault-injection campaigns — the Rust
//! counterpart of PyTorchALFI's `default.yml` workflow: campaigns are
//! configured in a YAML file, the effective parameters are accessible and
//! mutable at run time, and every run dumps its parameters back to YAML
//! so the experiment can be replicated exactly (paper §IV-B, §V-C/D).
//!
//! The [`yaml`] module implements the self-contained YAML-subset parser
//! (no YAML crate is available offline); [`Scenario`] is the validated
//! schema on top of it.
//!
//! # Example
//!
//! ```
//! use alfi_scenario::{Scenario, InjectionTarget};
//!
//! let s = Scenario::from_yaml_str("injection_target: weights\nseed: 7\n")?;
//! assert_eq!(s.injection_target, InjectionTarget::Weights);
//! # Ok::<(), alfi_scenario::ScenarioError>(())
//! ```

pub mod scenario;
pub mod yaml;

pub use scenario::{
    ArtifactFormat, CiMethod, FaultCount, FaultDuration, FaultMode, InjectionPolicy,
    InjectionTarget, LayerOverride, LayerType, Scenario, ScenarioError, StopPolicy, StopScope,
};
pub use yaml::{ParseYamlError, Yaml};
