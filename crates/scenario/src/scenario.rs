//! The scenario schema: everything `default.yml` configures.

use crate::yaml::{ParseYamlError, Yaml};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Where faults are injected (§IV-B: "Faults can be inserted in weights
/// or neurons"; the two cannot be mixed in one run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionTarget {
    /// Corrupt layer outputs at inference time (via forward hooks).
    Neurons,
    /// Corrupt layer parameters before/during the run.
    Weights,
}

impl fmt::Display for InjectionTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InjectionTarget::Neurons => "neurons",
            InjectionTarget::Weights => "weights",
        })
    }
}

/// How often the active fault set changes (§IV-B: "per image, batch, or
/// epoch").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionPolicy {
    /// A fresh fault set for every image.
    PerImage,
    /// A fresh fault set for every batch.
    PerBatch,
    /// One fault set for a whole pass over the dataset.
    PerEpoch,
}

impl fmt::Display for InjectionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InjectionPolicy::PerImage => "per_image",
            InjectionPolicy::PerBatch => "per_batch",
            InjectionPolicy::PerEpoch => "per_epoch",
        })
    }
}

/// Transient faults are reverted after their scope ends; permanent faults
/// (e.g. stuck-at defects) persist for the remainder of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDuration {
    /// Reverted when the fault's scope (image/batch/epoch) ends.
    Transient,
    /// Sticks for the rest of the run.
    Permanent,
}

impl fmt::Display for FaultDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultDuration::Transient => "transient",
            FaultDuration::Permanent => "permanent",
        })
    }
}

/// The value-corruption model (§IV-B: "Modifications can be made to
/// either numbers or specific bits").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultMode {
    /// Flip one bit drawn uniformly from the inclusive position range
    /// (`rnd_bit_range: [0, 31]` in the paper's notation).
    BitFlip {
        /// Inclusive (low, high) bit-position range.
        bit_range: (u8, u8),
    },
    /// Force a bit in the range to a fixed value (permanent stuck-at).
    StuckAt {
        /// Inclusive (low, high) bit-position range.
        bit_range: (u8, u8),
        /// `true` for stuck-at-1, `false` for stuck-at-0.
        stuck_high: bool,
    },
    /// Replace the value with a uniform draw from `[min, max]`.
    RandomValue {
        /// Lower bound of the replacement value.
        min: f32,
        /// Upper bound of the replacement value.
        max: f32,
    },
    /// Flip one bit of the value's symmetric signed `bits`-wide integer
    /// quantization (MRFI-style quantized-int perturbation): quantize
    /// with scale `amax / (2^(bits-1) - 1)`, flip a bit drawn uniformly
    /// from `bit_range`, dequantize.
    QuantStep {
        /// Quantization width in bits, `2 ..= 16`.
        bits: u8,
        /// Absolute-maximum of the symmetric quantization range (> 0).
        amax: f32,
        /// Inclusive (low, high) bit-position range within the
        /// `bits`-wide integer (`bits - 1` is the sign bit).
        bit_range: (u8, u8),
    },
}

impl FaultMode {
    /// Convenience constructor for the paper's headline fault model:
    /// single bit flips restricted to the f32 exponent bits (23–30).
    pub fn exponent_bit_flip() -> FaultMode {
        FaultMode::BitFlip { bit_range: (23, 30) }
    }

    /// Bit flips across the whole 32-bit word.
    pub fn any_bit_flip() -> FaultMode {
        FaultMode::BitFlip { bit_range: (0, 31) }
    }
}

/// A per-layer override of the campaign-wide fault model — one entry of
/// the scenario's `layers:` map (MRFI-style multi-resolution
/// configuration). Every field is optional; unset fields fall back to
/// the campaign-wide setting.
///
/// The map key is a *layer pattern* matched against the resolved
/// injectable-layer list: an exact layer name (`features.3`), a layer
/// index (`4`), an inclusive index range (`2-5`) or a name prefix glob
/// (`features*`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LayerOverride {
    /// Relative injection rate for the matched layers, in `[0, 1]`.
    /// Overridden rates are renormalized deterministically against the
    /// base (Eq. 1 or uniform) weights of the remaining layers.
    pub rate: Option<f64>,
    /// Fault mode replacing the campaign-wide `fault_mode` for faults
    /// landing in the matched layers.
    pub mode: Option<FaultMode>,
    /// Inclusive (low, high) output-channel scope: faults in the
    /// matched layers only hit channels within this range.
    pub channel_range: Option<(usize, usize)>,
}

impl LayerOverride {
    /// Whether the override changes anything at all.
    pub fn is_empty(&self) -> bool {
        self.rate.is_none() && self.mode.is_none() && self.channel_range.is_none()
    }
}

/// Layer-type filter for fault locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerType {
    /// 2-D convolutions.
    Conv2d,
    /// 3-D convolutions.
    Conv3d,
    /// Fully-connected layers.
    Linear,
}

impl fmt::Display for LayerType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LayerType::Conv2d => "conv2d",
            LayerType::Conv3d => "conv3d",
            LayerType::Linear => "linear",
        })
    }
}

/// Number of simultaneous faults per image: a fixed count or a fraction
/// of the model's total weights/neurons (§IV-B: "a fixed integer or a
/// distribution ... a fraction of the total number").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultCount {
    /// Exactly this many faults per image.
    Fixed(usize),
    /// `fraction * total_elements` faults per image (at least 1).
    Fraction(f64),
}

impl FaultCount {
    /// Resolves the count against the model's total element count.
    pub fn resolve(&self, total_elements: usize) -> usize {
        match self {
            FaultCount::Fixed(n) => *n,
            FaultCount::Fraction(f) => ((total_elements as f64 * f).round() as usize).max(1),
        }
    }
}

/// On-disk format for campaign outcome rows.
///
/// `Csv` emits the paper's classic `results_*.csv` set; `Binary` writes
/// a single columnar `rows.alfic` store (smaller, checksummed, and
/// replay-indexed by fault id) that converts back to the exact CSV
/// bytes on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArtifactFormat {
    /// Plain-text CSV result tables (the default).
    #[default]
    Csv,
    /// Columnar binary result store (`rows.alfic`).
    Binary,
}

impl fmt::Display for ArtifactFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArtifactFormat::Csv => "csv",
            ArtifactFormat::Binary => "binary",
        })
    }
}

impl std::str::FromStr for ArtifactFormat {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "csv" => Ok(ArtifactFormat::Csv),
            "binary" => Ok(ArtifactFormat::Binary),
            _ => Err(invalid("format", "expected `csv` or `binary`")),
        }
    }
}

/// Which population a [`StopPolicy`] tracks when deciding to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopScope {
    /// One confidence interval over the whole campaign; reaching the
    /// target half-width ends the run.
    Campaign,
    /// One interval per injected layer; a layer whose interval is tight
    /// enough is *retired* (its remaining faults are skipped) while the
    /// other strata keep sampling.
    PerLayer,
}

impl fmt::Display for StopScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StopScope::Campaign => "campaign",
            StopScope::PerLayer => "per_layer",
        })
    }
}

/// Which binomial confidence interval a [`StopPolicy`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CiMethod {
    /// Wilson score interval (cheap, good mid-range coverage).
    Wilson,
    /// Clopper-Pearson exact interval (conservative, never undercovers —
    /// preferred for the near-zero rates FI campaigns observe).
    ClopperPearson,
}

impl fmt::Display for CiMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CiMethod::Wilson => "wilson",
            CiMethod::ClopperPearson => "clopper_pearson",
        })
    }
}

/// Statistical early-stop configuration for adaptive campaigns.
///
/// The engine evaluates the policy only at deterministic scope
/// boundaries (every `check_every` armed fault scopes — never from
/// wall-clock time), stopping the campaign or retiring a layer stratum
/// once both its SDC- and DUE-rate confidence intervals reach the target
/// half-width with at least `min_samples` observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopPolicy {
    /// Target CI half-width (the "±" on the reported rate), in `(0, 0.5]`.
    pub half_width: f64,
    /// Two-sided confidence level, e.g. `0.95`, in `(0, 1)`.
    pub confidence: f64,
    /// Minimum observations per tracked population before a verdict.
    pub min_samples: usize,
    /// Evaluate every this many armed fault scopes (≥ 1).
    pub check_every: usize,
    /// Whole-campaign interval or per-layer strata.
    pub scope: StopScope,
    /// Interval construction used for the verdict.
    pub method: CiMethod,
}

impl Default for StopPolicy {
    fn default() -> Self {
        StopPolicy {
            half_width: 0.05,
            confidence: 0.95,
            min_samples: 30,
            check_every: 16,
            scope: StopScope::Campaign,
            method: CiMethod::Wilson,
        }
    }
}

impl StopPolicy {
    /// Validates field ranges, naming the offending field on error.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidField`] when a field is out of
    /// range.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if !(self.half_width > 0.0 && self.half_width <= 0.5) {
            return Err(invalid("stop_policy.half_width", "must be in (0, 0.5]"));
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(invalid("stop_policy.confidence", "must be in (0, 1)"));
        }
        if self.min_samples == 0 {
            return Err(invalid("stop_policy.min_samples", "must be at least 1"));
        }
        if self.check_every == 0 {
            return Err(invalid("stop_policy.check_every", "must be at least 1"));
        }
        Ok(())
    }
}

/// Error produced when a scenario file is malformed or inconsistent.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// YAML-level syntax error.
    Parse(ParseYamlError),
    /// A field had the wrong type or an invalid value.
    InvalidField {
        /// Field name.
        field: &'static str,
        /// Description of the problem.
        reason: String,
    },
    /// File I/O failed.
    Io(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "{e}"),
            ScenarioError::InvalidField { field, reason } => {
                write!(f, "invalid scenario field `{field}`: {reason}")
            }
            ScenarioError::Io(msg) => write!(f, "scenario file i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ParseYamlError> for ScenarioError {
    fn from(e: ParseYamlError) -> Self {
        ScenarioError::Parse(e)
    }
}

/// A complete fault-injection campaign configuration — the Rust
/// counterpart of PyTorchALFI's `default.yml`.
///
/// The total number of pre-generated faults is
/// `dataset_size * num_runs * faults_per_image` (paper §V-C:
/// `n = a · b · c`).
///
/// # Example
///
/// ```
/// use alfi_scenario::{Scenario, FaultMode, InjectionTarget};
///
/// let mut s = Scenario::default();
/// s.dataset_size = 100;
/// s.injection_target = InjectionTarget::Weights;
/// s.fault_mode = FaultMode::exponent_bit_flip();
/// let yml = s.to_yaml_string();
/// let back = Scenario::from_yaml_str(&yml)?;
/// assert_eq!(s, back);
/// # Ok::<(), alfi_scenario::ScenarioError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Number of images (or dataset subset size) per run — `a`.
    pub dataset_size: usize,
    /// Number of passes over the dataset (epochs) — `b`.
    pub num_runs: usize,
    /// Simultaneous faults per image — `c` (fixed or fractional).
    pub faults_per_image: FaultCount,
    /// Images per batch.
    pub batch_size: usize,
    /// Whether to corrupt neurons or weights.
    pub injection_target: InjectionTarget,
    /// How often the active fault set advances.
    pub injection_policy: InjectionPolicy,
    /// Transient or permanent faults.
    pub fault_duration: FaultDuration,
    /// The value corruption model.
    pub fault_mode: FaultMode,
    /// Layer kinds eligible for injection.
    pub layer_types: Vec<LayerType>,
    /// Optional inclusive range restricting injection to specific layer
    /// indices (positions within the model's injectable-layer list).
    pub layer_range: Option<(usize, usize)>,
    /// Weight the random layer choice by relative layer size (Eq. 1).
    pub weighted_layer_selection: bool,
    /// RNG seed for fault generation.
    pub seed: u64,
    /// Optional statistical early-stop policy. `None` (the default)
    /// executes the full fault matrix; the key is omitted from the YAML
    /// serialization when unset so legacy scenarios hash identically.
    pub stop_policy: Option<StopPolicy>,
    /// Optional on-disk format for outcome rows (YAML key `format`).
    /// `None` defaults to CSV and — like `stop_policy` — is omitted
    /// from the serialization so legacy scenario files and replay
    /// fingerprints are unchanged.
    pub artifact_format: Option<ArtifactFormat>,
    /// Optional end-of-run report generation (YAML key `report`):
    /// `true` asks the runner to emit `report.json` / `report.md` next
    /// to the other artifacts at finalize. `None` defaults to off and
    /// — like `stop_policy` — is omitted from the serialization so
    /// legacy scenario files and replay fingerprints are unchanged.
    pub report: Option<bool>,
    /// Multi-resolution per-layer overrides (YAML key `layers`): a map
    /// from layer pattern to [`LayerOverride`]. Empty (the default)
    /// means single-resolution injection; the key is omitted from the
    /// YAML serialization when empty so legacy scenario files and
    /// replay fingerprints are unchanged.
    pub layer_overrides: BTreeMap<String, LayerOverride>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            dataset_size: 100,
            num_runs: 1,
            faults_per_image: FaultCount::Fixed(1),
            batch_size: 1,
            injection_target: InjectionTarget::Neurons,
            injection_policy: InjectionPolicy::PerImage,
            fault_duration: FaultDuration::Transient,
            fault_mode: FaultMode::any_bit_flip(),
            layer_types: vec![LayerType::Conv2d, LayerType::Conv3d, LayerType::Linear],
            layer_range: None,
            weighted_layer_selection: true,
            seed: 0,
            stop_policy: None,
            artifact_format: None,
            report: None,
            layer_overrides: BTreeMap::new(),
        }
    }
}

impl Scenario {
    /// Total number of faults to pre-generate: `a · b · c` with `c`
    /// resolved against `total_elements` (the model's weight or neuron
    /// count, depending on the target).
    pub fn total_faults(&self, total_elements: usize) -> usize {
        self.dataset_size * self.num_runs * self.faults_per_image.resolve(total_elements)
    }

    /// Parses a scenario from YAML text. Missing fields fall back to
    /// [`Scenario::default`] values; present fields are validated.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] on syntax errors or invalid field values.
    pub fn from_yaml_str(text: &str) -> Result<Scenario, ScenarioError> {
        let y = Yaml::parse(text)?;
        let mut s = Scenario::default();

        if let Some(v) = y.get("dataset_size") {
            s.dataset_size = usize_field(v, "dataset_size")?;
        }
        if let Some(v) = y.get("num_runs") {
            s.num_runs = usize_field(v, "num_runs")?;
        }
        if let Some(v) = y.get("batch_size") {
            s.batch_size = usize_field(v, "batch_size")?;
            if s.batch_size == 0 {
                return Err(invalid("batch_size", "must be at least 1"));
            }
        }
        if let Some(v) = y.get("max_faults_per_image") {
            s.faults_per_image = match v {
                Yaml::Int(i) if *i >= 0 => FaultCount::Fixed(*i as usize),
                Yaml::Float(f) if (0.0..=1.0).contains(f) => FaultCount::Fraction(*f),
                _ => {
                    return Err(invalid(
                        "max_faults_per_image",
                        "expected a non-negative integer or a fraction in [0,1]",
                    ))
                }
            };
        }
        if let Some(v) = y.get("injection_target") {
            s.injection_target = match v.as_str() {
                Some("neurons") => InjectionTarget::Neurons,
                Some("weights") => InjectionTarget::Weights,
                _ => return Err(invalid("injection_target", "expected `neurons` or `weights`")),
            };
        }
        if let Some(v) = y.get("injection_policy") {
            s.injection_policy = match v.as_str() {
                Some("per_image") => InjectionPolicy::PerImage,
                Some("per_batch") => InjectionPolicy::PerBatch,
                Some("per_epoch") => InjectionPolicy::PerEpoch,
                _ => {
                    return Err(invalid(
                        "injection_policy",
                        "expected `per_image`, `per_batch` or `per_epoch`",
                    ))
                }
            };
        }
        if let Some(v) = y.get("fault_duration") {
            s.fault_duration = match v.as_str() {
                Some("transient") => FaultDuration::Transient,
                Some("permanent") => FaultDuration::Permanent,
                _ => return Err(invalid("fault_duration", "expected `transient` or `permanent`")),
            };
        }
        if let Some(v) = y.get("fault_mode") {
            s.fault_mode = parse_fault_mode(v)?;
        }
        if let Some(v) = y.get("layer_types") {
            let list = v
                .as_list()
                .ok_or_else(|| invalid("layer_types", "expected a list"))?;
            let mut types = Vec::new();
            for item in list {
                types.push(match item.as_str() {
                    Some("conv2d") => LayerType::Conv2d,
                    Some("conv3d") => LayerType::Conv3d,
                    Some("linear") => LayerType::Linear,
                    _ => {
                        return Err(invalid(
                            "layer_types",
                            "entries must be conv2d, conv3d or linear",
                        ))
                    }
                });
            }
            if types.is_empty() {
                return Err(invalid("layer_types", "must not be empty"));
            }
            s.layer_types = types;
        }
        if let Some(v) = y.get("layer_range") {
            match v {
                Yaml::Null => s.layer_range = None,
                Yaml::List(items) if items.len() == 2 => {
                    let lo = usize_field(&items[0], "layer_range")?;
                    let hi = usize_field(&items[1], "layer_range")?;
                    if lo > hi {
                        return Err(invalid("layer_range", "low bound exceeds high bound"));
                    }
                    s.layer_range = Some((lo, hi));
                }
                _ => return Err(invalid("layer_range", "expected `[low, high]` or null")),
            }
        }
        if let Some(v) = y.get("weighted_layer_selection") {
            s.weighted_layer_selection = v
                .as_bool()
                .ok_or_else(|| invalid("weighted_layer_selection", "expected a boolean"))?;
        }
        if let Some(v) = y.get("seed") {
            let i = v.as_i64().ok_or_else(|| invalid("seed", "expected an integer"))?;
            s.seed = i as u64;
        }
        if let Some(v) = y.get("stop_policy") {
            s.stop_policy = match v {
                Yaml::Null => None,
                _ => Some(parse_stop_policy(v)?),
            };
        }
        if let Some(v) = y.get("format") {
            s.artifact_format = match v {
                Yaml::Null => None,
                _ => Some(
                    v.as_str()
                        .ok_or_else(|| invalid("format", "expected `csv` or `binary`"))?
                        .parse()?,
                ),
            };
        }
        if let Some(v) = y.get("report") {
            s.report = match v {
                Yaml::Null => None,
                _ => Some(
                    v.as_bool().ok_or_else(|| invalid("report", "expected true or false"))?,
                ),
            };
        }
        if let Some(v) = y.get("layers") {
            s.layer_overrides = match v {
                Yaml::Null => BTreeMap::new(),
                Yaml::Map(entries) => {
                    let mut out = BTreeMap::new();
                    for (pattern, spec) in entries {
                        if pattern.is_empty() {
                            return Err(invalid("layers", "layer pattern must not be empty"));
                        }
                        out.insert(pattern.clone(), parse_layer_override(spec)?);
                    }
                    out
                }
                _ => return Err(invalid("layers", "expected a map of layer overrides")),
            };
        }
        Ok(s)
    }

    /// Serializes the scenario to YAML. `from_yaml_str` on the output
    /// reproduces the scenario exactly.
    pub fn to_yaml_string(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("dataset_size".into(), Yaml::Int(self.dataset_size as i64));
        m.insert("num_runs".into(), Yaml::Int(self.num_runs as i64));
        m.insert("batch_size".into(), Yaml::Int(self.batch_size as i64));
        m.insert(
            "max_faults_per_image".into(),
            match self.faults_per_image {
                FaultCount::Fixed(n) => Yaml::Int(n as i64),
                FaultCount::Fraction(f) => Yaml::Float(f),
            },
        );
        m.insert("injection_target".into(), Yaml::Str(self.injection_target.to_string()));
        m.insert("injection_policy".into(), Yaml::Str(self.injection_policy.to_string()));
        m.insert("fault_duration".into(), Yaml::Str(self.fault_duration.to_string()));
        m.insert("fault_mode".into(), fault_mode_yaml(&self.fault_mode));
        m.insert(
            "layer_types".into(),
            Yaml::List(self.layer_types.iter().map(|t| Yaml::Str(t.to_string())).collect()),
        );
        m.insert(
            "layer_range".into(),
            match self.layer_range {
                None => Yaml::Null,
                Some((lo, hi)) => Yaml::List(vec![Yaml::Int(lo as i64), Yaml::Int(hi as i64)]),
            },
        );
        m.insert("weighted_layer_selection".into(), Yaml::Bool(self.weighted_layer_selection));
        m.insert("seed".into(), Yaml::Int(self.seed as i64));
        // Emitted only when set: adding the key to every scenario would
        // change the serialized form (and hence the replay fingerprint)
        // of campaigns that never opted into early stopping.
        if let Some(p) = &self.stop_policy {
            m.insert("stop_policy".into(), stop_policy_yaml(p));
        }
        if let Some(fmt) = &self.artifact_format {
            m.insert("format".into(), Yaml::Str(fmt.to_string()));
        }
        if let Some(report) = self.report {
            m.insert("report".into(), Yaml::Bool(report));
        }
        if !self.layer_overrides.is_empty() {
            let mut layers = BTreeMap::new();
            for (pattern, o) in &self.layer_overrides {
                layers.insert(pattern.clone(), layer_override_yaml(o));
            }
            m.insert("layers".into(), Yaml::Map(layers));
        }
        Yaml::Map(m).to_yaml_string()
    }

    /// Loads a scenario from a YAML file.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] if the file cannot be read, plus any
    /// parse/validation error.
    pub fn load(path: impl AsRef<Path>) -> Result<Scenario, ScenarioError> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| ScenarioError::Io(e.to_string()))?;
        Scenario::from_yaml_str(&text)
    }

    /// Saves the scenario as a YAML file.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ScenarioError> {
        std::fs::write(path.as_ref(), self.to_yaml_string())
            .map_err(|e| ScenarioError::Io(e.to_string()))
    }
}

fn invalid(field: &'static str, reason: impl Into<String>) -> ScenarioError {
    ScenarioError::InvalidField { field, reason: reason.into() }
}

fn usize_field(v: &Yaml, field: &'static str) -> Result<usize, ScenarioError> {
    match v.as_i64() {
        Some(i) if i >= 0 => Ok(i as usize),
        _ => Err(invalid(field, "expected a non-negative integer")),
    }
}

fn bit_range(v: &Yaml, field: &'static str) -> Result<(u8, u8), ScenarioError> {
    let list = v.as_list().ok_or_else(|| invalid(field, "expected `[low, high]`"))?;
    if list.len() != 2 {
        return Err(invalid(field, "expected exactly two entries"));
    }
    let lo = list[0].as_i64().ok_or_else(|| invalid(field, "bounds must be integers"))?;
    let hi = list[1].as_i64().ok_or_else(|| invalid(field, "bounds must be integers"))?;
    if !(0..=31).contains(&lo) || !(0..=31).contains(&hi) || lo > hi {
        return Err(invalid(field, "bounds must satisfy 0 <= low <= high <= 31"));
    }
    Ok((lo as u8, hi as u8))
}

fn parse_fault_mode(v: &Yaml) -> Result<FaultMode, ScenarioError> {
    let mode = v
        .get("mode")
        .and_then(Yaml::as_str)
        .ok_or_else(|| invalid("fault_mode", "missing `mode` key"))?;
    match mode {
        "bitflip" => {
            let range = v
                .get("rnd_bit_range")
                .map(|r| bit_range(r, "fault_mode"))
                .transpose()?
                .unwrap_or((0, 31));
            Ok(FaultMode::BitFlip { bit_range: range })
        }
        "stuck_at" => {
            let range = v
                .get("rnd_bit_range")
                .map(|r| bit_range(r, "fault_mode"))
                .transpose()?
                .unwrap_or((0, 31));
            let stuck_high = v
                .get("stuck_high")
                .map(|b| b.as_bool().ok_or_else(|| invalid("fault_mode", "stuck_high must be a boolean")))
                .transpose()?
                .unwrap_or(true);
            Ok(FaultMode::StuckAt { bit_range: range, stuck_high })
        }
        "random_value" => {
            let min = v
                .get("min")
                .and_then(Yaml::as_f64)
                .ok_or_else(|| invalid("fault_mode", "random_value requires numeric `min`"))?;
            let max = v
                .get("max")
                .and_then(Yaml::as_f64)
                .ok_or_else(|| invalid("fault_mode", "random_value requires numeric `max`"))?;
            // NaN min/max must be rejected too: NaN compares false on
            // both orderings, so only a definite min<=max passes.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(min <= max) {
                return Err(invalid("fault_mode", "min must not exceed max"));
            }
            Ok(FaultMode::RandomValue { min: min as f32, max: max as f32 })
        }
        "quant_step" => {
            let bits = v
                .get("bits")
                .map(|b| usize_field(b, "fault_mode"))
                .transpose()?
                .unwrap_or(8);
            if !(2..=16).contains(&bits) {
                return Err(invalid("fault_mode", "quant_step bits must be in [2, 16]"));
            }
            let amax = v
                .get("amax")
                .and_then(Yaml::as_f64)
                .ok_or_else(|| invalid("fault_mode", "quant_step requires numeric `amax`"))?;
            if !(amax > 0.0 && amax.is_finite()) {
                return Err(invalid("fault_mode", "quant_step amax must be finite and > 0"));
            }
            let range = v
                .get("rnd_bit_range")
                .map(|r| bit_range(r, "fault_mode"))
                .transpose()?
                .unwrap_or((0, bits as u8 - 1));
            if range.1 as usize >= bits {
                return Err(invalid(
                    "fault_mode",
                    format!("rnd_bit_range high bound must be below bits ({bits})"),
                ));
            }
            Ok(FaultMode::QuantStep { bits: bits as u8, amax: amax as f32, bit_range: range })
        }
        other => Err(invalid("fault_mode", format!("unknown mode `{other}`"))),
    }
}

fn parse_layer_override(v: &Yaml) -> Result<LayerOverride, ScenarioError> {
    if !matches!(v, Yaml::Map(_)) {
        return Err(invalid("layers", "each override must be a map"));
    }
    let mut o = LayerOverride::default();
    if let Some(r) = v.get("rate") {
        let rate = r.as_f64().ok_or_else(|| invalid("layers", "rate must be a number"))?;
        if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
            return Err(invalid("layers", "rate must be in [0, 1]"));
        }
        o.rate = Some(rate);
    }
    if let Some(m) = v.get("mode").or_else(|| v.get("fault_mode")) {
        o.mode = Some(parse_fault_mode(m)?);
    }
    if let Some(c) = v.get("channels") {
        let list = c.as_list().ok_or_else(|| invalid("layers", "channels must be `[low, high]`"))?;
        if list.len() != 2 {
            return Err(invalid("layers", "channels must have exactly two entries"));
        }
        let lo = usize_field(&list[0], "layers")?;
        let hi = usize_field(&list[1], "layers")?;
        if lo > hi {
            return Err(invalid("layers", "channels low bound exceeds high bound"));
        }
        o.channel_range = Some((lo, hi));
    }
    if o.is_empty() {
        return Err(invalid("layers", "override sets none of rate/mode/channels"));
    }
    Ok(o)
}

fn layer_override_yaml(o: &LayerOverride) -> Yaml {
    let mut map = BTreeMap::new();
    if let Some(rate) = o.rate {
        map.insert("rate".into(), Yaml::Float(rate));
    }
    if let Some(mode) = &o.mode {
        map.insert("mode".into(), fault_mode_yaml(mode));
    }
    if let Some((lo, hi)) = o.channel_range {
        map.insert("channels".into(), Yaml::List(vec![Yaml::Int(lo as i64), Yaml::Int(hi as i64)]));
    }
    Yaml::Map(map)
}

fn parse_stop_policy(v: &Yaml) -> Result<StopPolicy, ScenarioError> {
    let mut p = StopPolicy::default();
    if let Some(hw) = v.get("half_width") {
        p.half_width = hw
            .as_f64()
            .ok_or_else(|| invalid("stop_policy.half_width", "expected a number"))?;
    }
    if let Some(c) = v.get("confidence") {
        p.confidence = c
            .as_f64()
            .ok_or_else(|| invalid("stop_policy.confidence", "expected a number"))?;
    }
    if let Some(m) = v.get("min_samples") {
        p.min_samples = usize_field(m, "stop_policy.min_samples")?;
    }
    if let Some(c) = v.get("check_every") {
        p.check_every = usize_field(c, "stop_policy.check_every")?;
    }
    if let Some(s) = v.get("scope") {
        p.scope = match s.as_str() {
            Some("campaign") => StopScope::Campaign,
            Some("per_layer") => StopScope::PerLayer,
            _ => return Err(invalid("stop_policy.scope", "expected `campaign` or `per_layer`")),
        };
    }
    if let Some(m) = v.get("method") {
        p.method = match m.as_str() {
            Some("wilson") => CiMethod::Wilson,
            Some("clopper_pearson") => CiMethod::ClopperPearson,
            _ => {
                return Err(invalid(
                    "stop_policy.method",
                    "expected `wilson` or `clopper_pearson`",
                ))
            }
        };
    }
    p.validate()?;
    Ok(p)
}

fn stop_policy_yaml(p: &StopPolicy) -> Yaml {
    let mut map = BTreeMap::new();
    map.insert("half_width".into(), Yaml::Float(p.half_width));
    map.insert("confidence".into(), Yaml::Float(p.confidence));
    map.insert("min_samples".into(), Yaml::Int(p.min_samples as i64));
    map.insert("check_every".into(), Yaml::Int(p.check_every as i64));
    map.insert("scope".into(), Yaml::Str(p.scope.to_string()));
    map.insert("method".into(), Yaml::Str(p.method.to_string()));
    Yaml::Map(map)
}

fn fault_mode_yaml(m: &FaultMode) -> Yaml {
    let mut map = BTreeMap::new();
    match m {
        FaultMode::BitFlip { bit_range } => {
            map.insert("mode".into(), Yaml::Str("bitflip".into()));
            map.insert(
                "rnd_bit_range".into(),
                Yaml::List(vec![Yaml::Int(bit_range.0 as i64), Yaml::Int(bit_range.1 as i64)]),
            );
        }
        FaultMode::StuckAt { bit_range, stuck_high } => {
            map.insert("mode".into(), Yaml::Str("stuck_at".into()));
            map.insert(
                "rnd_bit_range".into(),
                Yaml::List(vec![Yaml::Int(bit_range.0 as i64), Yaml::Int(bit_range.1 as i64)]),
            );
            map.insert("stuck_high".into(), Yaml::Bool(*stuck_high));
        }
        FaultMode::RandomValue { min, max } => {
            map.insert("mode".into(), Yaml::Str("random_value".into()));
            map.insert("min".into(), Yaml::Float(*min as f64));
            map.insert("max".into(), Yaml::Float(*max as f64));
        }
        FaultMode::QuantStep { bits, amax, bit_range } => {
            map.insert("mode".into(), Yaml::Str("quant_step".into()));
            map.insert("bits".into(), Yaml::Int(*bits as i64));
            map.insert("amax".into(), Yaml::Float(*amax as f64));
            map.insert(
                "rnd_bit_range".into(),
                Yaml::List(vec![Yaml::Int(bit_range.0 as i64), Yaml::Int(bit_range.1 as i64)]),
            );
        }
    }
    Yaml::Map(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_round_trips() {
        let s = Scenario::default();
        let back = Scenario::from_yaml_str(&s.to_yaml_string()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn all_variants_round_trip() {
        let mut s = Scenario {
            dataset_size: 512,
            num_runs: 3,
            faults_per_image: FaultCount::Fraction(0.001),
            batch_size: 8,
            injection_target: InjectionTarget::Weights,
            injection_policy: InjectionPolicy::PerEpoch,
            fault_duration: FaultDuration::Permanent,
            fault_mode: FaultMode::StuckAt { bit_range: (23, 30), stuck_high: false },
            layer_types: vec![LayerType::Conv2d],
            layer_range: Some((2, 7)),
            weighted_layer_selection: false,
            seed: 42,
            stop_policy: Some(StopPolicy {
                half_width: 0.02,
                confidence: 0.99,
                min_samples: 64,
                check_every: 8,
                scope: StopScope::PerLayer,
                method: CiMethod::ClopperPearson,
            }),
            artifact_format: Some(ArtifactFormat::Binary),
            report: Some(true),
            layer_overrides: BTreeMap::from([
                (
                    "features*".to_string(),
                    LayerOverride {
                        rate: Some(0.25),
                        mode: Some(FaultMode::QuantStep {
                            bits: 8,
                            amax: 4.0,
                            bit_range: (0, 7),
                        }),
                        channel_range: Some((0, 3)),
                    },
                ),
                ("2-5".to_string(), LayerOverride { rate: Some(0.5), ..Default::default() }),
            ]),
        };
        let back = Scenario::from_yaml_str(&s.to_yaml_string()).unwrap();
        assert_eq!(s, back);
        s.fault_mode = FaultMode::RandomValue { min: -2.5, max: 7.25 };
        let back = Scenario::from_yaml_str(&s.to_yaml_string()).unwrap();
        assert_eq!(s, back);
        s.fault_mode = FaultMode::QuantStep { bits: 6, amax: 2.5, bit_range: (1, 5) };
        let back = Scenario::from_yaml_str(&s.to_yaml_string()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn quant_step_defaults_and_validation() {
        let s = Scenario::from_yaml_str("fault_mode:\n  mode: quant_step\n  amax: 2.0\n").unwrap();
        assert_eq!(s.fault_mode, FaultMode::QuantStep { bits: 8, amax: 2.0, bit_range: (0, 7) });
        for bad in [
            "fault_mode:\n  mode: quant_step\n", // amax missing
            "fault_mode:\n  mode: quant_step\n  amax: 0\n",
            "fault_mode:\n  mode: quant_step\n  amax: -1.5\n",
            "fault_mode:\n  mode: quant_step\n  amax: 2.0\n  bits: 1\n",
            "fault_mode:\n  mode: quant_step\n  amax: 2.0\n  bits: 33\n",
            "fault_mode:\n  mode: quant_step\n  amax: 2.0\n  bits: 4\n  rnd_bit_range: [0, 4]\n",
        ] {
            assert!(Scenario::from_yaml_str(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn layer_overrides_absent_by_default_and_omitted_from_yaml() {
        let s = Scenario::default();
        assert!(s.layer_overrides.is_empty());
        assert!(!s.to_yaml_string().contains("layers"));
        // Explicit null keeps the map empty.
        let s = Scenario::from_yaml_str("layers: null\n").unwrap();
        assert!(s.layer_overrides.is_empty());
    }

    #[test]
    fn layer_overrides_parse_and_round_trip() {
        let text = "\
layers:
  features.3:
    rate: 0.5
    channels: [0, 15]
  head:
    mode:
      mode: quant_step
      amax: 4.0
      bits: 8
";
        let s = Scenario::from_yaml_str(text).unwrap();
        assert_eq!(s.layer_overrides.len(), 2);
        let f3 = &s.layer_overrides["features.3"];
        assert_eq!(f3.rate, Some(0.5));
        assert_eq!(f3.channel_range, Some((0, 15)));
        assert_eq!(f3.mode, None);
        let head = &s.layer_overrides["head"];
        assert_eq!(head.mode, Some(FaultMode::QuantStep { bits: 8, amax: 4.0, bit_range: (0, 7) }));
        let back = Scenario::from_yaml_str(&s.to_yaml_string()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn layer_overrides_reject_invalid_entries() {
        for bad in [
            "layers: 7\n",
            "layers:\n  conv1: 3\n",
            "layers:\n  conv1:\n    rate: 1.5\n",
            "layers:\n  conv1:\n    rate: -0.1\n",
            "layers:\n  conv1:\n    channels: [5, 2]\n",
            "layers:\n  conv1:\n    channels: [1]\n",
            "layers:\n  conv1:\n    mode:\n      mode: wat\n",
            "layers:\n  conv1: {}\n",
        ] {
            assert!(Scenario::from_yaml_str(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn missing_fields_take_defaults() {
        let s = Scenario::from_yaml_str("dataset_size: 7\n").unwrap();
        assert_eq!(s.dataset_size, 7);
        assert_eq!(s.num_runs, Scenario::default().num_runs);
        assert_eq!(s.fault_mode, FaultMode::any_bit_flip());
    }

    #[test]
    fn paper_style_document_parses() {
        let text = "\
# PyTorchALFI-style scenario
dataset_size: 1000
num_runs: 1
max_faults_per_image: 1
injection_target: weights
injection_policy: per_image
fault_mode:
  mode: bitflip
  rnd_bit_range: [23, 30]
layer_types:
  - conv2d
  - linear
weighted_layer_selection: true
seed: 1234
";
        let s = Scenario::from_yaml_str(text).unwrap();
        assert_eq!(s.injection_target, InjectionTarget::Weights);
        assert_eq!(s.fault_mode, FaultMode::exponent_bit_flip());
        assert_eq!(s.layer_types, vec![LayerType::Conv2d, LayerType::Linear]);
        assert_eq!(s.seed, 1234);
    }

    #[test]
    fn total_faults_is_product_of_a_b_c() {
        let mut s = Scenario::default();
        s.dataset_size = 10;
        s.num_runs = 3;
        s.faults_per_image = FaultCount::Fixed(5);
        assert_eq!(s.total_faults(1_000_000), 150);
        s.faults_per_image = FaultCount::Fraction(0.001);
        assert_eq!(s.total_faults(10_000), 10 * 3 * 10);
    }

    #[test]
    fn fraction_count_is_at_least_one() {
        assert_eq!(FaultCount::Fraction(1e-9).resolve(10), 1);
        assert_eq!(FaultCount::Fixed(0).resolve(10), 0);
    }

    #[test]
    fn invalid_fields_are_rejected() {
        assert!(Scenario::from_yaml_str("injection_target: cpu\n").is_err());
        assert!(Scenario::from_yaml_str("injection_policy: sometimes\n").is_err());
        assert!(Scenario::from_yaml_str("fault_duration: flaky\n").is_err());
        assert!(Scenario::from_yaml_str("dataset_size: -1\n").is_err());
        assert!(Scenario::from_yaml_str("batch_size: 0\n").is_err());
        assert!(Scenario::from_yaml_str("layer_types: []\n").is_err());
        assert!(Scenario::from_yaml_str("layer_range: [5, 2]\n").is_err());
        assert!(Scenario::from_yaml_str("fault_mode:\n  mode: wat\n").is_err());
        assert!(Scenario::from_yaml_str("fault_mode:\n  mode: bitflip\n  rnd_bit_range: [0, 40]\n").is_err());
        assert!(Scenario::from_yaml_str("fault_mode:\n  mode: random_value\n  min: 3\n  max: 1\n").is_err());
        assert!(Scenario::from_yaml_str("max_faults_per_image: 1.5\n").is_err());
    }

    #[test]
    fn stop_policy_absent_by_default_and_omitted_from_yaml() {
        let s = Scenario::default();
        assert_eq!(s.stop_policy, None);
        assert!(!s.to_yaml_string().contains("stop_policy"));
    }

    #[test]
    fn stop_policy_parses_with_partial_keys() {
        let s = Scenario::from_yaml_str("stop_policy:\n  half_width: 0.1\n").unwrap();
        let p = s.stop_policy.unwrap();
        assert_eq!(p.half_width, 0.1);
        assert_eq!(p.confidence, StopPolicy::default().confidence);
        assert_eq!(p.scope, StopScope::Campaign);
        assert_eq!(p.method, CiMethod::Wilson);
        // Explicit null keeps the policy off.
        let s = Scenario::from_yaml_str("stop_policy: null\n").unwrap();
        assert_eq!(s.stop_policy, None);
    }

    #[test]
    fn stop_policy_rejects_out_of_range_fields() {
        for bad in [
            "stop_policy:\n  half_width: 0.0\n",
            "stop_policy:\n  half_width: 0.7\n",
            "stop_policy:\n  confidence: 1.0\n",
            "stop_policy:\n  min_samples: 0\n",
            "stop_policy:\n  check_every: 0\n",
            "stop_policy:\n  scope: sometimes\n",
            "stop_policy:\n  method: gaussian\n",
        ] {
            let e = Scenario::from_yaml_str(bad).unwrap_err();
            assert!(e.to_string().contains("stop_policy"), "{bad}: {e}");
        }
    }

    #[test]
    fn artifact_format_parses_and_is_omitted_by_default() {
        let s = Scenario::default();
        assert_eq!(s.artifact_format, None);
        assert!(!s.to_yaml_string().contains("format"));

        let s = Scenario::from_yaml_str("format: binary\n").unwrap();
        assert_eq!(s.artifact_format, Some(ArtifactFormat::Binary));
        assert!(s.to_yaml_string().contains("format: binary"));
        let back = Scenario::from_yaml_str(&s.to_yaml_string()).unwrap();
        assert_eq!(s, back);

        let s = Scenario::from_yaml_str("format: csv\n").unwrap();
        assert_eq!(s.artifact_format, Some(ArtifactFormat::Csv));
        let s = Scenario::from_yaml_str("format: null\n").unwrap();
        assert_eq!(s.artifact_format, None);
        assert!(Scenario::from_yaml_str("format: parquet\n").is_err());
        assert_eq!("binary".parse::<ArtifactFormat>().unwrap(), ArtifactFormat::Binary);
        assert!("xml".parse::<ArtifactFormat>().is_err());
    }

    #[test]
    fn report_key_parses_and_is_omitted_by_default() {
        let s = Scenario::default();
        assert_eq!(s.report, None);
        assert!(!s.to_yaml_string().contains("report"));

        let s = Scenario::from_yaml_str("report: true\n").unwrap();
        assert_eq!(s.report, Some(true));
        assert!(s.to_yaml_string().contains("report: true"));
        let back = Scenario::from_yaml_str(&s.to_yaml_string()).unwrap();
        assert_eq!(s, back);

        let s = Scenario::from_yaml_str("report: false\n").unwrap();
        assert_eq!(s.report, Some(false));
        let s = Scenario::from_yaml_str("report: null\n").unwrap();
        assert_eq!(s.report, None);
        assert!(Scenario::from_yaml_str("report: maybe\n").is_err());
    }

    #[test]
    fn fractional_faults_parse_from_float() {
        let s = Scenario::from_yaml_str("max_faults_per_image: 0.01\n").unwrap();
        assert_eq!(s.faults_per_image, FaultCount::Fraction(0.01));
    }

    #[test]
    fn save_and_load_files() {
        let dir = std::env::temp_dir().join("alfi_scenario_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("default.yml");
        let s = Scenario { seed: 77, ..Scenario::default() };
        s.save(&path).unwrap();
        let back = Scenario::load(&path).unwrap();
        assert_eq!(s, back);
        assert!(Scenario::load(dir.join("missing.yml")).is_err());
    }

    #[test]
    fn error_messages_name_the_field() {
        let e = Scenario::from_yaml_str("seed: notanumber\n").unwrap_err();
        assert!(e.to_string().contains("seed"));
    }
}
