//! Property-based tests for range-supervision invariants, running on the
//! in-tree `alfi-check` harness.

use alfi_check::{check_with, gen};
use alfi_mitigation::{harden, profile_bounds, Bounds, Protection};
use alfi_nn::{Conv2d, Layer, Linear, Network};
use alfi_rng::Rng;
use alfi_tensor::conv::ConvConfig;
use alfi_tensor::Tensor;

const CASES: usize = 24;

fn small_net(seed: u64) -> Network {
    let mut rng = Rng::from_seed(seed);
    let mut net = Network::new("small");
    let conv = Layer::Conv2d(Conv2d {
        weight: Tensor::rand_uniform(&mut rng, &[3, 2, 3, 3], -0.5, 0.5),
        bias: Some(Tensor::rand_uniform(&mut rng, &[3], -0.1, 0.1)),
        cfg: ConvConfig { stride: 1, padding: 1, dilation: 1 },
    });
    let c = net.push("conv", conv, &[]).unwrap();
    let r = net.push("relu", Layer::Relu, &[c]).unwrap();
    let f = net.push("flatten", Layer::Flatten, &[r]).unwrap();
    let lin = Layer::Linear(Linear {
        weight: Tensor::rand_uniform(&mut rng, &[4, 3 * 16], -0.3, 0.3),
        bias: None,
    });
    let l = net.push("fc", lin, &[f]).unwrap();
    net.set_output(l).unwrap();
    net
}

/// Hardening is transparent on any input drawn from the same
/// distribution the bounds were profiled on.
#[test]
fn hardening_is_transparent_in_distribution() {
    check_with(CASES, "hardening_is_transparent_in_distribution", |rng| {
        let net_seed = gen::any_u64(rng);
        let input_seed = gen::any_u64(rng);
        let net = small_net(net_seed);
        let mut input_rng = Rng::from_seed(input_seed);
        let calib: Vec<Tensor> =
            (0..6).map(|_| Tensor::rand_uniform(&mut input_rng, &[1, 2, 4, 4], 0.0, 1.0)).collect();
        let bounds = profile_bounds(&net, calib.iter()).unwrap();
        for protection in [Protection::Ranger, Protection::Clipper] {
            let hardened = harden(&net, &bounds, protection, 0.05).unwrap();
            for x in &calib {
                let a = net.forward(x).unwrap();
                let b = hardened.forward(x).unwrap();
                assert!(a.max_abs_diff(&b).unwrap() < 1e-5);
            }
        }
    });
}

/// Ranger output is always within the profiled bounds (+margin) at
/// every protected node, no matter how corrupted the weights are.
#[test]
fn ranger_output_respects_bounds_under_any_corruption() {
    check_with(CASES, "ranger_output_respects_bounds_under_any_corruption", |rng| {
        let net_seed = gen::any_u64(rng);
        let corrupt: f32 = rng.gen_range(-1.0e30f32..1.0e30);
        let margin: f32 = rng.gen_range(0.0f32..0.5);
        let mut net = small_net(net_seed);
        let x = Tensor::rand_uniform(&mut Rng::from_seed(1), &[1, 2, 4, 4], 0.0, 1.0);
        let bounds = profile_bounds(&net, std::iter::once(&x)).unwrap();
        // corrupt the conv weight with an arbitrary huge value
        net.layer_mut(0).unwrap().weight_mut().unwrap().set(&[0, 0, 0, 0], corrupt);
        let hardened = harden(&net, &bounds, Protection::Ranger, margin).unwrap();
        let out = hardened.forward(&x).unwrap();
        // the final protected node is the fc output's upstream relu; the
        // final output is linear over clamped values, so it is bounded by
        // weight-norm * clamped-range — most importantly it is finite.
        assert!(!out.has_non_finite());
    });
}

/// With a huge margin no clamp ever binds: the hardened model is
/// exactly the free model, even far out of distribution.
#[test]
fn huge_margin_never_binds() {
    check_with(CASES, "huge_margin_never_binds", |rng| {
        let net_seed = gen::any_u64(rng);
        let scale: f32 = rng.gen_range(1.0f32..20.0);
        let net = small_net(net_seed);
        let x = Tensor::rand_uniform(&mut Rng::from_seed(2), &[1, 2, 4, 4], 0.0, 1.0);
        let bounds = profile_bounds(&net, std::iter::once(&x)).unwrap();
        let probe = x.scale(scale); // out of the profiled distribution
        let free = net.forward(&probe).unwrap();
        let wide = harden(&net, &bounds, Protection::Ranger, 1.0e6).unwrap()
            .forward(&probe)
            .unwrap();
        assert!(wide.max_abs_diff(&free).unwrap() < 1e-5);
    });
}

/// Empty bounds never panic and never modify the graph.
#[test]
fn empty_bounds_are_noop() {
    check_with(CASES, "empty_bounds_are_noop", |rng| {
        let net_seed = gen::any_u64(rng);
        let net = small_net(net_seed);
        let hardened = harden(&net, &Bounds::new(), Protection::Clipper, 0.1).unwrap();
        assert_eq!(hardened.num_nodes(), net.num_nodes());
    });
}
