#![warn(missing_docs)]
//! # alfi-mitigation
//!
//! Activation-range supervision — the Ranger/Clipper hardening of
//! Geissler et al. (paper reference \[6\]) that PyTorchALFI's "enhanced
//! model" slot compares against.
//!
//! Workflow:
//!
//! 1. [`profile_bounds`] runs fault-free inference over calibration
//!    inputs and records each layer's healthy `(min, max)` activation
//!    range.
//! 2. [`harden`] clones the model and splices a
//!    [`Layer::RangeRestrict`] node after every protected layer.
//!    Out-of-range values — the signature of exponent-bit corruptions —
//!    are clipped to the bound (**Ranger**) or zeroed (**Clipper**),
//!    while in-range activations pass through untouched.
//!
//! Because protection nodes are non-injectable, a hardened model exposes
//! exactly the same injectable-layer list as the original, so identical
//! fault records can be armed on both — the precondition for the paper's
//! tightly-coupled three-model comparison.
//!
//! # Example
//!
//! ```
//! use alfi_mitigation::{harden, profile_bounds, Protection};
//! use alfi_nn::models::{alexnet, ModelConfig};
//! use alfi_tensor::Tensor;
//!
//! let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
//! let model = alexnet(&cfg);
//! let calib = [Tensor::ones(&cfg.input_dims(1))];
//! let bounds = profile_bounds(&model, calib.iter())?;
//! let hardened = harden(&model, &bounds, Protection::Ranger, 0.1)?;
//! assert!(hardened.num_nodes() > model.num_nodes());
//! # Ok::<(), alfi_nn::NnError>(())
//! ```

use alfi_nn::{Layer, Network, NnError, NodeId, RestrictMode};
use alfi_tensor::{gemm, Tensor};
use std::collections::BTreeMap;

/// Which range-supervision strategy to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protection {
    /// Clip out-of-range activations to the profiled bound.
    Ranger,
    /// Zero out-of-range activations.
    Clipper,
}

impl Protection {
    fn restrict_mode(self) -> RestrictMode {
        match self {
            Protection::Ranger => RestrictMode::Clip,
            Protection::Clipper => RestrictMode::Zero,
        }
    }

    /// The equivalent clamp mode for the kernel-epilogue form of this
    /// protection ([`harden_fused`]).
    pub fn clamp_mode(self) -> gemm::ClampMode {
        self.restrict_mode().into()
    }
}

/// Widens a profiled bound by the relative `margin` — shared by both
/// hardening forms so spliced and fused clamps use bit-identical
/// bounds.
fn widen(lo: f32, hi: f32, margin: f32) -> (f32, f32) {
    let span = (hi - lo).max(f32::MIN_POSITIVE);
    (lo - margin * span, hi + margin * span)
}

/// Per-node healthy activation bounds observed during profiling.
pub type Bounds = BTreeMap<NodeId, (f32, f32)>;

/// Profiles the healthy activation range of every node by running the
/// model over fault-free calibration inputs.
///
/// # Errors
///
/// Propagates forward-pass errors from the model.
pub fn profile_bounds<'a>(
    model: &Network,
    inputs: impl Iterator<Item = &'a Tensor>,
) -> Result<Bounds, NnError> {
    let mut bounds: Bounds = BTreeMap::new();
    for input in inputs {
        let acts = model.forward_all(input)?;
        for (id, act) in acts.iter().enumerate() {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &v in act.data() {
                if v.is_finite() {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            if lo <= hi {
                let e = bounds.entry(id).or_insert((lo, hi));
                e.0 = e.0.min(lo);
                e.1 = e.1.max(hi);
            }
        }
    }
    Ok(bounds)
}

/// Returns the node ids [`harden`] protects: the outputs of all
/// injectable (conv/linear) layers and all ReLU-family activations —
/// the interception points the Ranger paper instruments.
pub fn protected_nodes(model: &Network) -> Vec<NodeId> {
    model
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            n.layer.kind().is_injectable() || matches!(n.layer, Layer::Relu | Layer::LeakyRelu(_))
        })
        .map(|(id, _)| id)
        .collect()
}

/// Builds a hardened clone of `model`: a [`Layer::RangeRestrict`] node is
/// spliced after every protected node, using the profiled bound widened
/// by `margin` (relative, e.g. `0.1` = ±10 % head-room so borderline
/// healthy activations are never touched).
///
/// # Errors
///
/// Propagates graph-surgery errors (duplicate names cannot occur because
/// protection nodes get fresh `__protect_*` names).
pub fn harden(
    model: &Network,
    bounds: &Bounds,
    protection: Protection,
    margin: f32,
) -> Result<Network, NnError> {
    let mut hardened = model.clone();
    // Insert from the highest node id down so earlier insertions don't
    // shift the ids we still have to process.
    let mut targets = protected_nodes(model);
    targets.sort_unstable_by(|a, b| b.cmp(a));
    for node_id in targets {
        let Some(&(lo, hi)) = bounds.get(&node_id) else {
            continue; // never observed (e.g. dead branch): leave unprotected
        };
        let (lo, hi) = widen(lo, hi, margin);
        let name = format!("__protect_{node_id}");
        hardened.insert_after(
            node_id,
            name,
            Layer::RangeRestrict { lo, hi, mode: protection.restrict_mode() },
        )?;
    }
    Ok(hardened)
}

/// Builds a hardened clone of `model` with the range clamp **fused
/// into the compute-kernel epilogue** of every protected node instead
/// of spliced in as a separate [`Layer::RangeRestrict`] pass — the
/// hardened forward stops paying a second full pass over activations.
///
/// Bounds, margin widening and clamp semantics are bit-identical to
/// [`harden`]; on a hook-free model the two hardened forms produce
/// bit-identical outputs. They differ observably only when forward
/// hooks are registered on protected nodes: the fused clamp runs
/// *before* a node's hooks (it is part of the kernel), while a spliced
/// protection node runs after them. Campaigns that inject through
/// hooks on protected layers should use [`harden`]; fault-free or
/// weight-fault evaluation can use the fused form for speed. The graph
/// is unchanged (`num_nodes` stays identical), so layer names, node
/// ids and the injectable-layer list are trivially preserved.
///
/// # Errors
///
/// Propagates [`NnError::NoSuchNode`] if `bounds` references a node
/// outside the model (cannot occur for bounds from [`profile_bounds`]).
pub fn harden_fused(
    model: &Network,
    bounds: &Bounds,
    protection: Protection,
    margin: f32,
) -> Result<Network, NnError> {
    let mut hardened = model.clone();
    for node_id in protected_nodes(model) {
        let Some(&(lo, hi)) = bounds.get(&node_id) else {
            continue; // never observed (e.g. dead branch): leave unprotected
        };
        let (lo, hi) = widen(lo, hi, margin);
        hardened.set_fused_clamp(
            node_id,
            gemm::Clamp { lo, hi, mode: protection.clamp_mode() },
        )?;
    }
    Ok(hardened)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_nn::models::{alexnet, ModelConfig};
    use alfi_nn::{Conv2d, Linear};
    use alfi_tensor::conv::ConvConfig;
    use alfi_rng::Rng;

    fn tiny_cfg() -> ModelConfig {
        ModelConfig { input_hw: 16, width_mult: 0.0625, ..ModelConfig::default() }
    }

    fn calib(cfg: &ModelConfig, n: usize) -> Vec<Tensor> {
        let mut rng = Rng::from_seed(11);
        (0..n).map(|_| Tensor::rand_uniform(&mut rng, &cfg.input_dims(1), 0.0, 1.0)).collect()
    }

    #[test]
    fn profiled_bounds_cover_observed_activations() {
        let cfg = tiny_cfg();
        let model = alexnet(&cfg);
        let inputs = calib(&cfg, 3);
        let bounds = profile_bounds(&model, inputs.iter()).unwrap();
        assert_eq!(bounds.len(), model.num_nodes());
        let acts = model.forward_all(&inputs[0]).unwrap();
        for (id, act) in acts.iter().enumerate() {
            let (lo, hi) = bounds[&id];
            assert!(act.min() >= lo - 1e-6 && act.max() <= hi + 1e-6, "node {id}");
        }
    }

    #[test]
    fn hardened_model_is_transparent_on_healthy_inputs() {
        let cfg = tiny_cfg();
        let model = alexnet(&cfg);
        let inputs = calib(&cfg, 4);
        let bounds = profile_bounds(&model, inputs.iter()).unwrap();
        for protection in [Protection::Ranger, Protection::Clipper] {
            let hardened = harden(&model, &bounds, protection, 0.05).unwrap();
            for x in &inputs {
                let a = model.forward(x).unwrap();
                let b = hardened.forward(x).unwrap();
                assert!(
                    a.max_abs_diff(&b).unwrap() < 1e-5,
                    "{protection:?} altered healthy activations"
                );
            }
        }
    }

    #[test]
    fn hardened_model_suppresses_huge_corruptions() {
        // A 1-conv model: corrupt its weight by an exponent flip and
        // verify the protected output stays within profiled bounds.
        let mut net = Network::new("one_conv");
        let conv = Layer::Conv2d(Conv2d {
            weight: Tensor::full(&[1, 1, 1, 1], 0.5),
            bias: None,
            cfg: ConvConfig::default(),
        });
        let c = net.push("conv", conv, &[]).unwrap();
        let r = net.push("relu", Layer::Relu, &[c]).unwrap();
        net.set_output(r).unwrap();
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let bounds = profile_bounds(&net, std::iter::once(&x)).unwrap();

        let mut corrupted = net.clone();
        let w = corrupted.layer_mut(c).unwrap().weight_mut().unwrap();
        w.set(&[0, 0, 0, 0], alfi_tensor::bits::flip_bit(0.5, 30)); // huge value
        let bad = corrupted.forward(&x).unwrap();
        assert!(bad.max() > 1.0e10);

        let hardened_corrupt = harden(&corrupted, &bounds, Protection::Ranger, 0.1).unwrap();
        let fixed = hardened_corrupt.forward(&x).unwrap();
        let (_, hi) = bounds[&c];
        assert!(fixed.max() <= hi * 1.2 + 1e-6, "ranger must clamp the explosion");

        let clipper = harden(&corrupted, &bounds, Protection::Clipper, 0.1).unwrap();
        assert_eq!(clipper.forward(&x).unwrap().max(), 0.0, "clipper zeroes the corruption");
    }

    #[test]
    fn hardening_preserves_injectable_layer_list() {
        let cfg = tiny_cfg();
        let model = alexnet(&cfg);
        let bounds = profile_bounds(&model, calib(&cfg, 1).iter()).unwrap();
        let hardened = harden(&model, &bounds, Protection::Ranger, 0.1).unwrap();
        let a: Vec<String> = model
            .injectable_layers(None, None)
            .unwrap()
            .into_iter()
            .map(|l| l.name)
            .collect();
        let b: Vec<String> = hardened
            .injectable_layers(None, None)
            .unwrap()
            .into_iter()
            .map(|l| l.name)
            .collect();
        assert_eq!(a, b);
        assert!(hardened.num_nodes() > model.num_nodes());
    }

    #[test]
    fn protected_nodes_cover_convs_linears_and_relus() {
        let cfg = tiny_cfg();
        let model = alexnet(&cfg);
        let prot = protected_nodes(&model);
        // alexnet: 5 convs + 3 linears + 7 relus
        assert_eq!(prot.len(), 15);
    }

    #[test]
    fn missing_bounds_leave_nodes_unprotected() {
        let mut net = Network::new("n");
        let a = net.push("relu", Layer::Relu, &[]).unwrap();
        net.set_output(a).unwrap();
        let hardened = harden(&net, &Bounds::new(), Protection::Ranger, 0.1).unwrap();
        assert_eq!(hardened.num_nodes(), net.num_nodes());
    }

    #[test]
    fn fused_hardening_is_bit_identical_to_spliced() {
        let cfg = tiny_cfg();
        let model = alexnet(&cfg);
        let inputs = calib(&cfg, 3);
        let bounds = profile_bounds(&model, inputs.iter()).unwrap();
        for protection in [Protection::Ranger, Protection::Clipper] {
            let spliced = harden(&model, &bounds, protection, 0.1).unwrap();
            let fused = harden_fused(&model, &bounds, protection, 0.1).unwrap();
            assert_eq!(fused.num_nodes(), model.num_nodes(), "fused adds no graph nodes");
            assert!(fused.num_fused() > 0);
            for x in &inputs {
                let a = spliced.forward(x).unwrap();
                let b = fused.forward(x).unwrap();
                assert_eq!(a.dims(), b.dims());
                let bits_equal = a
                    .data()
                    .iter()
                    .zip(b.data().iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(bits_equal, "{protection:?}: fused clamp drifted from spliced clamp");
            }
        }
    }

    #[test]
    fn fused_hardening_suppresses_weight_corruption() {
        let mut net = Network::new("one_conv");
        let conv = Layer::Conv2d(Conv2d {
            weight: Tensor::full(&[1, 1, 1, 1], 0.5),
            bias: None,
            cfg: ConvConfig::default(),
        });
        let c = net.push("conv", conv, &[]).unwrap();
        let r = net.push("relu", Layer::Relu, &[c]).unwrap();
        net.set_output(r).unwrap();
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let bounds = profile_bounds(&net, std::iter::once(&x)).unwrap();

        let mut corrupted = net.clone();
        let w = corrupted.layer_mut(c).unwrap().weight_mut().unwrap();
        w.set(&[0, 0, 0, 0], alfi_tensor::bits::flip_bit(0.5, 30));
        assert!(corrupted.forward(&x).unwrap().max() > 1.0e10);

        let fused = harden_fused(&corrupted, &bounds, Protection::Ranger, 0.1).unwrap();
        let (_, hi) = bounds[&c];
        assert!(fused.forward(&x).unwrap().max() <= hi * 1.2 + 1e-6);
        let clipper = harden_fused(&corrupted, &bounds, Protection::Clipper, 0.1).unwrap();
        assert_eq!(clipper.forward(&x).unwrap().max(), 0.0);
    }

    #[test]
    fn nan_corruption_is_neutralized() {
        let mut net = Network::new("n");
        let a = net
            .push("lin", Layer::Linear(Linear { weight: Tensor::ones(&[2, 2]), bias: None }), &[])
            .unwrap();
        net.set_output(a).unwrap();
        let x = Tensor::ones(&[1, 2]);
        let bounds = profile_bounds(&net, std::iter::once(&x)).unwrap();
        let mut corrupted = net.clone();
        corrupted.layer_mut(a).unwrap().weight_mut().unwrap().set(&[0, 0], f32::NAN);
        assert!(corrupted.forward(&x).unwrap().has_non_finite());
        let hardened = harden(&corrupted, &bounds, Protection::Clipper, 0.0).unwrap();
        assert!(!hardened.forward(&x).unwrap().has_non_finite());
    }
}
