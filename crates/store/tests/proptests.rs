//! Property-based tests for the columnar codec and the replay index,
//! running on the in-tree `alfi-check` harness.
//!
//! The two headline properties from the store contract:
//!
//! 1. **Round-trip**: any schema-conforming row set — including `f32`
//!    cells drawn from raw random bit patterns, so NaN payloads and
//!    infinities are common — decodes back cell-for-cell identical
//!    (`F32` equality is bit-pattern equality).
//! 2. **Index lookup == full scan**: for any fault id,
//!    `lookup_fault(id)` returns exactly the rows a full `scan`
//!    filtered by that id would.

use alfi_check::{check_with, gen};
use alfi_rng::Rng;
use alfi_store::{
    ColumnSpec, ColumnType, Encoding, RowKey, Schema, StoreReader, StoreWriter, Value,
};

const CASES: usize = 64;

fn temp_path(name: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("alfi_store_proptests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}_{case}.alfic"))
}

fn arb_column(rng: &mut Rng, idx: usize) -> ColumnSpec {
    let (ty, encoding) = match rng.gen_range(0u8..7) {
        0 => (ColumnType::U8, Encoding::Plain),
        1 => (ColumnType::U32, Encoding::Plain),
        2 => (ColumnType::U32, Encoding::Delta),
        3 => (ColumnType::U64, Encoding::Plain),
        4 => (ColumnType::U64, Encoding::Delta),
        5 => (ColumnType::F32, Encoding::Plain),
        _ => {
            if gen::any_bool(rng) {
                (ColumnType::Str, Encoding::Plain)
            } else {
                (ColumnType::Str, Encoding::Prefix)
            }
        }
    };
    ColumnSpec::new(format!("col{idx}"), ty, encoding)
}

fn arb_cell(rng: &mut Rng, ty: ColumnType) -> Value {
    match ty {
        ColumnType::U8 => Value::U8(rng.gen_range(0u32..256) as u8),
        ColumnType::U32 => Value::U32(gen::any_u64(rng) as u32),
        ColumnType::U64 => Value::U64(gen::any_u64(rng)),
        // Raw bit patterns: ~0.4% NaNs and infinities arise naturally,
        // plus we force them in explicitly every few cells.
        ColumnType::F32 => Value::F32(match rng.gen_range(0u8..8) {
            0 => f32::NAN,
            1 => f32::from_bits(0x7FC0_0000 | (gen::any_u64(rng) as u32 & 0x003F_FFFF)),
            2 => f32::INFINITY,
            3 => f32::NEG_INFINITY,
            _ => f32::from_bits(gen::any_u64(rng) as u32),
        }),
        ColumnType::Str => {
            Value::Str(gen::string_from(rng, &['a', 'b', '/', '\u{e9}', '0'], 0..12))
        }
    }
}

/// Non-decreasing fault ids with duplicates, random epoch/batch.
fn arb_keys(rng: &mut Rng, rows: usize) -> Vec<RowKey> {
    let mut fault = 0u64;
    (0..rows)
        .map(|_| {
            fault += rng.gen_range(0u64..3);
            RowKey::new(rng.gen_range(0u32..4), rng.gen_range(0u32..8), fault)
        })
        .collect()
}

#[test]
fn codec_round_trips_any_rows() {
    let case = std::cell::Cell::new(0u64);
    check_with(CASES, "store_codec_round_trip", |rng| {
        case.set(case.get() + 1);
        let cols: Vec<_> = (0..rng.gen_range(1usize..6)).map(|i| arb_column(rng, i)).collect();
        let schema = Schema::new(cols.clone()).with_meta("kind", "prop");
        let rows_n = rng.gen_range(0usize..70);
        let block_rows = rng.gen_range(1u32..20);
        let keys = arb_keys(rng, rows_n);
        let rows: Vec<Vec<Value>> =
            (0..rows_n).map(|_| cols.iter().map(|c| arb_cell(rng, c.ty)).collect()).collect();

        let path = temp_path("roundtrip", case.get());
        let mut w = StoreWriter::create(&path, schema.clone(), block_rows).unwrap();
        for (k, v) in keys.iter().zip(&rows) {
            w.append(*k, v).unwrap();
        }
        let stats = w.finish().unwrap();
        assert_eq!(stats.rows, rows_n as u64);

        let mut r = StoreReader::open(&path).unwrap();
        assert_eq!(r.schema(), &schema);
        assert_eq!(r.total_rows(), rows_n as u64);
        let back = r.scan().unwrap();
        assert_eq!(back.len(), rows_n);
        for (i, (k, v)) in back.iter().enumerate() {
            assert_eq!(*k, keys[i], "key {i}");
            assert_eq!(*v, rows[i], "row {i}");
        }
        std::fs::remove_file(&path).ok();
    });
}

#[test]
fn index_lookup_equals_full_scan() {
    let case = std::cell::Cell::new(0u64);
    check_with(CASES, "store_lookup_equals_scan", |rng| {
        case.set(case.get() + 1);
        let cols =
            vec![ColumnSpec::new("payload", ColumnType::U64, Encoding::Plain)];
        let schema = Schema::new(cols);
        let rows_n = rng.gen_range(1usize..120);
        let block_rows = rng.gen_range(1u32..16);
        let keys = arb_keys(rng, rows_n);

        let path = temp_path("lookup", case.get());
        let mut w = StoreWriter::create(&path, schema, block_rows).unwrap();
        for (i, k) in keys.iter().enumerate() {
            w.append(*k, &[Value::U64(i as u64)]).unwrap();
        }
        w.finish().unwrap();

        let mut r = StoreReader::open(&path).unwrap();
        let all = r.scan().unwrap();
        let max_id = keys.last().unwrap().fault_id;
        for _ in 0..8 {
            let id = rng.gen_range(0u64..max_id + 2);
            let expect: Vec<_> =
                all.iter().filter(|(k, _)| k.fault_id == id).cloned().collect();
            assert_eq!(r.lookup_fault(id).unwrap(), expect, "fault {id}");
        }
        std::fs::remove_file(&path).ok();
    });
}
