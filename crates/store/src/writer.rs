//! Append-only store writer.

use crate::codec::{
    encode_block_payload, encode_header, encode_index, IndexEntry, END_MAGIC,
};
use crate::crc32;
use crate::error::StoreError;
use crate::schema::{RowKey, Schema, Value};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Default rows per block — small enough that a replay lookup touches
/// a few KiB, large enough that varint/delta streams amortize.
pub const DEFAULT_BLOCK_ROWS: u32 = 256;

/// Summary returned by [`StoreWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Rows appended.
    pub rows: u64,
    /// Total file size in bytes.
    pub bytes: u64,
    /// Blocks written.
    pub blocks: u64,
}

/// Streams rows into a columnar store file: buffers up to `block_rows`
/// rows, encodes them column-by-column into a checksummed block, and
/// writes the block index plus fixed trailer on [`finish`].
///
/// [`finish`]: StoreWriter::finish
pub struct StoreWriter {
    out: BufWriter<File>,
    schema: Schema,
    block_rows: u32,
    offset: u64,
    keys: Vec<RowKey>,
    rows: Vec<Vec<Value>>,
    index: Vec<IndexEntry>,
    total_rows: u64,
    last_fault_id: Option<u64>,
}

impl StoreWriter {
    /// Creates (truncating) a store file and writes its header.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Schema`] for an invalid schema or zero
    /// `block_rows`, [`StoreError::Io`] on filesystem failure.
    pub fn create(
        path: impl AsRef<Path>,
        schema: Schema,
        block_rows: u32,
    ) -> Result<Self, StoreError> {
        schema.validate()?;
        if block_rows == 0 {
            return Err(StoreError::schema("block_rows must be positive"));
        }
        let file = File::create(path.as_ref())?;
        let mut out = BufWriter::new(file);
        let header = encode_header(&schema, block_rows);
        out.write_all(&header)?;
        Ok(StoreWriter {
            out,
            schema,
            block_rows,
            offset: header.len() as u64,
            keys: Vec::new(),
            rows: Vec::new(),
            index: Vec::new(),
            total_rows: 0,
            last_fault_id: None,
        })
    }

    /// The schema this writer enforces.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Appends one row. Cells must match the schema's column types in
    /// order, and `key.fault_id` must be non-decreasing across appends
    /// (the index binary-searches on it).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Schema`] for arity/type/key-order
    /// violations, [`StoreError::Io`] when flushing a full block fails.
    pub fn append(&mut self, key: RowKey, values: &[Value]) -> Result<(), StoreError> {
        if values.len() != self.schema.columns.len() {
            return Err(StoreError::schema(format!(
                "row has {} cells, schema has {} columns",
                values.len(),
                self.schema.columns.len()
            )));
        }
        for (v, c) in values.iter().zip(&self.schema.columns) {
            if v.column_type() != c.ty {
                return Err(StoreError::schema(format!(
                    "cell for column `{}` is {:?}, expected {:?}",
                    c.name,
                    v.column_type(),
                    c.ty
                )));
            }
        }
        if let Some(last) = self.last_fault_id {
            if key.fault_id < last {
                return Err(StoreError::schema(format!(
                    "fault_id must be non-decreasing: {} after {last}",
                    key.fault_id
                )));
            }
        }
        self.last_fault_id = Some(key.fault_id);
        self.keys.push(key);
        self.rows.push(values.to_vec());
        self.total_rows += 1;
        if self.keys.len() as u32 >= self.block_rows {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), StoreError> {
        if self.keys.is_empty() {
            return Ok(());
        }
        let payload = encode_block_payload(&self.schema, &self.keys, &self.rows);
        let crc = crc32(&payload);
        let record_len = 4 + payload.len() as u64 + 4;
        self.out.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.out.write_all(&payload)?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.index.push(IndexEntry {
            offset: self.offset,
            len: record_len as u32,
            rows: self.keys.len() as u32,
            first: self.keys[0],
            last: *self.keys.last().expect("non-empty block"),
        });
        self.offset += record_len;
        self.keys.clear();
        self.rows.clear();
        Ok(())
    }

    /// Flushes the final partial block, writes the index and trailer,
    /// and syncs the file.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn finish(mut self) -> Result<StoreStats, StoreError> {
        self.flush_block()?;
        let index_bytes = encode_index(&self.index);
        let index_offset = self.offset;
        self.out.write_all(&index_bytes)?;
        self.out.write_all(&index_offset.to_le_bytes())?;
        self.out.write_all(&(index_bytes.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc32(&index_bytes).to_le_bytes())?;
        self.out.write_all(&self.total_rows.to_le_bytes())?;
        self.out.write_all(END_MAGIC)?;
        self.out.flush()?;
        let bytes = index_offset + index_bytes.len() as u64 + crate::codec::TRAILER_LEN;
        Ok(StoreStats { rows: self.total_rows, bytes, blocks: self.index.len() as u64 })
    }
}
