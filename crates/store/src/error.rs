//! Typed errors for the columnar store.

use std::fmt;

/// Everything that can go wrong reading or writing a columnar store
/// file.
///
/// `Clone + PartialEq` like the other ALFI error enums so campaign
/// results that embed one stay comparable in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem failure (open/read/write/seek). Carries the rendered
    /// `std::io::Error` so the enum stays `Clone`.
    Io(String),
    /// Structural damage: bad magic, checksum mismatch, truncation,
    /// unknown tags, out-of-order keys.
    Corrupt {
        /// Human-readable description of the damage.
        reason: String,
    },
    /// Schema misuse: duplicate columns, an encoding that does not fit
    /// the column type, or an appended row that does not match the
    /// declared schema.
    Schema {
        /// Human-readable description of the mismatch.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt { reason } => write!(f, "corrupt store file: {reason}"),
            StoreError::Schema { reason } => write!(f, "store schema error: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

impl StoreError {
    /// Shorthand for a [`StoreError::Corrupt`] with a formatted reason.
    pub fn corrupt(reason: impl Into<String>) -> Self {
        StoreError::Corrupt { reason: reason.into() }
    }

    /// Shorthand for a [`StoreError::Schema`] with a formatted reason.
    pub fn schema(reason: impl Into<String>) -> Self {
        StoreError::Schema { reason: reason.into() }
    }
}
