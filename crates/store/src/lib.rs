#![warn(missing_docs)]
//! # alfi-store
//!
//! Append-only **columnar binary result store** for ALFI campaigns —
//! the in-tree (std-only, like `alfi-serde`) persistence format behind
//! `--format binary`. CSV and JSON rows do not survive million-fault
//! campaigns; this format does, while keeping the paper's marquee
//! replay feature: any single image's outcome row is retrievable by
//! its `(epoch, batch, fault_id)` key reading **one block plus the
//! index**, never the whole artifact.
//!
//! ## File layout (format version 1)
//!
//! ```text
//! header   magic "ALFISTO1" · version · block_rows · meta pairs ·
//!          column directory (name, type, encoding) · header crc32
//! blocks*  [u32 payload_len | payload | u32 crc32(payload)]
//!          payload = row_count · 3 implicit key columns
//!          (epoch, batch, fault_id — delta varints) · each user
//!          column (length-prefixed cells + min/max footer)
//! index    one 48-byte entry per block: offset, len, rows,
//!          first/last key — binary-searchable on fault_id
//! trailer  32 bytes: index offset/len/crc · total rows · "ALFIEND1"
//! ```
//!
//! Column encodings: [`Encoding::Plain`] (raw `u8`/LE `f32` bits,
//! LEB128 varints for integers, length-prefixed strings),
//! [`Encoding::Delta`] (zigzag varint deltas for monotone integer
//! columns like image ids) and [`Encoding::Prefix`] (front coding for
//! string columns sharing long prefixes). `f32` cells round-trip
//! bit-exactly, NaN payloads included — campaign outcomes containing
//! NaN/Inf corruptions reproduce byte-identically after conversion
//! back to CSV.
//!
//! ## Example
//!
//! ```
//! use alfi_store::{
//!     ColumnSpec, ColumnType, Encoding, RowKey, Schema, StoreReader, StoreWriter, Value,
//! };
//!
//! let path = std::env::temp_dir().join("alfi_store_doc.alfic");
//! let schema = Schema::new(vec![
//!     ColumnSpec::new("image_id", ColumnType::U64, Encoding::Delta),
//!     ColumnSpec::new("score", ColumnType::F32, Encoding::Plain),
//! ])
//! .with_meta("kind", "doc");
//! let mut w = StoreWriter::create(&path, schema, 256).unwrap();
//! w.append(RowKey::new(0, 0, 0), &[Value::U64(7), Value::F32(0.5)]).unwrap();
//! w.append(RowKey::new(0, 0, 1), &[Value::U64(8), Value::F32(f32::NAN)]).unwrap();
//! let stats = w.finish().unwrap();
//! assert_eq!(stats.rows, 2);
//!
//! let mut r = StoreReader::open(&path).unwrap();
//! let hits = r.lookup_fault(1).unwrap();
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].1[0], Value::U64(8));
//! ```

mod codec;
mod error;
mod reader;
mod schema;
mod writer;

pub use codec::ColumnStats;
pub use error::StoreError;
pub use reader::{Row, StoreReader};
pub use schema::{ColumnSpec, ColumnType, Encoding, RowKey, Schema, Value};
pub use writer::{StoreStats, StoreWriter, DEFAULT_BLOCK_ROWS};

/// Computes the CRC32 (IEEE 802.3 polynomial, reflected) of a byte
/// slice.
///
/// Implemented locally — no checksum crate ships with the offline
/// toolchain. This is the workspace's single CRC implementation;
/// `alfi-core::persist` re-exports it for the fault-matrix and trace
/// file formats.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("alfi_store_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_schema() -> Schema {
        Schema::new(vec![
            ColumnSpec::new("image_id", ColumnType::U64, Encoding::Delta),
            ColumnSpec::new("file_name", ColumnType::Str, Encoding::Prefix),
            ColumnSpec::new("label", ColumnType::U32, Encoding::Plain),
            ColumnSpec::new("p", ColumnType::F32, Encoding::Plain),
            ColumnSpec::new("flag", ColumnType::U8, Encoding::Plain),
        ])
        .with_meta("kind", "unit")
    }

    fn sample_row(i: u64) -> (RowKey, Vec<Value>) {
        (
            RowKey::new((i / 8) as u32, ((i / 4) % 2) as u32, i),
            vec![
                Value::U64(1000 + i),
                Value::Str(format!("img_{i:04}.png")),
                Value::U32((i % 10) as u32),
                Value::F32(if i.is_multiple_of(7) { f32::NAN } else { i as f32 * 0.25 }),
                Value::U8((i % 3) as u8),
            ],
        )
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn write_scan_round_trips_across_blocks() {
        let path = temp_path("roundtrip.alfic");
        let mut w = StoreWriter::create(&path, sample_schema(), 8).unwrap();
        let rows: Vec<_> = (0..37).map(sample_row).collect();
        for (k, v) in &rows {
            w.append(*k, v).unwrap();
        }
        let stats = w.finish().unwrap();
        assert_eq!(stats.rows, 37);
        assert_eq!(stats.blocks, 5); // 4 full blocks of 8 + one of 5
        let mut r = StoreReader::open(&path).unwrap();
        assert_eq!(r.total_rows(), 37);
        assert_eq!(r.block_count(), 5);
        assert_eq!(r.meta("kind"), Some("unit"));
        assert_eq!(r.schema(), &sample_schema());
        assert_eq!(r.scan().unwrap(), rows);
    }

    #[test]
    fn empty_store_round_trips() {
        let path = temp_path("empty.alfic");
        let w = StoreWriter::create(&path, sample_schema(), 8).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!((stats.rows, stats.blocks), (0, 0));
        let mut r = StoreReader::open(&path).unwrap();
        assert_eq!(r.total_rows(), 0);
        assert!(r.scan().unwrap().is_empty());
        assert!(r.lookup_fault(0).unwrap().is_empty());
    }

    #[test]
    fn lookup_matches_scan_filter() {
        let path = temp_path("lookup.alfic");
        let mut w = StoreWriter::create(&path, sample_schema(), 4).unwrap();
        for i in 0..29 {
            let (k, v) = sample_row(i);
            w.append(k, v.as_slice()).unwrap();
        }
        w.finish().unwrap();
        let mut r = StoreReader::open(&path).unwrap();
        let all = r.scan().unwrap();
        for id in [0u64, 3, 15, 28, 999] {
            let expect: Vec<_> =
                all.iter().filter(|(k, _)| k.fault_id == id).cloned().collect();
            assert_eq!(r.lookup_fault(id).unwrap(), expect, "fault {id}");
        }
    }

    #[test]
    fn lookup_reads_one_block() {
        let path = temp_path("meter.alfic");
        let mut w = StoreWriter::create(&path, sample_schema(), 8).unwrap();
        for i in 0..64 {
            let (k, v) = sample_row(i);
            w.append(k, v.as_slice()).unwrap();
        }
        w.finish().unwrap();
        let mut r = StoreReader::open(&path).unwrap();
        let opened = r.bytes_read();
        let hits = r.lookup_fault(42).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(r.blocks_read(), 1, "one covering block, 8 total");
        // The single fetched block is far smaller than the file body.
        assert!(r.bytes_read() - opened < (r.total_rows() / 4) * 40);
    }

    #[test]
    fn writer_rejects_bad_rows() {
        let path = temp_path("reject.alfic");
        let mut w = StoreWriter::create(&path, sample_schema(), 8).unwrap();
        // wrong arity
        assert!(matches!(
            w.append(RowKey::default(), &[Value::U64(1)]),
            Err(StoreError::Schema { .. })
        ));
        // wrong type
        let (_, mut v) = sample_row(0);
        v[0] = Value::U32(1);
        assert!(matches!(
            w.append(RowKey::default(), &v),
            Err(StoreError::Schema { .. })
        ));
        // decreasing fault id
        let (_, v) = sample_row(0);
        w.append(RowKey::new(0, 0, 5), &v).unwrap();
        assert!(matches!(
            w.append(RowKey::new(0, 0, 4), &v),
            Err(StoreError::Schema { .. })
        ));
    }

    #[test]
    fn schema_validation_rejects_bad_encodings() {
        let dup = Schema::new(vec![
            ColumnSpec::new("a", ColumnType::U8, Encoding::Plain),
            ColumnSpec::new("a", ColumnType::U8, Encoding::Plain),
        ]);
        assert!(dup.validate().is_err());
        let delta_str = Schema::new(vec![ColumnSpec::new("s", ColumnType::Str, Encoding::Delta)]);
        assert!(delta_str.validate().is_err());
        let prefix_int = Schema::new(vec![ColumnSpec::new("i", ColumnType::U32, Encoding::Prefix)]);
        assert!(prefix_int.validate().is_err());
    }

    #[test]
    fn corruption_and_truncation_are_detected() {
        let path = temp_path("corrupt.alfic");
        let mut w = StoreWriter::create(&path, sample_schema(), 8).unwrap();
        for i in 0..20 {
            let (k, v) = sample_row(i);
            w.append(k, v.as_slice()).unwrap();
        }
        w.finish().unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncation loses the end magic.
        let cut = temp_path("cut.alfic");
        std::fs::write(&cut, &good[..good.len() - 10]).unwrap();
        assert!(matches!(StoreReader::open(&cut), Err(StoreError::Corrupt { .. })));

        // A flipped bit in a block body fails that block's checksum.
        let mut bad = good.clone();
        bad[200] ^= 0x10;
        let badp = temp_path("bad.alfic");
        std::fs::write(&badp, &bad).unwrap();
        match StoreReader::open(&badp) {
            Err(StoreError::Corrupt { .. }) => {}
            Ok(mut r) => {
                assert!(matches!(r.scan(), Err(StoreError::Corrupt { .. })));
            }
            Err(e) => panic!("unexpected error {e}"),
        }

        // Missing file is an I/O error, not a panic.
        assert!(matches!(
            StoreReader::open(temp_path("missing.alfic")),
            Err(StoreError::Io(_))
        ));
    }

    #[test]
    fn block_footers_expose_min_max() {
        let path = temp_path("footer.alfic");
        let mut w = StoreWriter::create(&path, sample_schema(), 8).unwrap();
        for i in 1..=8 {
            let (k, v) = sample_row(i);
            w.append(k, v.as_slice()).unwrap();
        }
        w.finish().unwrap();
        let mut r = StoreReader::open(&path).unwrap();
        let stats = r.block_column_stats(0).unwrap();
        // image_id column: 1001..=1008
        assert_eq!((stats[0].present, stats[0].min_bits, stats[0].max_bits), (true, 1001, 1008));
        // file_name column: strings carry no stats
        assert!(!stats[1].present);
        // p column skips the NaN at i == 7
        assert!(stats[3].present);
        assert_eq!(f32::from_bits(stats[3].min_bits as u32), 0.25);
        assert_eq!(f32::from_bits(stats[3].max_bits as u32), 2.0);
        assert!(r.block_column_stats(9).is_err());
    }
}
