//! Row keys, column types, encodings and typed cell values.

use crate::error::StoreError;
use std::collections::BTreeMap;

/// The replay key of one stored row: which epoch, which batch within
/// that epoch, and which fault-matrix slot produced it.
///
/// Writers must append rows with non-decreasing `fault_id` — the
/// trailing index binary-searches on it — which campaign drivers get
/// for free because the [`SlotCursor`] hands out slots monotonically.
///
/// [`SlotCursor`]: https://example.invalid/alfi
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowKey {
    /// Zero-based epoch of the campaign run.
    pub epoch: u32,
    /// Zero-based batch index within the epoch.
    pub batch: u32,
    /// Global fault-matrix slot index (monotone across epochs).
    pub fault_id: u64,
}

impl RowKey {
    /// Builds a key from its three parts.
    pub fn new(epoch: u32, batch: u32, fault_id: u64) -> Self {
        RowKey { epoch, batch, fault_id }
    }
}

/// The physical type of one column's cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Unsigned byte, stored raw.
    U8,
    /// Unsigned 32-bit integer, stored as LEB128 varints.
    U32,
    /// Unsigned 64-bit integer, stored as LEB128 varints.
    U64,
    /// IEEE-754 single float, stored as raw little-endian bits (NaN and
    /// infinity payloads survive bit-exactly).
    F32,
    /// UTF-8 string, stored length-prefixed.
    Str,
}

impl ColumnType {
    pub(crate) fn tag(self) -> u8 {
        match self {
            ColumnType::U8 => 0,
            ColumnType::U32 => 1,
            ColumnType::U64 => 2,
            ColumnType::F32 => 3,
            ColumnType::Str => 4,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Result<Self, StoreError> {
        Ok(match tag {
            0 => ColumnType::U8,
            1 => ColumnType::U32,
            2 => ColumnType::U64,
            3 => ColumnType::F32,
            4 => ColumnType::Str,
            t => return Err(StoreError::corrupt(format!("unknown column type tag {t}"))),
        })
    }
}

/// How a column's cells are encoded inside a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Type-native encoding: raw bytes (`U8`), varints (`U32`/`U64`),
    /// raw LE bits (`F32`), varint-length-prefixed bytes (`Str`).
    Plain,
    /// First value verbatim, then zigzag varint deltas. Integer columns
    /// only — built for monotone keys like image ids where deltas are
    /// tiny.
    Delta,
    /// Front coding: shared-prefix length with the previous value, then
    /// the suffix. String columns only — built for file-name columns
    /// that share long directory prefixes.
    Prefix,
}

impl Encoding {
    pub(crate) fn tag(self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::Delta => 1,
            Encoding::Prefix => 2,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Result<Self, StoreError> {
        Ok(match tag {
            0 => Encoding::Plain,
            1 => Encoding::Delta,
            2 => Encoding::Prefix,
            t => return Err(StoreError::corrupt(format!("unknown encoding tag {t}"))),
        })
    }
}

/// One column declaration: name, cell type and block encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name, unique within a schema.
    pub name: String,
    /// Physical cell type.
    pub ty: ColumnType,
    /// Block encoding; must be compatible with `ty`.
    pub encoding: Encoding,
}

impl ColumnSpec {
    /// Builds a column spec.
    pub fn new(name: impl Into<String>, ty: ColumnType, encoding: Encoding) -> Self {
        ColumnSpec { name: name.into(), ty, encoding }
    }
}

/// A store file's column directory plus free-form metadata pairs
/// (campaign kind, resilience flag, …) persisted in the header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// User columns in storage order. The three key columns
    /// (`epoch`, `batch`, `fault_id`) are implicit and never listed.
    pub columns: Vec<ColumnSpec>,
    /// Header metadata, serialized in sorted key order.
    pub meta: BTreeMap<String, String>,
}

impl Schema {
    /// Builds a schema over the given columns with no metadata.
    pub fn new(columns: Vec<ColumnSpec>) -> Self {
        Schema { columns, meta: BTreeMap::new() }
    }

    /// Adds a metadata pair (builder style).
    #[must_use]
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.meta.insert(key.into(), value.into());
        self
    }

    /// Checks structural invariants: non-empty unique column names and
    /// type-compatible encodings.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Schema`] on any violation.
    pub fn validate(&self) -> Result<(), StoreError> {
        let mut seen = std::collections::BTreeSet::new();
        for c in &self.columns {
            if c.name.is_empty() {
                return Err(StoreError::schema("empty column name"));
            }
            if !seen.insert(c.name.as_str()) {
                return Err(StoreError::schema(format!("duplicate column name `{}`", c.name)));
            }
            match (c.encoding, c.ty) {
                (Encoding::Plain, _) => {}
                (Encoding::Delta, ColumnType::U32 | ColumnType::U64) => {}
                (Encoding::Delta, ty) => {
                    return Err(StoreError::schema(format!(
                        "delta encoding requires an integer column, `{}` is {ty:?}",
                        c.name
                    )))
                }
                (Encoding::Prefix, ColumnType::Str) => {}
                (Encoding::Prefix, ty) => {
                    return Err(StoreError::schema(format!(
                        "prefix encoding requires a string column, `{}` is {ty:?}",
                        c.name
                    )))
                }
            }
        }
        Ok(())
    }
}

/// One typed cell value.
///
/// Equality compares `F32` cells by bit pattern, so a decoded NaN
/// payload compares equal to the NaN that was written — the property
/// the codec round-trip tests rely on.
#[derive(Debug, Clone)]
pub enum Value {
    /// An unsigned byte.
    U8(u8),
    /// An unsigned 32-bit integer.
    U32(u32),
    /// An unsigned 64-bit integer.
    U64(u64),
    /// A single float (NaN/Inf payloads preserved bit-exactly).
    F32(f32),
    /// A UTF-8 string.
    Str(String),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::U8(a), Value::U8(b)) => a == b,
            (Value::U32(a), Value::U32(b)) => a == b,
            (Value::U64(a), Value::U64(b)) => a == b,
            (Value::F32(a), Value::F32(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Value {
    /// The physical type of this cell.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::U8(_) => ColumnType::U8,
            Value::U32(_) => ColumnType::U32,
            Value::U64(_) => ColumnType::U64,
            Value::F32(_) => ColumnType::F32,
            Value::Str(_) => ColumnType::Str,
        }
    }

    /// Integer view of an integer cell.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U8(v) => Some(u64::from(*v)),
            Value::U32(v) => Some(u64::from(*v)),
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Float view of an `F32` cell.
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Value::F32(v) => Some(*v),
            _ => None,
        }
    }

    /// String view of a `Str` cell.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}
