//! Metered store reader with O(1) replay lookup.

use crate::codec::{
    decode_block_payload, decode_header, decode_index, ColumnStats, IndexEntry, END_MAGIC,
    TRAILER_LEN,
};
use crate::crc32;
use crate::error::StoreError;
use crate::schema::{RowKey, Schema, Value};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// One decoded row: its replay key plus the user cells in schema
/// column order.
pub type Row = (RowKey, Vec<Value>);

/// Reads a columnar store file. `open` parses only the header, trailer
/// and block index; block payloads are fetched on demand, so a
/// [`lookup_fault`] touches exactly the blocks whose key range covers
/// the requested fault id. Every byte fetched from the file is counted
/// in [`bytes_read`] — the read-bytes meter test pins the O(1) lookup
/// guarantee on that counter.
///
/// [`lookup_fault`]: StoreReader::lookup_fault
/// [`bytes_read`]: StoreReader::bytes_read
pub struct StoreReader {
    file: File,
    schema: Schema,
    block_rows: u32,
    index: Vec<IndexEntry>,
    total_rows: u64,
    bytes_read: u64,
    blocks_read: u64,
}

impl StoreReader {
    /// Opens a store file, validating header, trailer and index
    /// checksums.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure and
    /// [`StoreError::Corrupt`] on structural damage.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let mut file = File::open(path.as_ref())?;
        let file_len = file.metadata()?.len();
        let mut bytes_read = 0u64;
        if file_len < TRAILER_LEN {
            return Err(StoreError::corrupt("file shorter than trailer"));
        }
        // Header: read the fixed prelude, then extend until the parser
        // stops asking for more bytes. Headers are tiny (tens of
        // columns), so doubling reads converge immediately.
        let mut header = vec![0u8; 24.min(file_len as usize)];
        file.read_exact(&mut header)?;
        bytes_read += header.len() as u64;
        let (schema, block_rows, _header_len) = loop {
            match decode_header(&header) {
                Ok(parts) => break parts,
                Err(_) if (header.len() as u64) < file_len => {
                    let grow = header.len().clamp(64, 4096);
                    let new_len = (header.len() + grow).min(file_len as usize);
                    let old_len = header.len();
                    header.resize(new_len, 0);
                    file.read_exact(&mut header[old_len..])?;
                    bytes_read += (new_len - old_len) as u64;
                }
                Err(e) => return Err(e),
            }
        };
        // Trailer.
        file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.read_exact(&mut trailer)?;
        bytes_read += TRAILER_LEN;
        if &trailer[24..32] != END_MAGIC {
            return Err(StoreError::corrupt("bad end magic (truncated file?)"));
        }
        let index_offset = u64::from_le_bytes(trailer[0..8].try_into().unwrap_or([0; 8]));
        let index_len = u32::from_le_bytes(trailer[8..12].try_into().unwrap_or([0; 4])) as u64;
        let index_crc = u32::from_le_bytes(trailer[12..16].try_into().unwrap_or([0; 4]));
        let total_rows = u64::from_le_bytes(trailer[16..24].try_into().unwrap_or([0; 8]));
        if index_offset + index_len + TRAILER_LEN != file_len {
            return Err(StoreError::corrupt("index span does not reach the trailer"));
        }
        // Index.
        file.seek(SeekFrom::Start(index_offset))?;
        let mut index_bytes = vec![0u8; index_len as usize];
        file.read_exact(&mut index_bytes)?;
        bytes_read += index_len;
        if crc32(&index_bytes) != index_crc {
            return Err(StoreError::corrupt("index checksum mismatch"));
        }
        let index = decode_index(&index_bytes)?;
        let indexed_rows: u64 = index.iter().map(|e| u64::from(e.rows)).sum();
        if indexed_rows != total_rows {
            return Err(StoreError::corrupt("index row count disagrees with trailer"));
        }
        Ok(StoreReader {
            file,
            schema,
            block_rows,
            index,
            total_rows,
            bytes_read,
            blocks_read: 0,
        })
    }

    /// The file's column directory and metadata.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A header metadata value, if present.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.schema.meta.get(key).map(String::as_str)
    }

    /// Rows per full block, as declared in the header.
    pub fn block_rows(&self) -> u32 {
        self.block_rows
    }

    /// Total rows in the file (from the trailer).
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Number of blocks in the file.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Cumulative bytes fetched from the file so far (header, trailer,
    /// index and every block payload read).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Number of block payloads fetched so far.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    fn read_block(&mut self, idx: usize) -> Result<crate::codec::BlockData, StoreError> {
        let entry = self.index[idx];
        self.file.seek(SeekFrom::Start(entry.offset))?;
        let mut record = vec![0u8; entry.len as usize];
        self.file.read_exact(&mut record)?;
        self.bytes_read += u64::from(entry.len);
        self.blocks_read += 1;
        if record.len() < 8 {
            return Err(StoreError::corrupt("block record shorter than framing"));
        }
        let payload_len = u32::from_le_bytes(record[0..4].try_into().unwrap_or([0; 4])) as usize;
        if payload_len + 8 != record.len() {
            return Err(StoreError::corrupt("block length disagrees with index"));
        }
        let payload = &record[4..4 + payload_len];
        let stored_crc =
            u32::from_le_bytes(record[4 + payload_len..].try_into().unwrap_or([0; 4]));
        if crc32(payload) != stored_crc {
            return Err(StoreError::corrupt("block checksum mismatch"));
        }
        let block = decode_block_payload(&self.schema, payload)?;
        if block.keys.len() != entry.rows as usize {
            return Err(StoreError::corrupt("block row count disagrees with index"));
        }
        Ok(block)
    }

    fn block_to_rows(block: crate::codec::BlockData) -> Vec<Row> {
        let cols = block.columns;
        block
            .keys
            .into_iter()
            .enumerate()
            .map(|(i, key)| (key, cols.iter().map(|c| c[i].clone()).collect()))
            .collect()
    }

    /// Decodes every row in file order.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] or [`StoreError::Corrupt`].
    pub fn scan(&mut self) -> Result<Vec<Row>, StoreError> {
        let mut out = Vec::with_capacity(self.total_rows as usize);
        self.for_each_row(|key, values| {
            out.push((*key, values.to_vec()));
            Ok(())
        })?;
        Ok(out)
    }

    /// Streams every row in file order through `f` without ever
    /// materializing more than one decoded block — the scan primitive
    /// for aggregation passes (e.g. `alfi-analyze` report generation)
    /// over stores too large to hold as a `Vec<Row>`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] or [`StoreError::Corrupt`], or the
    /// first error `f` returns (which aborts the scan).
    pub fn for_each_row<F>(&mut self, mut f: F) -> Result<(), StoreError>
    where
        F: FnMut(&RowKey, &[Value]) -> Result<(), StoreError>,
    {
        let mut row = Vec::new();
        for idx in 0..self.index.len() {
            let block = self.read_block(idx)?;
            for (i, key) in block.keys.iter().enumerate() {
                row.clear();
                row.extend(block.columns.iter().map(|c| c[i].clone()));
                f(key, &row)?;
            }
        }
        Ok(())
    }

    /// Replay lookup: every row whose key's `fault_id` equals the
    /// argument. Binary-searches the block index, then reads only the
    /// covering block(s) — for a fault that lives in one block this is
    /// exactly one block fetch regardless of file size.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] or [`StoreError::Corrupt`].
    pub fn lookup_fault(&mut self, fault_id: u64) -> Result<Vec<Row>, StoreError> {
        // First block whose key range might contain the id.
        let start = self.index.partition_point(|e| e.last.fault_id < fault_id);
        let mut out = Vec::new();
        for idx in start..self.index.len() {
            if self.index[idx].first.fault_id > fault_id {
                break;
            }
            let block = self.read_block(idx)?;
            out.extend(
                Self::block_to_rows(block).into_iter().filter(|(k, _)| k.fault_id == fault_id),
            );
        }
        Ok(out)
    }

    /// The per-column min/max footer of one block (by block index).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] for an out-of-range block, or
    /// any block read failure.
    pub fn block_column_stats(&mut self, block_idx: usize) -> Result<Vec<ColumnStats>, StoreError> {
        if block_idx >= self.index.len() {
            return Err(StoreError::corrupt(format!("block {block_idx} out of range")));
        }
        Ok(self.read_block(block_idx)?.stats)
    }
}
