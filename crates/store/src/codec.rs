//! Wire-level primitives: varints, zigzag deltas, prefix coding, the
//! header/index/block-payload layouts and their fallible decoders.

use crate::error::StoreError;
use crate::schema::{ColumnSpec, ColumnType, Encoding, RowKey, Schema, Value};
use crate::crc32;

/// File magic opening every store file.
pub(crate) const MAGIC: &[u8; 8] = b"ALFISTO1";
/// Magic closing the fixed trailer — a cheap truncation detector.
pub(crate) const END_MAGIC: &[u8; 8] = b"ALFIEND1";
/// Current format version.
pub(crate) const VERSION: u32 = 1;
/// Fixed trailer length: index offset (8) + index len (4) + index crc
/// (4) + total rows (8) + end magic (8).
pub(crate) const TRAILER_LEN: u64 = 32;
/// Serialized size of one [`IndexEntry`].
pub(crate) const INDEX_ENTRY_LEN: usize = 48;

/// Fallible little-endian cursor over a byte slice. Unlike the
/// panicking reader in `alfi-core::persist`, every accessor returns a
/// typed [`StoreError::Corrupt`] on truncation.
pub(crate) struct Cur<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Cur { data, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::corrupt(format!(
                "truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let chunk = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(chunk)
    }

    pub(crate) fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn get_u32_le(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap_or([0; 4])))
    }

    pub(crate) fn get_u64_le(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap_or([0; 8])))
    }

    pub(crate) fn get_uvarint(&mut self) -> Result<u64, StoreError> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.get_u8()?;
            if shift == 63 && b > 1 {
                return Err(StoreError::corrupt("varint overflows u64"));
            }
            out |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(StoreError::corrupt("varint longer than 10 bytes"));
            }
        }
    }

    /// Asserts the cursor consumed everything.
    pub(crate) fn done(&self, what: &str) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::corrupt(format!(
                "{what}: {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Appends an LEB128 varint.
pub(crate) fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Zigzag-maps a signed delta onto an unsigned varint-friendly value.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Delta-encodes integers: first value verbatim, then zigzag varint
/// wrapping differences (so non-monotone inputs still round-trip).
pub(crate) fn encode_delta_u64(vals: impl Iterator<Item = u64>, out: &mut Vec<u8>) {
    let mut prev = 0u64;
    for (i, v) in vals.enumerate() {
        if i == 0 {
            put_uvarint(out, v);
        } else {
            put_uvarint(out, zigzag(v.wrapping_sub(prev) as i64));
        }
        prev = v;
    }
}

/// Inverse of [`encode_delta_u64`] for a known row count.
pub(crate) fn decode_delta_u64(cur: &mut Cur<'_>, rows: usize) -> Result<Vec<u64>, StoreError> {
    let mut out = Vec::with_capacity(rows);
    let mut prev = 0u64;
    for i in 0..rows {
        let v = if i == 0 {
            cur.get_uvarint()?
        } else {
            prev.wrapping_add(unzigzag(cur.get_uvarint()?) as u64)
        };
        out.push(v);
        prev = v;
    }
    Ok(out)
}

fn put_str32(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str32(cur: &mut Cur<'_>) -> Result<String, StoreError> {
    let len = cur.get_u32_le()? as usize;
    let bytes = cur.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::corrupt("invalid UTF-8 string"))
}

/// Serializes the file header (magic through column directory plus the
/// trailing header CRC).
pub(crate) fn encode_header(schema: &Schema, block_rows: u32) -> Vec<u8> {
    let mut h = Vec::new();
    h.extend_from_slice(MAGIC);
    h.extend_from_slice(&VERSION.to_le_bytes());
    h.extend_from_slice(&block_rows.to_le_bytes());
    h.extend_from_slice(&(schema.meta.len() as u32).to_le_bytes());
    for (k, v) in &schema.meta {
        put_str32(&mut h, k);
        put_str32(&mut h, v);
    }
    h.extend_from_slice(&(schema.columns.len() as u32).to_le_bytes());
    for c in &schema.columns {
        put_str32(&mut h, &c.name);
        h.push(c.ty.tag());
        h.push(c.encoding.tag());
    }
    let crc = crc32(&h);
    h.extend_from_slice(&crc.to_le_bytes());
    h
}

/// Parses a header from a byte slice that starts at file offset 0.
/// Returns the schema, block rows and total header length.
pub(crate) fn decode_header(data: &[u8]) -> Result<(Schema, u32, usize), StoreError> {
    let mut cur = Cur::new(data);
    let magic = cur.take(8)?;
    if magic != MAGIC {
        return Err(StoreError::corrupt("bad magic"));
    }
    let version = cur.get_u32_le()?;
    if version != VERSION {
        return Err(StoreError::corrupt(format!("unsupported version {version}")));
    }
    let block_rows = cur.get_u32_le()?;
    if block_rows == 0 {
        return Err(StoreError::corrupt("zero block_rows"));
    }
    let meta_count = cur.get_u32_le()? as usize;
    let mut meta = std::collections::BTreeMap::new();
    for _ in 0..meta_count {
        let k = get_str32(&mut cur)?;
        let v = get_str32(&mut cur)?;
        meta.insert(k, v);
    }
    let col_count = cur.get_u32_le()? as usize;
    let mut columns = Vec::with_capacity(col_count.min(1 << 16));
    for _ in 0..col_count {
        let name = get_str32(&mut cur)?;
        let ty = ColumnType::from_tag(cur.get_u8()?)?;
        let encoding = Encoding::from_tag(cur.get_u8()?)?;
        columns.push(ColumnSpec { name, ty, encoding });
    }
    let body_len = data.len() - cur.remaining();
    let stored_crc = cur.get_u32_le()?;
    if crc32(&data[..body_len]) != stored_crc {
        return Err(StoreError::corrupt("header checksum mismatch"));
    }
    let schema = Schema { columns, meta };
    schema.validate()?;
    Ok((schema, block_rows, body_len + 4))
}

/// One entry of the trailing block index: where the block record lives,
/// how many rows it holds, and the key range it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct IndexEntry {
    pub(crate) offset: u64,
    pub(crate) len: u32,
    pub(crate) rows: u32,
    pub(crate) first: RowKey,
    pub(crate) last: RowKey,
}

/// Serializes the block index.
pub(crate) fn encode_index(entries: &[IndexEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * INDEX_ENTRY_LEN);
    for e in entries {
        out.extend_from_slice(&e.offset.to_le_bytes());
        out.extend_from_slice(&e.len.to_le_bytes());
        out.extend_from_slice(&e.rows.to_le_bytes());
        for k in [e.first, e.last] {
            out.extend_from_slice(&k.epoch.to_le_bytes());
            out.extend_from_slice(&k.batch.to_le_bytes());
            out.extend_from_slice(&k.fault_id.to_le_bytes());
        }
    }
    out
}

/// Inverse of [`encode_index`].
pub(crate) fn decode_index(data: &[u8]) -> Result<Vec<IndexEntry>, StoreError> {
    if !data.len().is_multiple_of(INDEX_ENTRY_LEN) {
        return Err(StoreError::corrupt("index length not a multiple of entry size"));
    }
    let mut cur = Cur::new(data);
    let mut out = Vec::with_capacity(data.len() / INDEX_ENTRY_LEN);
    while cur.remaining() > 0 {
        let offset = cur.get_u64_le()?;
        let len = cur.get_u32_le()?;
        let rows = cur.get_u32_le()?;
        let mut keys = [RowKey::default(); 2];
        for k in &mut keys {
            k.epoch = cur.get_u32_le()?;
            k.batch = cur.get_u32_le()?;
            k.fault_id = cur.get_u64_le()?;
        }
        out.push(IndexEntry { offset, len, rows, first: keys[0], last: keys[1] });
    }
    Ok(out)
}

/// Per-block, per-column min/max footer. For integer columns the bits
/// are the values themselves; for `F32` they are `f32::to_bits` of the
/// smallest/largest non-NaN cell. `present == false` for string
/// columns, empty blocks and all-NaN float columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnStats {
    /// Whether the min/max fields are meaningful.
    pub present: bool,
    /// Bit pattern of the smallest cell.
    pub min_bits: u64,
    /// Bit pattern of the largest cell.
    pub max_bits: u64,
}

/// Computes the footer stats for one column of cells.
pub(crate) fn column_stats(ty: ColumnType, vals: &[Value]) -> ColumnStats {
    match ty {
        ColumnType::Str => ColumnStats::default(),
        ColumnType::F32 => {
            let mut min = f32::INFINITY;
            let mut max = f32::NEG_INFINITY;
            let mut present = false;
            for v in vals {
                let f = v.as_f32().unwrap_or(f32::NAN);
                if f.is_nan() {
                    continue;
                }
                present = true;
                if f < min {
                    min = f;
                }
                if f > max {
                    max = f;
                }
            }
            if present {
                ColumnStats {
                    present,
                    min_bits: u64::from(min.to_bits()),
                    max_bits: u64::from(max.to_bits()),
                }
            } else {
                ColumnStats::default()
            }
        }
        _ => {
            let mut it = vals.iter().filter_map(Value::as_u64);
            match it.next() {
                None => ColumnStats::default(),
                Some(first) => {
                    let (mut min, mut max) = (first, first);
                    for v in it {
                        min = min.min(v);
                        max = max.max(v);
                    }
                    ColumnStats { present: true, min_bits: min, max_bits: max }
                }
            }
        }
    }
}

/// Encodes one column of cells under its declared encoding.
pub(crate) fn encode_column(ty: ColumnType, enc: Encoding, vals: &[Value], out: &mut Vec<u8>) {
    match (enc, ty) {
        (Encoding::Plain, ColumnType::U8) => {
            for v in vals {
                out.push(v.as_u64().unwrap_or(0) as u8);
            }
        }
        (Encoding::Plain, ColumnType::U32 | ColumnType::U64) => {
            for v in vals {
                put_uvarint(out, v.as_u64().unwrap_or(0));
            }
        }
        (Encoding::Plain, ColumnType::F32) => {
            for v in vals {
                out.extend_from_slice(&v.as_f32().unwrap_or(0.0).to_le_bytes());
            }
        }
        (Encoding::Plain, ColumnType::Str) => {
            for v in vals {
                let s = v.as_str().unwrap_or("");
                put_uvarint(out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
        }
        (Encoding::Delta, _) => {
            encode_delta_u64(vals.iter().map(|v| v.as_u64().unwrap_or(0)), out);
        }
        (Encoding::Prefix, _) => {
            let mut prev = "";
            for v in vals {
                let s = v.as_str().unwrap_or("");
                let shared = prev
                    .as_bytes()
                    .iter()
                    .zip(s.as_bytes())
                    .take_while(|(a, b)| a == b)
                    .count();
                // Never split a UTF-8 sequence: back off to a char edge.
                let shared = (0..=shared).rev().find(|&n| s.is_char_boundary(n)).unwrap_or(0);
                put_uvarint(out, shared as u64);
                put_uvarint(out, (s.len() - shared) as u64);
                out.extend_from_slice(&s.as_bytes()[shared..]);
                prev = s;
            }
        }
    }
}

/// Decodes one column of `rows` cells; the slice must be consumed
/// exactly.
pub(crate) fn decode_column(
    ty: ColumnType,
    enc: Encoding,
    rows: usize,
    data: &[u8],
) -> Result<Vec<Value>, StoreError> {
    let mut cur = Cur::new(data);
    let mut out = Vec::with_capacity(rows);
    match (enc, ty) {
        (Encoding::Plain, ColumnType::U8) => {
            for _ in 0..rows {
                out.push(Value::U8(cur.get_u8()?));
            }
        }
        (Encoding::Plain, ColumnType::U32) => {
            for _ in 0..rows {
                let v = cur.get_uvarint()?;
                let v = u32::try_from(v)
                    .map_err(|_| StoreError::corrupt("u32 column value overflows"))?;
                out.push(Value::U32(v));
            }
        }
        (Encoding::Plain, ColumnType::U64) => {
            for _ in 0..rows {
                out.push(Value::U64(cur.get_uvarint()?));
            }
        }
        (Encoding::Plain, ColumnType::F32) => {
            for _ in 0..rows {
                let bits = cur.take(4)?;
                out.push(Value::F32(f32::from_le_bytes(bits.try_into().unwrap_or([0; 4]))));
            }
        }
        (Encoding::Plain, ColumnType::Str) => {
            for _ in 0..rows {
                let len = cur.get_uvarint()? as usize;
                let bytes = cur.take(len)?;
                let s = String::from_utf8(bytes.to_vec())
                    .map_err(|_| StoreError::corrupt("invalid UTF-8 in string column"))?;
                out.push(Value::Str(s));
            }
        }
        (Encoding::Delta, ColumnType::U32) => {
            for v in decode_delta_u64(&mut cur, rows)? {
                let v = u32::try_from(v)
                    .map_err(|_| StoreError::corrupt("u32 delta column value overflows"))?;
                out.push(Value::U32(v));
            }
        }
        (Encoding::Delta, _) => {
            for v in decode_delta_u64(&mut cur, rows)? {
                out.push(Value::U64(v));
            }
        }
        (Encoding::Prefix, _) => {
            let mut prev = String::new();
            for _ in 0..rows {
                let shared = cur.get_uvarint()? as usize;
                let suffix_len = cur.get_uvarint()? as usize;
                if shared > prev.len() || !prev.is_char_boundary(shared) {
                    return Err(StoreError::corrupt("prefix length exceeds previous value"));
                }
                let suffix = cur.take(suffix_len)?;
                let mut s = String::with_capacity(shared + suffix_len);
                s.push_str(&prev[..shared]);
                s.push_str(
                    std::str::from_utf8(suffix)
                        .map_err(|_| StoreError::corrupt("invalid UTF-8 in prefix column"))?,
                );
                out.push(Value::Str(s.clone()));
                prev = s;
            }
        }
    }
    cur.done("column")?;
    Ok(out)
}

/// A decoded block: row keys, user columns (column-major) and the
/// per-column footer stats.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BlockData {
    pub(crate) keys: Vec<RowKey>,
    pub(crate) columns: Vec<Vec<Value>>,
    pub(crate) stats: Vec<ColumnStats>,
}

/// Encodes a block payload (row count, implicit key columns, then each
/// user column with its footer). The record framing
/// (`len | payload | crc`) is applied by the writer.
pub(crate) fn encode_block_payload(schema: &Schema, keys: &[RowKey], rows: &[Vec<Value>]) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(keys.len() as u32).to_le_bytes());
    let mut scratch = Vec::new();
    for key_col in 0..3 {
        scratch.clear();
        encode_delta_u64(
            keys.iter().map(|k| match key_col {
                0 => u64::from(k.epoch),
                1 => u64::from(k.batch),
                _ => k.fault_id,
            }),
            &mut scratch,
        );
        payload.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
        payload.extend_from_slice(&scratch);
    }
    let mut col_vals = Vec::with_capacity(keys.len());
    for (ci, spec) in schema.columns.iter().enumerate() {
        col_vals.clear();
        for row in rows {
            col_vals.push(row[ci].clone());
        }
        scratch.clear();
        encode_column(spec.ty, spec.encoding, &col_vals, &mut scratch);
        payload.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
        payload.extend_from_slice(&scratch);
        let stats = column_stats(spec.ty, &col_vals);
        payload.push(u8::from(stats.present));
        payload.extend_from_slice(&stats.min_bits.to_le_bytes());
        payload.extend_from_slice(&stats.max_bits.to_le_bytes());
    }
    payload
}

/// Inverse of [`encode_block_payload`].
pub(crate) fn decode_block_payload(schema: &Schema, payload: &[u8]) -> Result<BlockData, StoreError> {
    let mut cur = Cur::new(payload);
    let rows = cur.get_u32_le()? as usize;
    let mut key_cols = Vec::with_capacity(3);
    for _ in 0..3 {
        let len = cur.get_u32_le()? as usize;
        let bytes = cur.take(len)?;
        let mut kcur = Cur::new(bytes);
        let vals = decode_delta_u64(&mut kcur, rows)?;
        kcur.done("key column")?;
        key_cols.push(vals);
    }
    let keys = (0..rows)
        .map(|i| {
            Ok(RowKey {
                epoch: u32::try_from(key_cols[0][i])
                    .map_err(|_| StoreError::corrupt("epoch overflows u32"))?,
                batch: u32::try_from(key_cols[1][i])
                    .map_err(|_| StoreError::corrupt("batch overflows u32"))?,
                fault_id: key_cols[2][i],
            })
        })
        .collect::<Result<Vec<_>, StoreError>>()?;
    let mut columns = Vec::with_capacity(schema.columns.len());
    let mut stats = Vec::with_capacity(schema.columns.len());
    for spec in &schema.columns {
        let len = cur.get_u32_le()? as usize;
        let bytes = cur.take(len)?;
        columns.push(decode_column(spec.ty, spec.encoding, rows, bytes)?);
        let present = cur.get_u8()? != 0;
        let min_bits = cur.get_u64_le()?;
        let max_bits = cur.get_u64_le()?;
        stats.push(ColumnStats { present, min_bits, max_bits });
    }
    cur.done("block payload")?;
    Ok(BlockData { keys, columns, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips() {
        let mut buf = Vec::new();
        let vals = [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &vals {
            buf.clear();
            put_uvarint(&mut buf, v);
            let mut cur = Cur::new(&buf);
            assert_eq!(cur.get_uvarint().unwrap(), v);
            cur.done("varint").unwrap();
        }
    }

    #[test]
    fn varint_overflow_is_rejected() {
        let buf = [0xFFu8; 11];
        assert!(Cur::new(&buf).get_uvarint().is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn delta_round_trips_non_monotone() {
        let vals = [5u64, 3, 3, 100, 0, u64::MAX, 1];
        let mut buf = Vec::new();
        encode_delta_u64(vals.iter().copied(), &mut buf);
        let mut cur = Cur::new(&buf);
        assert_eq!(decode_delta_u64(&mut cur, vals.len()).unwrap(), vals);
        cur.done("delta").unwrap();
    }

    #[test]
    fn prefix_coding_round_trips() {
        let vals: Vec<Value> = ["img_000.png", "img_001.png", "img_010.png", "", "zzz", "zzz"]
            .iter()
            .map(|s| Value::Str((*s).into()))
            .collect();
        let mut buf = Vec::new();
        encode_column(ColumnType::Str, Encoding::Prefix, &vals, &mut buf);
        let back = decode_column(ColumnType::Str, Encoding::Prefix, vals.len(), &buf).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn prefix_coding_respects_char_boundaries() {
        let vals: Vec<Value> =
            ["caf\u{e9}_a", "caf\u{e8}_b"].iter().map(|s| Value::Str((*s).into())).collect();
        let mut buf = Vec::new();
        encode_column(ColumnType::Str, Encoding::Prefix, &vals, &mut buf);
        let back = decode_column(ColumnType::Str, Encoding::Prefix, vals.len(), &buf).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn f32_columns_preserve_nan_payloads() {
        let weird = f32::from_bits(0x7FC0_1234);
        let vals = vec![
            Value::F32(1.5),
            Value::F32(weird),
            Value::F32(f32::INFINITY),
            Value::F32(f32::NEG_INFINITY),
            Value::F32(-0.0),
        ];
        let mut buf = Vec::new();
        encode_column(ColumnType::F32, Encoding::Plain, &vals, &mut buf);
        let back = decode_column(ColumnType::F32, Encoding::Plain, vals.len(), &buf).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn float_stats_skip_nan() {
        let vals = vec![Value::F32(f32::NAN), Value::F32(2.0), Value::F32(-1.0)];
        let s = column_stats(ColumnType::F32, &vals);
        assert!(s.present);
        assert_eq!(f32::from_bits(s.min_bits as u32), -1.0);
        assert_eq!(f32::from_bits(s.max_bits as u32), 2.0);
        let all_nan = vec![Value::F32(f32::NAN)];
        assert!(!column_stats(ColumnType::F32, &all_nan).present);
    }

    #[test]
    fn int_stats_cover_range() {
        let vals = vec![Value::U32(7), Value::U32(3), Value::U32(9)];
        let s = column_stats(ColumnType::U32, &vals);
        assert_eq!((s.present, s.min_bits, s.max_bits), (true, 3, 9));
    }

    #[test]
    fn header_round_trips_and_detects_corruption() {
        let schema = Schema::new(vec![
            ColumnSpec::new("id", ColumnType::U64, Encoding::Delta),
            ColumnSpec::new("name", ColumnType::Str, Encoding::Prefix),
        ])
        .with_meta("kind", "classification");
        let bytes = encode_header(&schema, 256);
        let (back, block_rows, len) = decode_header(&bytes).unwrap();
        assert_eq!(back, schema);
        assert_eq!(block_rows, 256);
        assert_eq!(len, bytes.len());
        let mut bad = bytes.clone();
        bad[10] ^= 1;
        assert!(decode_header(&bad).is_err());
    }

    #[test]
    fn index_round_trips() {
        let entries = vec![IndexEntry {
            offset: 64,
            len: 1000,
            rows: 256,
            first: RowKey::new(0, 0, 0),
            last: RowKey::new(0, 3, 255),
        }];
        let bytes = encode_index(&entries);
        assert_eq!(bytes.len(), INDEX_ENTRY_LEN);
        assert_eq!(decode_index(&bytes).unwrap(), entries);
        assert!(decode_index(&bytes[..40]).is_err());
    }
}
