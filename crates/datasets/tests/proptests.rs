//! Property-based tests for dataset determinism and loader invariants,
//! running on the in-tree `alfi-check` harness.

use alfi_check::{check_with, gen};
use alfi_datasets::{
    ClassificationDataset, ClassificationLoader, CocoGroundTruth, DetectionDataset,
    DetectionLoader,
};

const CASES: usize = 32;

/// Every sample is a pure function of (seed, index): regenerating the
/// dataset yields bit-identical images, labels and records.
#[test]
fn classification_samples_are_pure() {
    check_with(CASES, "classification_samples_are_pure", |rng| {
        let seed = gen::any_u64(rng);
        let len: usize = rng.gen_range(1usize..20);
        let idx_seed = gen::any_u64(rng) as usize;
        let a = ClassificationDataset::new(len, 5, 3, 8, seed);
        let b = ClassificationDataset::new(len, 5, 3, 8, seed);
        let idx = idx_seed % len;
        let sa = a.get(idx);
        let sb = b.get(idx);
        assert_eq!(sa.image.data(), sb.image.data());
        assert_eq!(sa.label, sb.label);
        assert_eq!(sa.record, sb.record);
    });
}

/// Detection scenes are pure too, and every annotation stays in frame.
#[test]
fn detection_scenes_are_pure_and_in_frame() {
    check_with(CASES, "detection_scenes_are_pure_and_in_frame", |rng| {
        let seed = gen::any_u64(rng);
        let len: usize = rng.gen_range(1usize..12);
        let a = DetectionDataset::new(len, 4, 3, 24, seed);
        let b = DetectionDataset::new(len, 4, 3, 24, seed);
        for i in 0..len {
            let sa = a.get(i);
            let sb = b.get(i);
            assert_eq!(sa.image.data(), sb.image.data());
            assert_eq!(&sa.objects, &sb.objects);
            for o in &sa.objects {
                assert!(o.bbox[0] >= 0.0 && o.bbox[1] >= 0.0);
                assert!(o.bbox[0] + o.bbox[2] <= 24.0 + 1e-3);
                assert!(o.bbox[1] + o.bbox[3] <= 24.0 + 1e-3);
            }
        }
    });
}

/// The loader partitions the epoch exactly: every image id appears
/// exactly once, regardless of batch size or limit.
#[test]
fn loader_partitions_epoch() {
    check_with(CASES, "loader_partitions_epoch", |rng| {
        let len: usize = rng.gen_range(1usize..30);
        let batch: usize = rng.gen_range(1usize..8);
        let limit = if gen::any_bool(rng) { Some(rng.gen_range(1usize..30)) } else { None };
        let shuffle = gen::any_bool(rng);
        let epoch: u64 = rng.gen_range(0u64..4);
        let ds = ClassificationDataset::new(len, 3, 1, 8, 5);
        let mut loader = ClassificationLoader::new(ds, batch).with_shuffle(shuffle);
        if let Some(l) = limit {
            loader = loader.with_limit(l);
        }
        let expected = limit.map_or(len, |l| l.min(len));
        let mut ids: Vec<u64> = loader
            .iter_epoch(epoch)
            .flat_map(|b| b.records.iter().map(|r| r.image_id).collect::<Vec<_>>())
            .collect();
        assert_eq!(ids.len(), expected);
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), expected, "no duplicates");
        // batch shapes are consistent
        for b in loader.iter_epoch(epoch) {
            assert_eq!(b.images.dims()[0], b.labels.len());
            assert_eq!(b.records.len(), b.labels.len());
        }
    });
}

/// Detection loaders carry ground truth aligned with their images.
#[test]
fn detection_loader_aligns_ground_truth() {
    check_with(CASES, "detection_loader_aligns_ground_truth", |rng| {
        let len: usize = rng.gen_range(1usize..12);
        let batch: usize = rng.gen_range(1usize..5);
        let ds = DetectionDataset::new(len, 3, 3, 24, 9);
        let loader = DetectionLoader::new(ds.clone(), batch);
        for b in loader.iter_epoch(0) {
            assert_eq!(b.objects.len(), b.records.len());
            for (objs, rec) in b.objects.iter().zip(b.records.iter()) {
                assert_eq!(objs, &ds.get(rec.image_id as usize).objects);
            }
        }
    });
}

/// COCO ground-truth export round-trips through JSON for any size.
#[test]
fn coco_export_round_trips() {
    check_with(CASES, "coco_export_round_trips", |rng| {
        let len: usize = rng.gen_range(1usize..10);
        let classes: usize = rng.gen_range(1usize..5);
        let seed = gen::any_u64(rng);
        let ds = DetectionDataset::new(len, classes, 3, 24, seed);
        let gt = ds.coco_ground_truth();
        assert_eq!(gt.images.len(), len);
        assert_eq!(gt.categories.len(), classes);
        let back = CocoGroundTruth::from_json(&gt.to_json().unwrap()).unwrap();
        assert_eq!(gt, back);
    });
}
