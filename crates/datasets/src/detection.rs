//! Procedural object-detection dataset with COCO-format ground truth.
//!
//! Stands in for COCO/KITTI-style data: each image is a dark background
//! with 1–4 bright axis-aligned rectangles, each belonging to a category
//! that determines its intensity pattern. Ground-truth boxes are recorded
//! in COCO `[x, y, w, h]` form and the whole dataset exports as a COCO
//! JSON document — feeding the paper's Fig. 3 output pipeline.

use crate::record::{CocoAnnotation, CocoCategory, CocoGroundTruth, ImageRecord};
use alfi_tensor::Tensor;
use alfi_rng::Rng;

/// One ground-truth object in an image.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruthBox {
    /// `[x, y, width, height]` in pixels (COCO convention).
    pub bbox: [f32; 4],
    /// Object category.
    pub category_id: usize,
}

alfi_serde::json_struct!(GroundTruthBox { bbox, category_id });

/// One detection sample.
#[derive(Debug, Clone)]
pub struct DetectionSample {
    /// Image tensor `[c, h, w]`.
    pub image: Tensor,
    /// Ground-truth objects.
    pub objects: Vec<GroundTruthBox>,
    /// Preserved metadata.
    pub record: ImageRecord,
}

/// Deterministic synthetic detection dataset.
#[derive(Debug, Clone)]
pub struct DetectionDataset {
    len: usize,
    num_classes: usize,
    channels: usize,
    hw: usize,
    seed: u64,
}

impl DetectionDataset {
    /// Creates a dataset of `len` scenes with objects from `num_classes`
    /// categories on `channels × hw × hw` images, determined by `seed`.
    pub fn new(len: usize, num_classes: usize, channels: usize, hw: usize, seed: u64) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(hw >= 16, "scene images need hw >= 16");
        DetectionDataset { len, num_classes, channels, hw, seed }
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of object categories.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image side length.
    pub fn image_hw(&self) -> usize {
        self.hw
    }

    /// Generates sample `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> DetectionSample {
        assert!(index < self.len, "index {index} out of range for dataset of {}", self.len);
        let mut rng =
            Rng::from_seed(self.seed ^ (index as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let n_objects = rng.gen_range(1..=4usize);
        let hw = self.hw as f32;
        let mut data = vec![0.05f32; self.channels * self.hw * self.hw];
        let mut objects = Vec::with_capacity(n_objects);
        for _ in 0..n_objects {
            let category_id = rng.gen_range(0..self.num_classes);
            let w = rng.gen_range(hw * 0.12..hw * 0.4);
            let h = rng.gen_range(hw * 0.12..hw * 0.4);
            let x = rng.gen_range(0.0..hw - w);
            let y = rng.gen_range(0.0..hw - h);
            // Category-specific intensity per channel.
            let base = 0.3 + 0.6 * (category_id as f32 + 1.0) / self.num_classes as f32;
            for c in 0..self.channels {
                let level = base * (1.0 - 0.15 * c as f32).max(0.2);
                for py in y as usize..(y + h) as usize {
                    for px in x as usize..(x + w) as usize {
                        let idx = (c * self.hw + py) * self.hw + px;
                        data[idx] = data[idx].max(level);
                    }
                }
            }
            objects.push(GroundTruthBox { bbox: [x, y, w, h], category_id });
        }
        let image = Tensor::from_vec(data, &[self.channels, self.hw, self.hw])
            .expect("dims consistent with generated data");
        DetectionSample {
            image,
            objects,
            record: ImageRecord {
                image_id: index as u64,
                file_name: format!("synthetic/scene/img_{index:06}.png"),
                height: self.hw as u32,
                width: self.hw as u32,
            },
        }
    }

    /// Exports the full dataset's annotations as a COCO ground-truth
    /// document (the first of the three output sets of Fig. 3).
    pub fn coco_ground_truth(&self) -> CocoGroundTruth {
        let mut gt = CocoGroundTruth::default();
        for cid in 0..self.num_classes {
            gt.categories.push(CocoCategory { id: cid, name: format!("class_{cid}") });
        }
        let mut ann_id = 0u64;
        for i in 0..self.len {
            let sample = self.get(i);
            gt.images.push(sample.record.clone());
            for obj in &sample.objects {
                gt.annotations.push(CocoAnnotation {
                    id: ann_id,
                    image_id: sample.record.image_id,
                    category_id: obj.category_id,
                    bbox: obj.bbox,
                    area: obj.bbox[2] * obj.bbox[3],
                    iscrowd: 0,
                });
                ann_id += 1;
            }
        }
        gt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenes_are_deterministic() {
        let ds = DetectionDataset::new(10, 4, 3, 32, 5);
        let a = ds.get(4);
        let b = ds.get(4);
        assert_eq!(a.image.data(), b.image.data());
        assert_eq!(a.objects, b.objects);
    }

    #[test]
    fn every_scene_has_one_to_four_objects_in_frame() {
        let ds = DetectionDataset::new(30, 4, 3, 32, 5);
        for i in 0..ds.len() {
            let s = ds.get(i);
            assert!((1..=4).contains(&s.objects.len()));
            for o in &s.objects {
                assert!(o.bbox[0] >= 0.0 && o.bbox[1] >= 0.0);
                assert!(o.bbox[0] + o.bbox[2] <= 32.0 + 1e-3);
                assert!(o.bbox[1] + o.bbox[3] <= 32.0 + 1e-3);
                assert!(o.category_id < 4);
            }
        }
    }

    #[test]
    fn objects_are_brighter_than_background() {
        let ds = DetectionDataset::new(5, 4, 1, 32, 9);
        let s = ds.get(0);
        let o = &s.objects[0];
        let cx = (o.bbox[0] + o.bbox[2] / 2.0) as usize;
        let cy = (o.bbox[1] + o.bbox[3] / 2.0) as usize;
        assert!(s.image.get(&[0, cy, cx]) > 0.05);
    }

    #[test]
    fn coco_export_indexes_every_image_and_object() {
        let ds = DetectionDataset::new(8, 3, 3, 32, 2);
        let gt = ds.coco_ground_truth();
        assert_eq!(gt.images.len(), 8);
        assert_eq!(gt.categories.len(), 3);
        let total: usize = (0..8).map(|i| ds.get(i).objects.len()).sum();
        assert_eq!(gt.annotations.len(), total);
        // annotation ids are unique
        let mut ids: Vec<u64> = gt.annotations.iter().map(|a| a.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), total);
        // round-trips through JSON
        let back = CocoGroundTruth::from_json(&gt.to_json().unwrap()).unwrap();
        assert_eq!(gt, back);
    }
}
