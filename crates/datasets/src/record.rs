//! COCO-style metadata records.
//!
//! PyTorchALFI wraps existing data loaders so that "the minimal
//! information stored about each image is directory+filename, height,
//! width, and image id" and "each dataset is first brought into a JSON
//! format as used in the COCO data set" (§V-E). These records are what
//! lets a persisted fault file be traced back to the *exact* image that
//! was being processed when a fault was active.

use alfi_serde::{json_struct, FromJson, Json, JsonError, ToJson};

/// Metadata preserved for every image flowing through an ALFI campaign.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ImageRecord {
    /// Unique image id within the dataset.
    pub image_id: u64,
    /// Directory + file name (synthetic datasets fabricate a stable
    /// virtual path).
    pub file_name: String,
    /// Image height in pixels.
    pub height: u32,
    /// Image width in pixels.
    pub width: u32,
}

/// One ground-truth object annotation, COCO conventions: `bbox` is
/// `[x, y, width, height]` in pixels.
#[derive(Debug, Clone, PartialEq)]
pub struct CocoAnnotation {
    /// Unique annotation id.
    pub id: u64,
    /// Id of the annotated image.
    pub image_id: u64,
    /// Object category.
    pub category_id: usize,
    /// `[x, y, width, height]` in pixels.
    pub bbox: [f32; 4],
    /// Box area in square pixels.
    pub area: f32,
    /// COCO crowd flag (always 0 for synthetic data).
    pub iscrowd: u8,
}

/// A category entry of the COCO index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CocoCategory {
    /// Category id.
    pub id: usize,
    /// Human-readable name.
    pub name: String,
}

/// A complete COCO-format ground-truth document (images + annotations +
/// categories), serializable with the in-tree `alfi-serde` JSON module —
/// the "ground truth and meta-files" output set of the paper's Fig. 3.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CocoGroundTruth {
    /// Image index.
    pub images: Vec<ImageRecord>,
    /// All object annotations.
    pub annotations: Vec<CocoAnnotation>,
    /// Category index.
    pub categories: Vec<CocoCategory>,
}

json_struct!(ImageRecord { image_id, file_name, height, width });
json_struct!(CocoAnnotation { id, image_id, category_id, bbox, area, iscrowd });
json_struct!(CocoCategory { id, name });
json_struct!(CocoGroundTruth { images, annotations, categories });

impl CocoGroundTruth {
    /// Serializes to pretty-printed COCO JSON.
    ///
    /// # Errors
    ///
    /// Infallible for this data model; the `Result` keeps the historical
    /// signature.
    pub fn to_json(&self) -> Result<String, JsonError> {
        Ok(ToJson::to_json(self).pretty())
    }

    /// Parses a COCO JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed input.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        FromJson::from_json(&Json::parse(text)?)
    }

    /// All annotations for one image.
    pub fn annotations_for(&self, image_id: u64) -> Vec<&CocoAnnotation> {
        self.annotations.iter().filter(|a| a.image_id == image_id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CocoGroundTruth {
        CocoGroundTruth {
            images: vec![ImageRecord {
                image_id: 1,
                file_name: "synthetic/scene_000001.png".into(),
                height: 64,
                width: 64,
            }],
            annotations: vec![CocoAnnotation {
                id: 10,
                image_id: 1,
                category_id: 2,
                bbox: [4.0, 8.0, 16.0, 12.0],
                area: 192.0,
                iscrowd: 0,
            }],
            categories: vec![CocoCategory { id: 2, name: "square".into() }],
        }
    }

    #[test]
    fn coco_json_round_trips() {
        let gt = sample();
        let json = gt.to_json().unwrap();
        let back = CocoGroundTruth::from_json(&json).unwrap();
        assert_eq!(gt, back);
    }

    #[test]
    fn json_uses_coco_field_names() {
        let json = sample().to_json().unwrap();
        for key in ["images", "annotations", "categories", "image_id", "category_id", "bbox", "iscrowd"] {
            assert!(json.contains(key), "missing key {key}");
        }
    }

    #[test]
    fn annotations_for_filters_by_image() {
        let mut gt = sample();
        gt.annotations.push(CocoAnnotation {
            id: 11,
            image_id: 2,
            category_id: 1,
            bbox: [0.0, 0.0, 1.0, 1.0],
            area: 1.0,
            iscrowd: 0,
        });
        assert_eq!(gt.annotations_for(1).len(), 1);
        assert_eq!(gt.annotations_for(2).len(), 1);
        assert!(gt.annotations_for(3).is_empty());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(CocoGroundTruth::from_json("{not json").is_err());
    }
}
