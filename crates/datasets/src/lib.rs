#![warn(missing_docs)]
//! # alfi-datasets
//!
//! Synthetic datasets and metadata-preserving data loaders for the ALFI
//! fault-injection framework.
//!
//! PyTorchALFI enriches existing data loaders so that every fault can be
//! traced back to the exact image it hit (§V-E): each image carries an
//! [`record::ImageRecord`] (id, virtual path, geometry), detection ground
//! truth is exported in COCO JSON form, and loaders support seeded
//! shuffling and subsetting so experiments replay exactly. Because
//! ImageNet/COCO are not available offline, the images themselves are
//! procedural (class-conditioned textures; rectangle scenes) — see
//! DESIGN.md for why this substitution preserves fault-propagation
//! behaviour.
//!
//! # Example
//!
//! ```
//! use alfi_datasets::classification::ClassificationDataset;
//! use alfi_datasets::loader::ClassificationLoader;
//!
//! let ds = ClassificationDataset::new(100, 10, 3, 32, 42);
//! let loader = ClassificationLoader::new(ds, 8).with_limit(16);
//! let n: usize = loader.iter_epoch(0).map(|b| b.labels.len()).sum();
//! assert_eq!(n, 16);
//! ```

pub mod classification;
pub mod detection;
pub mod loader;
pub mod record;

pub use classification::{ClassificationDataset, ClassificationSample};
pub use detection::{DetectionDataset, DetectionSample, GroundTruthBox};
pub use loader::{ClassificationBatch, ClassificationLoader, DetectionBatch, DetectionLoader};
pub use record::{CocoAnnotation, CocoCategory, CocoGroundTruth, ImageRecord};
