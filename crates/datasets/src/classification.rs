//! Procedural image-classification dataset.
//!
//! Stands in for ImageNet-style data: each class is a distinct
//! parametric texture (oriented sinusoidal gratings with class-specific
//! frequency and phase) plus per-image deterministic noise. Images are
//! generated on demand from `(seed, index)` so the dataset needs no
//! storage, is arbitrarily large, and is exactly reproducible — the
//! property ALFI's replay machinery depends on.

use crate::record::ImageRecord;
use alfi_tensor::Tensor;
use alfi_rng::Rng;

/// One classification sample.
#[derive(Debug, Clone)]
pub struct ClassificationSample {
    /// Image tensor `[c, h, w]` with values in roughly `[0, 1]`.
    pub image: Tensor,
    /// Ground-truth class label.
    pub label: usize,
    /// Preserved metadata.
    pub record: ImageRecord,
}

/// Deterministic synthetic classification dataset.
///
/// # Example
///
/// ```
/// use alfi_datasets::classification::ClassificationDataset;
///
/// let ds = ClassificationDataset::new(10, 8, 3, 32, 42);
/// let a = ds.get(3);
/// let b = ds.get(3);
/// assert_eq!(a.image.data(), b.image.data());
/// assert_eq!(a.label, b.label);
/// ```
#[derive(Debug, Clone)]
pub struct ClassificationDataset {
    len: usize,
    num_classes: usize,
    channels: usize,
    hw: usize,
    seed: u64,
}

impl ClassificationDataset {
    /// Creates a dataset of `len` images over `num_classes` classes with
    /// `channels × hw × hw` geometry, fully determined by `seed`.
    pub fn new(len: usize, num_classes: usize, channels: usize, hw: usize, seed: u64) -> Self {
        assert!(num_classes > 0, "need at least one class");
        ClassificationDataset { len, num_classes, channels, hw, seed }
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image side length.
    pub fn image_hw(&self) -> usize {
        self.hw
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Generates sample `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> ClassificationSample {
        assert!(index < self.len, "index {index} out of range for dataset of {}", self.len);
        let mut rng = Rng::from_seed(self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let label = rng.gen_range(0..self.num_classes);
        // Class texture: orientation and frequency derive from the label;
        // phase and noise vary per image.
        let angle = label as f32 / self.num_classes as f32 * std::f32::consts::PI;
        let freq = 2.0 + label as f32 * 1.5;
        let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        let (sa, ca) = angle.sin_cos();
        let mut data = Vec::with_capacity(self.channels * self.hw * self.hw);
        for c in 0..self.channels {
            let chan_shift = c as f32 * 0.7;
            for y in 0..self.hw {
                for x in 0..self.hw {
                    let u = x as f32 / self.hw as f32;
                    let v = y as f32 / self.hw as f32;
                    let t = (u * ca + v * sa) * freq * std::f32::consts::TAU + phase + chan_shift;
                    let noise: f32 = rng.gen_range(-0.05..0.05);
                    data.push(0.5 + 0.45 * t.sin() + noise);
                }
            }
        }
        let image = Tensor::from_vec(data, &[self.channels, self.hw, self.hw])
            .expect("dims consistent with generated data");
        ClassificationSample {
            image,
            label,
            record: ImageRecord {
                image_id: index as u64,
                file_name: format!("synthetic/class/img_{index:06}.png"),
                height: self.hw as u32,
                width: self.hw as u32,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_index() {
        let ds = ClassificationDataset::new(20, 5, 3, 16, 7);
        for i in [0, 7, 19] {
            let a = ds.get(i);
            let b = ds.get(i);
            assert_eq!(a.image.data(), b.image.data());
            assert_eq!(a.label, b.label);
            assert_eq!(a.record, b.record);
        }
    }

    #[test]
    fn different_indices_differ() {
        let ds = ClassificationDataset::new(10, 5, 3, 16, 7);
        assert_ne!(ds.get(0).image.data(), ds.get(1).image.data());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ClassificationDataset::new(10, 5, 3, 16, 1).get(0);
        let b = ClassificationDataset::new(10, 5, 3, 16, 2).get(0);
        assert_ne!(a.image.data(), b.image.data());
    }

    #[test]
    fn labels_cover_all_classes() {
        let ds = ClassificationDataset::new(200, 4, 1, 8, 3);
        let mut seen = vec![false; 4];
        for i in 0..ds.len() {
            seen[ds.get(i).label] = true;
        }
        assert!(seen.iter().all(|&s| s), "labels seen: {seen:?}");
    }

    #[test]
    fn pixel_values_are_bounded() {
        let ds = ClassificationDataset::new(5, 3, 3, 16, 9);
        for i in 0..5 {
            let img = ds.get(i).image;
            assert!(img.min() >= -0.1 && img.max() <= 1.1);
        }
    }

    #[test]
    fn record_preserves_geometry_and_identity() {
        let ds = ClassificationDataset::new(5, 3, 3, 24, 9);
        let s = ds.get(2);
        assert_eq!(s.record.image_id, 2);
        assert_eq!(s.record.height, 24);
        assert!(s.record.file_name.contains("img_000002"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        ClassificationDataset::new(2, 2, 1, 8, 0).get(2);
    }
}
