//! Batching data loaders that preserve per-image metadata.
//!
//! PyTorchALFI "builds on the user's existing data loader" and enriches
//! it so fault conditions can be reproduced "down to a single data item"
//! (§I, §V-E). These loaders stack samples into batch tensors while
//! carrying the [`ImageRecord`]s (and labels / ground truth) alongside,
//! with optional seeded shuffling and subsetting.

use crate::classification::ClassificationDataset;
use crate::detection::{DetectionDataset, GroundTruthBox};
use crate::record::ImageRecord;
use alfi_tensor::Tensor;
use alfi_rng::Rng;

/// A batch of classification samples.
#[derive(Debug, Clone)]
pub struct ClassificationBatch {
    /// Stacked images `[n, c, h, w]`.
    pub images: Tensor,
    /// Ground-truth labels, one per image.
    pub labels: Vec<usize>,
    /// Preserved metadata, one record per image.
    pub records: Vec<ImageRecord>,
}

/// A batch of detection samples.
#[derive(Debug, Clone)]
pub struct DetectionBatch {
    /// Stacked images `[n, c, h, w]`.
    pub images: Tensor,
    /// Ground-truth boxes per image.
    pub objects: Vec<Vec<GroundTruthBox>>,
    /// Preserved metadata, one record per image.
    pub records: Vec<ImageRecord>,
}

/// Computes the (possibly shuffled, possibly truncated) index order for
/// one epoch.
fn epoch_order(len: usize, limit: Option<usize>, shuffle_seed: Option<u64>) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    if let Some(seed) = shuffle_seed {
        let mut rng = Rng::from_seed(seed);
        rng.shuffle(&mut order);
    }
    if let Some(n) = limit {
        order.truncate(n);
    }
    order
}

/// Batching loader over a [`ClassificationDataset`].
///
/// # Example
///
/// ```
/// use alfi_datasets::classification::ClassificationDataset;
/// use alfi_datasets::loader::ClassificationLoader;
///
/// let ds = ClassificationDataset::new(10, 4, 3, 16, 0);
/// let loader = ClassificationLoader::new(ds, 4);
/// let batches: Vec<_> = loader.iter_epoch(0).collect();
/// assert_eq!(batches.len(), 3); // 4 + 4 + 2
/// assert_eq!(batches[0].images.dims(), &[4, 3, 16, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct ClassificationLoader {
    dataset: ClassificationDataset,
    batch_size: usize,
    limit: Option<usize>,
    shuffle: bool,
}

impl ClassificationLoader {
    /// Creates a loader with the given batch size (in-order, full set).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(dataset: ClassificationDataset, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        ClassificationLoader { dataset, batch_size, limit: None, shuffle: false }
    }

    /// Limits each epoch to the first `n` (post-shuffle) samples — the
    /// scenario's `dataset_size` knob.
    pub fn with_limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Enables seeded shuffling (a fresh permutation per epoch derived
    /// from the epoch number).
    pub fn with_shuffle(mut self, enabled: bool) -> Self {
        self.shuffle = enabled;
        self
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &ClassificationDataset {
        &self.dataset
    }

    /// Number of samples per epoch (after limiting).
    pub fn epoch_len(&self) -> usize {
        self.limit.map_or(self.dataset.len(), |l| l.min(self.dataset.len()))
    }

    /// Iterates the batches of epoch `epoch`.
    pub fn iter_epoch(&self, epoch: u64) -> impl Iterator<Item = ClassificationBatch> + '_ {
        let order = epoch_order(
            self.dataset.len(),
            self.limit,
            self.shuffle.then_some(epoch.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(1)),
        );
        let batch_size = self.batch_size;
        (0..order.len().div_ceil(batch_size)).map(move |b| {
            let idxs = &order[b * batch_size..((b + 1) * batch_size).min(order.len())];
            let samples: Vec<_> = idxs.iter().map(|&i| self.dataset.get(i)).collect();
            let images =
                Tensor::stack(&samples.iter().map(|s| s.image.clone()).collect::<Vec<_>>())
                    .expect("equal shapes from one dataset");
            ClassificationBatch {
                images,
                labels: samples.iter().map(|s| s.label).collect(),
                records: samples.iter().map(|s| s.record.clone()).collect(),
            }
        })
    }
}

/// Batching loader over a [`DetectionDataset`].
#[derive(Debug, Clone)]
pub struct DetectionLoader {
    dataset: DetectionDataset,
    batch_size: usize,
    limit: Option<usize>,
    shuffle: bool,
}

impl DetectionLoader {
    /// Creates a loader with the given batch size (in-order, full set).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(dataset: DetectionDataset, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        DetectionLoader { dataset, batch_size, limit: None, shuffle: false }
    }

    /// Limits each epoch to the first `n` (post-shuffle) samples.
    pub fn with_limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Enables seeded per-epoch shuffling.
    pub fn with_shuffle(mut self, enabled: bool) -> Self {
        self.shuffle = enabled;
        self
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &DetectionDataset {
        &self.dataset
    }

    /// Number of samples per epoch (after limiting).
    pub fn epoch_len(&self) -> usize {
        self.limit.map_or(self.dataset.len(), |l| l.min(self.dataset.len()))
    }

    /// Iterates the batches of epoch `epoch`.
    pub fn iter_epoch(&self, epoch: u64) -> impl Iterator<Item = DetectionBatch> + '_ {
        let order = epoch_order(
            self.dataset.len(),
            self.limit,
            self.shuffle.then_some(epoch.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(1)),
        );
        let batch_size = self.batch_size;
        (0..order.len().div_ceil(batch_size)).map(move |b| {
            let idxs = &order[b * batch_size..((b + 1) * batch_size).min(order.len())];
            let samples: Vec<_> = idxs.iter().map(|&i| self.dataset.get(i)).collect();
            let images =
                Tensor::stack(&samples.iter().map(|s| s.image.clone()).collect::<Vec<_>>())
                    .expect("equal shapes from one dataset");
            DetectionBatch {
                images,
                objects: samples.iter().map(|s| s.objects.clone()).collect(),
                records: samples.iter().map(|s| s.record.clone()).collect(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> ClassificationDataset {
        ClassificationDataset::new(10, 4, 1, 8, 3)
    }

    #[test]
    fn batches_cover_dataset_in_order() {
        let loader = ClassificationLoader::new(ds(), 4);
        let batches: Vec<_> = loader.iter_epoch(0).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[2].images.dims()[0], 2);
        let ids: Vec<u64> =
            batches.iter().flat_map(|b| b.records.iter().map(|r| r.image_id)).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn limit_truncates_epoch() {
        let loader = ClassificationLoader::new(ds(), 4).with_limit(6);
        assert_eq!(loader.epoch_len(), 6);
        let total: usize = loader.iter_epoch(0).map(|b| b.labels.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn shuffle_permutes_but_preserves_set() {
        let loader = ClassificationLoader::new(ds(), 10).with_shuffle(true);
        let e0: Vec<u64> = loader.iter_epoch(0).flat_map(|b| b.records.iter().map(|r| r.image_id).collect::<Vec<_>>()).collect();
        let e1: Vec<u64> = loader.iter_epoch(1).flat_map(|b| b.records.iter().map(|r| r.image_id).collect::<Vec<_>>()).collect();
        let mut s0 = e0.clone();
        s0.sort_unstable();
        assert_eq!(s0, (0..10).collect::<Vec<u64>>());
        assert_ne!(e0, e1, "different epochs should permute differently");
        // same epoch replays the same order
        let e0b: Vec<u64> = loader.iter_epoch(0).flat_map(|b| b.records.iter().map(|r| r.image_id).collect::<Vec<_>>()).collect();
        assert_eq!(e0, e0b);
    }

    #[test]
    fn labels_match_dataset() {
        let dataset = ds();
        let loader = ClassificationLoader::new(dataset.clone(), 3);
        for batch in loader.iter_epoch(0) {
            for (i, r) in batch.records.iter().enumerate() {
                assert_eq!(batch.labels[i], dataset.get(r.image_id as usize).label);
            }
        }
    }

    #[test]
    fn detection_loader_batches_with_objects() {
        let dataset = DetectionDataset::new(6, 3, 3, 32, 1);
        let loader = DetectionLoader::new(dataset, 4);
        let batches: Vec<_> = loader.iter_epoch(0).collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].images.dims(), &[4, 3, 32, 32]);
        assert_eq!(batches[0].objects.len(), 4);
        assert!(batches[0].objects.iter().all(|o| !o.is_empty()));
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_panics() {
        let _ = ClassificationLoader::new(ds(), 0);
    }
}
