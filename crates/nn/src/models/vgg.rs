//! VGG-16 (Simonyan & Zisserman, 2014) with scalable widths.

use super::{ModelConfig, NetBuilder};
use crate::graph::Network;

/// The thirteen convolutional stages of VGG-16: `Some(c)` is a 3×3
/// convolution to `c` channels (followed by ReLU), `None` a 2×2 max pool.
const VGG16_PLAN: &[Option<usize>] = &[
    Some(64),
    Some(64),
    None,
    Some(128),
    Some(128),
    None,
    Some(256),
    Some(256),
    Some(256),
    None,
    Some(512),
    Some(512),
    Some(512),
    None,
    Some(512),
    Some(512),
    Some(512),
    None,
];

/// Builds a VGG-16-topology classifier: 13 convolutions in five blocks
/// separated by max pooling, followed by three fully-connected layers.
///
/// This is the model the paper highlights in Fig. 2a: "VGG-16 without
/// protection has an 11.8 % vulnerability when injected with a single
/// fault per image inference" (weight faults on exponent bits).
pub fn vgg16(cfg: &ModelConfig) -> Network {
    let mut b = NetBuilder::new("vgg16", cfg.seed, cfg.in_channels);
    let mut conv_i = 0usize;
    let mut pool_i = 0usize;
    for step in VGG16_PLAN {
        match step {
            Some(c) => {
                conv_i += 1;
                b.conv(&format!("features.conv{conv_i}"), cfg.ch(*c), 3, 1, 1);
                b.relu(&format!("features.relu{conv_i}"));
            }
            None => {
                pool_i += 1;
                b.maxpool(&format!("features.pool{pool_i}"), 2, 2, 0);
            }
        }
    }
    b.adaptive_avgpool("avgpool", 2);
    let feats = b.flat_features(&cfg.input_dims(1));
    b.flatten("flatten");
    let hidden = cfg.ch(4096);
    b.linear("classifier.fc1", feats, hidden);
    b.relu("classifier.relu1");
    b.linear("classifier.fc2", hidden, hidden);
    b.relu("classifier.relu2");
    b.linear("classifier.fc3", hidden, cfg.num_classes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_tensor::Tensor;

    #[test]
    fn vgg16_has_thirteen_convs_and_three_linears() {
        let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
        let net = vgg16(&cfg);
        let inj = net.injectable_layers(None, None).unwrap();
        let convs = inj.iter().filter(|l| l.kind == crate::layer::LayerKind::Conv2d).count();
        let linears = inj.iter().filter(|l| l.kind == crate::layer::LayerKind::Linear).count();
        assert_eq!((convs, linears), (13, 3));
    }

    #[test]
    fn vgg16_forward_shape() {
        let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, num_classes: 7, ..ModelConfig::default() };
        let y = vgg16(&cfg).forward(&Tensor::ones(&cfg.input_dims(2))).unwrap();
        assert_eq!(y.dims(), &[2, 7]);
    }

    #[test]
    fn vgg16_full_width_stage_channels() {
        let cfg = ModelConfig { width_mult: 1.0, input_hw: 64, ..ModelConfig::default() };
        let net = vgg16(&cfg);
        let c13 = net.layer(net.node_by_name("features.conv13").unwrap()).unwrap();
        assert_eq!(c13.weight().unwrap().dims(), &[512, 512, 3, 3]);
    }
}
