//! ResNet-50 (He et al., 2015) with scalable widths.

use super::{ModelConfig, NetBuilder};
use crate::graph::Network;
use crate::layer::Layer;

/// Builds a ResNet-50-topology classifier: a 7×7 stem, four stages of
/// bottleneck blocks (3, 4, 6, 3), global average pooling and one
/// fully-connected layer. Residual additions use the graph's binary
/// `Add` nodes; projection shortcuts are 1×1 convolutions, exactly as in
/// the original architecture. In total the model has 53 convolutions and
/// 1 linear layer — all injectable by ALFI.
pub fn resnet50(cfg: &ModelConfig) -> Network {
    let mut b = NetBuilder::new("resnet50", cfg.seed, cfg.in_channels);
    let stem_stride = if cfg.input_hw < 64 { 1 } else { 2 };
    b.conv("stem.conv", cfg.ch(64), 7, stem_stride, 3);
    b.batchnorm("stem.bn");
    b.relu("stem.relu");
    b.maxpool("stem.pool", 3, 2, 1);

    let stage_plan: [(usize, usize, usize); 4] =
        [(64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)];

    for (stage_i, (width, blocks, first_stride)) in stage_plan.iter().enumerate() {
        for block_i in 0..*blocks {
            let stride = if block_i == 0 { *first_stride } else { 1 };
            bottleneck(
                &mut b,
                &format!("layer{}.{}", stage_i + 1, block_i),
                cfg.ch(*width),
                cfg.ch(width * 4),
                stride,
            );
        }
    }

    b.adaptive_avgpool("avgpool", 1);
    let feats = b.flat_features(&cfg.input_dims(1));
    b.flatten("flatten");
    b.linear("fc", feats, cfg.num_classes);
    b.finish()
}

/// Appends one bottleneck block (`1×1 reduce → 3×3 → 1×1 expand` plus a
/// shortcut) to the builder.
fn bottleneck(b: &mut NetBuilder, prefix: &str, width: usize, out_c: usize, stride: usize) {
    let block_in = b.last.expect("stem precedes all blocks");
    let in_c = b.channels;

    // Main path.
    b.conv(&format!("{prefix}.conv1"), width, 1, 1, 0);
    b.batchnorm(&format!("{prefix}.bn1"));
    b.relu(&format!("{prefix}.relu1"));
    b.conv(&format!("{prefix}.conv2"), width, 3, stride, 1);
    b.batchnorm(&format!("{prefix}.bn2"));
    b.relu(&format!("{prefix}.relu2"));
    b.conv(&format!("{prefix}.conv3"), out_c, 1, 1, 0);
    b.batchnorm(&format!("{prefix}.bn3"));
    let main_out = b.last.expect("main path built");

    // Shortcut path.
    let shortcut_out = if stride != 1 || in_c != out_c {
        b.last = Some(block_in);
        b.channels = in_c;
        b.conv(&format!("{prefix}.downsample.conv"), out_c, 1, stride, 0);
        b.batchnorm(&format!("{prefix}.downsample.bn"));
        b.last.expect("shortcut built")
    } else {
        block_in
    };

    let add = b
        .net
        .push(format!("{prefix}.add"), Layer::Add, &[main_out, shortcut_out])
        .expect("valid add node");
    b.last = Some(add);
    b.channels = out_c;
    b.relu(&format!("{prefix}.relu_out"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;
    use alfi_tensor::Tensor;

    fn tiny() -> ModelConfig {
        ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() }
    }

    #[test]
    fn resnet50_has_53_convs_and_1_linear() {
        let net = resnet50(&tiny());
        let inj = net.injectable_layers(None, None).unwrap();
        let convs = inj.iter().filter(|l| l.kind == LayerKind::Conv2d).count();
        let linears = inj.iter().filter(|l| l.kind == LayerKind::Linear).count();
        assert_eq!((convs, linears), (53, 1));
    }

    #[test]
    fn resnet50_forward_shape_and_finite() {
        let cfg = tiny();
        let y = resnet50(&cfg).forward(&Tensor::ones(&cfg.input_dims(2))).unwrap();
        assert_eq!(y.dims(), &[2, cfg.num_classes]);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn bottleneck_count_matches_stage_plan() {
        let net = resnet50(&tiny());
        let adds = net.nodes().iter().filter(|n| matches!(n.layer, Layer::Add)).count();
        assert_eq!(adds, 3 + 4 + 6 + 3);
    }

    #[test]
    fn downsample_appears_only_in_first_block_of_each_stage() {
        let net = resnet50(&tiny());
        let downs = net
            .nodes()
            .iter()
            .filter(|n| n.name.contains("downsample.conv"))
            .map(|n| n.name.clone())
            .collect::<Vec<_>>();
        assert_eq!(downs.len(), 4);
        for (i, d) in downs.iter().enumerate() {
            assert!(d.starts_with(&format!("layer{}.0", i + 1)), "{d}");
        }
    }
}
