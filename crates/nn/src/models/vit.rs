//! ViT-style transformer classifier with scalable width and depth.
//!
//! The transformer counterpart of the CNN zoo, built under the same
//! substitution rule: seeded deterministic parameters, and fault
//! injection targets exactly the conv/linear layers (the patch-embed
//! convolution plus every q/k/v/proj/MLP/head linear). Attention,
//! layer norm, GELU and token plumbing are non-injectable graph ops,
//! mirroring how ViT fault-injection studies perturb the GEMM-backed
//! projections while treating softmax/norm as control structure.

use super::{ModelConfig, NetBuilder};
use crate::graph::Network;
use crate::layer::{Layer, LayerNorm};

/// Builds a ViT-style classifier: patch-embed convolution (kernel =
/// stride = patch size), learned positional embedding, `depth`
/// pre-norm transformer blocks (multi-head self-attention + GELU MLP,
/// both residual), and a mean-token pooling head.
///
/// Every block contributes six injectable linear layers (`q`, `k`,
/// `v`, `proj`, `mlp.fc1`, `mlp.fc2`); with the patch-embed conv and
/// the classification head the model exposes `6·depth + 2` injectable
/// layers. The embedding width follows `cfg.ch(192)` (ViT-Tiny's dim),
/// rounded up to a multiple of `heads`.
pub fn vit(cfg: &ModelConfig, depth: usize, heads: usize) -> Network {
    let heads = heads.max(1);
    let dim = cfg.ch(192).div_ceil(heads) * heads;
    let patch = (cfg.input_hw / 4).max(1);
    let grid = cfg.input_hw / patch;
    let tokens = grid * grid;

    let mut b = NetBuilder::new("vit", cfg.seed, cfg.in_channels);
    b.conv("patch_embed.proj", dim, patch, patch, 0);
    push(&mut b, "patch_embed.tokens".into(), Layer::ImageToTokens);
    let pe = b.init.xavier_uniform(&[tokens, dim]);
    push(&mut b, "pos_embed".into(), Layer::PosEmbed(pe));

    for i in 0..depth {
        block(&mut b, &format!("blocks.{i}"), dim, heads);
    }

    push(&mut b, "norm".into(), Layer::LayerNorm(LayerNorm::identity(dim)));
    push(&mut b, "pool".into(), Layer::MeanTokens);
    b.linear("head", dim, cfg.num_classes);
    b.finish()
}

/// Transformer depth (block count) of the [`vit_tiny`] configuration.
pub const VIT_TINY_DEPTH: usize = 2;

/// Attention heads per block of the [`vit_tiny`] configuration.
pub const VIT_TINY_HEADS: usize = 3;

/// ViT-Tiny-flavoured default: 2 blocks, 3 heads — the fast-test
/// configuration registered in the campaign CLI as `vit`.
pub fn vit_tiny(cfg: &ModelConfig) -> Network {
    vit(cfg, VIT_TINY_DEPTH, VIT_TINY_HEADS)
}

fn push(b: &mut NetBuilder, name: String, layer: Layer) -> usize {
    let id = match b.last {
        Some(p) => b.net.push(name, layer, &[p]).expect("valid vit graph"),
        None => b.net.push(name, layer, &[]).expect("valid vit graph"),
    };
    b.last = Some(id);
    id
}

/// Appends one pre-norm transformer block: `x + proj(attn(q, k, v))`
/// over `ln1(x)`, then `x + fc2(gelu(fc1(ln2(x))))`.
fn block(b: &mut NetBuilder, prefix: &str, dim: usize, heads: usize) {
    let block_in = b.last.expect("patch embedding precedes blocks");

    let ln1 = push(b, format!("{prefix}.ln1"), Layer::LayerNorm(LayerNorm::identity(dim)));
    let q = b.linear(&format!("{prefix}.attn.q"), dim, dim);
    b.last = Some(ln1);
    let k = b.linear(&format!("{prefix}.attn.k"), dim, dim);
    b.last = Some(ln1);
    let v = b.linear(&format!("{prefix}.attn.v"), dim, dim);
    let attn = b
        .net
        .push(format!("{prefix}.attn.out"), Layer::Attention { heads }, &[q, k, v])
        .expect("valid attention node");
    b.last = Some(attn);
    let proj = b.linear(&format!("{prefix}.attn.proj"), dim, dim);
    let add1 = b
        .net
        .push(format!("{prefix}.add_attn"), Layer::Add, &[proj, block_in])
        .expect("valid residual add");
    b.last = Some(add1);

    push(b, format!("{prefix}.ln2"), Layer::LayerNorm(LayerNorm::identity(dim)));
    b.linear(&format!("{prefix}.mlp.fc1"), dim, 4 * dim);
    push(b, format!("{prefix}.mlp.gelu"), Layer::Gelu);
    let fc2 = b.linear(&format!("{prefix}.mlp.fc2"), 4 * dim, dim);
    let add2 = b
        .net
        .push(format!("{prefix}.add_mlp"), Layer::Add, &[fc2, add1])
        .expect("valid residual add");
    b.last = Some(add2);
}
