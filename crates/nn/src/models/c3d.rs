//! A compact C3D-style 3-D convolutional video classifier.
//!
//! PyTorchALFI supports conv3d as one of its three injectable layer
//! types, and Table I's fault records carry a *Depth* row for exactly
//! this case (§IV-B). This model exercises that path end-to-end: 3-D
//! convolutions over `[n, c, frames, h, w]` clips, downsampled by
//! strided convolutions, followed by a fully-connected classifier.

use super::NetBuilder;
use crate::graph::Network;

/// Configuration for the [`c3d`] builder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct C3dConfig {
    /// Number of frames per clip (depth dimension).
    pub frames: usize,
    /// Spatial side length.
    pub input_hw: usize,
    /// Input channels per frame.
    pub in_channels: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// Channel-width multiplier.
    pub width_mult: f32,
    /// Seed for deterministic initialization.
    pub seed: u64,
}

impl Default for C3dConfig {
    fn default() -> Self {
        C3dConfig {
            frames: 8,
            input_hw: 16,
            in_channels: 3,
            num_classes: 10,
            width_mult: 0.25,
            seed: 0,
        }
    }
}

impl C3dConfig {
    /// Scales a base channel count (minimum 1).
    pub fn ch(&self, base: usize) -> usize {
        ((base as f32 * self.width_mult).round() as usize).max(1)
    }

    /// The input clip dims `[n, c, frames, hw, hw]`.
    pub fn input_dims(&self, n: usize) -> Vec<usize> {
        vec![n, self.in_channels, self.frames, self.input_hw, self.input_hw]
    }
}

/// Builds a C3D-style clip classifier with three 3-D convolution stages
/// (two of them stride-2 downsampling) and one fully-connected head.
///
/// # Panics
///
/// Panics if `frames` or `input_hw` is smaller than 4 (two stride-2
/// stages need room to downsample).
pub fn c3d(cfg: &C3dConfig) -> Network {
    assert!(cfg.frames >= 4 && cfg.input_hw >= 4, "c3d needs frames/hw >= 4");
    let mut b = NetBuilder::new("c3d", cfg.seed, cfg.in_channels);
    b.conv3d("features.conv1", cfg.ch(32), 3, 1, 1);
    b.relu("features.relu1");
    b.conv3d("features.down1", cfg.ch(64), 3, 2, 1);
    b.relu("features.relu2");
    b.conv3d("features.conv2", cfg.ch(64), 3, 1, 1);
    b.relu("features.relu3");
    b.conv3d("features.down2", cfg.ch(128), 3, 2, 1);
    b.relu("features.relu4");
    let feats = b.flat_features(&cfg.input_dims(1));
    b.flatten("flatten");
    b.linear("classifier.fc1", feats, cfg.ch(256));
    b.relu("classifier.relu_fc1");
    b.linear("classifier.fc2", cfg.ch(256), cfg.num_classes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;
    use alfi_tensor::Tensor;

    fn tiny() -> C3dConfig {
        C3dConfig { frames: 4, input_hw: 8, width_mult: 0.125, ..C3dConfig::default() }
    }

    #[test]
    fn c3d_runs_and_is_deterministic() {
        let cfg = tiny();
        let a = c3d(&cfg);
        let b = c3d(&cfg);
        let x = Tensor::ones(&cfg.input_dims(2));
        let ya = a.forward(&x).unwrap();
        let yb = b.forward(&x).unwrap();
        assert_eq!(ya.dims(), &[2, cfg.num_classes]);
        assert_eq!(ya.data(), yb.data());
        assert!(!ya.has_non_finite());
    }

    #[test]
    fn c3d_has_four_conv3d_and_two_linear_layers() {
        let net = c3d(&tiny());
        let inj = net.injectable_layers(None, None).unwrap();
        let c3 = inj.iter().filter(|l| l.kind == LayerKind::Conv3d).count();
        let lin = inj.iter().filter(|l| l.kind == LayerKind::Linear).count();
        assert_eq!((c3, lin), (4, 2));
    }

    #[test]
    fn c3d_downsamples_depth_and_space() {
        let cfg = tiny();
        let net = c3d(&cfg);
        let shapes = net.infer_shapes(&cfg.input_dims(1)).unwrap();
        let down2 = net.node_by_name("features.down2").unwrap();
        // 4 frames -> 2 -> 1; 8 px -> 4 -> 2
        assert_eq!(&shapes[down2].dims()[2..], &[1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "frames/hw >= 4")]
    fn c3d_rejects_tiny_clips() {
        let _ = c3d(&C3dConfig { frames: 2, ..tiny() });
    }
}
