//! Classification model zoo.
//!
//! Faithful (width-scalable) reproductions of the three classification
//! architectures the paper's Fig. 2a evaluates — AlexNet, VGG-16 and
//! ResNet-50 — plus a small CNN for fast tests. Pre-trained ImageNet
//! checkpoints are not available to the Rust substrate, so parameters
//! come from seeded deterministic initialization (see
//! [`crate::init::Initializer`]); all ALFI KPIs compare against the
//! *fault-free output of the same model*, which makes trained weights
//! unnecessary for reproducing fault-propagation behaviour.

mod alexnet;
mod c3d;
mod densenet;
mod resnet;
mod vgg;
mod vit;

pub use alexnet::alexnet;
pub use c3d::{c3d, C3dConfig};
pub use densenet::densenet_tiny;
pub use resnet::resnet50;
pub use vgg::vgg16;
pub use vit::{vit, vit_tiny, VIT_TINY_DEPTH, VIT_TINY_HEADS};

use crate::graph::Network;
use crate::init::Initializer;
use crate::layer::{BatchNorm2d, Conv2d, Conv3d, Layer, Linear};
use alfi_tensor::conv::ConvConfig;

/// Configuration shared by all model builders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Input image side length (images are square `in_channels × hw × hw`).
    pub input_hw: usize,
    /// Number of input channels (3 for RGB).
    pub in_channels: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// Multiplier applied to every internal channel count. 1.0 gives the
    /// original architecture widths; small values (e.g. 0.125) give fast
    /// test-scale models with identical topology.
    pub width_mult: f32,
    /// Seed for deterministic weight initialization.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig { input_hw: 64, in_channels: 3, num_classes: 10, width_mult: 0.125, seed: 0 }
    }
}

impl ModelConfig {
    /// Scales a base channel count by the width multiplier (minimum 1).
    pub fn ch(&self, base: usize) -> usize {
        ((base as f32 * self.width_mult).round() as usize).max(1)
    }

    /// The input tensor dims for batch size `n`.
    pub fn input_dims(&self, n: usize) -> Vec<usize> {
        vec![n, self.in_channels, self.input_hw, self.input_hw]
    }
}

/// Incremental network builder shared by model constructors: tracks the
/// previous node and channel count and fabricates initialized layers.
pub(crate) struct NetBuilder {
    pub net: Network,
    pub init: Initializer,
    pub last: Option<usize>,
    pub channels: usize,
}

impl NetBuilder {
    pub fn new(name: &str, seed: u64, in_channels: usize) -> Self {
        NetBuilder {
            net: Network::new(name),
            init: Initializer::from_seed(seed),
            last: None,
            channels: in_channels,
        }
    }

    fn push(&mut self, name: String, layer: Layer) -> usize {
        let id = match self.last {
            Some(p) => self.net.push(name, layer, &[p]).expect("valid sequential graph"),
            None => self.net.push(name, layer, &[]).expect("valid first node"),
        };
        self.last = Some(id);
        id
    }

    pub fn conv(&mut self, name: &str, out_c: usize, k: usize, stride: usize, padding: usize) -> usize {
        let weight = self.init.he_normal(&[out_c, self.channels, k, k]);
        let bias = self.init.bias(out_c);
        let layer = Layer::Conv2d(Conv2d {
            weight,
            bias: Some(bias),
            cfg: ConvConfig { stride, padding, dilation: 1 },
        });
        self.channels = out_c;
        self.push(name.to_string(), layer)
    }

    pub fn conv3d(&mut self, name: &str, out_c: usize, k: usize, stride: usize, padding: usize) -> usize {
        let weight = self.init.he_normal(&[out_c, self.channels, k, k, k]);
        let bias = self.init.bias(out_c);
        let layer = Layer::Conv3d(Conv3d {
            weight,
            bias: Some(bias),
            cfg: ConvConfig { stride, padding, dilation: 1 },
        });
        self.channels = out_c;
        self.push(name.to_string(), layer)
    }

    pub fn relu(&mut self, name: &str) -> usize {
        self.push(name.to_string(), Layer::Relu)
    }

    pub fn leaky_relu(&mut self, name: &str, slope: f32) -> usize {
        self.push(name.to_string(), Layer::LeakyRelu(slope))
    }

    pub fn batchnorm(&mut self, name: &str) -> usize {
        self.push(name.to_string(), Layer::BatchNorm2d(BatchNorm2d::identity(self.channels)))
    }

    pub fn maxpool(&mut self, name: &str, k: usize, stride: usize, padding: usize) -> usize {
        self.push(name.to_string(), Layer::MaxPool2d { k, cfg: ConvConfig { stride, padding, dilation: 1 } })
    }

    pub fn adaptive_avgpool(&mut self, name: &str, out: usize) -> usize {
        self.push(name.to_string(), Layer::AdaptiveAvgPool2d(out))
    }

    pub fn flatten(&mut self, name: &str) -> usize {
        self.push(name.to_string(), Layer::Flatten)
    }

    pub fn linear(&mut self, name: &str, in_f: usize, out_f: usize) -> usize {
        let weight = self.init.he_normal(&[out_f, in_f]);
        let bias = self.init.bias(out_f);
        self.push(name.to_string(), Layer::Linear(Linear { weight, bias: Some(bias) }))
    }

    /// Number of features a `[1, c, h, w]` activation flattens to, via a
    /// dummy shape-inference run up to the current last node.
    pub fn flat_features(&mut self, input_dims: &[usize]) -> usize {
        let last = self.last.expect("at least one node before probing");
        let mut probe = self.net.clone();
        probe.set_output(last).expect("last node exists");
        let out = probe
            .forward(&alfi_tensor::Tensor::zeros(input_dims))
            .expect("shape probe succeeds");
        out.dims()[1..].iter().product()
    }

    pub fn finish(mut self) -> Network {
        let last = self.last.expect("non-empty network");
        self.net.set_output(last).expect("last node exists");
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_tensor::Tensor;

    #[test]
    fn model_config_channel_scaling() {
        let cfg = ModelConfig { width_mult: 0.25, ..ModelConfig::default() };
        assert_eq!(cfg.ch(64), 16);
        assert_eq!(cfg.ch(1), 1); // never drops to zero
        assert_eq!(cfg.input_dims(2), vec![2, 3, 64, 64]);
    }

    #[test]
    fn builder_constructs_runnable_chain() {
        let cfg = ModelConfig::default();
        let mut b = NetBuilder::new("chain", 1, cfg.in_channels);
        b.conv("c1", 4, 3, 1, 1);
        b.relu("r1");
        b.maxpool("p1", 2, 2, 0);
        let feats = b.flat_features(&cfg.input_dims(1));
        b.flatten("flat");
        b.linear("fc", feats, cfg.num_classes);
        let net = b.finish();
        let y = net.forward(&Tensor::zeros(&cfg.input_dims(1))).unwrap();
        assert_eq!(y.dims(), &[1, cfg.num_classes]);
    }

    #[test]
    fn all_zoo_models_run_and_are_deterministic() {
        let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
        for (name, build) in [
            ("alexnet", alexnet as fn(&ModelConfig) -> Network),
            ("vgg16", vgg16),
            ("resnet50", resnet50),
            ("vit", vit_tiny),
        ] {
            let m1 = build(&cfg);
            let m2 = build(&cfg);
            let x = Tensor::ones(&cfg.input_dims(1));
            let y1 = m1.forward(&x).unwrap_or_else(|e| panic!("{name} forward: {e}"));
            let y2 = m2.forward(&x).unwrap();
            assert_eq!(y1.dims(), &[1, cfg.num_classes], "{name} output shape");
            assert_eq!(y1.data(), y2.data(), "{name} determinism");
            assert!(!y1.has_non_finite(), "{name} produced non-finite logits");
        }
    }

    #[test]
    fn zoo_models_have_expected_injectable_layer_counts() {
        let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
        // AlexNet: 5 convs + 3 linears
        let a = alexnet(&cfg).injectable_layers(None, None).unwrap();
        assert_eq!(a.len(), 8, "alexnet injectable layers");
        // VGG-16: 13 convs + 3 linears
        let v = vgg16(&cfg).injectable_layers(None, None).unwrap();
        assert_eq!(v.len(), 16, "vgg16 injectable layers");
        // ResNet-50: 53 convs (incl. downsamples) + 1 linear
        let r = resnet50(&cfg).injectable_layers(None, None).unwrap();
        assert_eq!(r.len(), 54, "resnet50 injectable layers");
        // ViT-tiny: patch-embed conv + 6 linears per block × 2 + head
        let t = vit_tiny(&cfg).injectable_layers(None, None).unwrap();
        assert_eq!(t.len(), 14, "vit injectable layers");
    }

    #[test]
    fn vit_scales_depth_and_reports_token_shapes() {
        let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
        let m = vit(&cfg, 1, 3);
        assert_eq!(m.injectable_layers(None, None).unwrap().len(), 8);
        let x = Tensor::ones(&cfg.input_dims(2));
        let y = m.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, cfg.num_classes]);
        assert!(!y.has_non_finite());
        // q/k/v linears see rank-3 token outputs in shape inference
        let layers = m.injectable_layers(None, Some(&cfg.input_dims(1))).unwrap();
        let q = layers.iter().find(|l| l.name == "blocks.0.attn.q").unwrap();
        let dims = q.output_shape.as_ref().unwrap().dims().to_vec();
        assert_eq!(dims.len(), 3);
        assert_eq!(dims[0], 1);
        assert_eq!(dims[1], 16); // 4×4 patch grid
    }

    #[test]
    fn different_seeds_give_different_logits() {
        let a = alexnet(&ModelConfig { input_hw: 32, width_mult: 0.0625, seed: 1, ..ModelConfig::default() });
        let b = alexnet(&ModelConfig { input_hw: 32, width_mult: 0.0625, seed: 2, ..ModelConfig::default() });
        let x = Tensor::ones(&[1, 3, 32, 32]);
        assert_ne!(a.forward(&x).unwrap().data(), b.forward(&x).unwrap().data());
    }
}
