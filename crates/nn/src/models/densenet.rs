//! A compact DenseNet-style classifier with channel-concatenation blocks.
//!
//! Exercises the graph substrate's `ConcatChannels` nodes inside a
//! classifier and gives the "comparing the robustness of different types
//! of NN" use case a fourth, structurally distinct architecture: dense
//! connectivity re-exposes every layer's activations to all later
//! layers, which changes how a single corrupted value spreads compared
//! to the sequential (VGG/AlexNet) and residual (ResNet) topologies.

use super::{ModelConfig, NetBuilder};
use crate::graph::Network;
use crate::layer::Layer;

/// Builds a small DenseNet-style classifier: a stem convolution, two
/// dense blocks (three concatenative layers each) separated by a
/// 1×1-conv + pool transition, global pooling and one linear head.
pub fn densenet_tiny(cfg: &ModelConfig) -> Network {
    let growth = cfg.ch(32).max(2);
    let mut b = NetBuilder::new("densenet_tiny", cfg.seed, cfg.in_channels);
    b.conv("stem.conv", cfg.ch(32), 3, 1, 1);
    b.batchnorm("stem.bn");
    b.relu("stem.relu");

    dense_block(&mut b, "block1", 3, growth);
    // Transition: 1x1 compression + 2x2 pooling.
    let compressed = (b.channels / 2).max(1);
    b.conv("trans1.conv", compressed, 1, 1, 0);
    b.relu("trans1.relu");
    b.maxpool("trans1.pool", 2, 2, 0);

    dense_block(&mut b, "block2", 3, growth);

    b.adaptive_avgpool("avgpool", 1);
    let feats = b.flat_features(&cfg.input_dims(1));
    b.flatten("flatten");
    b.linear("classifier", feats, cfg.num_classes);
    b.finish()
}

/// Appends one dense block: each layer convolves the concatenation of
/// all previous features in the block and contributes `growth` new
/// channels.
fn dense_block(b: &mut NetBuilder, prefix: &str, layers: usize, growth: usize) {
    for i in 0..layers {
        let block_in = b.last.expect("stem precedes blocks");
        let in_ch = b.channels;
        b.conv(&format!("{prefix}.conv{i}"), growth, 3, 1, 1);
        b.batchnorm(&format!("{prefix}.bn{i}"));
        let new_feat = b.relu(&format!("{prefix}.relu{i}"));
        let concat = b
            .net
            .push(format!("{prefix}.concat{i}"), Layer::ConcatChannels, &[block_in, new_feat])
            .expect("valid concat node");
        b.last = Some(concat);
        b.channels = in_ch + growth;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;
    use alfi_tensor::Tensor;

    fn tiny() -> ModelConfig {
        ModelConfig { input_hw: 16, width_mult: 0.125, ..ModelConfig::default() }
    }

    #[test]
    fn densenet_runs_and_is_deterministic() {
        let cfg = tiny();
        let a = densenet_tiny(&cfg);
        let b = densenet_tiny(&cfg);
        let x = Tensor::ones(&cfg.input_dims(2));
        let ya = a.forward(&x).unwrap();
        assert_eq!(ya.dims(), &[2, cfg.num_classes]);
        assert_eq!(ya.data(), b.forward(&x).unwrap().data());
        assert!(!ya.has_non_finite());
    }

    #[test]
    fn dense_blocks_grow_channels_by_concatenation() {
        let cfg = tiny();
        let net = densenet_tiny(&cfg);
        let shapes = net.infer_shapes(&cfg.input_dims(1)).unwrap();
        let growth = cfg.ch(32).max(2);
        let stem = cfg.ch(32);
        // after block1: stem + 3*growth channels
        let c1 = net.node_by_name("block1.concat2").unwrap();
        assert_eq!(shapes[c1].dims()[1], stem + 3 * growth);
        // concat count: 6 total
        let concats =
            net.nodes().iter().filter(|n| matches!(n.layer, Layer::ConcatChannels)).count();
        assert_eq!(concats, 6);
    }

    #[test]
    fn densenet_has_expected_injectable_layers() {
        let net = densenet_tiny(&tiny());
        let inj = net.injectable_layers(None, None).unwrap();
        // stem + 6 dense convs + 1 transition conv + 1 linear
        let convs = inj.iter().filter(|l| l.kind == LayerKind::Conv2d).count();
        let linears = inj.iter().filter(|l| l.kind == LayerKind::Linear).count();
        assert_eq!((convs, linears), (8, 1));
    }

    #[test]
    fn transition_halves_channels() {
        let cfg = tiny();
        let net = densenet_tiny(&cfg);
        let shapes = net.infer_shapes(&cfg.input_dims(1)).unwrap();
        let c1 = net.node_by_name("block1.concat2").unwrap();
        let t = net.node_by_name("trans1.conv").unwrap();
        assert_eq!(shapes[t].dims()[1], (shapes[c1].dims()[1] / 2).max(1));
    }
}
