//! AlexNet (Krizhevsky et al., 2012) with scalable widths.

use super::{ModelConfig, NetBuilder};
use crate::graph::Network;

/// Builds an AlexNet-topology classifier.
///
/// Layer structure matches torchvision's `alexnet`: five convolutions
/// with interleaved ReLU/max-pool, adaptive average pooling, then three
/// fully-connected layers. Channel counts scale with
/// [`ModelConfig::width_mult`]. The kernel/stride schedule is adapted for
/// small inputs: the stem uses stride 2 (instead of 4) when
/// `input_hw < 128` so that feature maps do not collapse.
pub fn alexnet(cfg: &ModelConfig) -> Network {
    let mut b = NetBuilder::new("alexnet", cfg.seed, cfg.in_channels);
    let small = cfg.input_hw < 128;
    let stem_stride = if small { 2 } else { 4 };
    // Small inputs keep the 3x2 pooling schedule but pad by 1 so the
    // final feature map never collapses below the pooling window.
    let pool_pad = usize::from(small);

    b.conv("features.conv1", cfg.ch(64), 11, stem_stride, 2);
    b.relu("features.relu1");
    b.maxpool("features.pool1", 3, 2, pool_pad);
    b.conv("features.conv2", cfg.ch(192), 5, 1, 2);
    b.relu("features.relu2");
    b.maxpool("features.pool2", 3, 2, pool_pad);
    b.conv("features.conv3", cfg.ch(384), 3, 1, 1);
    b.relu("features.relu3");
    b.conv("features.conv4", cfg.ch(256), 3, 1, 1);
    b.relu("features.relu4");
    b.conv("features.conv5", cfg.ch(256), 3, 1, 1);
    b.relu("features.relu5");
    b.maxpool("features.pool5", 3, 2, pool_pad);
    b.adaptive_avgpool("avgpool", 2);

    let feats = b.flat_features(&cfg.input_dims(1));
    b.flatten("flatten");
    let hidden = cfg.ch(4096);
    b.linear("classifier.fc1", feats, hidden);
    b.relu("classifier.relu1");
    b.linear("classifier.fc2", hidden, hidden);
    b.relu("classifier.relu2");
    b.linear("classifier.fc3", hidden, cfg.num_classes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_tensor::Tensor;

    #[test]
    fn alexnet_runs_on_batches() {
        let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
        let net = alexnet(&cfg);
        let y = net.forward(&Tensor::ones(&cfg.input_dims(3))).unwrap();
        assert_eq!(y.dims(), &[3, cfg.num_classes]);
    }

    #[test]
    fn alexnet_layer_names_follow_torchvision_convention() {
        let net = alexnet(&ModelConfig::default());
        assert!(net.node_by_name("features.conv1").is_some());
        assert!(net.node_by_name("classifier.fc3").is_some());
    }

    #[test]
    fn alexnet_full_width_channel_counts() {
        let cfg = ModelConfig { width_mult: 1.0, input_hw: 128, ..ModelConfig::default() };
        let net = alexnet(&cfg);
        let conv1 = net.layer(net.node_by_name("features.conv1").unwrap()).unwrap();
        assert_eq!(conv1.weight().unwrap().dims(), &[64, 3, 11, 11]);
        let conv5 = net.layer(net.node_by_name("features.conv5").unwrap()).unwrap();
        assert_eq!(conv5.weight().unwrap().dims()[0], 256);
    }
}
