//! Weight persistence: save and load a network's parameters.
//!
//! Enables the paper's workflow split — train (or otherwise obtain) a
//! model once, persist its parameters, and reload them for any number of
//! fault-injection campaigns. The format is versioned, length-prefixed
//! and checksummed like the fault-matrix files, and validates that the
//! target network's layer names and shapes match before touching any
//! parameter, so a checkpoint can never be silently loaded into the
//! wrong architecture.
//!
//! Saved per injectable/parameterized layer: node name, weight tensor,
//! optional bias, plus every `BatchNorm2d`'s affine+statistics tensors.

use crate::error::NnError;
use crate::graph::Network;
use crate::layer::Layer;
use alfi_tensor::Tensor;
use std::path::Path;

const MAGIC: &[u8; 8] = b"ALFIWGT1";
const VERSION: u32 = 1;

fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    out.extend_from_slice(&(t.rank() as u32).to_le_bytes());
    for &d in t.dims() {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NnError> {
        if self.pos + n > self.data.len() {
            return Err(NnError::InvalidGraph("weight file truncated".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, NnError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, NnError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, NnError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn string(&mut self) -> Result<String, NnError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| NnError::InvalidGraph("weight file holds invalid utf-8 name".into()))
    }

    fn tensor(&mut self) -> Result<Tensor, NnError> {
        let rank = self.u32()? as usize;
        if rank > 8 {
            return Err(NnError::InvalidGraph(format!("implausible tensor rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(self.u64()? as usize);
        }
        let n: usize = dims.iter().product();
        if n > 1 << 28 {
            return Err(NnError::InvalidGraph("implausible tensor size".into()));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f32()?);
        }
        Ok(Tensor::from_vec(data, &dims)?)
    }
}

/// The parameter tensors of one node in a checkpoint.
#[derive(Debug, Clone)]
struct Entry {
    name: String,
    tensors: Vec<Tensor>,
}

fn node_tensors(layer: &Layer) -> Option<Vec<Tensor>> {
    match layer {
        Layer::Conv2d(c) => {
            let mut v = vec![c.weight.clone()];
            v.extend(c.bias.clone());
            Some(v)
        }
        Layer::Conv3d(c) => {
            let mut v = vec![c.weight.clone()];
            v.extend(c.bias.clone());
            Some(v)
        }
        Layer::Linear(l) => {
            let mut v = vec![l.weight.clone()];
            v.extend(l.bias.clone());
            Some(v)
        }
        Layer::BatchNorm2d(bn) => Some(vec![
            bn.gamma.clone(),
            bn.beta.clone(),
            bn.running_mean.clone(),
            bn.running_var.clone(),
        ]),
        _ => None,
    }
}

fn apply_tensors(layer: &mut Layer, tensors: &[Tensor], name: &str) -> Result<(), NnError> {
    let mismatch = |why: &str| NnError::InvalidGraph(format!("checkpoint mismatch at `{name}`: {why}"));
    match layer {
        Layer::Conv2d(c) => {
            let expect = 1 + usize::from(c.bias.is_some());
            if tensors.len() != expect {
                return Err(mismatch("tensor count"));
            }
            if tensors[0].dims() != c.weight.dims() {
                return Err(mismatch("weight shape"));
            }
            c.weight = tensors[0].clone();
            if let Some(b) = &mut c.bias {
                if tensors[1].dims() != b.dims() {
                    return Err(mismatch("bias shape"));
                }
                *b = tensors[1].clone();
            }
        }
        Layer::Conv3d(c) => {
            let expect = 1 + usize::from(c.bias.is_some());
            if tensors.len() != expect || tensors[0].dims() != c.weight.dims() {
                return Err(mismatch("weight shape"));
            }
            c.weight = tensors[0].clone();
            if let Some(b) = &mut c.bias {
                if tensors[1].dims() != b.dims() {
                    return Err(mismatch("bias shape"));
                }
                *b = tensors[1].clone();
            }
        }
        Layer::Linear(l) => {
            let expect = 1 + usize::from(l.bias.is_some());
            if tensors.len() != expect || tensors[0].dims() != l.weight.dims() {
                return Err(mismatch("weight shape"));
            }
            l.weight = tensors[0].clone();
            if let Some(b) = &mut l.bias {
                if tensors[1].dims() != b.dims() {
                    return Err(mismatch("bias shape"));
                }
                *b = tensors[1].clone();
            }
        }
        Layer::BatchNorm2d(bn) => {
            if tensors.len() != 4 || tensors[0].dims() != bn.gamma.dims() {
                return Err(mismatch("batchnorm shape"));
            }
            bn.gamma = tensors[0].clone();
            bn.beta = tensors[1].clone();
            bn.running_mean = tensors[2].clone();
            bn.running_var = tensors[3].clone();
        }
        _ => return Err(mismatch("layer has no parameters")),
    }
    Ok(())
}

/// Serializes all parameters of a network to the checkpoint wire format.
pub fn encode_weights(net: &Network) -> Vec<u8> {
    let entries: Vec<Entry> = net
        .nodes()
        .iter()
        .filter_map(|n| {
            node_tensors(&n.layer).map(|tensors| Entry { name: n.name.clone(), tensors })
        })
        .collect();
    let mut body = Vec::new();
    put_str(&mut body, net.name());
    body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in &entries {
        put_str(&mut body, &e.name);
        body.extend_from_slice(&(e.tensors.len() as u32).to_le_bytes());
        for t in &e.tensors {
            put_tensor(&mut body, t);
        }
    }
    let mut out = Vec::with_capacity(body.len() + 24);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Loads checkpoint bytes into a network whose architecture must match
/// (same parameterized node names, in order, same tensor shapes).
///
/// # Errors
///
/// Returns [`NnError::InvalidGraph`] for corrupt files or any
/// architecture mismatch. On error the network is left unmodified.
pub fn decode_weights_into(net: &mut Network, data: &[u8]) -> Result<(), NnError> {
    let mut r = Reader { data, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(NnError::InvalidGraph("not an ALFI weight file".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(NnError::InvalidGraph(format!("unsupported weight file version {version}")));
    }
    let body_len = r.u64()? as usize;
    let checksum = r.u32()?;
    let body = r.take(body_len)?;
    if r.pos != data.len() {
        return Err(NnError::InvalidGraph("trailing bytes in weight file".into()));
    }
    if crc32(body) != checksum {
        return Err(NnError::InvalidGraph("weight file checksum mismatch".into()));
    }
    let mut r = Reader { data: body, pos: 0 };
    let _model_name = r.string()?;
    let n_entries = r.u32()? as usize;
    let mut entries = Vec::with_capacity(n_entries.min(1 << 16));
    for _ in 0..n_entries {
        let name = r.string()?;
        let n_tensors = r.u32()? as usize;
        if n_tensors > 8 {
            return Err(NnError::InvalidGraph("implausible tensor count".into()));
        }
        let mut tensors = Vec::with_capacity(n_tensors);
        for _ in 0..n_tensors {
            tensors.push(r.tensor()?);
        }
        entries.push(Entry { name, tensors });
    }

    // Validate the full mapping before mutating anything.
    let param_nodes: Vec<usize> = net
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| node_tensors(&n.layer).is_some())
        .map(|(id, _)| id)
        .collect();
    if param_nodes.len() != entries.len() {
        return Err(NnError::InvalidGraph(format!(
            "checkpoint has {} parameterized layers, model has {}",
            entries.len(),
            param_nodes.len()
        )));
    }
    for (&id, e) in param_nodes.iter().zip(entries.iter()) {
        if net.nodes()[id].name != e.name {
            return Err(NnError::InvalidGraph(format!(
                "checkpoint layer `{}` does not match model layer `{}`",
                e.name,
                net.nodes()[id].name
            )));
        }
        // dry-run shape validation on a clone of the layer
        let mut probe = net.nodes()[id].layer.clone();
        apply_tensors(&mut probe, &e.tensors, &e.name)?;
    }
    for (&id, e) in param_nodes.iter().zip(entries.iter()) {
        let layer = net.layer_mut(id)?;
        apply_tensors(layer, &e.tensors, &e.name)?;
    }
    Ok(())
}

/// Saves a network's parameters to a file.
///
/// # Errors
///
/// Returns [`NnError::InvalidGraph`] wrapping the OS error message on
/// I/O failure.
pub fn save_weights(net: &Network, path: impl AsRef<Path>) -> Result<(), NnError> {
    std::fs::write(path.as_ref(), encode_weights(net))
        .map_err(|e| NnError::InvalidGraph(format!("cannot write weight file: {e}")))
}

/// Loads parameters from a file into a matching network.
///
/// # Errors
///
/// Returns [`NnError::InvalidGraph`] for I/O failures, corrupt files or
/// architecture mismatches.
pub fn load_weights(net: &mut Network, path: impl AsRef<Path>) -> Result<(), NnError> {
    let data = std::fs::read(path.as_ref())
        .map_err(|e| NnError::InvalidGraph(format!("cannot read weight file: {e}")))?;
    decode_weights_into(net, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{alexnet, resnet50, ModelConfig};

    fn cfg(seed: u64) -> ModelConfig {
        ModelConfig { input_hw: 16, width_mult: 0.0625, seed, ..ModelConfig::default() }
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let source = alexnet(&cfg(1));
        let mut target = alexnet(&cfg(2)); // different weights, same arch
        let x = Tensor::ones(&cfg(1).input_dims(1));
        assert_ne!(source.forward(&x).unwrap().data(), target.forward(&x).unwrap().data());

        let bytes = encode_weights(&source);
        decode_weights_into(&mut target, &bytes).unwrap();
        let a = source.forward(&x).unwrap();
        let b = target.forward(&x).unwrap();
        let ab: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb);
    }

    #[test]
    fn checkpoint_includes_batchnorm_state() {
        let mut source = resnet50(&cfg(3));
        // poke a batchnorm running stat so the checkpoint must carry it
        let bn_id = source.node_by_name("stem.bn").unwrap();
        if let Layer::BatchNorm2d(bn) = source.layer_mut(bn_id).unwrap() {
            bn.running_mean.set(&[0], 0.5);
        }
        let mut target = resnet50(&cfg(3));
        decode_weights_into(&mut target, &encode_weights(&source)).unwrap();
        if let Layer::BatchNorm2d(bn) = target.layer(bn_id).unwrap() {
            assert_eq!(bn.running_mean.get(&[0]), 0.5);
        } else {
            panic!("expected batchnorm");
        }
    }

    #[test]
    fn wrong_architecture_is_rejected_without_mutation() {
        let source = alexnet(&cfg(1));
        let mut target = resnet50(&cfg(1));
        let before: Vec<f32> = target.layer(0).unwrap().weight().unwrap().data().to_vec();
        let err = decode_weights_into(&mut target, &encode_weights(&source)).unwrap_err();
        assert!(err.to_string().contains("parameterized layers") || err.to_string().contains("does not match"));
        assert_eq!(target.layer(0).unwrap().weight().unwrap().data(), &before[..]);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let source = alexnet(&cfg(1));
        let mut bytes = encode_weights(&source);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let mut target = alexnet(&cfg(1));
        assert!(decode_weights_into(&mut target, &bytes).is_err());
        // truncation
        let bytes = encode_weights(&source);
        assert!(decode_weights_into(&mut target, &bytes[..bytes.len() / 2]).is_err());
        // wrong magic
        let mut bytes = encode_weights(&source);
        bytes[0] = b'X';
        assert!(decode_weights_into(&mut target, &bytes).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("alfi_weights_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.alfiw");
        let source = alexnet(&cfg(5));
        save_weights(&source, &path).unwrap();
        let mut target = alexnet(&cfg(6));
        load_weights(&mut target, &path).unwrap();
        let x = Tensor::ones(&cfg(5).input_dims(1));
        assert_eq!(source.forward(&x).unwrap().data(), target.forward(&x).unwrap().data());
        assert!(load_weights(&mut target, dir.join("missing.alfiw")).is_err());
    }
}
