//! Magnitude pruning — the substrate for the paper's use case "compare
//! the robustness of NN between the original model and a pruned
//! version" (§V).
//!
//! Pruning zeroes the smallest-magnitude fraction of each injectable
//! layer's weights. The pruned model keeps the exact same topology and
//! injectable-layer list, so a persisted fault matrix transfers to it
//! unchanged — the property the comparison use case relies on.

use crate::graph::Network;
use crate::NnError;

/// Zeroes the `fraction` smallest-magnitude weights of every injectable
/// layer (per-layer thresholding), returning the pruned clone.
///
/// # Errors
///
/// Returns [`NnError::InvalidGraph`] if `fraction` is outside `[0, 1]`.
pub fn magnitude_prune(model: &Network, fraction: f64) -> Result<Network, NnError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(NnError::InvalidGraph(format!(
            "prune fraction {fraction} outside [0, 1]"
        )));
    }
    let mut pruned = model.clone();
    for id in 0..pruned.num_nodes() {
        let layer = pruned.layer_mut(id)?;
        let Some(w) = layer.weight_mut() else { continue };
        let n = w.num_elements();
        if n == 0 {
            continue;
        }
        let k = ((n as f64) * fraction).floor() as usize;
        if k == 0 {
            continue;
        }
        // Threshold = magnitude of the k-th smallest |weight|.
        let mut mags: Vec<f32> = w.data().iter().map(|x| x.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));
        let threshold = mags[k - 1];
        // Zero at most k weights (ties at the threshold are kept once the
        // budget is spent, keeping the sparsity exact).
        let mut budget = k;
        for v in w.data_mut() {
            if budget == 0 {
                break;
            }
            if v.abs() <= threshold {
                *v = 0.0;
                budget -= 1;
            }
        }
    }
    Ok(pruned)
}

/// Fraction of exactly-zero weights across all injectable layers.
pub fn sparsity(model: &Network) -> f64 {
    let mut zeros = 0usize;
    let mut total = 0usize;
    for node in model.nodes() {
        if let Some(w) = node.layer.weight() {
            zeros += w.data().iter().filter(|x| **x == 0.0).count();
            total += w.num_elements();
        }
    }
    if total == 0 {
        0.0
    } else {
        zeros as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{alexnet, ModelConfig};
    use alfi_tensor::Tensor;

    fn model() -> Network {
        alexnet(&ModelConfig { input_hw: 16, width_mult: 0.0625, ..ModelConfig::default() })
    }

    #[test]
    fn pruning_reaches_target_sparsity() {
        let m = model();
        assert!(sparsity(&m) < 0.01, "dense init has ~no exact zeros");
        for frac in [0.25, 0.5, 0.9] {
            let p = magnitude_prune(&m, frac).unwrap();
            let s = sparsity(&p);
            assert!((s - frac).abs() < 0.02, "target {frac}, got {s}");
        }
    }

    #[test]
    fn pruning_zero_fraction_is_identity() {
        let m = model();
        let p = magnitude_prune(&m, 0.0).unwrap();
        let x = Tensor::ones(&[1, 3, 16, 16]);
        assert_eq!(m.forward(&x).unwrap().data(), p.forward(&x).unwrap().data());
    }

    #[test]
    fn pruning_removes_smallest_weights_first() {
        let m = model();
        let p = magnitude_prune(&m, 0.5).unwrap();
        for (orig, pruned) in m.nodes().iter().zip(p.nodes().iter()) {
            let (Some(wo), Some(wp)) = (orig.layer.weight(), pruned.layer.weight()) else {
                continue;
            };
            // every surviving weight is at least as large as every pruned one
            let max_pruned = wo
                .data()
                .iter()
                .zip(wp.data())
                .filter(|(_, p)| **p == 0.0)
                .map(|(o, _)| o.abs())
                .fold(0.0f32, f32::max);
            let min_kept = wp
                .data()
                .iter()
                .filter(|x| **x != 0.0)
                .map(|x| x.abs())
                .fold(f32::INFINITY, f32::min);
            assert!(max_pruned <= min_kept + 1e-6);
        }
    }

    #[test]
    fn pruned_model_keeps_injectable_list_and_original_is_untouched() {
        let m = model();
        let before = m.layer(0).unwrap().weight().unwrap().data().to_vec();
        let p = magnitude_prune(&m, 0.5).unwrap();
        assert_eq!(m.layer(0).unwrap().weight().unwrap().data(), &before[..]);
        let a: Vec<_> =
            m.injectable_layers(None, None).unwrap().into_iter().map(|l| l.name).collect();
        let b: Vec<_> =
            p.injectable_layers(None, None).unwrap().into_iter().map(|l| l.name).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_fraction_is_rejected() {
        assert!(magnitude_prune(&model(), -0.1).is_err());
        assert!(magnitude_prune(&model(), 1.5).is_err());
    }

    #[test]
    fn full_pruning_zeroes_everything() {
        let p = magnitude_prune(&model(), 1.0).unwrap();
        assert!((sparsity(&p) - 1.0).abs() < 1e-9);
    }
}
