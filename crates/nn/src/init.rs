//! Deterministic, seeded weight initialization.
//!
//! ALFI experiments must be exactly replayable (§IV-A: "storing and
//! reusing fault locations is essential to ensure comparability and
//! reproducibility"). Since pre-trained PyTorch checkpoints are not
//! available to the Rust substrate, every model in the zoo is built from
//! a seed: the same seed always produces bit-identical parameters, so a
//! persisted fault file replayed against a re-built model corrupts
//! exactly the same values.

use alfi_tensor::Tensor;
use alfi_rng::Rng;

/// Seeded weight initializer handed to model builders.
#[derive(Debug)]
pub struct Initializer {
    rng: Rng,
}

impl Initializer {
    /// Creates an initializer from a seed. Equal seeds yield bit-identical
    /// parameter streams.
    pub fn from_seed(seed: u64) -> Self {
        Initializer { rng: Rng::from_seed(seed) }
    }

    /// He (Kaiming) normal initialization for a conv weight
    /// `[c_out, c_in, kh, kw]` or linear weight `[out, in]`: zero-mean
    /// normal with `std = sqrt(2 / fan_in)`. Suits ReLU networks.
    pub fn he_normal(&mut self, dims: &[usize]) -> Tensor {
        let fan_in: usize = dims[1..].iter().product::<usize>().max(1);
        let std = (2.0 / fan_in as f32).sqrt();
        Tensor::rand_normal(&mut self.rng, dims, 0.0, std)
    }

    /// Xavier (Glorot) uniform initialization:
    /// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
    pub fn xavier_uniform(&mut self, dims: &[usize]) -> Tensor {
        let fan_in: usize = dims[1..].iter().product::<usize>().max(1);
        let fan_out = dims[0].max(1);
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(&mut self.rng, dims, -bound, bound)
    }

    /// Small uniform bias initialization `U(-0.05, 0.05)`.
    pub fn bias(&mut self, n: usize) -> Tensor {
        Tensor::rand_uniform(&mut self.rng, &[n], -0.05, 0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_bit_identical() {
        let mut a = Initializer::from_seed(99);
        let mut b = Initializer::from_seed(99);
        let wa = a.he_normal(&[8, 4, 3, 3]);
        let wb = b.he_normal(&[8, 4, 3, 3]);
        assert_eq!(wa.data(), wb.data());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Initializer::from_seed(1);
        let mut b = Initializer::from_seed(2);
        assert_ne!(a.he_normal(&[4, 4]).data(), b.he_normal(&[4, 4]).data());
    }

    #[test]
    fn he_normal_std_scales_with_fan_in() {
        let mut init = Initializer::from_seed(5);
        let w = init.he_normal(&[64, 128, 3, 3]);
        let std_expected = (2.0f32 / (128.0 * 9.0)).sqrt();
        let mean = w.mean();
        let std = w.map(|x| (x - mean) * (x - mean)).mean().sqrt();
        assert!((std - std_expected).abs() < std_expected * 0.1);
    }

    #[test]
    fn xavier_uniform_respects_bound() {
        let mut init = Initializer::from_seed(5);
        let w = init.xavier_uniform(&[32, 32]);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(w.max() <= bound && w.min() >= -bound);
    }

    #[test]
    fn bias_is_small() {
        let mut init = Initializer::from_seed(5);
        let b = init.bias(100);
        assert!(b.max() <= 0.05 && b.min() >= -0.05);
    }
}
