//! One-stage anchor detector with an FPN, in the RetinaNet style.

use super::geometry::{nms, Detection};
use super::{anchor_sizes, cap_detections, decode_deltas, sigmoid, Detector, DetectorConfig};
use crate::error::NnError;
use crate::graph::{Network, NodeId};
use crate::layer::Layer;
use crate::models::NetBuilder;
use alfi_tensor::Tensor;

/// Anchor aspect ratios used at every pyramid level.
const RATIOS: [f32; 3] = [0.5, 1.0, 2.0];
/// Anchor scale multipliers used at every pyramid level.
const SCALES: [f32; 1] = [1.0];

/// RetinaNet-style detector: a convolutional backbone producing C3/C4
/// feature maps, a feature-pyramid network (1×1 laterals, top-down 2×
/// upsampling and additive merge) yielding P3/P4, and per-level
/// classification and box-regression subnets with dense anchors.
///
/// Deviation from the original: head weights are per-level rather than
/// shared across levels (the graph substrate binds weights to nodes);
/// this preserves the architecture's fault surface — dense sigmoid
/// classification over anchors at multiple scales — which is what drives
/// its IVMOD behaviour in Fig. 2b.
#[derive(Debug, Clone)]
pub struct RetinaAnchor {
    net: Network,
    cfg: DetectorConfig,
    /// Per level: (cls node, box node, stride).
    levels: Vec<(NodeId, NodeId, usize)>,
}

impl RetinaAnchor {
    /// Builds the detector.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.input_hw` is not divisible by 16 (P4 stride).
    pub fn new(cfg: &DetectorConfig) -> RetinaAnchor {
        assert!(cfg.input_hw.is_multiple_of(16), "input_hw must be divisible by 16");
        let a = SCALES.len() * RATIOS.len();
        let fpn_ch = cfg.ch(64);

        let mut b = NetBuilder::new("retina_anchor", cfg.seed, cfg.in_channels);
        // Backbone.
        b.conv("backbone.conv1", cfg.ch(32), 3, 2, 1); // stride 2
        b.batchnorm("backbone.bn1");
        b.relu("backbone.relu1");
        b.conv("backbone.conv2", cfg.ch(64), 3, 2, 1); // stride 4
        b.batchnorm("backbone.bn2");
        b.relu("backbone.relu2");
        b.conv("backbone.conv3", cfg.ch(128), 3, 2, 1); // stride 8
        b.batchnorm("backbone.bn3");
        let c3 = b.relu("backbone.relu3");
        let c3_ch = b.channels;
        b.conv("backbone.conv4", cfg.ch(256), 3, 2, 1); // stride 16
        b.batchnorm("backbone.bn4");
        let c4 = b.relu("backbone.relu4");
        let c4_ch = b.channels;

        // FPN laterals.
        b.last = Some(c4);
        b.channels = c4_ch;
        let p4 = b.conv("fpn.lateral4", fpn_ch, 1, 1, 0);
        let up = b.net.push("fpn.up4", Layer::Upsample2x, &[p4]).expect("valid node");
        b.last = Some(c3);
        b.channels = c3_ch;
        let lat3 = b.conv("fpn.lateral3", fpn_ch, 1, 1, 0);
        let p3 = b.net.push("fpn.merge3", Layer::Add, &[lat3, up]).expect("valid node");

        // Per-level heads.
        let mut levels = Vec::new();
        for (level, (feat, stride)) in [(p3, 8usize), (p4, 16usize)].into_iter().enumerate() {
            let lv = level + 3;
            b.last = Some(feat);
            b.channels = fpn_ch;
            b.conv(&format!("head{lv}.cls_conv1"), fpn_ch, 3, 1, 1);
            b.relu(&format!("head{lv}.cls_relu1"));
            let cls = b.conv(&format!("head{lv}.cls_pred"), a * cfg.num_classes, 1, 1, 0);
            b.last = Some(feat);
            b.channels = fpn_ch;
            b.conv(&format!("head{lv}.box_conv1"), fpn_ch, 3, 1, 1);
            b.relu(&format!("head{lv}.box_relu1"));
            let boxr = b.conv(&format!("head{lv}.box_pred"), a * 4, 1, 1, 0);
            levels.push((cls, boxr, stride));
        }
        let net = b.finish();
        RetinaAnchor { net, cfg: *cfg, levels }
    }

    /// The `(cls, box, stride)` head node ids per pyramid level.
    pub fn level_nodes(&self) -> &[(NodeId, NodeId, usize)] {
        &self.levels
    }
}

impl Detector for RetinaAnchor {
    fn clone_boxed(&self) -> Option<Box<dyn Detector>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &str {
        "retina_anchor"
    }

    fn num_classes(&self) -> usize {
        self.cfg.num_classes
    }

    fn networks(&self) -> Vec<&Network> {
        vec![&self.net]
    }

    fn networks_mut(&mut self) -> Vec<&mut Network> {
        vec![&mut self.net]
    }

    fn detect(&self, images: &Tensor) -> Result<Vec<Vec<Detection>>, NnError> {
        let acts = self.net.forward_all(images)?;
        let n = images.dims()[0];
        let c = self.cfg.num_classes;
        let a = SCALES.len() * RATIOS.len();
        let img = self.cfg.input_hw as f32;
        let mut out = vec![Vec::new(); n];
        for &(cls_id, box_id, stride) in &self.levels {
            let cls = &acts[cls_id];
            let boxes = &acts[box_id];
            let s = cls.dims()[2];
            let anchors = anchor_sizes(stride as f32 * 4.0, &SCALES, &RATIOS);
            for (b, dets) in out.iter_mut().enumerate().take(n) {
                for (ai, &(aw, ah)) in anchors.iter().enumerate().take(a) {
                    for gy in 0..s {
                        for gx in 0..s {
                            let acx = (gx as f32 + 0.5) * stride as f32;
                            let acy = (gy as f32 + 0.5) * stride as f32;
                            let mut best_cls = 0usize;
                            let mut best_p = f32::NEG_INFINITY;
                            for ci in 0..c {
                                let p = cls.get(&[b, ai * c + ci, gy, gx]);
                                if p > best_p {
                                    best_p = p;
                                    best_cls = ci;
                                }
                            }
                            let score = sigmoid(best_p);
                            // `<` is false for NaN: corrupted scores stay visible.
                            if score < self.cfg.score_thresh {
                                continue;
                            }
                            let d = |k: usize| boxes.get(&[b, ai * 4 + k, gy, gx]);
                            let bbox = decode_deltas(acx, acy, aw, ah, d(0), d(1), d(2), d(3))
                                .clamp_to(img, img);
                            dets.push(Detection { bbox, score, class_id: best_cls });
                        }
                    }
                }
            }
        }
        Ok(out
            .into_iter()
            .map(|dets| cap_detections(nms(dets, self.cfg.nms_iou), self.cfg.max_dets))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_rng::Rng;

    fn cfg() -> DetectorConfig {
        DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() }
    }

    #[test]
    fn retina_builds_two_levels_with_correct_strides() {
        let det = RetinaAnchor::new(&cfg());
        let strides: Vec<usize> = det.level_nodes().iter().map(|&(_, _, s)| s).collect();
        assert_eq!(strides, vec![8, 16]);
    }

    #[test]
    fn retina_head_shapes_are_consistent() {
        let det = RetinaAnchor::new(&cfg());
        let acts = det.net.forward_all(&Tensor::zeros(&[1, 3, 32, 32])).unwrap();
        let a = SCALES.len() * RATIOS.len();
        for &(cls, boxr, stride) in det.level_nodes() {
            let s = 32 / stride;
            assert_eq!(acts[cls].dims(), &[1, a * det.num_classes(), s, s]);
            assert_eq!(acts[boxr].dims(), &[1, a * 4, s, s]);
        }
    }

    #[test]
    fn retina_detects_deterministically() {
        let a = RetinaAnchor::new(&cfg());
        let b = RetinaAnchor::new(&cfg());
        let mut rng = Rng::from_seed(5);
        let imgs = Tensor::rand_uniform(&mut rng, &[1, 3, 32, 32], 0.0, 1.0);
        assert_eq!(a.detect(&imgs).unwrap(), b.detect(&imgs).unwrap());
    }

    #[test]
    fn retina_detections_respect_frame_and_cap() {
        let det = RetinaAnchor::new(&cfg());
        let mut rng = Rng::from_seed(6);
        let imgs = Tensor::rand_uniform(&mut rng, &[2, 3, 32, 32], 0.0, 1.0);
        for dets in det.detect(&imgs).unwrap() {
            assert!(dets.len() <= det.cfg.max_dets);
            for d in &dets {
                assert!(d.bbox.x1 >= 0.0 && d.bbox.y2 <= 32.0);
                assert!(d.class_id < det.num_classes());
            }
        }
    }

    #[test]
    fn retina_fpn_merge_uses_add_node() {
        let det = RetinaAnchor::new(&cfg());
        assert!(det
            .net
            .nodes()
            .iter()
            .any(|n| n.name == "fpn.merge3" && matches!(n.layer, Layer::Add)));
    }
}
