//! Object-detection model zoo.
//!
//! Reproduces the three detector families the paper's Fig. 2b evaluates:
//! a one-stage grid detector (YOLOv3-style, [`YoloGrid`]), a one-stage
//! anchor/FPN detector (RetinaNet-style, [`RetinaAnchor`]) and a
//! two-stage region-proposal detector (Faster-RCNN-style,
//! [`FrcnnTwoStage`]). Each is built from the same graph substrate as the
//! classifiers, so ALFI's hooks and weight mutation work unchanged; the
//! anchor decoding, proposal selection and NMS post-processing are plain
//! Rust, matching how PyTorchFI only instruments NN layers and leaves
//! post-processing fault-free.

mod frcnn;
pub mod geometry;
mod retina;
mod yolo;

pub use frcnn::FrcnnTwoStage;
pub use geometry::{match_detections, nms, BBox, Detection};
pub use retina::RetinaAnchor;
pub use yolo::YoloGrid;

use crate::error::NnError;
use crate::graph::Network;
use alfi_tensor::Tensor;

/// Configuration shared by all detector builders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Input image side length.
    pub input_hw: usize,
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of object classes.
    pub num_classes: usize,
    /// Channel-width multiplier for the backbone and heads.
    pub width_mult: f32,
    /// Seed for deterministic weight initialization.
    pub seed: u64,
    /// Minimum confidence for a detection to be emitted.
    pub score_thresh: f32,
    /// IoU threshold for non-maximum suppression.
    pub nms_iou: f32,
    /// Maximum number of detections returned per image.
    pub max_dets: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            input_hw: 64,
            in_channels: 3,
            num_classes: 8,
            width_mult: 0.25,
            seed: 0,
            score_thresh: 0.55,
            nms_iou: 0.5,
            max_dets: 20,
        }
    }
}

impl DetectorConfig {
    /// Scales a base channel count by the width multiplier (minimum 1).
    pub fn ch(&self, base: usize) -> usize {
        ((base as f32 * self.width_mult).round() as usize).max(1)
    }

    /// Input tensor dims for batch size `n`.
    pub fn input_dims(&self, n: usize) -> Vec<usize> {
        vec![n, self.in_channels, self.input_hw, self.input_hw]
    }
}

/// A full object-detection model: one or more [`Network`]s plus decode
/// logic.
///
/// The `networks`/`networks_mut` accessors expose every NN component for
/// fault injection; `detect` runs inference plus decoding and returns
/// per-image detection lists.
pub trait Detector: Send {
    /// Model name (e.g. `yolo_grid`).
    fn name(&self) -> &str;
    /// Number of object classes.
    fn num_classes(&self) -> usize;
    /// The underlying networks, in a stable order.
    fn networks(&self) -> Vec<&Network>;
    /// Mutable access to the underlying networks (same order), for weight
    /// faults and hook registration.
    fn networks_mut(&mut self) -> Vec<&mut Network>;
    /// Runs detection on a batch `[n, c, h, w]`, returning one detection
    /// list per image.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the input shape is incompatible.
    fn detect(&self, images: &Tensor) -> Result<Vec<Vec<Detection>>, NnError>;

    /// Deep-copies the detector (weights and all) for parallel
    /// campaigns, where every worker arms faults on its own private
    /// clone. Returns `None` when the detector cannot be cloned; the
    /// in-tree detectors all support it.
    fn clone_boxed(&self) -> Option<Box<dyn Detector>> {
        None
    }
}

/// Numerically-stable logistic sigmoid used by all decoders.
pub(crate) fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Generates `scales.len() * ratios.len()` anchor boxes (w, h) for a
/// feature stride.
pub(crate) fn anchor_sizes(base: f32, scales: &[f32], ratios: &[f32]) -> Vec<(f32, f32)> {
    let mut out = Vec::with_capacity(scales.len() * ratios.len());
    for &s in scales {
        for &r in ratios {
            let area = (base * s) * (base * s);
            let w = (area / r).sqrt();
            let h = w * r;
            out.push((w, h));
        }
    }
    out
}

/// Standard box-delta decoding: applies `(dx, dy, dw, dh)` to an anchor
/// centered at `(acx, acy)` with size `(aw, ah)`. Delta magnitudes are
/// clamped to avoid `exp` overflow on fault-corrupted values — the decode
/// stays total even when the network emits huge numbers, so corruption
/// surfaces as wrong boxes (SDE) rather than a crash.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decode_deltas(
    acx: f32,
    acy: f32,
    aw: f32,
    ah: f32,
    dx: f32,
    dy: f32,
    dw: f32,
    dh: f32,
) -> BBox {
    const CLAMP: f32 = 4.0;
    let cx = acx + dx.clamp(-CLAMP, CLAMP) * aw;
    let cy = acy + dy.clamp(-CLAMP, CLAMP) * ah;
    let w = aw * dw.clamp(-CLAMP, CLAMP).exp();
    let h = ah * dh.clamp(-CLAMP, CLAMP).exp();
    BBox::from_cxcywh(cx, cy, w, h)
}

/// Truncates a detection list to the `max_dets` highest-scoring entries.
pub(crate) fn cap_detections(mut dets: Vec<Detection>, max_dets: usize) -> Vec<Detection> {
    dets.sort_by(|a, b| match (a.score.is_nan(), b.score.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.score.partial_cmp(&a.score).expect("non-nan"),
    });
    dets.truncate(max_dets);
    dets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_endpoints() {
        assert!(sigmoid(-40.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(40.0) > 1.0 - 1e-6);
    }

    #[test]
    fn anchor_sizes_cover_scales_and_ratios() {
        let a = anchor_sizes(16.0, &[1.0, 2.0], &[0.5, 1.0, 2.0]);
        assert_eq!(a.len(), 6);
        // ratio 1.0 anchors are square
        assert!((a[1].0 - a[1].1).abs() < 1e-4);
        // areas scale with the square of the scale factor
        let area0 = a[0].0 * a[0].1;
        let area3 = a[3].0 * a[3].1;
        assert!((area3 / area0 - 4.0).abs() < 1e-3);
    }

    #[test]
    fn decode_deltas_identity() {
        let b = decode_deltas(10.0, 20.0, 4.0, 6.0, 0.0, 0.0, 0.0, 0.0);
        assert!((b.x1 - 8.0).abs() < 1e-5 && (b.y2 - 23.0).abs() < 1e-5);
    }

    #[test]
    fn decode_deltas_clamps_corrupted_values() {
        let b = decode_deltas(10.0, 10.0, 4.0, 4.0, 1.0e20, f32::NEG_INFINITY, 1.0e20, 1.0e9);
        assert!(!b.has_non_finite());
    }

    #[test]
    fn cap_detections_keeps_top_scores() {
        let mk = |s: f32| Detection { bbox: BBox::new(0.0, 0.0, 1.0, 1.0), score: s, class_id: 0 };
        let capped = cap_detections(vec![mk(0.1), mk(0.9), mk(0.5), mk(f32::NAN)], 2);
        assert_eq!(capped.len(), 2);
        assert_eq!(capped[0].score, 0.9);
        assert_eq!(capped[1].score, 0.5);
    }

    #[test]
    fn detector_config_scaling() {
        let cfg = DetectorConfig { width_mult: 0.5, ..DetectorConfig::default() };
        assert_eq!(cfg.ch(32), 16);
        assert_eq!(cfg.input_dims(2), vec![2, 3, 64, 64]);
    }
}
