//! Two-stage region-proposal detector in the Faster-RCNN style.

use super::geometry::{nms, BBox, Detection};
use super::{cap_detections, decode_deltas, sigmoid, Detector, DetectorConfig};
use crate::error::NnError;
use crate::graph::{Network, NodeId};
use crate::models::NetBuilder;
use alfi_tensor::Tensor;

/// Square anchor side lengths (pixels) used by the RPN.
const RPN_ANCHORS: [f32; 3] = [12.0, 24.0, 48.0];
/// Proposals kept before NMS.
const PRE_NMS_TOP_N: usize = 64;
/// Proposals kept after NMS and fed to the second stage.
const POST_NMS_TOP_N: usize = 16;
/// RoI pooling output side length.
const ROI_POOL: usize = 4;

/// Faster-RCNN-style two-stage detector.
///
/// Stage 1 is a convolutional backbone plus a region-proposal network
/// (RPN) emitting per-anchor objectness and box deltas; proposals are
/// decoded, NMS-filtered and RoI-pooled from the backbone feature map.
/// Stage 2 is a fully-connected head scoring each proposal over
/// `num_classes + 1` classes (last index = background) and refining its
/// box. Both stages are ordinary [`Network`]s, so ALFI can inject faults
/// into either — the paper's fault-location "layer index" space simply
/// spans both networks in order.
#[derive(Debug, Clone)]
pub struct FrcnnTwoStage {
    backbone: Network,
    head: Network,
    cfg: DetectorConfig,
    feat_node: NodeId,
    obj_node: NodeId,
    delta_node: NodeId,
    feat_ch: usize,
    stride: usize,
}

impl FrcnnTwoStage {
    /// Builds the detector.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.input_hw` is not divisible by 8 (backbone stride).
    pub fn new(cfg: &DetectorConfig) -> FrcnnTwoStage {
        assert!(cfg.input_hw.is_multiple_of(8), "input_hw must be divisible by 8");
        let a = RPN_ANCHORS.len();
        let stride = 8usize;

        let mut b = NetBuilder::new("frcnn.backbone", cfg.seed, cfg.in_channels);
        b.conv("backbone.conv1", cfg.ch(32), 3, 2, 1);
        b.batchnorm("backbone.bn1");
        b.relu("backbone.relu1");
        b.conv("backbone.conv2", cfg.ch(64), 3, 2, 1);
        b.batchnorm("backbone.bn2");
        b.relu("backbone.relu2");
        b.conv("backbone.conv3", cfg.ch(128), 3, 2, 1);
        b.batchnorm("backbone.bn3");
        let feat_node = b.relu("backbone.relu3");
        let feat_ch = b.channels;
        // RPN head on the shared feature map.
        b.conv("rpn.conv", cfg.ch(128), 3, 1, 1);
        let rpn_mid = b.relu("rpn.relu");
        let obj_node = b.conv("rpn.objectness", a, 1, 1, 0);
        b.last = Some(rpn_mid);
        b.channels = cfg.ch(128);
        let delta_node = b.conv("rpn.deltas", a * 4, 1, 1, 0);
        let backbone = b.finish();

        // Second-stage head on RoI-pooled features.
        let roi_feat = feat_ch * ROI_POOL * ROI_POOL;
        let mut h = NetBuilder::new("frcnn.head", cfg.seed.wrapping_add(1), 0);
        h.linear("head.fc1", roi_feat, cfg.ch(256));
        h.relu("head.relu1");
        h.linear("head.out", cfg.ch(256), (cfg.num_classes + 1) + 4);
        let head = h.finish();

        FrcnnTwoStage {
            backbone,
            head,
            cfg: *cfg,
            feat_node,
            obj_node,
            delta_node,
            feat_ch,
            stride,
        }
    }

    /// Decodes RPN outputs into up to [`POST_NMS_TOP_N`] proposals for
    /// batch item `b`.
    fn proposals(&self, acts: &[Tensor], b: usize) -> Vec<(BBox, f32)> {
        let obj = &acts[self.obj_node];
        let deltas = &acts[self.delta_node];
        let s = obj.dims()[2];
        let img = self.cfg.input_hw as f32;
        let mut cands: Vec<(BBox, f32)> = Vec::new();
        for (ai, &side) in RPN_ANCHORS.iter().enumerate() {
            for gy in 0..s {
                for gx in 0..s {
                    let score = sigmoid(obj.get(&[b, ai, gy, gx]));
                    let acx = (gx as f32 + 0.5) * self.stride as f32;
                    let acy = (gy as f32 + 0.5) * self.stride as f32;
                    let d = |k: usize| deltas.get(&[b, ai * 4 + k, gy, gx]);
                    let bbox = decode_deltas(acx, acy, side, side, d(0), d(1), d(2), d(3))
                        .clamp_to(img, img);
                    if bbox.area() > 1.0 {
                        cands.push((bbox, score));
                    }
                }
            }
        }
        cands.sort_by(|a, b| match (a.1.is_nan(), b.1.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => b.1.partial_cmp(&a.1).expect("non-nan"),
        });
        cands.truncate(PRE_NMS_TOP_N);
        // class-agnostic NMS at IoU 0.7
        let dets: Vec<Detection> = cands
            .iter()
            .map(|&(bbox, score)| Detection { bbox, score, class_id: 0 })
            .collect();
        let kept = nms(dets, 0.7);
        kept.into_iter().take(POST_NMS_TOP_N).map(|d| (d.bbox, d.score)).collect()
    }

    /// RoI-pools the backbone feature map over a proposal box into a
    /// flat `feat_ch * ROI_POOL^2` vector (mean pooling per sub-cell).
    fn roi_pool(&self, feat: &Tensor, b: usize, bbox: &BBox) -> Vec<f32> {
        let (c, fh, fw) = (feat.dims()[1], feat.dims()[2], feat.dims()[3]);
        let sx = self.stride as f32;
        // proposal in feature coordinates, clamped
        let fx1 = (bbox.x1 / sx).floor().clamp(0.0, (fw - 1) as f32) as usize;
        let fy1 = (bbox.y1 / sx).floor().clamp(0.0, (fh - 1) as f32) as usize;
        let fx2 = ((bbox.x2 / sx).ceil().clamp(1.0, fw as f32) as usize).max(fx1 + 1);
        let fy2 = ((bbox.y2 / sx).ceil().clamp(1.0, fh as f32) as usize).max(fy1 + 1);
        let rw = fx2 - fx1;
        let rh = fy2 - fy1;
        let mut out = Vec::with_capacity(c * ROI_POOL * ROI_POOL);
        for ch in 0..c {
            for py in 0..ROI_POOL {
                let y0 = fy1 + py * rh / ROI_POOL;
                let y1 = (fy1 + ((py + 1) * rh).div_ceil(ROI_POOL)).min(fy2);
                for px in 0..ROI_POOL {
                    let x0 = fx1 + px * rw / ROI_POOL;
                    let x1 = (fx1 + ((px + 1) * rw).div_ceil(ROI_POOL)).min(fx2);
                    let mut acc = 0.0f32;
                    let mut cnt = 0usize;
                    for y in y0..y1.max(y0 + 1).min(fh) {
                        for x in x0..x1.max(x0 + 1).min(fw) {
                            acc += feat.get(&[b, ch, y, x]);
                            cnt += 1;
                        }
                    }
                    out.push(if cnt > 0 { acc / cnt as f32 } else { 0.0 });
                }
            }
        }
        out
    }
}

impl Detector for FrcnnTwoStage {
    fn clone_boxed(&self) -> Option<Box<dyn Detector>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &str {
        "frcnn_two_stage"
    }

    fn num_classes(&self) -> usize {
        self.cfg.num_classes
    }

    fn networks(&self) -> Vec<&Network> {
        vec![&self.backbone, &self.head]
    }

    fn networks_mut(&mut self) -> Vec<&mut Network> {
        vec![&mut self.backbone, &mut self.head]
    }

    fn detect(&self, images: &Tensor) -> Result<Vec<Vec<Detection>>, NnError> {
        let acts = self.backbone.forward_all(images)?;
        let feat = &acts[self.feat_node];
        let n = images.dims()[0];
        let c = self.cfg.num_classes;
        let img = self.cfg.input_hw as f32;
        let mut out = Vec::with_capacity(n);
        for b in 0..n {
            let props = self.proposals(&acts, b);
            let mut dets = Vec::new();
            if !props.is_empty() {
                let pooled: Vec<f32> = props
                    .iter()
                    .flat_map(|(bbox, _)| self.roi_pool(feat, b, bbox))
                    .collect();
                let roi_feat = self.feat_ch * ROI_POOL * ROI_POOL;
                let input = Tensor::from_vec(pooled, &[props.len(), roi_feat])
                    .map_err(NnError::from)?;
                let head_out = self.head.forward(&input)?;
                for (pi, (pbox, _pscore)) in props.iter().enumerate() {
                    // softmax over the (C+1) class logits
                    let mut best_cls = 0usize;
                    let mut best_logit = f32::NEG_INFINITY;
                    let mut denom = 0.0f32;
                    let max_logit = (0..=c)
                        .map(|ci| head_out.get(&[pi, ci]))
                        .fold(f32::NEG_INFINITY, f32::max);
                    for ci in 0..=c {
                        let l = head_out.get(&[pi, ci]);
                        denom += (l - max_logit).exp();
                        if ci < c && l > best_logit {
                            best_logit = l;
                            best_cls = ci;
                        }
                    }
                    let score = (best_logit - max_logit).exp() / denom;
                    // `<` is false for NaN, so NaN-corrupted scores pass through and
                    // surface as DUE symptoms downstream.
                    if score < self.cfg.score_thresh {
                        continue;
                    }
                    let d = |k: usize| head_out.get(&[pi, c + 1 + k]);
                    let cx = (pbox.x1 + pbox.x2) / 2.0;
                    let cy = (pbox.y1 + pbox.y2) / 2.0;
                    let bbox = decode_deltas(
                        cx,
                        cy,
                        pbox.width().max(1.0),
                        pbox.height().max(1.0),
                        d(0),
                        d(1),
                        d(2),
                        d(3),
                    )
                    .clamp_to(img, img);
                    dets.push(Detection { bbox, score, class_id: best_cls });
                }
            }
            out.push(cap_detections(nms(dets, self.cfg.nms_iou), self.cfg.max_dets));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_rng::Rng;

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            input_hw: 32,
            width_mult: 0.125,
            score_thresh: 0.2,
            ..DetectorConfig::default()
        }
    }

    #[test]
    fn frcnn_exposes_two_networks() {
        let mut det = FrcnnTwoStage::new(&cfg());
        assert_eq!(det.networks().len(), 2);
        assert_eq!(det.networks_mut().len(), 2);
        // both networks have injectable layers
        for net in det.networks() {
            assert!(!net.injectable_layers(None, None).unwrap().is_empty());
        }
    }

    #[test]
    fn frcnn_detects_without_panic_and_respects_cap() {
        let det = FrcnnTwoStage::new(&cfg());
        let mut rng = Rng::from_seed(7);
        let imgs = Tensor::rand_uniform(&mut rng, &[2, 3, 32, 32], 0.0, 1.0);
        let out = det.detect(&imgs).unwrap();
        assert_eq!(out.len(), 2);
        for dets in out {
            assert!(dets.len() <= det.cfg.max_dets);
            for d in dets {
                assert!(d.class_id < det.num_classes());
                assert!(d.bbox.x2 <= 32.0);
            }
        }
    }

    #[test]
    fn frcnn_is_deterministic() {
        let a = FrcnnTwoStage::new(&cfg());
        let b = FrcnnTwoStage::new(&cfg());
        let imgs = Tensor::ones(&[1, 3, 32, 32]);
        assert_eq!(a.detect(&imgs).unwrap(), b.detect(&imgs).unwrap());
    }

    #[test]
    fn proposals_are_bounded_and_sorted() {
        let det = FrcnnTwoStage::new(&cfg());
        let mut rng = Rng::from_seed(8);
        let imgs = Tensor::rand_uniform(&mut rng, &[1, 3, 32, 32], 0.0, 1.0);
        let acts = det.backbone.forward_all(&imgs).unwrap();
        let props = det.proposals(&acts, 0);
        assert!(props.len() <= POST_NMS_TOP_N);
        assert!(!props.is_empty());
        for w in props.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn roi_pool_produces_fixed_size_vector() {
        let det = FrcnnTwoStage::new(&cfg());
        let imgs = Tensor::ones(&[1, 3, 32, 32]);
        let acts = det.backbone.forward_all(&imgs).unwrap();
        let feat = &acts[det.feat_node];
        let v = det.roi_pool(feat, 0, &BBox::new(4.0, 4.0, 20.0, 28.0));
        assert_eq!(v.len(), det.feat_ch * ROI_POOL * ROI_POOL);
        assert!(v.iter().all(|x| x.is_finite()));
        // degenerate box still pools
        let v2 = det.roi_pool(feat, 0, &BBox::new(0.0, 0.0, 0.5, 0.5));
        assert_eq!(v2.len(), v.len());
    }
}
