//! One-stage grid detector in the YOLOv3 style.

use super::geometry::{nms, BBox, Detection};
use super::{cap_detections, sigmoid, Detector, DetectorConfig};
use crate::error::NnError;
use crate::graph::Network;
use crate::models::NetBuilder;
use alfi_tensor::Tensor;

/// Per-cell anchor priors (width, height) in pixels, one detector box per
/// anchor — a scaled-down version of YOLOv3's anchor set.
const YOLO_ANCHORS: [(f32, f32); 3] = [(10.0, 13.0), (24.0, 17.0), (40.0, 40.0)];

/// YOLOv3-style single-shot detector: a Darknet-flavoured convolutional
/// backbone that downsamples the image to an `S × S` grid, and a 1×1
/// prediction head emitting `A · (5 + C)` channels per cell (box offsets,
/// objectness and class scores for `A` anchors).
///
/// # Example
///
/// ```
/// use alfi_nn::detection::{Detector, DetectorConfig, YoloGrid};
/// use alfi_tensor::Tensor;
///
/// let det = YoloGrid::new(&DetectorConfig::default());
/// let images = Tensor::zeros(&[1, 3, 64, 64]);
/// let dets = det.detect(&images)?;
/// assert_eq!(dets.len(), 1);
/// # Ok::<(), alfi_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct YoloGrid {
    net: Network,
    cfg: DetectorConfig,
    grid: usize,
}

impl YoloGrid {
    /// Builds the detector for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.input_hw` is not divisible by 8 (three stride-2
    /// stages).
    pub fn new(cfg: &DetectorConfig) -> YoloGrid {
        assert!(cfg.input_hw.is_multiple_of(8), "input_hw must be divisible by 8");
        let grid = cfg.input_hw / 8;
        let a = YOLO_ANCHORS.len();
        let out_ch = a * (5 + cfg.num_classes);

        let mut b = NetBuilder::new("yolo_grid", cfg.seed, cfg.in_channels);
        // Darknet-style backbone: conv-bn-leaky blocks with stride-2
        // downsampling convolutions.
        b.conv("backbone.conv1", cfg.ch(32), 3, 1, 1);
        b.batchnorm("backbone.bn1");
        b.leaky_relu("backbone.leaky1", 0.1);
        b.conv("backbone.down1", cfg.ch(64), 3, 2, 1);
        b.batchnorm("backbone.bn2");
        b.leaky_relu("backbone.leaky2", 0.1);
        b.conv("backbone.conv2", cfg.ch(64), 3, 1, 1);
        b.batchnorm("backbone.bn3");
        b.leaky_relu("backbone.leaky3", 0.1);
        b.conv("backbone.down2", cfg.ch(128), 3, 2, 1);
        b.batchnorm("backbone.bn4");
        b.leaky_relu("backbone.leaky4", 0.1);
        b.conv("backbone.conv3", cfg.ch(128), 3, 1, 1);
        b.batchnorm("backbone.bn5");
        b.leaky_relu("backbone.leaky5", 0.1);
        b.conv("backbone.down3", cfg.ch(256), 3, 2, 1);
        b.batchnorm("backbone.bn6");
        b.leaky_relu("backbone.leaky6", 0.1);
        // Prediction head.
        b.conv("head.conv", cfg.ch(256), 3, 1, 1);
        b.leaky_relu("head.leaky", 0.1);
        b.conv("head.pred", out_ch, 1, 1, 0);
        let net = b.finish();

        YoloGrid { net, cfg: *cfg, grid }
    }

    /// The grid side length `S`.
    pub fn grid_size(&self) -> usize {
        self.grid
    }

    /// Decodes the raw head tensor `[n, A*(5+C), S, S]` into detections.
    fn decode(&self, raw: &Tensor) -> Vec<Vec<Detection>> {
        let (n, s) = (raw.dims()[0], self.grid);
        let c = self.cfg.num_classes;
        let a = YOLO_ANCHORS.len();
        let stride = self.cfg.input_hw as f32 / s as f32;
        let per_anchor = 5 + c;
        let mut out = Vec::with_capacity(n);
        for b in 0..n {
            let mut dets = Vec::new();
            for (ai, &(aw, ah)) in YOLO_ANCHORS.iter().enumerate().take(a) {
                for gy in 0..s {
                    for gx in 0..s {
                        let chan = |k: usize| raw.get(&[b, ai * per_anchor + k, gy, gx]);
                        let obj = sigmoid(chan(4));
                        // class scores
                        let mut best_cls = 0usize;
                        let mut best_p = f32::NEG_INFINITY;
                        for ci in 0..c {
                            let p = chan(5 + ci);
                            if p > best_p {
                                best_p = p;
                                best_cls = ci;
                            }
                        }
                        let score = obj * sigmoid(best_p);
                        // `<` is false for NaN: corrupted scores stay visible.
                        if score < self.cfg.score_thresh {
                            continue;
                        }
                        let cx = (gx as f32 + sigmoid(chan(0))) * stride;
                        let cy = (gy as f32 + sigmoid(chan(1))) * stride;
                        let w = aw * chan(2).clamp(-4.0, 4.0).exp();
                        let h = ah * chan(3).clamp(-4.0, 4.0).exp();
                        let bbox = BBox::from_cxcywh(cx, cy, w, h)
                            .clamp_to(self.cfg.input_hw as f32, self.cfg.input_hw as f32);
                        dets.push(Detection { bbox, score, class_id: best_cls });
                    }
                }
            }
            let dets = nms(dets, self.cfg.nms_iou);
            out.push(cap_detections(dets, self.cfg.max_dets));
        }
        out
    }
}

impl Detector for YoloGrid {
    fn clone_boxed(&self) -> Option<Box<dyn Detector>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &str {
        "yolo_grid"
    }

    fn num_classes(&self) -> usize {
        self.cfg.num_classes
    }

    fn networks(&self) -> Vec<&Network> {
        vec![&self.net]
    }

    fn networks_mut(&mut self) -> Vec<&mut Network> {
        vec![&mut self.net]
    }

    fn detect(&self, images: &Tensor) -> Result<Vec<Vec<Detection>>, NnError> {
        let raw = self.net.forward(images)?;
        Ok(self.decode(&raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_rng::Rng;

    fn cfg() -> DetectorConfig {
        DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() }
    }

    #[test]
    fn yolo_outputs_capped_sorted_detections() {
        let det = YoloGrid::new(&cfg());
        let mut rng = Rng::from_seed(3);
        let imgs = Tensor::rand_uniform(&mut rng, &[2, 3, 32, 32], 0.0, 1.0);
        let out = det.detect(&imgs).unwrap();
        assert_eq!(out.len(), 2);
        for dets in &out {
            assert!(dets.len() <= det.cfg.max_dets);
            for w in dets.windows(2) {
                assert!(w[0].score >= w[1].score || w[1].score.is_nan());
            }
            for d in dets {
                assert!(d.class_id < det.num_classes());
                assert!(d.bbox.x2 <= 32.0 && d.bbox.y2 <= 32.0);
            }
        }
    }

    #[test]
    fn yolo_is_deterministic() {
        let a = YoloGrid::new(&cfg());
        let b = YoloGrid::new(&cfg());
        let imgs = Tensor::ones(&[1, 3, 32, 32]);
        assert_eq!(a.detect(&imgs).unwrap(), b.detect(&imgs).unwrap());
    }

    #[test]
    fn yolo_grid_size_matches_downsampling() {
        let det = YoloGrid::new(&cfg());
        assert_eq!(det.grid_size(), 4);
        let shapes = det.net.infer_shapes(&[1, 3, 32, 32]).unwrap();
        let last = shapes.last().unwrap();
        assert_eq!(&last.dims()[2..], &[4, 4]);
    }

    #[test]
    fn yolo_exposes_single_injectable_network() {
        let mut det = YoloGrid::new(&cfg());
        assert_eq!(det.networks().len(), 1);
        let inj = det.networks()[0].injectable_layers(None, None).unwrap();
        assert!(inj.len() >= 8, "expected backbone+head convs, got {}", inj.len());
        assert_eq!(det.networks_mut().len(), 1);
    }
}
