//! Bounding-box geometry: IoU, detections, non-maximum suppression.

use alfi_serde::json_struct;

/// An axis-aligned bounding box in `(x1, y1, x2, y2)` corner format,
/// pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Left edge.
    pub x1: f32,
    /// Top edge.
    pub y1: f32,
    /// Right edge.
    pub x2: f32,
    /// Bottom edge.
    pub y2: f32,
}

impl BBox {
    /// Creates a box, normalizing so that `x1 <= x2` and `y1 <= y2`.
    pub fn new(x1: f32, y1: f32, x2: f32, y2: f32) -> BBox {
        BBox { x1: x1.min(x2), y1: y1.min(y2), x2: x1.max(x2), y2: y1.max(y2) }
    }

    /// Creates a box from center/size form.
    pub fn from_cxcywh(cx: f32, cy: f32, w: f32, h: f32) -> BBox {
        BBox::new(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0)
    }

    /// Box width (never negative).
    pub fn width(&self) -> f32 {
        (self.x2 - self.x1).max(0.0)
    }

    /// Box height (never negative).
    pub fn height(&self) -> f32 {
        (self.y2 - self.y1).max(0.0)
    }

    /// Box area.
    pub fn area(&self) -> f32 {
        self.width() * self.height()
    }

    /// Intersection-over-union with another box, in `[0, 1]`.
    ///
    /// Degenerate (zero-area) pairs yield 0. NaN coordinates yield 0 —
    /// a NaN-corrupted detection never matches anything, which is the
    /// conservative choice for SDE counting.
    pub fn iou(&self, other: &BBox) -> f32 {
        let ix = (self.x2.min(other.x2) - self.x1.max(other.x1)).max(0.0);
        let iy = (self.y2.min(other.y2) - self.y1.max(other.y1)).max(0.0);
        let inter = ix * iy;
        let union = self.area() + other.area() - inter;
        if union > 0.0 && inter.is_finite() {
            let v = inter / union;
            if v.is_nan() {
                0.0
            } else {
                v.clamp(0.0, 1.0)
            }
        } else {
            0.0
        }
    }

    /// Clamps the box to the `[0, w] × [0, h]` image frame.
    pub fn clamp_to(&self, w: f32, h: f32) -> BBox {
        BBox::new(
            self.x1.clamp(0.0, w),
            self.y1.clamp(0.0, h),
            self.x2.clamp(0.0, w),
            self.y2.clamp(0.0, h),
        )
    }

    /// Whether any coordinate is NaN or infinite — a DUE symptom.
    pub fn has_non_finite(&self) -> bool {
        !(self.x1.is_finite() && self.y1.is_finite() && self.x2.is_finite() && self.y2.is_finite())
    }
}

/// One detected object: box, confidence and class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Location of the detected object.
    pub bbox: BBox,
    /// Confidence score in `[0, 1]` (possibly NaN after a fault).
    pub score: f32,
    /// Predicted class id.
    pub class_id: usize,
}

json_struct!(BBox { x1, y1, x2, y2 });
json_struct!(Detection { bbox, score, class_id });

/// Greedy per-class non-maximum suppression.
///
/// Detections are processed in descending score order; a detection is
/// kept unless it overlaps an already-kept detection *of the same class*
/// with IoU above `iou_thresh`. NaN scores sort last.
pub fn nms(mut dets: Vec<Detection>, iou_thresh: f32) -> Vec<Detection> {
    dets.sort_by(|a, b| match (a.score.is_nan(), b.score.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.score.partial_cmp(&a.score).expect("non-nan scores"),
    });
    let mut keep: Vec<Detection> = Vec::new();
    'outer: for d in dets {
        for k in &keep {
            if k.class_id == d.class_id && k.bbox.iou(&d.bbox) > iou_thresh {
                continue 'outer;
            }
        }
        keep.push(d);
    }
    keep
}

/// Greedy one-to-one matching between two detection sets by IoU.
///
/// Returns index pairs `(i, j)` meaning `a[i]` matches `b[j]`. A pair
/// requires equal class ids and IoU at or above `iou_thresh`. Pairs are
/// matched best-IoU-first. This is the matcher underlying the IVMOD
/// metric (faulty-vs-fault-free comparison) and the COCO-style AP
/// evaluation in `alfi-eval`.
pub fn match_detections(
    a: &[Detection],
    b: &[Detection],
    iou_thresh: f32,
) -> Vec<(usize, usize)> {
    let mut candidates: Vec<(f32, usize, usize)> = Vec::new();
    for (i, da) in a.iter().enumerate() {
        for (j, db) in b.iter().enumerate() {
            if da.class_id == db.class_id {
                let iou = da.bbox.iou(&db.bbox);
                if iou >= iou_thresh {
                    candidates.push((iou, i, j));
                }
            }
        }
    }
    candidates.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("iou is finite"));
    let mut used_a = vec![false; a.len()];
    let mut used_b = vec![false; b.len()];
    let mut pairs = Vec::new();
    for (_, i, j) in candidates {
        if !used_a[i] && !used_b[j] {
            used_a[i] = true;
            used_b[j] = true;
            pairs.push((i, j));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x1: f32, y1: f32, x2: f32, y2: f32, score: f32, class_id: usize) -> Detection {
        Detection { bbox: BBox::new(x1, y1, x2, y2), score, class_id }
    }

    #[test]
    fn bbox_normalizes_corners() {
        let b = BBox::new(10.0, 20.0, 5.0, 2.0);
        assert_eq!((b.x1, b.y1, b.x2, b.y2), (5.0, 2.0, 10.0, 20.0));
    }

    #[test]
    fn iou_identical_boxes_is_one() {
        let b = BBox::new(0.0, 0.0, 10.0, 10.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_boxes_is_zero() {
        let a = BBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BBox::new(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = BBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BBox::new(1.0, 0.0, 3.0, 2.0);
        // intersection 2, union 6
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = BBox::new(0.0, 0.0, 4.0, 3.0);
        let b = BBox::new(2.0, 1.0, 6.0, 5.0);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-7);
    }

    #[test]
    fn iou_with_nan_is_zero() {
        let a = BBox { x1: f32::NAN, y1: 0.0, x2: 1.0, y2: 1.0 };
        let b = BBox::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.iou(&b), 0.0);
        assert!(a.has_non_finite());
    }

    #[test]
    fn clamp_to_frame() {
        let b = BBox::new(-5.0, -5.0, 100.0, 100.0).clamp_to(64.0, 64.0);
        assert_eq!((b.x1, b.y1, b.x2, b.y2), (0.0, 0.0, 64.0, 64.0));
    }

    #[test]
    fn from_cxcywh_round_trips() {
        let b = BBox::from_cxcywh(10.0, 20.0, 4.0, 6.0);
        assert_eq!((b.x1, b.y1, b.x2, b.y2), (8.0, 17.0, 12.0, 23.0));
    }

    #[test]
    fn nms_keeps_highest_and_suppresses_same_class_overlap() {
        let dets = vec![
            d(0.0, 0.0, 10.0, 10.0, 0.9, 1),
            d(1.0, 1.0, 11.0, 11.0, 0.8, 1), // overlaps, same class -> dropped
            d(1.0, 1.0, 11.0, 11.0, 0.7, 2), // overlaps, other class -> kept
            d(50.0, 50.0, 60.0, 60.0, 0.6, 1), // disjoint -> kept
        ];
        let kept = nms(dets, 0.5);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].score, 0.9);
        assert!(kept.iter().any(|k| k.class_id == 2));
    }

    #[test]
    fn nms_sorts_nan_scores_last() {
        let dets = vec![
            d(0.0, 0.0, 10.0, 10.0, f32::NAN, 1),
            d(0.0, 0.0, 10.0, 10.0, 0.5, 1),
        ];
        let kept = nms(dets, 0.5);
        // the NaN detection has IoU 0 with anything (not NaN bbox) — here
        // bboxes are valid so the NaN det overlaps and is suppressed after
        // the scored one.
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.5);
    }

    #[test]
    fn match_detections_pairs_best_iou_first() {
        let a = vec![d(0.0, 0.0, 10.0, 10.0, 0.9, 1), d(20.0, 20.0, 30.0, 30.0, 0.8, 1)];
        let b = vec![
            d(1.0, 1.0, 10.0, 10.0, 0.7, 1),  // best match for a[0]
            d(21.0, 21.0, 30.0, 30.0, 0.6, 1), // best match for a[1]
        ];
        let pairs = match_detections(&a, &b, 0.5);
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(0, 0)));
        assert!(pairs.contains(&(1, 1)));
    }

    #[test]
    fn match_detections_requires_class_equality() {
        let a = vec![d(0.0, 0.0, 10.0, 10.0, 0.9, 1)];
        let b = vec![d(0.0, 0.0, 10.0, 10.0, 0.9, 2)];
        assert!(match_detections(&a, &b, 0.5).is_empty());
    }

    #[test]
    fn match_is_one_to_one() {
        let a = vec![d(0.0, 0.0, 10.0, 10.0, 0.9, 1), d(0.5, 0.5, 10.0, 10.0, 0.8, 1)];
        let b = vec![d(0.0, 0.0, 10.0, 10.0, 0.9, 1)];
        let pairs = match_detections(&a, &b, 0.5);
        assert_eq!(pairs.len(), 1);
    }
}
