//! Error type for network construction and inference.

use alfi_tensor::TensorError;
use std::fmt;

/// Error produced by network construction or a forward pass.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor kernel failed.
    Tensor(TensorError),
    /// A node referenced an input node id that does not exist (or is not
    /// earlier in topological order).
    InvalidGraph(String),
    /// A layer received an input of unsupported shape.
    BadInput {
        /// Name of the layer reporting the problem.
        layer: String,
        /// Description of the mismatch.
        reason: String,
    },
    /// A referenced node id was out of range.
    NoSuchNode(usize),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::InvalidGraph(msg) => write!(f, "invalid graph: {msg}"),
            NnError::BadInput { layer, reason } => {
                write!(f, "bad input to layer `{layer}`: {reason}")
            }
            NnError::NoSuchNode(id) => write!(f, "no such node: {id}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::from(TensorError::RankMismatch { expected: 4, actual: 2 });
        assert!(e.to_string().contains("tensor error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = NnError::NoSuchNode(3);
        assert_eq!(e.to_string(), "no such node: 3");
    }
}
