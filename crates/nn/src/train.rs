//! Backpropagation and SGD training.
//!
//! The paper's campaigns run on *trained* models (torchvision
//! checkpoints). Since no checkpoints are available offline, this module
//! implements reverse-mode differentiation over [`Network`] graphs and a
//! momentum-SGD trainer, so the model zoo can be trained on the
//! synthetic datasets before fault injection — giving SDE metrics on
//! models that are actually accurate, exactly as in the paper.
//!
//! Supported in the backward pass: Conv2d, Linear, ReLU/LeakyReLU,
//! Sigmoid, BatchNorm2d (frozen statistics — treated as a fixed affine
//! map), Max/Avg/AdaptiveAvg pooling, Flatten, Add, ConcatChannels,
//! Upsample2x, Identity and RangeRestrict. Conv3d and custom layers are
//! inference-only and report [`NnError::BadInput`] when reached by
//! gradients.

use crate::error::NnError;
use crate::graph::Network;
use crate::layer::Layer;
use alfi_tensor::conv::ConvConfig;
use alfi_tensor::Tensor;
use std::collections::BTreeMap;

/// Parameter gradients of one layer.
#[derive(Debug, Clone)]
pub struct ParamGrads {
    /// Gradient w.r.t. the weight tensor (same shape).
    pub weight: Tensor,
    /// Gradient w.r.t. the bias, when the layer has one.
    pub bias: Option<Tensor>,
}

/// Result of a backward pass.
#[derive(Debug, Clone)]
pub struct BackwardResult {
    /// Per-node parameter gradients (only nodes with parameters appear).
    pub param_grads: BTreeMap<usize, ParamGrads>,
    /// Gradient w.r.t. the network input.
    pub input_grad: Tensor,
}

/// Numerically stable softmax cross-entropy over logits `[n, c]`.
///
/// Returns the mean loss and the gradient w.r.t. the logits
/// (`(softmax - onehot) / n`).
///
/// # Errors
///
/// Returns [`NnError::BadInput`] for rank ≠ 2 logits or out-of-range
/// labels.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor), NnError> {
    if logits.rank() != 2 {
        return Err(NnError::BadInput {
            layer: "softmax_cross_entropy".into(),
            reason: format!("expected rank-2 logits, got rank {}", logits.rank()),
        });
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != n {
        return Err(NnError::BadInput {
            layer: "softmax_cross_entropy".into(),
            reason: format!("{n} logits rows but {} labels", labels.len()),
        });
    }
    let probs = logits.softmax_lastdim()?;
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for (i, &label) in labels.iter().enumerate() {
        if label >= c {
            return Err(NnError::BadInput {
                layer: "softmax_cross_entropy".into(),
                reason: format!("label {label} out of range for {c} classes"),
            });
        }
        let p = probs.get(&[i, label]).max(1e-12);
        loss -= p.ln();
        let g = grad.get(&[i, label]);
        grad.set(&[i, label], g - 1.0);
    }
    let scale = 1.0 / n as f32;
    Ok((loss * scale, grad.scale(scale)))
}

/// Runs a full backward pass through the network for one input batch.
///
/// `grad_output` is the loss gradient w.r.t. the network output (e.g.
/// from [`softmax_cross_entropy`]).
///
/// # Errors
///
/// Returns [`NnError`] for unsupported layers (Conv3d, custom) or shape
/// mismatches.
pub fn backward(
    net: &Network,
    input: &Tensor,
    grad_output: &Tensor,
) -> Result<BackwardResult, NnError> {
    let out_node = net
        .output_node()
        .ok_or_else(|| NnError::InvalidGraph("network has no output node".into()))?;
    let acts = net.forward_all(input)?;
    let mut grads: Vec<Option<Tensor>> = vec![None; net.num_nodes()];
    grads[out_node] = Some(grad_output.clone());
    let mut input_grad: Option<Tensor> = None;
    let mut param_grads = BTreeMap::new();

    for id in (0..net.num_nodes()).rev() {
        let Some(gout) = grads[id].take() else { continue };
        let node = &net.nodes()[id];
        let inputs: Vec<&Tensor> = if node.inputs.is_empty() {
            vec![input]
        } else {
            node.inputs.iter().map(|&i| &acts[i]).collect()
        };
        let (gins, pgrads) = layer_backward(&node.layer, &inputs, &acts[id], &gout)?;
        if let Some(pg) = pgrads {
            param_grads.insert(id, pg);
        }
        for (slot, gin) in gins.into_iter().enumerate() {
            if node.inputs.is_empty() {
                accumulate(&mut input_grad, gin)?;
            } else {
                let src = node.inputs[slot];
                let mut cell = grads[src].take();
                accumulate(&mut cell, gin)?;
                grads[src] = cell;
            }
        }
    }
    Ok(BackwardResult {
        param_grads,
        input_grad: input_grad.unwrap_or_else(|| Tensor::zeros(input.dims())),
    })
}

fn accumulate(slot: &mut Option<Tensor>, g: Tensor) -> Result<(), NnError> {
    match slot {
        Some(existing) => {
            *existing = existing.add(&g)?;
        }
        None => *slot = Some(g),
    }
    Ok(())
}

/// Backward rule for a single layer: returns gradients w.r.t. each input
/// plus parameter gradients.
fn layer_backward(
    layer: &Layer,
    inputs: &[&Tensor],
    output: &Tensor,
    gout: &Tensor,
) -> Result<(Vec<Tensor>, Option<ParamGrads>), NnError> {
    let x = inputs[0];
    match layer {
        Layer::Linear(l) => {
            let (n, in_f) = (x.dims()[0], l.weight.dims()[1]);
            let out_f = l.weight.dims()[0];
            // gin = gout [n,out] · W [out,in]
            let gin = gout.matmul(&l.weight)?;
            // gW = gout^T [out,n] · x [n,in]
            let mut gw = vec![0.0f32; out_f * in_f];
            for i in 0..n {
                for o in 0..out_f {
                    let go = gout.get(&[i, o]);
                    if go == 0.0 {
                        continue;
                    }
                    for k in 0..in_f {
                        gw[o * in_f + k] += go * x.get(&[i, k]);
                    }
                }
            }
            let gbias = l.bias.as_ref().map(|_| {
                let mut gb = vec![0.0f32; out_f];
                for i in 0..n {
                    for (o, g) in gb.iter_mut().enumerate() {
                        *g += gout.get(&[i, o]);
                    }
                }
                Tensor::from_vec(gb, &[out_f]).expect("bias dims")
            });
            Ok((
                vec![gin],
                Some(ParamGrads {
                    weight: Tensor::from_vec(gw, &[out_f, in_f])?,
                    bias: gbias,
                }),
            ))
        }
        Layer::Conv2d(c) => conv2d_backward(x, c, gout),
        Layer::Relu => Ok((vec![gout.zip(x, |g, v| if v > 0.0 { g } else { 0.0 })?], None)),
        Layer::LeakyRelu(slope) => {
            let s = *slope;
            Ok((vec![gout.zip(x, move |g, v| if v >= 0.0 { g } else { g * s })?], None))
        }
        Layer::Sigmoid => {
            // output = s(x): g * s * (1 - s)
            Ok((vec![gout.zip(output, |g, s| g * s * (1.0 - s))?], None))
        }
        Layer::BatchNorm2d(bn) => {
            // frozen statistics: y = x * gamma/sqrt(var+eps) + const
            let (n, ch, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
            let mut gin = vec![0.0f32; gout.num_elements()];
            for b in 0..n {
                for cc in 0..ch {
                    let scale = bn.gamma.data()[cc] / (bn.running_var.data()[cc] + bn.eps).sqrt();
                    let base = (b * ch + cc) * h * w;
                    for i in 0..h * w {
                        gin[base + i] = gout.data()[base + i] * scale;
                    }
                }
            }
            Ok((vec![Tensor::from_vec(gin, x.dims())?], None))
        }
        Layer::MaxPool2d { k, cfg } => Ok((vec![max_pool_backward(x, *k, *cfg, gout)?], None)),
        Layer::AvgPool2d { k, cfg } => Ok((vec![avg_pool_backward(x, *k, *cfg, gout)?], None)),
        Layer::AdaptiveAvgPool2d(out_hw) => {
            Ok((vec![adaptive_avg_backward(x, *out_hw, gout)?], None))
        }
        Layer::Flatten => Ok((vec![gout.reshape(x.dims())?], None)),
        Layer::Add => Ok((vec![gout.clone(), gout.clone()], None)),
        Layer::ConcatChannels => {
            let (n, ca, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
            let cb = inputs[1].dims()[1];
            let plane = h * w;
            let mut ga = vec![0.0f32; n * ca * plane];
            let mut gb = vec![0.0f32; n * cb * plane];
            let gd = gout.data();
            for i in 0..n {
                let src = i * (ca + cb) * plane;
                ga[i * ca * plane..(i + 1) * ca * plane]
                    .copy_from_slice(&gd[src..src + ca * plane]);
                gb[i * cb * plane..(i + 1) * cb * plane]
                    .copy_from_slice(&gd[src + ca * plane..src + (ca + cb) * plane]);
            }
            Ok((
                vec![
                    Tensor::from_vec(ga, &[n, ca, h, w])?,
                    Tensor::from_vec(gb, &[n, cb, h, w])?,
                ],
                None,
            ))
        }
        Layer::Upsample2x => {
            let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
            let mut gin = vec![0.0f32; x.num_elements()];
            let gd = gout.data();
            for b in 0..n {
                for cc in 0..c {
                    for y in 0..2 * h {
                        for xx in 0..2 * w {
                            gin[((b * c + cc) * h + y / 2) * w + xx / 2] +=
                                gd[((b * c + cc) * 2 * h + y) * 2 * w + xx];
                        }
                    }
                }
            }
            Ok((vec![Tensor::from_vec(gin, x.dims())?], None))
        }
        Layer::Identity => Ok((vec![gout.clone()], None)),
        Layer::RangeRestrict { lo, hi, .. } => {
            // straight-through inside the healthy range; zero outside
            let (lo, hi) = (*lo, *hi);
            Ok((
                vec![gout.zip(x, move |g, v| if v >= lo && v <= hi { g } else { 0.0 })?],
                None,
            ))
        }
        Layer::Conv3d(_)
        | Layer::Custom(_)
        | Layer::LayerNorm(_)
        | Layer::Gelu
        | Layer::ImageToTokens
        | Layer::PosEmbed(_)
        | Layer::Attention { .. }
        | Layer::MeanTokens => Err(NnError::BadInput {
            layer: "backward".into(),
            reason: "conv3d, custom and transformer layers are inference-only".into(),
        }),
    }
}

fn conv2d_backward(
    x: &Tensor,
    c: &crate::layer::Conv2d,
    gout: &Tensor,
) -> Result<(Vec<Tensor>, Option<ParamGrads>), NnError> {
    let (n, c_in, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (c_out, _, kh, kw) =
        (c.weight.dims()[0], c.weight.dims()[1], c.weight.dims()[2], c.weight.dims()[3]);
    let (h_out, w_out) = (gout.dims()[2], gout.dims()[3]);
    let cfg = c.cfg;
    let pad = cfg.padding as isize;
    let mut gw = vec![0.0f32; c.weight.num_elements()];
    let mut gin = vec![0.0f32; x.num_elements()];
    let wd = c.weight.data();
    let xd = x.data();
    let gd = gout.data();

    for b in 0..n {
        for oc in 0..c_out {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let go = gd[((b * c_out + oc) * h_out + oy) * w_out + ox];
                    if go == 0.0 {
                        continue;
                    }
                    for ic in 0..c_in {
                        for ky in 0..kh {
                            let iy = (oy * cfg.stride + ky) as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * cfg.stride + kx) as isize - pad;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((b * c_in + ic) * h + iy as usize) * w + ix as usize;
                                let wi = ((oc * c_in + ic) * kh + ky) * kw + kx;
                                gw[wi] += go * xd[xi];
                                gin[xi] += go * wd[wi];
                            }
                        }
                    }
                }
            }
        }
    }
    let gbias = c.bias.as_ref().map(|_| {
        let mut gb = vec![0.0f32; c_out];
        for b in 0..n {
            for oc in 0..c_out {
                for i in 0..h_out * w_out {
                    gb[oc] += gd[(b * c_out + oc) * h_out * w_out + i];
                }
            }
        }
        Tensor::from_vec(gb, &[c_out]).expect("bias dims")
    });
    Ok((
        vec![Tensor::from_vec(gin, x.dims())?],
        Some(ParamGrads { weight: Tensor::from_vec(gw, c.weight.dims())?, bias: gbias }),
    ))
}

fn max_pool_backward(
    x: &Tensor,
    k: usize,
    cfg: ConvConfig,
    gout: &Tensor,
) -> Result<Tensor, NnError> {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (h_out, w_out) = (gout.dims()[2], gout.dims()[3]);
    let pad = cfg.padding as isize;
    let mut gin = vec![0.0f32; x.num_elements()];
    let xd = x.data();
    for b in 0..n {
        for cc in 0..c {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    // find the argmax of the window, route the gradient
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = None;
                    for ky in 0..k {
                        let iy = (oy * cfg.stride + ky) as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * cfg.stride + kx) as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = ((b * c + cc) * h + iy as usize) * w + ix as usize;
                            if xd[idx] > best {
                                best = xd[idx];
                                best_idx = Some(idx);
                            }
                        }
                    }
                    if let Some(idx) = best_idx {
                        gin[idx] += gout.get(&[b, cc, oy, ox]);
                    }
                }
            }
        }
    }
    Ok(Tensor::from_vec(gin, x.dims())?)
}

fn avg_pool_backward(
    x: &Tensor,
    k: usize,
    cfg: ConvConfig,
    gout: &Tensor,
) -> Result<Tensor, NnError> {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (h_out, w_out) = (gout.dims()[2], gout.dims()[3]);
    let pad = cfg.padding as isize;
    let mut gin = vec![0.0f32; x.num_elements()];
    for b in 0..n {
        for cc in 0..c {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    // count in-bounds cells (count_include_pad = false)
                    let mut cells = Vec::new();
                    for ky in 0..k {
                        let iy = (oy * cfg.stride + ky) as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * cfg.stride + kx) as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            cells.push(((b * c + cc) * h + iy as usize) * w + ix as usize);
                        }
                    }
                    if cells.is_empty() {
                        continue;
                    }
                    let g = gout.get(&[b, cc, oy, ox]) / cells.len() as f32;
                    for idx in cells {
                        gin[idx] += g;
                    }
                }
            }
        }
    }
    Ok(Tensor::from_vec(gin, x.dims())?)
}

fn adaptive_avg_backward(x: &Tensor, out_hw: usize, gout: &Tensor) -> Result<Tensor, NnError> {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let mut gin = vec![0.0f32; x.num_elements()];
    for b in 0..n {
        for cc in 0..c {
            for oy in 0..out_hw {
                let y0 = oy * h / out_hw;
                let y1 = ((oy + 1) * h).div_ceil(out_hw).min(h).max(y0 + 1);
                for ox in 0..out_hw {
                    let x0 = ox * w / out_hw;
                    let x1 = ((ox + 1) * w).div_ceil(out_hw).min(w).max(x0 + 1);
                    let count = ((y1 - y0) * (x1 - x0)) as f32;
                    let g = gout.get(&[b, cc, oy, ox]) / count;
                    for iy in y0..y1 {
                        for ix in x0..x1 {
                            gin[((b * c + cc) * h + iy) * w + ix] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(Tensor::from_vec(gin, x.dims())?)
}

/// Momentum-SGD trainer over a network's injectable-layer parameters.
#[derive(Debug)]
pub struct SgdTrainer {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0.0 = plain SGD).
    pub momentum: f32,
    velocity: BTreeMap<usize, (Tensor, Option<Tensor>)>,
}

impl SgdTrainer {
    /// Creates a trainer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        SgdTrainer { lr, momentum, velocity: BTreeMap::new() }
    }

    /// Applies one optimizer step with the given parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] for gradient/parameter shape mismatches.
    pub fn step(
        &mut self,
        net: &mut Network,
        grads: &BTreeMap<usize, ParamGrads>,
    ) -> Result<(), NnError> {
        for (&node_id, pg) in grads {
            let lr = self.lr;
            let mom = self.momentum;
            let entry = self.velocity.entry(node_id).or_insert_with(|| {
                (
                    Tensor::zeros(pg.weight.dims()),
                    pg.bias.as_ref().map(|b| Tensor::zeros(b.dims())),
                )
            });
            entry.0 = entry.0.scale(mom).add(&pg.weight)?;
            let wv = entry.0.clone();
            let bv = match (&mut entry.1, &pg.bias) {
                (Some(v), Some(gb)) => {
                    *v = v.scale(mom).add(gb)?;
                    Some(v.clone())
                }
                _ => None,
            };
            let layer = net.layer_mut(node_id)?;
            if let Some(wt) = layer.weight_mut() {
                *wt = wt.sub(&wv.scale(lr))?;
            }
            // bias update (Conv2d/Linear only)
            match layer {
                Layer::Conv2d(c) => {
                    if let (Some(b), Some(bv)) = (&mut c.bias, &bv) {
                        *b = b.sub(&bv.scale(lr))?;
                    }
                }
                Layer::Linear(l) => {
                    if let (Some(b), Some(bv)) = (&mut l.bias, &bv) {
                        *b = b.sub(&bv.scale(lr))?;
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// One training step: forward, loss, backward, SGD update. Returns the
/// batch loss.
///
/// # Errors
///
/// Propagates forward/backward errors.
pub fn train_step(
    net: &mut Network,
    trainer: &mut SgdTrainer,
    images: &Tensor,
    labels: &[usize],
) -> Result<f32, NnError> {
    let logits = net.forward(images)?;
    let (loss, grad) = softmax_cross_entropy(&logits, labels)?;
    let result = backward(net, images, &grad)?;
    trainer.step(net, &result.param_grads)?;
    Ok(loss)
}

/// Top-1 accuracy of a network over labelled batches.
///
/// # Errors
///
/// Propagates forward errors.
pub fn accuracy(net: &Network, images: &Tensor, labels: &[usize]) -> Result<f64, NnError> {
    let logits = net.forward(images)?;
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = logits.batch_item(i)?;
        if row.argmax() == Some(label) {
            correct += 1;
        }
    }
    Ok(correct as f64 / labels.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{BatchNorm2d, Conv2d, Linear};
    use crate::models::NetBuilder;
    use alfi_tensor::conv::ConvConfig;
    use alfi_rng::Rng;

    /// Numerically checks d(loss)/d(param) for every weight element of a
    /// network against the analytic gradient, with loss = sum(output *
    /// probe) for a fixed probe tensor.
    fn finite_diff_check(net: &mut Network, input: &Tensor, tol: f32) {
        let out = net.forward(input).unwrap();
        let mut rng = Rng::from_seed(17);
        let probe = Tensor::rand_uniform(&mut rng, out.dims(), -1.0, 1.0);
        let analytic = backward(net, input, &probe).unwrap();

        let eps = 1e-3f32;
        let loss_of = |n: &Network| -> f32 {
            n.forward(input).unwrap().mul(&probe).unwrap().sum()
        };
        // check a sample of weight coordinates per parameterized node
        for (&node_id, pg) in &analytic.param_grads {
            let total = pg.weight.num_elements();
            let step = (total / 7).max(1);
            for flat in (0..total).step_by(step) {
                let coords = pg.weight.shape().multi_index(flat).unwrap();
                let orig = net.layer(node_id).unwrap().weight().unwrap().get(&coords);
                net.layer_mut(node_id).unwrap().weight_mut().unwrap().set(&coords, orig + eps);
                let up = loss_of(net);
                net.layer_mut(node_id).unwrap().weight_mut().unwrap().set(&coords, orig - eps);
                let down = loss_of(net);
                net.layer_mut(node_id).unwrap().weight_mut().unwrap().set(&coords, orig);
                let numeric = (up - down) / (2.0 * eps);
                let a = pg.weight.get(&coords);
                assert!(
                    (numeric - a).abs() <= tol * (1.0 + numeric.abs().max(a.abs())),
                    "node {node_id} coord {coords:?}: numeric {numeric} vs analytic {a}"
                );
            }
        }
        // input gradient spot check
        let ig = &analytic.input_grad;
        let total = input.num_elements();
        for flat in (0..total).step_by((total / 5).max(1)) {
            let coords = input.shape().multi_index(flat).unwrap();
            let orig = input.get(&coords);
            let mut xp = input.clone();
            xp.set(&coords, orig + eps);
            let up = net.forward(&xp).unwrap().mul(&probe).unwrap().sum();
            xp.set(&coords, orig - eps);
            let down = net.forward(&xp).unwrap().mul(&probe).unwrap().sum();
            let numeric = (up - down) / (2.0 * eps);
            let a = ig.get(&coords);
            assert!(
                (numeric - a).abs() <= tol * (1.0 + numeric.abs().max(a.abs())),
                "input coord {coords:?}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    fn rand_input(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng::from_seed(seed);
        Tensor::rand_uniform(&mut rng, dims, -1.0, 1.0)
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut b = NetBuilder::new("lin", 3, 0);
        b.linear("fc1", 6, 5);
        b.relu("r");
        b.linear("fc2", 5, 3);
        let mut net = b.finish();
        finite_diff_check(&mut net, &rand_input(&[2, 6], 1), 2e-2);
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut b = NetBuilder::new("conv", 5, 2);
        b.conv("c1", 3, 3, 1, 1);
        b.relu("r1");
        b.conv("c2", 2, 3, 2, 1);
        let mut net = b.finish();
        finite_diff_check(&mut net, &rand_input(&[1, 2, 6, 6], 2), 2e-2);
    }

    #[test]
    fn pooling_and_bn_gradients_match_finite_differences() {
        let mut b = NetBuilder::new("pool", 7, 2);
        b.conv("c1", 3, 3, 1, 1);
        b.batchnorm("bn");
        b.relu("r");
        b.maxpool("mp", 2, 2, 0);
        b.adaptive_avgpool("ap", 2);
        let flat = b.flat_features(&[1, 2, 8, 8]);
        b.flatten("fl");
        b.linear("fc", flat, 4);
        let mut net = b.finish();
        finite_diff_check(&mut net, &rand_input(&[1, 2, 8, 8], 3), 3e-2);
    }

    #[test]
    fn residual_add_gradients_match_finite_differences() {
        // y = relu(conv(x)) + x  (same channel count, 1x1 conv)
        let mut net = Network::new("res");
        let mut rng = Rng::from_seed(9);
        let conv = Layer::Conv2d(Conv2d {
            weight: Tensor::rand_uniform(&mut rng, &[2, 2, 1, 1], -0.5, 0.5),
            bias: Some(Tensor::zeros(&[2])),
            cfg: ConvConfig::default(),
        });
        let c = net.push("conv", conv, &[]).unwrap();
        let r = net.push("relu", Layer::Relu, &[c]).unwrap();
        let id = net.push("id", Layer::Identity, &[]).unwrap();
        let s = net.push("add", Layer::Add, &[r, id]).unwrap();
        net.set_output(s).unwrap();
        finite_diff_check(&mut net, &rand_input(&[1, 2, 4, 4], 4), 2e-2);
    }

    #[test]
    fn concat_and_sigmoid_gradients_match_finite_differences() {
        let mut net = Network::new("cat");
        let mut rng = Rng::from_seed(11);
        let conv = Layer::Conv2d(Conv2d {
            weight: Tensor::rand_uniform(&mut rng, &[2, 2, 3, 3], -0.5, 0.5),
            bias: Some(Tensor::zeros(&[2])),
            cfg: ConvConfig { stride: 1, padding: 1, dilation: 1 },
        });
        let c = net.push("conv", conv, &[]).unwrap();
        let sg = net.push("sig", Layer::Sigmoid, &[c]).unwrap();
        let id = net.push("id", Layer::Identity, &[]).unwrap();
        let cat = net.push("cat", Layer::ConcatChannels, &[sg, id]).unwrap();
        net.set_output(cat).unwrap();
        finite_diff_check(&mut net, &rand_input(&[1, 2, 4, 4], 5), 2e-2);
    }

    #[test]
    fn softmax_cross_entropy_loss_and_grad() {
        // Perfectly confident correct prediction -> ~0 loss, ~0 grad.
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0], &[1, 3]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss < 1e-6);
        assert!(grad.data().iter().all(|g| g.abs() < 1e-6));
        // Uniform logits: loss = ln(c), grad pushes towards the label.
        let logits = Tensor::zeros(&[1, 3]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[1]).unwrap();
        assert!((loss - 3.0f32.ln()).abs() < 1e-5);
        assert!(grad.get(&[0, 1]) < 0.0);
        assert!(grad.get(&[0, 0]) > 0.0);
        // errors
        assert!(softmax_cross_entropy(&logits, &[5]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 1]).is_err());
    }

    #[test]
    fn sgd_reduces_loss_on_a_fixed_batch() {
        let mut b = NetBuilder::new("toy", 21, 0);
        b.linear("fc1", 8, 16);
        b.relu("r");
        b.linear("fc2", 16, 4);
        let mut net = b.finish();
        let images = rand_input(&[8, 8], 6);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let mut trainer = SgdTrainer::new(0.1, 0.9);
        let first = train_step(&mut net, &mut trainer, &images, &labels).unwrap();
        let mut last = first;
        for _ in 0..60 {
            last = train_step(&mut net, &mut trainer, &images, &labels).unwrap();
        }
        assert!(last < first * 0.2, "loss {first} -> {last}");
        assert!(accuracy(&net, &images, &labels).unwrap() > 0.9);
    }

    #[test]
    fn conv3d_and_custom_layers_are_rejected() {
        let mut b = NetBuilder::new("c3", 1, 2);
        b.conv3d("c3d", 2, 3, 1, 1);
        let net = b.finish();
        let x = Tensor::zeros(&[1, 2, 4, 4, 4]);
        let gout = net.forward(&x).unwrap();
        assert!(backward(&net, &x, &gout).is_err());
    }

    #[test]
    fn batchnorm_with_nonidentity_stats_backprops_scaled() {
        let mut bn = BatchNorm2d::identity(1);
        bn.gamma = Tensor::from_vec(vec![3.0], &[1]).unwrap();
        bn.running_var = Tensor::from_vec(vec![8.0], &[1]).unwrap();
        let mut net = Network::new("bn");
        let a = net.push("bn", Layer::BatchNorm2d(bn), &[]).unwrap();
        net.set_output(a).unwrap();
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let gout = Tensor::ones(&[1, 1, 2, 2]);
        let r = backward(&net, &x, &gout).unwrap();
        let expect = 3.0 / (8.0f32 + 1e-5).sqrt();
        for &g in r.input_grad.data() {
            assert!((g - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn trainer_bias_updates_change_linear_bias() {
        let mut net = Network::new("b");
        let a = net
            .push(
                "fc",
                Layer::Linear(Linear {
                    weight: Tensor::ones(&[2, 2]),
                    bias: Some(Tensor::zeros(&[2])),
                }),
                &[],
            )
            .unwrap();
        net.set_output(a).unwrap();
        let mut trainer = SgdTrainer::new(0.5, 0.0);
        let x = Tensor::ones(&[1, 2]);
        train_step(&mut net, &mut trainer, &x, &[0]).unwrap();
        let bias = match net.layer(a).unwrap() {
            Layer::Linear(l) => l.bias.clone().unwrap(),
            _ => unreachable!(),
        };
        assert!(bias.data().iter().any(|&b| b != 0.0), "bias must move");
    }

}
