#![warn(missing_docs)]
//! # alfi-nn
//!
//! Neural-network inference substrate for the ALFI fault-injection
//! framework — the role PyTorch plays for PyTorchALFI (Gräfe et al.,
//! DSN 2023).
//!
//! The crate provides:
//!
//! * [`Network`] — a topologically-ordered DAG of [`Layer`]s with
//!   **forward hooks** that can mutate layer outputs in place, the exact
//!   interception mechanism PyTorchFI uses for neuron fault injection;
//! * [`models`] — width-scalable reproductions of AlexNet, VGG-16 and
//!   ResNet-50 (the classifiers of the paper's Fig. 2a), built with
//!   deterministic seeded weights;
//! * [`detection`] — YOLO-style, RetinaNet-style and Faster-RCNN-style
//!   detectors (the models of Fig. 2b) plus box geometry and NMS;
//! * [`init`] — seeded deterministic initializers, the replayability
//!   anchor for the whole framework.
//!
//! # Example
//!
//! ```
//! use alfi_nn::models::{alexnet, ModelConfig};
//! use alfi_tensor::Tensor;
//!
//! let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
//! let model = alexnet(&cfg);
//! let logits = model.forward(&Tensor::zeros(&cfg.input_dims(1)))?;
//! assert_eq!(logits.dims(), &[1, cfg.num_classes]);
//! # Ok::<(), alfi_nn::NnError>(())
//! ```

pub mod detection;
pub mod error;
pub mod graph;
pub mod init;
pub mod layer;
pub mod models;
pub mod prune;
pub mod train;
pub mod weights;

pub use error::NnError;
pub use graph::{
    ForwardHook, FusedOps, HookHandle, InjectableLayer, LayerCtx, Network, Node, NodeId,
};
pub use layer::{BatchNorm2d, Conv2d, Conv3d, CustomLayer, Layer, LayerKind, Linear, RestrictMode};
