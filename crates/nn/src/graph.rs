//! Network graphs with PyTorch-style forward hooks.
//!
//! A [`Network`] is a topologically-ordered DAG of [`Layer`] nodes. After
//! every node's forward computation the registered [`ForwardHook`]s run
//! and may mutate the output tensor *in place* — the exact mechanism
//! PyTorchFI uses for neuron fault injection ("the output values are
//! modified in place", §II). Weight faults bypass hooks and mutate layer
//! parameters directly via [`Network::layer_mut`].

use crate::error::NnError;
use crate::layer::{Layer, LayerKind};
use alfi_tensor::{gemm, Shape, Tensor};
use std::sync::Arc;

/// Identifier of a node within a [`Network`] (its topological position).
pub type NodeId = usize;

/// A named node in the network graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable unique name, e.g. `features.conv1`.
    pub name: String,
    /// The operation this node performs.
    pub layer: Layer,
    /// Ids of the producer nodes feeding this node. Empty means the node
    /// consumes the network input.
    pub inputs: Vec<NodeId>,
}

/// Context handed to forward hooks.
#[derive(Debug, Clone)]
pub struct LayerCtx {
    /// Graph node id.
    pub node_id: NodeId,
    /// Node name.
    pub name: String,
    /// Kind of the layer that produced the output.
    pub kind: LayerKind,
}

/// A callback invoked after a node's forward computation.
///
/// Hooks may mutate the output in place (fault injection) or merely
/// observe it (NaN/Inf monitoring, activation-range profiling). Hooks
/// needing to accumulate state use interior mutability.
pub trait ForwardHook: Send + Sync {
    /// Called with the node context and its freshly computed output.
    fn on_output(&self, ctx: &LayerCtx, output: &mut Tensor);
}

impl<F> ForwardHook for F
where
    F: Fn(&LayerCtx, &mut Tensor) + Send + Sync,
{
    fn on_output(&self, ctx: &LayerCtx, output: &mut Tensor) {
        self(ctx, output)
    }
}

/// Handle returned by [`Network::register_hook`], used to remove the hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HookHandle {
    node: NodeId,
    slot: u64,
}

/// Per-node operations fused into the layer's compute kernel epilogue
/// instead of running as separate passes over the output tensor.
///
/// For `Conv2d` and `Linear` nodes these execute inside the GEMM
/// epilogue ([`alfi_tensor::gemm::FusedEpilogue`]) while the output
/// tile is still cache-hot; for every other layer kind they apply as
/// equivalent separate passes right after the forward computation.
/// Either way the per-element operation order is **inject → clamp**,
/// and fused execution is bit-identical to the separate-pass sequence.
///
/// Fused ops run *before* any registered [`ForwardHook`]s (a spliced
/// `RangeRestrict` node would instead run after the producing node's
/// hooks), and unlike hooks they survive [`Network::clone`] — they are
/// part of the model, like spliced protection layers.
#[derive(Debug, Clone, Default)]
pub struct FusedOps {
    /// Per-element fault injections keyed by flat output index.
    pub inject: Option<Arc<gemm::InjectMap>>,
    /// Range-supervision clamp (Ranger/Clipper as an epilogue op).
    pub clamp: Option<gemm::Clamp>,
}

impl FusedOps {
    /// Whether these ops are a guaranteed no-op.
    pub fn is_identity(&self) -> bool {
        self.inject.as_deref().is_none_or(gemm::InjectMap::is_empty) && self.clamp.is_none()
    }
}

/// Description of a layer eligible for fault injection.
#[derive(Debug, Clone)]
pub struct InjectableLayer {
    /// Graph node id of the layer.
    pub node_id: NodeId,
    /// Node name.
    pub name: String,
    /// Layer kind (conv2d / conv3d / linear).
    pub kind: LayerKind,
    /// Shape of the weight tensor.
    pub weight_shape: Shape,
    /// Shape of the layer output for the reference input shape, if shape
    /// inference has been run (batch dimension included).
    pub output_shape: Option<Shape>,
}

/// A feed-forward network: a topologically ordered DAG of layers with a
/// single input and a designated output node, plus a hook registry.
///
/// # Example
///
/// ```
/// use alfi_nn::{Network, Layer};
/// use alfi_tensor::Tensor;
///
/// let mut net = Network::new("toy");
/// let a = net.push("relu", Layer::Relu, &[]).unwrap();
/// net.set_output(a).unwrap();
/// let y = net.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]).unwrap()).unwrap();
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// ```
pub struct Network {
    name: String,
    nodes: Vec<Node>,
    output: Option<NodeId>,
    hooks: Vec<Vec<(u64, Arc<dyn ForwardHook>)>>,
    next_hook_slot: u64,
    fused: Vec<Option<FusedOps>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("name", &self.name)
            .field("nodes", &self.nodes.len())
            .field("output", &self.output)
            .finish()
    }
}

impl Clone for Network {
    /// Cloning copies all parameters but **not** the registered hooks:
    /// a clone is a fresh, unobserved model. This is what lets the fault
    /// iterator hand out independent faulty instances while the original
    /// model stays pristine.
    fn clone(&self) -> Self {
        Network {
            name: self.name.clone(),
            nodes: self.nodes.clone(),
            output: self.output,
            hooks: vec![Vec::new(); self.nodes.len()],
            next_hook_slot: 0,
            fused: self.fused.clone(),
        }
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            nodes: Vec::new(),
            output: None,
            hooks: Vec::new(),
            next_hook_slot: 0,
            fused: Vec::new(),
        }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes in the graph.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Appends a node. `inputs` must reference earlier nodes; an empty
    /// slice wires the node to the network input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGraph`] if an input id is not an earlier
    /// node, if the input count does not match the layer arity, or if the
    /// name duplicates an existing node.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        layer: Layer,
        inputs: &[NodeId],
    ) -> Result<NodeId, NnError> {
        let name = name.into();
        let id = self.nodes.len();
        for &i in inputs {
            if i >= id {
                return Err(NnError::InvalidGraph(format!(
                    "node `{name}` references non-earlier input {i}"
                )));
            }
        }
        if !inputs.is_empty() && inputs.len() != layer.arity() {
            return Err(NnError::InvalidGraph(format!(
                "node `{name}` has {} inputs but layer arity is {}",
                inputs.len(),
                layer.arity()
            )));
        }
        if inputs.is_empty() && layer.arity() != 1 {
            return Err(NnError::InvalidGraph(format!(
                "binary node `{name}` cannot consume the raw network input twice"
            )));
        }
        if self.nodes.iter().any(|n| n.name == name) {
            return Err(NnError::InvalidGraph(format!("duplicate node name `{name}`")));
        }
        self.nodes.push(Node { name, layer, inputs: inputs.to_vec() });
        self.hooks.push(Vec::new());
        self.fused.push(None);
        Ok(id)
    }

    /// Convenience: appends a node fed by the previous node (or the
    /// network input if this is the first node).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::push`].
    pub fn push_seq(&mut self, name: impl Into<String>, layer: Layer) -> Result<NodeId, NnError> {
        let prev = self.nodes.len().checked_sub(1);
        match prev {
            Some(p) => self.push(name, layer, &[p]),
            None => self.push(name, layer, &[]),
        }
    }

    /// Designates the graph output node.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchNode`] for an unknown id.
    pub fn set_output(&mut self, id: NodeId) -> Result<(), NnError> {
        if id >= self.nodes.len() {
            return Err(NnError::NoSuchNode(id));
        }
        self.output = Some(id);
        Ok(())
    }

    /// The designated output node.
    pub fn output_node(&self) -> Option<NodeId> {
        self.output
    }

    /// Looks up a node id by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Immutable access to a node's layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchNode`] for an unknown id.
    pub fn layer(&self, id: NodeId) -> Result<&Layer, NnError> {
        self.nodes.get(id).map(|n| &n.layer).ok_or(NnError::NoSuchNode(id))
    }

    /// Mutable access to a node's layer — used by weight fault injection
    /// and by mitigation wrappers that splice in protection layers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchNode`] for an unknown id.
    pub fn layer_mut(&mut self, id: NodeId) -> Result<&mut Layer, NnError> {
        self.nodes.get_mut(id).map(|n| &mut n.layer).ok_or(NnError::NoSuchNode(id))
    }

    /// Registers a forward hook on node `id`. Hooks run in registration
    /// order after the node computes its output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchNode`] for an unknown id.
    pub fn register_hook(
        &mut self,
        id: NodeId,
        hook: Arc<dyn ForwardHook>,
    ) -> Result<HookHandle, NnError> {
        if id >= self.nodes.len() {
            return Err(NnError::NoSuchNode(id));
        }
        let slot = self.next_hook_slot;
        self.next_hook_slot += 1;
        self.hooks[id].push((slot, hook));
        Ok(HookHandle { node: id, slot })
    }

    /// Removes a previously registered hook. Removing twice is a no-op.
    pub fn remove_hook(&mut self, handle: HookHandle) {
        if let Some(hooks) = self.hooks.get_mut(handle.node) {
            hooks.retain(|(slot, _)| *slot != handle.slot);
        }
    }

    /// Removes all hooks from all nodes.
    pub fn clear_hooks(&mut self) {
        for h in &mut self.hooks {
            h.clear();
        }
    }

    /// Total number of registered hooks.
    pub fn num_hooks(&self) -> usize {
        self.hooks.iter().map(Vec::len).sum()
    }

    /// Sets (or replaces) the fused range-supervision clamp on node
    /// `id`. See [`FusedOps`] for the execution contract — fused ops
    /// run before the node's hooks and survive cloning.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchNode`] for an unknown id.
    pub fn set_fused_clamp(&mut self, id: NodeId, clamp: gemm::Clamp) -> Result<(), NnError> {
        if id >= self.nodes.len() {
            return Err(NnError::NoSuchNode(id));
        }
        self.fused[id].get_or_insert_with(FusedOps::default).clamp = Some(clamp);
        Ok(())
    }

    /// Sets (or replaces) the fused per-element injection map on node
    /// `id` — the epilogue-fused equivalent of a mutating forward hook.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchNode`] for an unknown id.
    pub fn set_fused_inject(
        &mut self,
        id: NodeId,
        inject: Arc<gemm::InjectMap>,
    ) -> Result<(), NnError> {
        if id >= self.nodes.len() {
            return Err(NnError::NoSuchNode(id));
        }
        self.fused[id].get_or_insert_with(FusedOps::default).inject = Some(inject);
        Ok(())
    }

    /// Removes the fused injection map from node `id` (disarming a
    /// fault), keeping any fused clamp in place.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchNode`] for an unknown id.
    pub fn clear_fused_inject(&mut self, id: NodeId) -> Result<(), NnError> {
        if id >= self.nodes.len() {
            return Err(NnError::NoSuchNode(id));
        }
        if let Some(f) = &mut self.fused[id] {
            f.inject = None;
            if f.is_identity() {
                self.fused[id] = None;
            }
        }
        Ok(())
    }

    /// Removes all fused ops from node `id`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchNode`] for an unknown id.
    pub fn clear_fused(&mut self, id: NodeId) -> Result<(), NnError> {
        if id >= self.nodes.len() {
            return Err(NnError::NoSuchNode(id));
        }
        self.fused[id] = None;
        Ok(())
    }

    /// The fused ops registered on node `id`, if any.
    pub fn fused_ops(&self, id: NodeId) -> Option<&FusedOps> {
        self.fused.get(id).and_then(Option::as_ref)
    }

    /// Total number of nodes carrying fused ops.
    pub fn num_fused(&self) -> usize {
        self.fused.iter().filter(|f| f.is_some()).count()
    }

    /// Evaluates one node, routing through the fused conv/linear kernel
    /// when the node carries [`FusedOps`]; other layer kinds fall back
    /// to forward + equivalent separate passes (same per-element order,
    /// bit-identical result).
    fn eval_node(&self, id: NodeId, inputs: &[&Tensor]) -> Result<Tensor, NnError> {
        let node = &self.nodes[id];
        let Some(f) = self.fused.get(id).and_then(Option::as_ref).filter(|f| !f.is_identity())
        else {
            return node.layer.forward(inputs);
        };
        let inject = f.inject.as_deref();
        match &node.layer {
            Layer::Conv2d(c) => Ok(alfi_tensor::conv::conv2d_fused(
                inputs[0],
                &c.weight,
                c.bias.as_ref(),
                c.cfg,
                inject,
                f.clamp,
            )?),
            Layer::Linear(l) => crate::layer::linear_fused(inputs[0], l, inject, f.clamp),
            other => {
                let mut t = other.forward(inputs)?;
                apply_fused_passes(&mut t, f);
                Ok(t)
            }
        }
    }

    /// Runs a forward pass, returning the output of the designated output
    /// node. Hooks run after each node and may mutate its output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGraph`] if no output node is set, or any
    /// layer error encountered during evaluation.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        self.forward_inner(input, None)
    }

    /// Runs a forward pass like [`Network::forward`] while attributing
    /// each node's evaluation time to its layer name on the given
    /// recorder. With a disabled recorder this takes the exact
    /// [`Network::forward`] path — no clocks are read per node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::forward`].
    pub fn forward_traced(
        &self,
        input: &Tensor,
        recorder: &alfi_trace::Recorder,
    ) -> Result<Tensor, NnError> {
        self.forward_inner(input, recorder.is_enabled().then_some(recorder))
    }

    fn forward_inner(
        &self,
        input: &Tensor,
        recorder: Option<&alfi_trace::Recorder>,
    ) -> Result<Tensor, NnError> {
        let out = self.output.ok_or_else(|| {
            NnError::InvalidGraph(format!("network `{}` has no output node", self.name))
        })?;
        let mut acts: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            let inputs: Vec<&Tensor> = if node.inputs.is_empty() {
                vec![input]
            } else {
                node.inputs
                    .iter()
                    .map(|&i| {
                        acts[i].as_ref().ok_or_else(|| {
                            NnError::InvalidGraph(format!("node {i} evaluated out of order"))
                        })
                    })
                    .collect::<Result<_, _>>()?
            };
            let started = recorder.map(|_| std::time::Instant::now());
            let mut out_t = self.eval_node(id, &inputs)?;
            if let (Some(rec), Some(t0)) = (recorder, started) {
                rec.record_layer_ns(&node.name, t0.elapsed().as_nanos() as u64);
            }
            if !self.hooks[id].is_empty() {
                let ctx =
                    LayerCtx { node_id: id, name: node.name.clone(), kind: node.layer.kind() };
                for (_, hook) in &self.hooks[id] {
                    hook.on_output(&ctx, &mut out_t);
                }
            }
            acts[id] = Some(out_t);
            // Early exit once the output node is computed and nothing
            // after it is needed (nodes are topologically ordered).
            if id == out {
                break;
            }
        }
        acts[out]
            .take()
            .ok_or_else(|| NnError::InvalidGraph("output node was not evaluated".into()))
    }

    /// Runs a forward pass and returns the activations of **all** nodes.
    /// Used by shape inference, activation-range profiling and monitors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::forward`].
    pub fn forward_all(&self, input: &Tensor) -> Result<Vec<Tensor>, NnError> {
        let mut acts: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            let inputs: Vec<&Tensor> = if node.inputs.is_empty() {
                vec![input]
            } else {
                node.inputs
                    .iter()
                    .map(|&i| {
                        acts[i].as_ref().ok_or_else(|| {
                            NnError::InvalidGraph(format!("node {i} evaluated out of order"))
                        })
                    })
                    .collect::<Result<_, _>>()?
            };
            let mut out_t = self.eval_node(id, &inputs)?;
            if !self.hooks[id].is_empty() {
                let ctx =
                    LayerCtx { node_id: id, name: node.name.clone(), kind: node.layer.kind() };
                for (_, hook) in &self.hooks[id] {
                    hook.on_output(&ctx, &mut out_t);
                }
            }
            acts[id] = Some(out_t);
        }
        Ok(acts.into_iter().map(|t| t.expect("all nodes evaluated")).collect())
    }

    /// Infers the output shape of every node for the given input shape by
    /// evaluating the graph on a zero tensor — PyTorchALFI's "dummy run"
    /// strategy for bounding neuron fault coordinates.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::forward`].
    pub fn infer_shapes(&self, input_dims: &[usize]) -> Result<Vec<Shape>, NnError> {
        let zero = Tensor::zeros(input_dims);
        Ok(self.forward_all(&zero)?.into_iter().map(|t| t.shape().clone()).collect())
    }

    /// Enumerates the layers eligible for fault injection, optionally
    /// restricted to specific kinds. If `input_dims` is given, each entry
    /// also carries the layer's inferred output shape (needed to bound
    /// neuron fault coordinates).
    ///
    /// # Errors
    ///
    /// Propagates shape-inference errors when `input_dims` is provided.
    pub fn injectable_layers(
        &self,
        kinds: Option<&[LayerKind]>,
        input_dims: Option<&[usize]>,
    ) -> Result<Vec<InjectableLayer>, NnError> {
        let shapes = match input_dims {
            Some(d) => Some(self.infer_shapes(d)?),
            None => None,
        };
        let mut out = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            let kind = node.layer.kind();
            if !kind.is_injectable() {
                continue;
            }
            if let Some(ks) = kinds {
                if !ks.contains(&kind) {
                    continue;
                }
            }
            let weight_shape =
                node.layer.weight().map(|w| w.shape().clone()).expect("injectable layers have weights");
            out.push(InjectableLayer {
                node_id: id,
                name: node.name.clone(),
                kind,
                weight_shape,
                output_shape: shapes.as_ref().map(|s| s[id].clone()),
            });
        }
        Ok(out)
    }

    /// Inserts a new unary node directly after `after`, rewiring every
    /// consumer of `after` (and the output designation, if it pointed at
    /// `after`) to the new node. Node ids of later nodes shift by one;
    /// hooks stay attached to the nodes they were registered on.
    ///
    /// This is how mitigation wrappers splice protection layers into an
    /// existing model without rebuilding it.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchNode`] for an unknown id,
    /// [`NnError::InvalidGraph`] for duplicate names or non-unary layers.
    pub fn insert_after(
        &mut self,
        after: NodeId,
        name: impl Into<String>,
        layer: Layer,
    ) -> Result<NodeId, NnError> {
        let name = name.into();
        if after >= self.nodes.len() {
            return Err(NnError::NoSuchNode(after));
        }
        if layer.arity() != 1 {
            return Err(NnError::InvalidGraph(format!(
                "inserted node `{name}` must be unary"
            )));
        }
        if self.nodes.iter().any(|n| n.name == name) {
            return Err(NnError::InvalidGraph(format!("duplicate node name `{name}`")));
        }
        let new_id = after + 1;
        // Shift references >= new_id, then rewire consumers of `after`.
        for node in &mut self.nodes {
            for input in &mut node.inputs {
                if *input >= new_id {
                    *input += 1;
                } else if *input == after {
                    *input = new_id;
                }
            }
        }
        self.nodes.insert(new_id, Node { name, layer, inputs: vec![after] });
        self.hooks.insert(new_id, Vec::new());
        self.fused.insert(new_id, None);
        if let Some(out) = self.output {
            if out == after {
                self.output = Some(new_id);
            } else if out >= new_id {
                self.output = Some(out + 1);
            }
        }
        Ok(new_id)
    }

    /// Total number of weight elements across all injectable layers.
    pub fn num_weights(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| n.layer.weight())
            .map(|w| w.num_elements())
            .sum()
    }
}

/// Separate-pass application of [`FusedOps`] for layer kinds without a
/// fused kernel: injection entries first (in sorted order, so repeated
/// indices apply in insertion order), then the clamp over every
/// element — the identical per-element sequence the GEMM epilogue
/// performs.
fn apply_fused_passes(t: &mut Tensor, f: &FusedOps) {
    let data = t.data_mut();
    if let Some(map) = f.inject.as_deref() {
        for &(flat, op) in map.entries() {
            if let Some(v) = data.get_mut(flat) {
                *v = op.apply(*v);
            }
        }
    }
    if let Some(clamp) = f.clamp {
        for v in data.iter_mut() {
            *v = clamp.apply(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2d, Linear};
    use alfi_tensor::conv::ConvConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn toy_net() -> Network {
        let mut net = Network::new("toy");
        let conv = Layer::Conv2d(Conv2d {
            weight: Tensor::ones(&[1, 1, 1, 1]),
            bias: None,
            cfg: ConvConfig::default(),
        });
        let c = net.push("conv", conv, &[]).unwrap();
        let r = net.push("relu", Layer::Relu, &[c]).unwrap();
        let f = net.push("flatten", Layer::Flatten, &[r]).unwrap();
        let lin = Layer::Linear(Linear { weight: Tensor::ones(&[2, 4]), bias: None });
        let l = net.push("fc", lin, &[f]).unwrap();
        net.set_output(l).unwrap();
        net
    }

    #[test]
    fn sequential_forward_computes() {
        let net = toy_net();
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[4.0, 4.0]);
    }

    #[test]
    fn forward_traced_matches_forward_and_times_each_layer() {
        let net = toy_net();
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let rec = alfi_trace::Recorder::new();
        let y = net.forward_traced(&x, &rec).unwrap();
        assert_eq!(y.data(), net.forward(&x).unwrap().data());
        let summary = rec.summary();
        for name in ["conv", "relu", "flatten", "fc"] {
            let t = summary.layer_forward.get(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(t.count, 1);
        }
        // a disabled recorder collects nothing
        let off = alfi_trace::Recorder::disabled();
        net.forward_traced(&x, &off).unwrap();
        assert!(off.summary().layer_forward.is_empty());
    }

    #[test]
    fn forward_without_output_node_errors() {
        let mut net = Network::new("n");
        net.push("relu", Layer::Relu, &[]).unwrap();
        assert!(net.forward(&Tensor::zeros(&[1, 1])).is_err());
    }

    #[test]
    fn push_validates_graph_structure() {
        let mut net = Network::new("n");
        assert!(net.push("a", Layer::Relu, &[0]).is_err()); // self/future ref
        let a = net.push("a", Layer::Relu, &[]).unwrap();
        assert!(net.push("a", Layer::Relu, &[a]).is_err()); // duplicate name
        assert!(net.push("add", Layer::Add, &[a]).is_err()); // arity mismatch
        assert!(net.push("add", Layer::Add, &[]).is_err()); // binary from input
        let b = net.push("b", Layer::Relu, &[a]).unwrap();
        assert!(net.push("add", Layer::Add, &[a, b]).is_ok());
    }

    #[test]
    fn residual_add_graph_evaluates() {
        let mut net = Network::new("res");
        let a = net.push("id", Layer::Identity, &[]).unwrap();
        let b = net.push("relu", Layer::Relu, &[a]).unwrap();
        let s = net.push("add", Layer::Add, &[a, b]).unwrap();
        net.set_output(s).unwrap();
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]).unwrap();
        let y = net.forward(&x).unwrap();
        // -1 + relu(-1) = -1; 2 + relu(2) = 4
        assert_eq!(y.data(), &[-1.0, 4.0]);
    }

    #[test]
    fn hooks_run_and_can_mutate_output() {
        let mut net = toy_net();
        let conv_id = net.node_by_name("conv").unwrap();
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = Arc::clone(&calls);
        let hook = move |_ctx: &LayerCtx, out: &mut Tensor| {
            calls2.fetch_add(1, Ordering::SeqCst);
            out.map_inplace(|v| v * 2.0);
        };
        net.register_hook(conv_id, Arc::new(hook)).unwrap();
        let y = net.forward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(y.data(), &[8.0, 8.0]); // doubled conv output
    }

    #[test]
    fn hooks_receive_correct_context() {
        let mut net = toy_net();
        let conv_id = net.node_by_name("conv").unwrap();
        let seen = Arc::new(std::sync::Mutex::new(None));
        let seen2 = Arc::clone(&seen);
        net.register_hook(
            conv_id,
            Arc::new(move |ctx: &LayerCtx, _out: &mut Tensor| {
                *seen2.lock().unwrap() = Some((ctx.node_id, ctx.name.clone(), ctx.kind));
            }),
        )
        .unwrap();
        net.forward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        let got = seen.lock().unwrap().clone().unwrap();
        assert_eq!(got, (conv_id, "conv".to_string(), LayerKind::Conv2d));
    }

    #[test]
    fn remove_hook_stops_invocation() {
        let mut net = toy_net();
        let id = net.node_by_name("conv").unwrap();
        let handle = net
            .register_hook(id, Arc::new(|_: &LayerCtx, out: &mut Tensor| out.map_inplace(|_| 0.0)))
            .unwrap();
        assert_eq!(net.num_hooks(), 1);
        net.remove_hook(handle);
        assert_eq!(net.num_hooks(), 0);
        let y = net.forward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert_eq!(y.data(), &[4.0, 4.0]);
        // removing twice is a no-op
        net.remove_hook(handle);
    }

    #[test]
    fn clone_drops_hooks_but_keeps_weights() {
        let mut net = toy_net();
        let id = net.node_by_name("conv").unwrap();
        net.register_hook(id, Arc::new(|_: &LayerCtx, _: &mut Tensor| {})).unwrap();
        let cloned = net.clone();
        assert_eq!(cloned.num_hooks(), 0);
        assert_eq!(net.num_hooks(), 1);
        assert_eq!(
            cloned.layer(id).unwrap().weight().unwrap().data(),
            net.layer(id).unwrap().weight().unwrap().data()
        );
    }

    #[test]
    fn infer_shapes_reports_every_node() {
        let net = toy_net();
        let shapes = net.infer_shapes(&[1, 1, 2, 2]).unwrap();
        assert_eq!(shapes.len(), 4);
        assert_eq!(shapes[0].dims(), &[1, 1, 2, 2]);
        assert_eq!(shapes[2].dims(), &[1, 4]);
        assert_eq!(shapes[3].dims(), &[1, 2]);
    }

    #[test]
    fn injectable_layers_filters_by_kind() {
        let net = toy_net();
        let all = net.injectable_layers(None, Some(&[1, 1, 2, 2])).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].kind, LayerKind::Conv2d);
        assert_eq!(all[1].kind, LayerKind::Linear);
        assert!(all[0].output_shape.is_some());
        let convs = net.injectable_layers(Some(&[LayerKind::Conv2d]), None).unwrap();
        assert_eq!(convs.len(), 1);
        assert!(convs[0].output_shape.is_none());
    }

    #[test]
    fn num_weights_sums_parameters() {
        let net = toy_net();
        assert_eq!(net.num_weights(), 1 + 8);
    }

    #[test]
    fn weight_mutation_via_layer_mut_changes_output() {
        let mut net = toy_net();
        let id = net.node_by_name("conv").unwrap();
        net.layer_mut(id).unwrap().weight_mut().unwrap().set(&[0, 0, 0, 0], 3.0);
        let y = net.forward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert_eq!(y.data(), &[12.0, 12.0]);
    }

    #[test]
    fn push_seq_chains_nodes() {
        let mut net = Network::new("seq");
        net.push_seq("a", Layer::Relu).unwrap();
        let b = net.push_seq("b", Layer::Relu).unwrap();
        net.set_output(b).unwrap();
        assert_eq!(net.nodes()[1].inputs, vec![0]);
    }

    #[test]
    fn insert_after_rewires_consumers_and_output() {
        let mut net = toy_net();
        let conv = net.node_by_name("conv").unwrap();
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[1, 1, 2, 2]).unwrap();
        let before = net.forward(&x).unwrap();
        // Insert a scaling identity (RangeRestrict wide open) after conv:
        // output must be unchanged.
        let new_id = net
            .insert_after(
                conv,
                "protect",
                Layer::RangeRestrict {
                    lo: f32::NEG_INFINITY,
                    hi: f32::INFINITY,
                    mode: crate::layer::RestrictMode::Clip,
                },
            )
            .unwrap();
        assert_eq!(new_id, conv + 1);
        assert_eq!(net.nodes()[new_id].inputs, vec![conv]);
        // the old consumer of conv (relu) now consumes the new node
        let relu = net.node_by_name("relu").unwrap();
        assert_eq!(net.nodes()[relu].inputs, vec![new_id]);
        let after = net.forward(&x).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn insert_after_tail_updates_output_designation() {
        let mut net = toy_net();
        let fc = net.node_by_name("fc").unwrap();
        assert_eq!(net.output_node(), Some(fc));
        let new_id = net
            .insert_after(
                fc,
                "clip",
                Layer::RangeRestrict { lo: -1.0, hi: 1.0, mode: crate::layer::RestrictMode::Clip },
            )
            .unwrap();
        assert_eq!(net.output_node(), Some(new_id));
        let y = net.forward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert!(y.data().iter().all(|&v| v <= 1.0));
    }

    #[test]
    fn insert_after_inside_residual_branch() {
        let mut net = Network::new("res");
        let a = net.push("id", Layer::Identity, &[]).unwrap();
        let b = net.push("relu", Layer::Relu, &[a]).unwrap();
        let s = net.push("add", Layer::Add, &[a, b]).unwrap();
        net.set_output(s).unwrap();
        // insert after `a`: BOTH consumers (relu and add) must rewire.
        net.insert_after(a, "probe", Layer::Identity).unwrap();
        let add = net.node_by_name("add").unwrap();
        let probe = net.node_by_name("probe").unwrap();
        let relu = net.node_by_name("relu").unwrap();
        assert_eq!(net.nodes()[relu].inputs, vec![probe]);
        assert_eq!(net.nodes()[add].inputs, vec![probe, relu]);
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]).unwrap();
        assert_eq!(net.forward(&x).unwrap().data(), &[-1.0, 4.0]);
    }

    #[test]
    fn insert_after_validates_arguments() {
        let mut net = toy_net();
        assert!(net.insert_after(99, "x", Layer::Relu).is_err());
        assert!(net.insert_after(0, "conv", Layer::Relu).is_err()); // dup name
        assert!(net.insert_after(0, "bin", Layer::Add).is_err()); // not unary
    }

    #[test]
    fn insert_after_preserves_injectable_layer_list() {
        let mut net = toy_net();
        let before: Vec<String> = net
            .injectable_layers(None, None)
            .unwrap()
            .into_iter()
            .map(|l| l.name)
            .collect();
        let conv = net.node_by_name("conv").unwrap();
        net.insert_after(
            conv,
            "protect",
            Layer::RangeRestrict { lo: 0.0, hi: 1.0, mode: crate::layer::RestrictMode::Clip },
        )
        .unwrap();
        let after: Vec<String> = net
            .injectable_layers(None, None)
            .unwrap()
            .into_iter()
            .map(|l| l.name)
            .collect();
        assert_eq!(before, after);
    }
}
