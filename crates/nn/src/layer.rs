//! Layer operations and their parameters.
//!
//! A [`Layer`] is a single operation in a [`crate::Network`] graph. The
//! three *injectable* kinds — [`Conv2d`], [`Conv3d`] and [`Linear`] — are
//! exactly the layer types PyTorchALFI supports for fault injection
//! (§IV-B: "Supported layer types are conv2d, conv3d, and Linear").

use crate::error::NnError;
use alfi_tensor::conv::{
    adaptive_avg_pool2d, avg_pool2d, conv2d_im2col, conv3d_direct, max_pool2d, ConvConfig,
};
use alfi_tensor::{gemm, Tensor};

/// Classification of layer kinds, used to filter injectable layers in a
/// fault-injection scenario (`layer_types: [conv2d, linear]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution — injectable.
    Conv2d,
    /// 3-D convolution — injectable.
    Conv3d,
    /// Fully-connected layer — injectable.
    Linear,
    /// Any non-injectable operation (activations, pooling, arithmetic...).
    Other,
}

impl LayerKind {
    /// Whether ALFI may target this layer kind for fault injection.
    pub fn is_injectable(self) -> bool {
        !matches!(self, LayerKind::Other)
    }
}

impl std::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LayerKind::Conv2d => "conv2d",
            LayerKind::Conv3d => "conv3d",
            LayerKind::Linear => "linear",
            LayerKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// A 2-D convolution layer with weights `[c_out, c_in, kh, kw]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    /// Convolution weight tensor `[c_out, c_in, kh, kw]`.
    pub weight: Tensor,
    /// Optional per-output-channel bias `[c_out]`.
    pub bias: Option<Tensor>,
    /// Stride and padding.
    pub cfg: ConvConfig,
}

/// A 3-D convolution layer with weights `[c_out, c_in, kd, kh, kw]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv3d {
    /// Convolution weight tensor `[c_out, c_in, kd, kh, kw]`.
    pub weight: Tensor,
    /// Optional per-output-channel bias `[c_out]`.
    pub bias: Option<Tensor>,
    /// Stride and padding.
    pub cfg: ConvConfig,
}

/// A fully-connected layer computing `x · Wᵀ + b` with weight `[out, in]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    /// Weight matrix `[out_features, in_features]`.
    pub weight: Tensor,
    /// Optional bias `[out_features]`.
    pub bias: Option<Tensor>,
}

/// Inference-mode 2-D batch normalization with frozen statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm2d {
    /// Per-channel scale γ.
    pub gamma: Tensor,
    /// Per-channel shift β.
    pub beta: Tensor,
    /// Frozen running mean.
    pub running_mean: Tensor,
    /// Frozen running variance.
    pub running_var: Tensor,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl BatchNorm2d {
    /// Identity-initialized batch norm over `c` channels (γ=1, β=0,
    /// mean=0, var=1).
    pub fn identity(c: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::ones(&[c]),
            beta: Tensor::zeros(&[c]),
            running_mean: Tensor::zeros(&[c]),
            running_var: Tensor::ones(&[c]),
            eps: 1e-5,
        }
    }
}

/// Inference layer normalization over the last dimension (the
/// transformer's token-feature axis).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNorm {
    /// Per-feature scale γ `[dim]`.
    pub gamma: Tensor,
    /// Per-feature shift β `[dim]`.
    pub beta: Tensor,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl LayerNorm {
    /// Identity-initialized layer norm over `dim` features (γ=1, β=0).
    pub fn identity(dim: usize) -> Self {
        LayerNorm { gamma: Tensor::ones(&[dim]), beta: Tensor::zeros(&[dim]), eps: 1e-5 }
    }
}

/// A user-defined layer operation — the extensibility hook of paper
/// §V-G ("the tool is designed to easily incorporate new custom
/// trainable layers not native to PyTorch by adding the custom layer's
/// type in the `verify_layer` function").
///
/// A custom layer may expose a weight tensor and masquerade as one of
/// the supported injectable kinds via [`CustomLayer::injection_kind`];
/// ALFI then targets it exactly like a native conv/linear layer. Weight
/// tensors must be rank 2, 4 or 5 so fault coordinates can be sampled.
pub trait CustomLayer: Send + Sync + std::fmt::Debug {
    /// Short type name shown in logs and debugging output.
    fn type_name(&self) -> &str;
    /// Executes the layer (unary).
    ///
    /// # Errors
    ///
    /// Implementations return [`NnError`] for incompatible inputs.
    fn forward(&self, input: &Tensor) -> Result<Tensor, NnError>;
    /// Clones the layer into a fresh box (custom layers must be
    /// clonable so faulty model instances can be spun off).
    fn clone_box(&self) -> Box<dyn CustomLayer>;
    /// The injectable kind this layer registers as, or `None` to opt out
    /// of fault injection.
    fn injection_kind(&self) -> Option<LayerKind> {
        None
    }
    /// The layer's weight tensor, if it has one.
    fn weight(&self) -> Option<&Tensor> {
        None
    }
    /// Mutable weight access for weight fault injection.
    fn weight_mut(&mut self) -> Option<&mut Tensor> {
        None
    }
}

impl Clone for Box<dyn CustomLayer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A single operation in a network graph.
#[derive(Debug, Clone)]
pub enum Layer {
    /// A user-defined operation (see [`CustomLayer`]).
    Custom(Box<dyn CustomLayer>),
    /// 2-D convolution (injectable).
    Conv2d(Conv2d),
    /// 3-D convolution (injectable).
    Conv3d(Conv3d),
    /// Fully-connected layer (injectable).
    Linear(Linear),
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
    /// Logistic sigmoid.
    Sigmoid,
    /// Inference batch normalization.
    BatchNorm2d(BatchNorm2d),
    /// Max pooling with square window `k`.
    MaxPool2d {
        /// Window size.
        k: usize,
        /// Stride and padding.
        cfg: ConvConfig,
    },
    /// Average pooling with square window `k`.
    AvgPool2d {
        /// Window size.
        k: usize,
        /// Stride and padding.
        cfg: ConvConfig,
    },
    /// Adaptive average pooling to `out × out`.
    AdaptiveAvgPool2d(usize),
    /// Flattens `[n, ...]` to `[n, rest]`.
    Flatten,
    /// Elementwise sum of two inputs (residual connections).
    Add,
    /// Channel-dimension concatenation of two NCHW inputs.
    ConcatChannels,
    /// Nearest-neighbour 2× spatial upsampling (FPN top-down path).
    Upsample2x,
    /// Identity pass-through (graph plumbing).
    Identity,
    /// Inference layer normalization over the last dimension
    /// (non-injectable, like batch norm).
    LayerNorm(LayerNorm),
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Rearranges a patch-embedding output `[n, d, gh, gw]` into the
    /// token tensor `[n, gh·gw, d]` consumed by transformer blocks.
    ImageToTokens,
    /// Adds a learned positional embedding `[tokens, dim]` to a token
    /// tensor `[n, tokens, dim]` (non-injectable plumbing).
    PosEmbed(Tensor),
    /// Multi-head scaled dot-product self-attention over separate
    /// `(q, k, v)` token tensors `[n, tokens, dim]` — each head runs
    /// `softmax(Q·Kᵀ/√dₕ)·V` through the shared GEMM kernel path.
    Attention {
        /// Number of attention heads; must divide the feature dim.
        heads: usize,
    },
    /// Mean over the token dimension: `[n, t, d]` → `[n, d]` (the
    /// ViT-style pooling head in lieu of a class token).
    MeanTokens,
    /// Activation-range supervision (Ranger/Clipper, Geissler et al.):
    /// values outside `[lo, hi]` are clipped to the bound (`Clip`) or
    /// zeroed (`Zero`). Inserted by `alfi-mitigation` to harden models;
    /// non-injectable, so hardening preserves the injectable-layer list.
    RangeRestrict {
        /// Lower bound of the healthy activation range.
        lo: f32,
        /// Upper bound of the healthy activation range.
        hi: f32,
        /// What to do with out-of-range values.
        mode: RestrictMode,
    },
}

/// Out-of-range handling for [`Layer::RangeRestrict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RestrictMode {
    /// Ranger: saturate to the violated bound. NaN maps to `lo`.
    Clip,
    /// Clipper: replace with zero. NaN maps to zero.
    Zero,
}

impl From<RestrictMode> for gemm::ClampMode {
    fn from(mode: RestrictMode) -> Self {
        match mode {
            RestrictMode::Clip => gemm::ClampMode::Clip,
            RestrictMode::Zero => gemm::ClampMode::Zero,
        }
    }
}

impl From<gemm::ClampMode> for RestrictMode {
    fn from(mode: gemm::ClampMode) -> Self {
        match mode {
            gemm::ClampMode::Clip => RestrictMode::Clip,
            gemm::ClampMode::Zero => RestrictMode::Zero,
        }
    }
}

impl Layer {
    /// The kind used for injectability filtering.
    pub fn kind(&self) -> LayerKind {
        match self {
            Layer::Conv2d(_) => LayerKind::Conv2d,
            Layer::Conv3d(_) => LayerKind::Conv3d,
            Layer::Linear(_) => LayerKind::Linear,
            Layer::Custom(c) => c.injection_kind().unwrap_or(LayerKind::Other),
            _ => LayerKind::Other,
        }
    }

    /// Immutable access to the layer's weight tensor, if it has one.
    pub fn weight(&self) -> Option<&Tensor> {
        match self {
            Layer::Conv2d(c) => Some(&c.weight),
            Layer::Conv3d(c) => Some(&c.weight),
            Layer::Linear(l) => Some(&l.weight),
            Layer::Custom(c) => c.weight(),
            _ => None,
        }
    }

    /// Mutable access to the layer's weight tensor — the entry point for
    /// weight fault injection ("fault injections into weights don't have
    /// to use hooks, because weights are defined before the inference
    /// run", §II).
    pub fn weight_mut(&mut self) -> Option<&mut Tensor> {
        match self {
            Layer::Conv2d(c) => Some(&mut c.weight),
            Layer::Conv3d(c) => Some(&mut c.weight),
            Layer::Linear(l) => Some(&mut l.weight),
            Layer::Custom(c) => c.weight_mut(),
            _ => None,
        }
    }

    /// Number of arguments this layer consumes (1, 2, or 3 for
    /// attention's `q, k, v`).
    pub fn arity(&self) -> usize {
        match self {
            Layer::Add | Layer::ConcatChannels => 2,
            Layer::Attention { .. } => 3,
            _ => 1,
        }
    }

    /// Executes the layer on its inputs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if input ranks/shapes are incompatible with the
    /// operation.
    pub fn forward(&self, inputs: &[&Tensor]) -> Result<Tensor, NnError> {
        let x = inputs[0];
        match self {
            Layer::Custom(c) => c.forward(x),
            Layer::Conv2d(c) => Ok(conv2d_im2col(x, &c.weight, c.bias.as_ref(), c.cfg)?),
            Layer::Conv3d(c) => Ok(conv3d_direct(x, &c.weight, c.bias.as_ref(), c.cfg)?),
            Layer::Linear(l) => linear_forward(x, l),
            Layer::Relu => Ok(x.map(|v| v.max(0.0))),
            Layer::LeakyRelu(slope) => {
                let s = *slope;
                Ok(x.map(move |v| if v >= 0.0 { v } else { s * v }))
            }
            Layer::Sigmoid => Ok(x.map(|v| 1.0 / (1.0 + (-v).exp()))),
            Layer::BatchNorm2d(bn) => batchnorm_forward(x, bn),
            Layer::MaxPool2d { k, cfg } => Ok(max_pool2d(x, *k, *cfg)?),
            Layer::AvgPool2d { k, cfg } => Ok(avg_pool2d(x, *k, *cfg)?),
            Layer::AdaptiveAvgPool2d(out) => Ok(adaptive_avg_pool2d(x, *out)?),
            Layer::Flatten => {
                if x.rank() < 2 {
                    return Err(NnError::BadInput {
                        layer: "flatten".into(),
                        reason: format!("rank {} < 2", x.rank()),
                    });
                }
                let n = x.dims()[0];
                let rest: usize = x.dims()[1..].iter().product();
                Ok(x.reshape(&[n, rest])?)
            }
            Layer::Add => Ok(x.add(inputs[1])?),
            Layer::ConcatChannels => concat_channels(x, inputs[1]),
            Layer::LayerNorm(ln) => layernorm_forward(x, ln),
            Layer::Gelu => Ok(x.map(|v| {
                // tanh approximation of GELU
                let c = (2.0f32 / std::f32::consts::PI).sqrt();
                0.5 * v * (1.0 + (c * (v + 0.044_715 * v * v * v)).tanh())
            })),
            Layer::ImageToTokens => image_to_tokens(x),
            Layer::PosEmbed(pe) => pos_embed_forward(x, pe),
            Layer::Attention { heads } => attention_forward(x, inputs[1], inputs[2], *heads),
            Layer::MeanTokens => mean_tokens(x),
            Layer::Upsample2x => upsample2x(x),
            Layer::Identity => Ok(x.clone()),
            Layer::RangeRestrict { lo, hi, mode } => {
                let (lo, hi, mode) = (*lo, *hi, *mode);
                Ok(x.map(move |v| match mode {
                    RestrictMode::Clip => {
                        if v.is_nan() {
                            lo
                        } else {
                            v.clamp(lo, hi)
                        }
                    }
                    RestrictMode::Zero => {
                        if v.is_nan() || v < lo || v > hi {
                            0.0
                        } else {
                            v
                        }
                    }
                }))
            }
        }
    }
}

fn linear_forward(x: &Tensor, l: &Linear) -> Result<Tensor, NnError> {
    linear_fused(x, l, None, None)
}

/// Linear layer forward with per-element fault injection and a
/// range-supervision clamp fused into the GEMM epilogue.
///
/// The historical per-element operation order is preserved on both
/// kernel paths: the accumulator starts at the output's bias value,
/// products accumulate in ascending input-feature order (no zero-skip
/// — the linear kernel never had one), then injection (by flat index
/// into the `[n, out_features]` output) and clamp apply in that order.
/// With `inject = None` and `clamp = None` this is the plain forward.
pub(crate) fn linear_fused(
    x: &Tensor,
    l: &Linear,
    inject: Option<&gemm::InjectMap>,
    clamp: Option<gemm::Clamp>,
) -> Result<Tensor, NnError> {
    // Rank-3 token tensors [n, t, d] apply the linear per token: fold
    // the token axis into the row dimension, run the identical rank-2
    // GEMM, and unfold. Flat output indices are unchanged by the fold,
    // so injection maps address [n, t, out] directly.
    if x.rank() == 3 {
        let (n, t) = (x.dims()[0], x.dims()[1]);
        let folded = x.reshape(&[n * t, x.dims()[2]])?;
        let y = linear_fused(&folded, l, inject, clamp)?;
        let out_f = y.dims()[1];
        return Ok(y.reshape(&[n, t, out_f])?);
    }
    if x.rank() != 2 {
        return Err(NnError::BadInput {
            layer: "linear".into(),
            reason: format!("expected rank 2 or 3 input, got rank {}", x.rank()),
        });
    }
    let (out_f, in_f) = (l.weight.dims()[0], l.weight.dims()[1]);
    if x.dims()[1] != in_f {
        return Err(NnError::BadInput {
            layer: "linear".into(),
            reason: format!("input features {} != weight in_features {}", x.dims()[1], in_f),
        });
    }
    // x [n, in] · W^T [in, out]; the GEMM reads W transposed in place.
    let n = x.dims()[0];
    let mut out = vec![0.0f32; n * out_f];
    let spec = gemm::GemmSpec {
        m: n,
        k: in_f,
        n: out_f,
        layout: gemm::BLayout::Transposed,
        skip_zero_a: false,
        bias: match l.bias.as_ref() {
            Some(b) => gemm::Bias::InitPerCol(b.data()),
            None => gemm::Bias::None,
        },
    };
    let epi = gemm::FusedEpilogue { base: 0, inject, clamp };
    gemm::gemm_with(x.data(), l.weight.data(), &mut out, &spec, &epi, gemm::kernel_path());
    Ok(Tensor::from_vec(out, &[n, out_f])?)
}

fn layernorm_forward(x: &Tensor, ln: &LayerNorm) -> Result<Tensor, NnError> {
    if x.rank() < 2 {
        return Err(NnError::BadInput {
            layer: "layernorm".into(),
            reason: format!("expected rank >= 2, got rank {}", x.rank()),
        });
    }
    let d = *x.dims().last().expect("rank >= 2");
    if ln.gamma.num_elements() != d {
        return Err(NnError::BadInput {
            layer: "layernorm".into(),
            reason: format!("{} features but {} gammas", d, ln.gamma.num_elements()),
        });
    }
    let rows = x.num_elements() / d;
    let mut out = vec![0.0f32; x.num_elements()];
    let data = x.data();
    let (g, b) = (ln.gamma.data(), ln.beta.data());
    for r in 0..rows {
        let row = &data[r * d..(r + 1) * d];
        let mean = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let inv_std = 1.0 / (var + ln.eps).sqrt();
        for i in 0..d {
            out[r * d + i] = (row[i] - mean) * inv_std * g[i] + b[i];
        }
    }
    Ok(Tensor::from_vec(out, x.dims())?)
}

fn image_to_tokens(x: &Tensor) -> Result<Tensor, NnError> {
    if x.rank() != 4 {
        return Err(NnError::BadInput {
            layer: "image_to_tokens".into(),
            reason: format!("expected rank 4 input, got rank {}", x.rank()),
        });
    }
    let (n, d, gh, gw) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let t = gh * gw;
    let mut out = vec![0.0f32; n * t * d];
    let data = x.data();
    for b in 0..n {
        for c in 0..d {
            for p in 0..t {
                out[(b * t + p) * d + c] = data[(b * d + c) * t + p];
            }
        }
    }
    Ok(Tensor::from_vec(out, &[n, t, d])?)
}

fn pos_embed_forward(x: &Tensor, pe: &Tensor) -> Result<Tensor, NnError> {
    if x.rank() != 3 || pe.rank() != 2 || &x.dims()[1..] != pe.dims() {
        return Err(NnError::BadInput {
            layer: "pos_embed".into(),
            reason: format!("token tensor {:?} vs embedding {:?}", x.dims(), pe.dims()),
        });
    }
    let (n, td) = (x.dims()[0], pe.num_elements());
    let mut out = x.data().to_vec();
    let p = pe.data();
    for b in 0..n {
        for i in 0..td {
            out[b * td + i] += p[i];
        }
    }
    Ok(Tensor::from_vec(out, x.dims())?)
}

fn attention_forward(q: &Tensor, k: &Tensor, v: &Tensor, heads: usize) -> Result<Tensor, NnError> {
    let bad = |reason: String| NnError::BadInput { layer: "attention".into(), reason };
    if q.rank() != 3 || q.dims() != k.dims() || q.dims() != v.dims() {
        return Err(bad(format!(
            "q/k/v must share a rank-3 shape, got {:?}/{:?}/{:?}",
            q.dims(),
            k.dims(),
            v.dims()
        )));
    }
    let (n, t, d) = (q.dims()[0], q.dims()[1], q.dims()[2]);
    if heads == 0 || d % heads != 0 {
        return Err(bad(format!("{heads} heads do not divide feature dim {d}")));
    }
    let hd = d / heads;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut out = vec![0.0f32; n * t * d];
    let path = gemm::kernel_path();
    let epi = gemm::FusedEpilogue { base: 0, inject: None, clamp: None };
    // Per-(batch, head) contiguous [t, hd] operand buffers; both GEMMs
    // run through the shared kernel path so attention inherits the
    // blocked/reference conformance story.
    let mut qh = vec![0.0f32; t * hd];
    let mut kh = vec![0.0f32; t * hd];
    let mut vh = vec![0.0f32; t * hd];
    let mut scores = vec![0.0f32; t * t];
    let mut ctx = vec![0.0f32; t * hd];
    for b in 0..n {
        for h in 0..heads {
            let off = h * hd;
            for p in 0..t {
                let row = (b * t + p) * d + off;
                qh[p * hd..(p + 1) * hd].copy_from_slice(&q.data()[row..row + hd]);
                kh[p * hd..(p + 1) * hd].copy_from_slice(&k.data()[row..row + hd]);
                vh[p * hd..(p + 1) * hd].copy_from_slice(&v.data()[row..row + hd]);
            }
            // scores = Q·Kᵀ, reading K transposed in place.
            let spec = gemm::GemmSpec {
                m: t,
                k: hd,
                n: t,
                layout: gemm::BLayout::Transposed,
                skip_zero_a: false,
                bias: gemm::Bias::None,
            };
            gemm::gemm_with(&qh, &kh, &mut scores, &spec, &epi, path);
            for row in scores.chunks_mut(t) {
                softmax_row(row, scale);
            }
            // ctx = softmax(scores)·V. The row-major reference kernel
            // accumulates into the output buffer (callers normally pass
            // a fresh zeroed tensor), so the reused per-head buffer must
            // be cleared — without this, heads after the first sum onto
            // the previous head's context on the reference path while
            // the blocked path's register tiles overwrite, breaking the
            // cross-kernel bit-identity contract.
            ctx.fill(0.0);
            let spec = gemm::GemmSpec {
                m: t,
                k: t,
                n: hd,
                layout: gemm::BLayout::RowMajor,
                skip_zero_a: false,
                bias: gemm::Bias::None,
            };
            gemm::gemm_with(&scores, &vh, &mut ctx, &spec, &epi, path);
            for p in 0..t {
                let row = (b * t + p) * d + off;
                out[row..row + hd].copy_from_slice(&ctx[p * hd..(p + 1) * hd]);
            }
        }
    }
    Ok(Tensor::from_vec(out, q.dims())?)
}

/// Numerically stable softmax of one pre-scaled score row. NaN scores
/// propagate (a faulted attention row stays observable as a DUE
/// precursor rather than being masked).
fn softmax_row(row: &mut [f32], scale: f32) {
    for v in row.iter_mut() {
        *v *= scale;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

fn mean_tokens(x: &Tensor) -> Result<Tensor, NnError> {
    if x.rank() != 3 {
        return Err(NnError::BadInput {
            layer: "mean_tokens".into(),
            reason: format!("expected rank 3 input, got rank {}", x.rank()),
        });
    }
    let (n, t, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    let mut out = vec![0.0f32; n * d];
    let data = x.data();
    for b in 0..n {
        for p in 0..t {
            for i in 0..d {
                out[b * d + i] += data[(b * t + p) * d + i];
            }
        }
    }
    for v in out.iter_mut() {
        *v /= t as f32;
    }
    Ok(Tensor::from_vec(out, &[n, d])?)
}

fn batchnorm_forward(x: &Tensor, bn: &BatchNorm2d) -> Result<Tensor, NnError> {
    if x.rank() != 4 {
        return Err(NnError::BadInput {
            layer: "batchnorm2d".into(),
            reason: format!("expected rank 4 input, got rank {}", x.rank()),
        });
    }
    let c = x.dims()[1];
    if bn.gamma.num_elements() != c {
        return Err(NnError::BadInput {
            layer: "batchnorm2d".into(),
            reason: format!("{} channels but {} gammas", c, bn.gamma.num_elements()),
        });
    }
    let (n, h, w) = (x.dims()[0], x.dims()[2], x.dims()[3]);
    let mut out = vec![0.0f32; x.num_elements()];
    let data = x.data();
    for b in 0..n {
        for ch in 0..c {
            let inv_std = 1.0 / (bn.running_var.data()[ch] + bn.eps).sqrt();
            let g = bn.gamma.data()[ch] * inv_std;
            let off = bn.beta.data()[ch] - bn.running_mean.data()[ch] * g;
            let base = (b * c + ch) * h * w;
            for i in 0..h * w {
                out[base + i] = data[base + i] * g + off;
            }
        }
    }
    Ok(Tensor::from_vec(out, x.dims())?)
}

fn concat_channels(a: &Tensor, b: &Tensor) -> Result<Tensor, NnError> {
    if a.rank() != 4 || b.rank() != 4 {
        return Err(NnError::BadInput {
            layer: "concat".into(),
            reason: "both inputs must be rank 4".into(),
        });
    }
    let (n, ca, h, w) = (a.dims()[0], a.dims()[1], a.dims()[2], a.dims()[3]);
    let cb = b.dims()[1];
    if b.dims()[0] != n || b.dims()[2] != h || b.dims()[3] != w {
        return Err(NnError::BadInput {
            layer: "concat".into(),
            reason: format!("incompatible shapes {:?} vs {:?}", a.dims(), b.dims()),
        });
    }
    let mut out = Vec::with_capacity(a.num_elements() + b.num_elements());
    let plane = h * w;
    for i in 0..n {
        out.extend_from_slice(&a.data()[i * ca * plane..(i + 1) * ca * plane]);
        out.extend_from_slice(&b.data()[i * cb * plane..(i + 1) * cb * plane]);
    }
    Ok(Tensor::from_vec(out, &[n, ca + cb, h, w])?)
}

fn upsample2x(x: &Tensor) -> Result<Tensor, NnError> {
    if x.rank() != 4 {
        return Err(NnError::BadInput {
            layer: "upsample2x".into(),
            reason: format!("expected rank 4 input, got rank {}", x.rank()),
        });
    }
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let mut out = vec![0.0f32; n * c * 4 * h * w];
    let data = x.data();
    for b in 0..n {
        for ch in 0..c {
            for y in 0..h {
                for xx in 0..w {
                    let v = data[((b * c + ch) * h + y) * w + xx];
                    for dy in 0..2 {
                        for dx in 0..2 {
                            out[((b * c + ch) * 2 * h + 2 * y + dy) * 2 * w + 2 * xx + dx] = v;
                        }
                    }
                }
            }
        }
    }
    Ok(Tensor::from_vec(out, &[n, c, 2 * h, 2 * w])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_rng::Rng;

    #[test]
    fn layer_kinds_and_injectability() {
        let lin = Layer::Linear(Linear { weight: Tensor::zeros(&[2, 2]), bias: None });
        assert_eq!(lin.kind(), LayerKind::Linear);
        assert!(lin.kind().is_injectable());
        assert!(!Layer::Relu.kind().is_injectable());
        assert_eq!(LayerKind::Conv2d.to_string(), "conv2d");
    }

    #[test]
    fn relu_and_leaky_relu() {
        let x = Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[1, 3]).unwrap();
        let r = Layer::Relu.forward(&[&x]).unwrap();
        assert_eq!(r.data(), &[0.0, 0.0, 3.0]);
        let l = Layer::LeakyRelu(0.1).forward(&[&x]).unwrap();
        assert_eq!(l.data(), &[-0.2, 0.0, 3.0]);
    }

    #[test]
    fn sigmoid_maps_to_unit_interval() {
        let x = Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]).unwrap();
        let s = Layer::Sigmoid.forward(&[&x]).unwrap();
        assert!(s.data()[0] < 1e-6);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn linear_matches_hand_computation() {
        let l = Linear {
            weight: Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
            bias: Some(Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap()),
        };
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = Layer::Linear(l).forward(&[&x]).unwrap();
        assert_eq!(y.data(), &[13.0, 27.0]);
    }

    #[test]
    fn linear_rejects_bad_input() {
        let l = Layer::Linear(Linear { weight: Tensor::zeros(&[2, 3]), bias: None });
        assert!(l.forward(&[&Tensor::zeros(&[1, 4])]).is_err());
        assert!(l.forward(&[&Tensor::zeros(&[4])]).is_err());
    }

    #[test]
    fn batchnorm_identity_passes_through() {
        let mut rng = Rng::from_seed(1);
        let x = Tensor::rand_normal(&mut rng, &[2, 3, 4, 4], 0.0, 1.0);
        let bn = Layer::BatchNorm2d(BatchNorm2d::identity(3));
        let y = bn.forward(&[&x]).unwrap();
        assert!(x.max_abs_diff(&y).unwrap() < 1e-4);
    }

    #[test]
    fn batchnorm_normalizes_known_stats() {
        let mut bn = BatchNorm2d::identity(1);
        bn.running_mean = Tensor::from_vec(vec![2.0], &[1]).unwrap();
        bn.running_var = Tensor::from_vec(vec![4.0], &[1]).unwrap();
        let x = Tensor::full(&[1, 1, 1, 2], 4.0);
        let y = Layer::BatchNorm2d(bn).forward(&[&x]).unwrap();
        // (4-2)/sqrt(4+eps) ~= 1.0
        assert!((y.data()[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn flatten_collapses_trailing_dims() {
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let y = Layer::Flatten.forward(&[&x]).unwrap();
        assert_eq!(y.dims(), &[2, 60]);
    }

    #[test]
    fn add_requires_same_shape() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::ones(&[2, 2]);
        let y = Layer::Add.forward(&[&a, &b]).unwrap();
        assert!(y.data().iter().all(|&v| v == 2.0));
        let c = Tensor::ones(&[3]);
        assert!(Layer::Add.forward(&[&a, &c]).is_err());
    }

    #[test]
    fn concat_stacks_channels() {
        let a = Tensor::full(&[1, 1, 2, 2], 1.0);
        let b = Tensor::full(&[1, 2, 2, 2], 2.0);
        let y = Layer::ConcatChannels.forward(&[&a, &b]).unwrap();
        assert_eq!(y.dims(), &[1, 3, 2, 2]);
        assert_eq!(y.get(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.get(&[0, 1, 0, 0]), 2.0);
        assert_eq!(y.get(&[0, 2, 1, 1]), 2.0);
    }

    #[test]
    fn upsample_doubles_spatial_dims() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = Layer::Upsample2x.forward(&[&x]).unwrap();
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
        assert_eq!(y.get(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.get(&[0, 0, 0, 1]), 1.0);
        assert_eq!(y.get(&[0, 0, 1, 1]), 1.0);
        assert_eq!(y.get(&[0, 0, 3, 3]), 4.0);
    }

    #[test]
    fn weight_accessors_cover_injectable_layers() {
        let mut conv = Layer::Conv2d(Conv2d {
            weight: Tensor::zeros(&[1, 1, 1, 1]),
            bias: None,
            cfg: ConvConfig::default(),
        });
        assert!(conv.weight().is_some());
        conv.weight_mut().unwrap().set(&[0, 0, 0, 0], 5.0);
        assert_eq!(conv.weight().unwrap().get(&[0, 0, 0, 0]), 5.0);
        assert!(Layer::Relu.weight().is_none());
    }

    #[test]
    fn arity_is_two_only_for_binary_ops() {
        assert_eq!(Layer::Add.arity(), 2);
        assert_eq!(Layer::ConcatChannels.arity(), 2);
        assert_eq!(Layer::Relu.arity(), 1);
    }

    #[test]
    fn linear_applies_per_token_on_rank3_input() {
        let l = Linear {
            weight: Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
            bias: Some(Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap()),
        };
        // [1, 2 tokens, 2 features]
        let x = Tensor::from_vec(vec![1.0, 1.0, 0.0, 1.0], &[1, 2, 2]).unwrap();
        let y = Layer::Linear(l.clone()).forward(&[&x]).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2]);
        assert_eq!(&y.data()[..2], &[13.0, 27.0]); // token 0 == rank-2 case
        assert_eq!(&y.data()[2..], &[12.0, 24.0]);
        // token rows match the folded rank-2 computation exactly
        let folded = x.reshape(&[2, 2]).unwrap();
        let y2 = Layer::Linear(l).forward(&[&folded]).unwrap();
        assert_eq!(y.data(), y2.data());
    }

    #[test]
    fn layernorm_normalizes_each_token_row() {
        let ln = LayerNorm::identity(2);
        let x = Tensor::from_vec(vec![1.0, 3.0, -5.0, 5.0], &[1, 2, 2]).unwrap();
        let y = Layer::LayerNorm(ln).forward(&[&x]).unwrap();
        // each row normalized to zero mean / unit variance
        for row in y.data().chunks(2) {
            assert!((row[0] + row[1]).abs() < 1e-4);
            assert!((row[1] - 1.0).abs() < 1e-2);
        }
        let bad = LayerNorm::identity(3);
        assert!(Layer::LayerNorm(bad).forward(&[&x]).is_err());
    }

    #[test]
    fn gelu_matches_reference_points() {
        let x = Tensor::from_vec(vec![0.0, 1.0, -1.0, 10.0], &[4]).unwrap();
        let y = Layer::Gelu.forward(&[&x]).unwrap();
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 0.841_19).abs() < 1e-3);
        assert!((y.data()[2] + 0.158_81).abs() < 1e-3);
        assert!((y.data()[3] - 10.0).abs() < 1e-3); // identity for large v
    }

    #[test]
    fn image_to_tokens_transposes_channels_last() {
        // [1, 2ch, 1, 2] -> [1, 2 tokens, 2 features]
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 1, 2]).unwrap();
        let y = Layer::ImageToTokens.forward(&[&x]).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2]);
        assert_eq!(y.data(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn pos_embed_broadcasts_over_batch() {
        let pe = Tensor::from_vec(vec![10.0, 20.0], &[1, 2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 1, 2]).unwrap();
        let y = Layer::PosEmbed(pe).forward(&[&x]).unwrap();
        assert_eq!(y.data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn attention_uniform_scores_average_values() {
        // q == k == 0 → uniform attention → each token gets the value
        // mean.
        let q = Tensor::zeros(&[1, 2, 2]);
        let v = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let y = Layer::Attention { heads: 1 }.forward(&[&q, &q, &v]).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2]);
        for row in y.data().chunks(2) {
            assert!((row[0] - 2.0).abs() < 1e-5);
            assert!((row[1] - 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn attention_peaked_scores_select_one_value() {
        let k = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[1, 2, 2]).unwrap();
        let v = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[1, 2, 2]).unwrap();
        // mismatched q/k/v shapes are rejected
        let short = Tensor::from_vec(vec![100.0, 0.0], &[1, 1, 2]).unwrap();
        assert!(Layer::Attention { heads: 1 }.forward(&[&short, &k, &v]).is_err());
        // both queries align strongly with key 0 → both select value row 0
        let q = Tensor::from_vec(vec![100.0, 0.0, 100.0, 0.0], &[1, 2, 2]).unwrap();
        let y = Layer::Attention { heads: 1 }.forward(&[&q, &k, &v]).unwrap();
        for row in y.data().chunks(2) {
            assert!((row[0] - 5.0).abs() < 1e-3);
            assert!((row[1] - 6.0).abs() < 1e-3);
        }
    }

    #[test]
    fn attention_validates_heads() {
        let x = Tensor::zeros(&[1, 2, 3]);
        assert!(Layer::Attention { heads: 2 }.forward(&[&x, &x, &x]).is_err());
        assert!(Layer::Attention { heads: 0 }.forward(&[&x, &x, &x]).is_err());
        assert_eq!(Layer::Attention { heads: 2 }.arity(), 3);
    }

    #[test]
    fn mean_tokens_pools_the_token_axis() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let y = Layer::MeanTokens.forward(&[&x]).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.0, 3.0]);
        assert!(Layer::MeanTokens.forward(&[&Tensor::zeros(&[2, 2])]).is_err());
    }

    #[test]
    fn transformer_layers_are_not_injectable() {
        for l in [
            Layer::LayerNorm(LayerNorm::identity(2)),
            Layer::Gelu,
            Layer::ImageToTokens,
            Layer::PosEmbed(Tensor::zeros(&[1, 2])),
            Layer::Attention { heads: 1 },
            Layer::MeanTokens,
        ] {
            assert_eq!(l.kind(), LayerKind::Other);
            assert!(l.weight().is_none());
        }
    }

    #[test]
    fn identity_is_identity() {
        let x = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        assert_eq!(Layer::Identity.forward(&[&x]).unwrap(), x);
    }

    #[test]
    fn ranger_clips_to_bounds() {
        let x = Tensor::from_vec(vec![-5.0, 0.5, 99.0, f32::NAN, f32::INFINITY], &[5]).unwrap();
        let l = Layer::RangeRestrict { lo: -1.0, hi: 2.0, mode: RestrictMode::Clip };
        let y = l.forward(&[&x]).unwrap();
        assert_eq!(y.data(), &[-1.0, 0.5, 2.0, -1.0, 2.0]);
    }

    #[test]
    fn clipper_zeroes_out_of_range() {
        let x = Tensor::from_vec(vec![-5.0, 0.5, 99.0, f32::NAN, f32::NEG_INFINITY], &[5]).unwrap();
        let l = Layer::RangeRestrict { lo: -1.0, hi: 2.0, mode: RestrictMode::Zero };
        let y = l.forward(&[&x]).unwrap();
        assert_eq!(y.data(), &[0.0, 0.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn range_restrict_is_not_injectable() {
        let l = Layer::RangeRestrict { lo: 0.0, hi: 1.0, mode: RestrictMode::Clip };
        assert_eq!(l.kind(), LayerKind::Other);
        assert!(l.weight().is_none());
    }

    #[test]
    fn in_range_values_pass_unchanged() {
        let x = Tensor::from_vec(vec![0.1, 0.9], &[2]).unwrap();
        for mode in [RestrictMode::Clip, RestrictMode::Zero] {
            let l = Layer::RangeRestrict { lo: 0.0, hi: 1.0, mode };
            assert_eq!(l.forward(&[&x]).unwrap(), x);
        }
    }
}
